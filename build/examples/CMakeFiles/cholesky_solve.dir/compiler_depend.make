# Empty compiler generated dependencies file for cholesky_solve.
# This may be replaced when dependencies are built.
