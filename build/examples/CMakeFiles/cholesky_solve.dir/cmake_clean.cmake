file(REMOVE_RECURSE
  "CMakeFiles/cholesky_solve.dir/cholesky_solve.cpp.o"
  "CMakeFiles/cholesky_solve.dir/cholesky_solve.cpp.o.d"
  "cholesky_solve"
  "cholesky_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
