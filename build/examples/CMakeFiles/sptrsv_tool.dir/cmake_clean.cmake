file(REMOVE_RECURSE
  "CMakeFiles/sptrsv_tool.dir/sptrsv_tool.cpp.o"
  "CMakeFiles/sptrsv_tool.dir/sptrsv_tool.cpp.o.d"
  "sptrsv_tool"
  "sptrsv_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sptrsv_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
