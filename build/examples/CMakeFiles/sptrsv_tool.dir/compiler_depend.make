# Empty compiler generated dependencies file for sptrsv_tool.
# This may be replaced when dependencies are built.
