# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cholesky_solve]=] "/root/repo/build/examples/cholesky_solve")
set_tests_properties([=[example_cholesky_solve]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sptrsv_tool]=] "/root/repo/build/examples/sptrsv_tool" "--generate" "--generate_nodes=4096")
set_tests_properties([=[example_sptrsv_tool]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
