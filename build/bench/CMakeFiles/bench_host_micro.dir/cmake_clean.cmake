file(REMOVE_RECURSE
  "CMakeFiles/bench_host_micro.dir/bench_host_micro.cpp.o"
  "CMakeFiles/bench_host_micro.dir/bench_host_micro.cpp.o.d"
  "bench_host_micro"
  "bench_host_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
