# Empty dependencies file for bench_mrhs.
# This may be replaced when dependencies are built.
