file(REMOVE_RECURSE
  "CMakeFiles/bench_mrhs.dir/bench_mrhs.cpp.o"
  "CMakeFiles/bench_mrhs.dir/bench_mrhs.cpp.o.d"
  "bench_mrhs"
  "bench_mrhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mrhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
