# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
