# Empty compiler generated dependencies file for capellini.
# This may be replaced when dependencies are built.
