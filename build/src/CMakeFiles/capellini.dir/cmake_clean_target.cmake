file(REMOVE_RECURSE
  "libcapellini.a"
)
