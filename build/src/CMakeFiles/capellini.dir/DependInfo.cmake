
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/capellini.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/autotune.cpp" "src/CMakeFiles/capellini.dir/core/autotune.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/core/autotune.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/capellini.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/select.cpp" "src/CMakeFiles/capellini.dir/core/select.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/core/select.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/capellini.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/core/solver.cpp.o.d"
  "/root/repo/src/gen/assemble.cpp" "src/CMakeFiles/capellini.dir/gen/assemble.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/assemble.cpp.o.d"
  "/root/repo/src/gen/banded.cpp" "src/CMakeFiles/capellini.dir/gen/banded.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/banded.cpp.o.d"
  "/root/repo/src/gen/corpus.cpp" "src/CMakeFiles/capellini.dir/gen/corpus.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/corpus.cpp.o.d"
  "/root/repo/src/gen/level_structured.cpp" "src/CMakeFiles/capellini.dir/gen/level_structured.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/level_structured.cpp.o.d"
  "/root/repo/src/gen/proxies.cpp" "src/CMakeFiles/capellini.dir/gen/proxies.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/proxies.cpp.o.d"
  "/root/repo/src/gen/random_lower.cpp" "src/CMakeFiles/capellini.dir/gen/random_lower.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/random_lower.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "src/CMakeFiles/capellini.dir/gen/rmat.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/gen/rmat.cpp.o.d"
  "/root/repo/src/graph/dag.cpp" "src/CMakeFiles/capellini.dir/graph/dag.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/graph/dag.cpp.o.d"
  "/root/repo/src/graph/levels.cpp" "src/CMakeFiles/capellini.dir/graph/levels.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/graph/levels.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/capellini.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/graph/stats.cpp.o.d"
  "/root/repo/src/host/levelset_cpu.cpp" "src/CMakeFiles/capellini.dir/host/levelset_cpu.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/host/levelset_cpu.cpp.o.d"
  "/root/repo/src/host/serial.cpp" "src/CMakeFiles/capellini.dir/host/serial.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/host/serial.cpp.o.d"
  "/root/repo/src/host/syncfree_cpu.cpp" "src/CMakeFiles/capellini.dir/host/syncfree_cpu.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/host/syncfree_cpu.cpp.o.d"
  "/root/repo/src/kernels/capellini_naive.cpp" "src/CMakeFiles/capellini.dir/kernels/capellini_naive.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/capellini_naive.cpp.o.d"
  "/root/repo/src/kernels/capellini_twophase.cpp" "src/CMakeFiles/capellini.dir/kernels/capellini_twophase.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/capellini_twophase.cpp.o.d"
  "/root/repo/src/kernels/capellini_writing_first.cpp" "src/CMakeFiles/capellini.dir/kernels/capellini_writing_first.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/capellini_writing_first.cpp.o.d"
  "/root/repo/src/kernels/common.cpp" "src/CMakeFiles/capellini.dir/kernels/common.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/common.cpp.o.d"
  "/root/repo/src/kernels/cusparse_proxy.cpp" "src/CMakeFiles/capellini.dir/kernels/cusparse_proxy.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/cusparse_proxy.cpp.o.d"
  "/root/repo/src/kernels/hybrid.cpp" "src/CMakeFiles/capellini.dir/kernels/hybrid.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/hybrid.cpp.o.d"
  "/root/repo/src/kernels/launch.cpp" "src/CMakeFiles/capellini.dir/kernels/launch.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/launch.cpp.o.d"
  "/root/repo/src/kernels/levelset.cpp" "src/CMakeFiles/capellini.dir/kernels/levelset.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/levelset.cpp.o.d"
  "/root/repo/src/kernels/mrhs.cpp" "src/CMakeFiles/capellini.dir/kernels/mrhs.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/mrhs.cpp.o.d"
  "/root/repo/src/kernels/serial_row.cpp" "src/CMakeFiles/capellini.dir/kernels/serial_row.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/serial_row.cpp.o.d"
  "/root/repo/src/kernels/syncfree_csc.cpp" "src/CMakeFiles/capellini.dir/kernels/syncfree_csc.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/syncfree_csc.cpp.o.d"
  "/root/repo/src/kernels/syncfree_warp.cpp" "src/CMakeFiles/capellini.dir/kernels/syncfree_warp.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/kernels/syncfree_warp.cpp.o.d"
  "/root/repo/src/matrix/convert.cpp" "src/CMakeFiles/capellini.dir/matrix/convert.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/matrix/convert.cpp.o.d"
  "/root/repo/src/matrix/coo.cpp" "src/CMakeFiles/capellini.dir/matrix/coo.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/matrix/coo.cpp.o.d"
  "/root/repo/src/matrix/csc.cpp" "src/CMakeFiles/capellini.dir/matrix/csc.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/matrix/csc.cpp.o.d"
  "/root/repo/src/matrix/csr.cpp" "src/CMakeFiles/capellini.dir/matrix/csr.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/matrix/csr.cpp.o.d"
  "/root/repo/src/matrix/mm_io.cpp" "src/CMakeFiles/capellini.dir/matrix/mm_io.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/matrix/mm_io.cpp.o.d"
  "/root/repo/src/matrix/triangular.cpp" "src/CMakeFiles/capellini.dir/matrix/triangular.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/matrix/triangular.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/capellini.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/counters.cpp" "src/CMakeFiles/capellini.dir/sim/counters.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/sim/counters.cpp.o.d"
  "/root/repo/src/sim/disasm.cpp" "src/CMakeFiles/capellini.dir/sim/disasm.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/sim/disasm.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/CMakeFiles/capellini.dir/sim/kernel.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/sim/kernel.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/capellini.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/capellini.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/sim/memory.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/capellini.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/capellini.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/status.cpp" "src/CMakeFiles/capellini.dir/support/status.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/support/status.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/capellini.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/support/table.cpp.o.d"
  "/root/repo/src/support/timer.cpp" "src/CMakeFiles/capellini.dir/support/timer.cpp.o" "gcc" "src/CMakeFiles/capellini.dir/support/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
