// Measures the cost of the tracing hooks (src/trace) on a full-size solve.
//
// Three configurations solve the same 100k-row random lower-triangular
// system with Writing-First:
//   null sink      — SolveOptions::trace_sink == nullptr (the default); every
//                    hook site is one pointer test, so this must be within
//                    noise of the pre-tracing simulator (<2% is the budget)
//   attribution    — the streaming stall-attribution aggregator alone
//   full session   — attribution + timeline + Chrome trace sink
//
// Wall-clock is host time to run the simulator, the only meaningful cost
// axis (simulated cycles are identical across configurations by design —
// the bench asserts that too).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gen/random_lower.h"
#include "kernels/launch.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"
#include "trace/session.h"

namespace {

using namespace capellini;

double MedianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t rows = 100000;
  std::int64_t reps = 5;
  CliFlags flags;
  flags.AddInt("rows", &rows, "rows of the generated system");
  flags.AddInt("reps", &reps, "solves per configuration (median reported)");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == StatusCode::kNotFound ? 0 : 2;
  }

  const Csr lower = MakeRandomLower({.rows = static_cast<Idx>(rows),
                                     .avg_strict_nnz_per_row = 3.0,
                                     .seed = 42});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 11);
  const sim::DeviceConfig device = sim::PascalGtx1080();
  const auto algorithm = kernels::DeviceAlgorithm::kCapelliniWritingFirst;

  struct Config {
    const char* name;
    bool attribution;
    bool full;
  };
  const Config configs[] = {
      {"null sink (tracing off)", false, false},
      {"stall attribution", true, false},
      {"full session (+chrome)", false, true},
  };

  std::uint64_t null_cycles = 0;
  double null_ms = 0.0;
  TextTable table({"configuration", "median wall ms", "vs null", "cycles"});
  for (const Config& config : configs) {
    std::vector<double> samples;
    std::uint64_t cycles = 0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      trace::StallAttribution attribution;
      trace::TraceSession session;
      kernels::SolveOptions options;
      if (config.attribution) options.trace_sink = &attribution;
      if (config.full) options.trace_sink = session.sink();
      Timer timer;
      auto result =
          kernels::SolveOnDevice(algorithm, lower, problem.b, device, options);
      samples.push_back(timer.ElapsedMs());
      if (!result.ok()) {
        std::fprintf(stderr, "solve failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      // Repetitions must not drift: the machine reuses its warp pool and
      // lazily-cleared L2 bitmap across launches, and any state leaking
      // between launches would show up as a cycle difference here.
      if (rep > 0 && result->stats.cycles != cycles) {
        std::fprintf(stderr,
                     "FAIL: rep %lld simulated %llu cycles, rep 0 simulated "
                     "%llu — launches are not independent\n",
                     static_cast<long long>(rep),
                     static_cast<unsigned long long>(result->stats.cycles),
                     static_cast<unsigned long long>(cycles));
        return 1;
      }
      cycles = result->stats.cycles;
    }
    const double median = MedianMs(samples);
    if (config.name == configs[0].name) {
      null_ms = median;
      null_cycles = cycles;
    }
    if (cycles != null_cycles) {
      std::fprintf(stderr,
                   "FAIL: tracing perturbed the simulation (%llu vs %llu "
                   "cycles)\n",
                   static_cast<unsigned long long>(cycles),
                   static_cast<unsigned long long>(null_cycles));
      return 1;
    }
    char ms_text[32], pct_text[32], cycle_text[32];
    std::snprintf(ms_text, sizeof ms_text, "%.1f", median);
    std::snprintf(pct_text, sizeof pct_text, "%+.1f%%",
                  (median / null_ms - 1.0) * 100.0);
    std::snprintf(cycle_text, sizeof cycle_text, "%llu",
                  static_cast<unsigned long long>(cycles));
    table.AddRow({config.name, ms_text, pct_text, cycle_text});
  }

  std::printf("trace overhead, %lld-row random lower solve "
              "(Writing-First, Pascal, %lld reps)\n%s",
              static_cast<long long>(rows), static_cast<long long>(reps),
              table.ToString().c_str());
  std::printf("\nthe null-sink row is the shipping default: every hook is a "
              "single\nuntaken branch, so its cost must stay within noise "
              "(<2%% budget).\n");
  return 0;
}
