// Reproduces Table 3 (platform configuration) and Table 4 (mean GFLOPS of
// SyncFree / cuSPARSE / CapelliniSpTRSV per platform on the high-granularity
// corpus, plus the percentage of matrices on which Capellini is optimal).
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const auto platforms = SelectedPlatforms(options);
  const ExperimentOptions experiment = ToExperimentOptions(options);

  std::printf("Table 3: simulated platform configuration.\n\n");
  TextTable config_table({"Platform", "SMs", "Warps/SM", "Clock (GHz)",
                          "DRAM (GB/s)", "DRAM latency (cyc)"});
  for (const auto& config : sim::PaperPlatforms()) {
    config_table.AddRow({config.name, std::to_string(config.num_sms),
                         std::to_string(config.max_warps_per_sm),
                         TextTable::Num(config.clock_ghz, 3),
                         TextTable::Num(config.dram_bandwidth_gbps, 0),
                         std::to_string(config.dram_latency_cycles)});
  }
  std::fputs(config_table.ToString().c_str(), stdout);

  const std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  std::printf(
      "\nTable 4: mean GFLOPS on the %zu matrices with parallel granularity\n"
      "> 0.7 (the paper's 245-matrix slice), and the share of matrices where\n"
      "CapelliniSpTRSV is the fastest of the three.\n\n",
      corpus.size());

  TextTable table({"Platform", "SyncFree", "cuSPARSE", "CapelliniSpTRSV",
                   "Capellini optimal %"});
  double sums[3] = {0, 0, 0};
  double pct_sum = 0.0;
  for (const auto& config : platforms) {
    const auto records = RunMany(corpus, algorithms, config, experiment);
    int bad = 0;
    for (const auto& record : records) {
      if (!record.status.ok() || !record.correct) ++bad;
    }
    if (bad > 0) {
      std::fprintf(stderr, "WARNING: %d runs failed verification on %s\n", bad,
                   config.name.c_str());
    }
    const double syncfree = MeanGflops(records, algorithms[0]);
    const double cusparse = MeanGflops(records, algorithms[1]);
    const double capellini = MeanGflops(records, algorithms[2]);
    const double pct = BestPercentage(records, algorithms[2]);
    sums[0] += syncfree;
    sums[1] += cusparse;
    sums[2] += capellini;
    pct_sum += pct;
    table.AddRow({config.name, TextTable::Num(syncfree, 2),
                  TextTable::Num(cusparse, 2), TextTable::Num(capellini, 2),
                  TextTable::Num(pct, 2)});
  }
  const double n = static_cast<double>(platforms.size());
  table.AddRow({"Average", TextTable::Num(sums[0] / n, 2),
                TextTable::Num(sums[1] / n, 2), TextTable::Num(sums[2] / n, 2),
                TextTable::Num(pct_sum / n, 2)});
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
