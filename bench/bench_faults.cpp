// Reliability benchmark: seeded fault sweep over the self-healing pipeline.
//
// Three gated sections (any gate failure prints FAIL and exits 1 — CI runs
// this as the fault-smoke job):
//
//  1. Zero-perturbation gate. A solve with NO injector and a solve with an
//     attached injector whose rates are all zero must be bit-identical —
//     same x, same simulated cycle count (FNV-1a checksum, the same
//     contract-by-checksum idiom as bench_runner).
//  2. Timing-only gate. Stuck-warp and memory-delay faults perturb the
//     schedule, never the values: x stays bit-identical to the clean run
//     while the cycle count moves.
//  3. Recovery sweep. For each seed, a FaultPlan with dropped publishes and
//     exponent-bit store flips is replayed twice from Reseed: once under raw
//     kCapellini (which must fail — deadlock or bad residual — in at least
//     30% of runs, or the injection rates have rotted) and once under
//     SolveReliable (which must end verified in 100% of runs: the ladder's
//     host serial rung is immune to device faults). One seed is re-run to
//     pin the determinism contract: same seed => same faults => same
//     recovery path.
//
// Also reports the measured verification overhead: wall-clock ms spent in
// VerifySolution next to the wall-clock cost of the solve it guards.
//
//   bench_faults            # full sweep (60 seeds)
//   bench_faults --quick    # CI tier (20 seeds)
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/banded.h"
#include "sim/config.h"
#include "sim/fault.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"

namespace capellini::bench {
namespace {

std::uint64_t Fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t ChecksumSolve(const SolveResult& result) {
  std::uint64_t hash = 1469598103934665603ull;
  if (!result.x.empty()) {
    hash = Fnv1a(hash, result.x.data(), result.x.size() * sizeof(Val));
  }
  hash = Fnv1a(hash, &result.device_stats.cycles,
               sizeof(result.device_stats.cycles));
  return hash;
}

/// The sweep device: a small GPU with a tight no-progress watchdog, so a
/// starved spin-wait converts to kDeadlock in milliseconds of wall clock.
sim::DeviceConfig SweepDevice() {
  sim::DeviceConfig config = sim::TinyTestDevice();
  config.no_progress_cycles = 50'000;
  return config;
}

Solver MakeSolver(const Csr& matrix, sim::FaultInjector* injector) {
  SolverOptions options;
  options.device = SweepDevice();
  options.kernel_options.fault_injector = injector;
  return Solver(Csr(matrix), options);
}

int Fail(const char* what) {
  std::fprintf(stderr, "\nFAIL: %s\n", what);
  return 1;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::int64_t rows = 256;
  std::int64_t seeds = 0;  // 0 = tier default
  CliFlags flags;
  flags.AddBool("quick", &quick, "CI tier: fewer seeds");
  flags.AddInt("rows", &rows, "rows of the swept matrix");
  flags.AddInt("seeds", &seeds, "fault seeds to sweep (0 = tier default)");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    if (status.code() != StatusCode::kNotFound || status.message() != "help") {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return status.code() == StatusCode::kNotFound ? 0 : 2;
  }
  const int num_seeds = seeds > 0 ? static_cast<int>(seeds) : (quick ? 20 : 60);

  // Banded with a forced chain: every row depends on its predecessor, so one
  // dropped publish starves the whole tail of the matrix.
  BandedOptions banded;
  banded.rows = static_cast<Idx>(rows);
  banded.bandwidth = 4;
  banded.seed = 11;
  const Csr matrix = MakeBanded(banded);
  const std::vector<Val> b(static_cast<std::size_t>(matrix.rows()), 1.0);

  std::printf("Fault sweep: %s rows=%" PRId64 " nnz=%" PRId64 " seeds=%d\n\n",
              "banded(band=4,chain)", static_cast<std::int64_t>(matrix.rows()),
              static_cast<std::int64_t>(matrix.nnz()), num_seeds);

  // --- gate 1: attached-but-disabled injector is bit-identical ------------
  const Solver clean_solver = MakeSolver(matrix, nullptr);
  auto clean = clean_solver.Solve(Algorithm::kCapellini, b);
  if (!clean.ok()) return Fail("clean solve failed");
  const std::uint64_t clean_checksum = ChecksumSolve(*clean);

  sim::FaultInjector injector;  // default plan: all rates zero
  const Solver faulty_solver = MakeSolver(matrix, &injector);
  auto disabled = faulty_solver.Solve(Algorithm::kCapellini, b);
  if (!disabled.ok()) return Fail("solve with disabled injector failed");
  const std::uint64_t disabled_checksum = ChecksumSolve(*disabled);
  std::printf("zero-perturbation gate: clean=%016" PRIx64
              " attached-zero-rate=%016" PRIx64 " -> %s\n",
              clean_checksum, disabled_checksum,
              clean_checksum == disabled_checksum ? "identical" : "DIVERGED");
  if (clean_checksum != disabled_checksum) {
    return Fail("attached zero-rate injector perturbed the solve");
  }

  // --- gate 2: timing-only faults move cycles, never values ---------------
  sim::FaultPlan timing_plan;
  timing_plan.seed = 42;
  timing_plan.stuck_warp_rate = 0.01;
  timing_plan.mem_delay_rate = 0.01;
  injector.Reseed(timing_plan);
  auto jittered = faulty_solver.Solve(Algorithm::kCapellini, b);
  if (!jittered.ok()) return Fail("timing-fault solve failed");
  const bool same_values = jittered->x == clean->x;
  const bool moved_cycles =
      jittered->device_stats.cycles != clean->device_stats.cycles;
  std::printf("timing-only gate: values %s, cycles %" PRIu64 " -> %" PRIu64
              " (%s), injected stuck=%" PRIu64 " delay=%" PRIu64 "\n\n",
              same_values ? "identical" : "DIVERGED",
              clean->device_stats.cycles, jittered->device_stats.cycles,
              moved_cycles ? "moved" : "UNMOVED",
              injector.counts()[sim::FaultKind::kStuckWarp],
              injector.counts()[sim::FaultKind::kMemDelay]);
  if (!same_values) return Fail("timing-only faults changed the solution");
  if (!moved_cycles) {
    return Fail("timing faults injected but the cycle count never moved");
  }

  // --- gate 3: the recovery sweep -----------------------------------------
  // Rates sized for ~1.5 expected dropped publishes and ~1 expected bit flip
  // per run: most seeds inject at least one fault, some inject none.
  sim::FaultPlan plan;
  plan.drop_publish_rate = 1.5 / static_cast<double>(matrix.rows());
  plan.bitflip_store_rate = 1.0 / static_cast<double>(matrix.rows());

  const VerifyOptions verify_options;
  int raw_failures = 0;
  int raw_deadlocks = 0;
  int raw_residual_failures = 0;
  int recovered = 0;
  int reliable_verified = 0;
  int total_attempts = 0;
  int max_attempts = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_flips = 0;
  double verify_wall_ms = 0.0;
  double solve_wall_ms = 0.0;

  for (int seed = 1; seed <= num_seeds; ++seed) {
    plan.seed = static_cast<std::uint64_t>(seed);

    // Raw pass: one unprotected kCapellini launch against the plan.
    injector.Reseed(plan);
    auto raw = faulty_solver.Solve(Algorithm::kCapellini, b);
    bool raw_failed = false;
    if (!raw.ok()) {
      raw_failed = true;
      if (raw.status().code() == StatusCode::kDeadlock) ++raw_deadlocks;
    } else if (!VerifySolution(matrix, b, raw->x, verify_options).passed) {
      raw_failed = true;
      ++raw_residual_failures;
    }
    if (raw_failed) ++raw_failures;
    injected_drops += injector.counts()[sim::FaultKind::kDropPublish];
    injected_flips += injector.counts()[sim::FaultKind::kBitFlipStore];

    // Reliable pass: identical fault stream (Reseed), full retry ladder.
    injector.Reseed(plan);
    Timer solve_timer;
    auto reliable = faulty_solver.SolveReliable(Algorithm::kCapellini, b);
    solve_wall_ms += solve_timer.ElapsedMs();
    if (!reliable.ok()) return Fail("SolveReliable returned no solution");
    if (reliable->verified) {
      ++reliable_verified;
      if (raw_failed) ++recovered;
    }
    total_attempts += static_cast<int>(reliable->attempts.size());
    if (static_cast<int>(reliable->attempts.size()) > max_attempts) {
      max_attempts = static_cast<int>(reliable->attempts.size());
    }
    verify_wall_ms += reliable->verify_ms;

    // Determinism pin (first seed only): replay the reliable pass and
    // require the identical recovery path.
    if (seed == 1) {
      injector.Reseed(plan);
      auto replay = faulty_solver.SolveReliable(Algorithm::kCapellini, b);
      if (!replay.ok()) return Fail("determinism replay returned no solution");
      bool same_path = replay->attempts.size() == reliable->attempts.size() &&
                       replay->final_algorithm == reliable->final_algorithm &&
                       replay->solve.x == reliable->solve.x;
      for (std::size_t i = 0; same_path && i < replay->attempts.size(); ++i) {
        same_path = replay->attempts[i].algorithm ==
                        reliable->attempts[i].algorithm &&
                    replay->attempts[i].status == reliable->attempts[i].status;
      }
      std::printf("determinism pin (seed 1): replayed recovery path %s\n",
                  same_path ? "identical" : "DIVERGED");
      if (!same_path) return Fail("same seed produced a different recovery");
    }
  }

  const double raw_fail_rate =
      static_cast<double>(raw_failures) / static_cast<double>(num_seeds);
  const double mean_attempts =
      static_cast<double>(total_attempts) / static_cast<double>(num_seeds);

  TextTable table({"Metric", "Value"});
  table.AddRow({"seeds swept", std::to_string(num_seeds)});
  table.AddRow({"injected publish drops", std::to_string(injected_drops)});
  table.AddRow({"injected bit flips", std::to_string(injected_flips)});
  table.AddRow({"raw kCapellini failures",
                std::to_string(raw_failures) + " (" +
                    TextTable::Num(100.0 * raw_fail_rate, 1) + "%)"});
  table.AddRow({"  of which deadlocks", std::to_string(raw_deadlocks)});
  table.AddRow(
      {"  of which bad residuals", std::to_string(raw_residual_failures)});
  table.AddRow({"SolveReliable verified",
                std::to_string(reliable_verified) + "/" +
                    std::to_string(num_seeds)});
  table.AddRow({"recovered raw failures", std::to_string(recovered) + "/" +
                                              std::to_string(raw_failures)});
  table.AddRow({"mean attempts", TextTable::Num(mean_attempts, 2)});
  table.AddRow({"max attempts", std::to_string(max_attempts)});
  std::printf("\n%s", table.ToString().c_str());

  std::printf(
      "\nverification overhead: %.3f ms verifying vs %.3f ms solving "
      "(%.1f%% of the protected path's wall clock)\n",
      verify_wall_ms, solve_wall_ms,
      solve_wall_ms > 0.0 ? 100.0 * verify_wall_ms / solve_wall_ms : 0.0);

  if (raw_fail_rate < 0.30) {
    return Fail("raw failure rate under 30% — injection rates have rotted");
  }
  if (reliable_verified != num_seeds) {
    return Fail("SolveReliable left runs unverified");
  }
  std::printf(
      "\nAll gates passed: disabled injection is bit-identical, timing "
      "faults are value-neutral, and every injected-fault run recovered.\n");
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Main(argc, argv); }
