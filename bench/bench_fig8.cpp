// Reproduces Figure 8: (a) GPU instructions executed and (b) stall behaviour
// per algorithm on the high-granularity corpus.
//
// (a) reproduces cleanly: Capellini saves the large majority of warp
// instructions (the paper reports 76% vs SyncFree, 56% vs cuSPARSE) — that
// instruction economy is what carries the paper's efficiency story here.
// (b) does NOT map onto the simulator 1:1: the paper's metric is nvprof's
// "instruction dependency stall" share, whereas we report issue-slot stalls
// (Capellini's fewer, longer-lived warps show MORE of those) and active
// lanes per issued instruction (depressed for Capellini by divergence
// serialization, inflated for the warp-level kernels by their full-warp
// prologues/reductions). Both are printed for transparency; EXPERIMENTS.md
// discusses the deviation.
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  const std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  const auto records = RunMany(corpus, algorithms, device, experiment);

  struct Agg {
    double instructions = 0.0;
    double stall_pct = 0.0;
    double active_lanes = 0.0;
    int count = 0;
  };
  Agg agg[3];
  for (const auto& record : records) {
    if (!record.status.ok()) continue;
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      if (record.algorithm != algorithms[a]) continue;
      agg[a].instructions +=
          static_cast<double>(record.result.stats.instructions);
      agg[a].stall_pct += record.result.stats.StallPct();
      agg[a].active_lanes += record.result.stats.AvgActiveLanes();
      ++agg[a].count;
    }
  }

  std::printf(
      "Figure 8(a): warp instructions executed (mean per matrix, x10^6) on\n"
      "the high-granularity corpus (%zu matrices, platform %s).\n\n",
      corpus.size(), device.name.c_str());
  double capellini_instr = agg[2].instructions / std::max(1, agg[2].count);
  double max_instr = 0.0;
  for (const auto& a : agg) {
    max_instr = std::max(max_instr, a.instructions / std::max(1, a.count));
  }
  TextTable instr_table(
      {"Algorithm", "instructions (10^6)", "saved by Capellini", ""});
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const double mean = agg[a].instructions / std::max(1, agg[a].count);
    instr_table.AddRow(
        {kernels::DeviceAlgorithmName(algorithms[a]),
         TextTable::Num(mean / 1e6, 2),
         mean > 0 ? TextTable::Num(100.0 * (1.0 - capellini_instr / mean), 1) +
                        "%"
                  : "-",
         Bar(mean, max_instr)});
  }
  std::fputs(instr_table.ToString().c_str(), stdout);

  std::printf(
      "\nFigure 8(b): stall and warp-efficiency indicators (issue-slot stall\n"
      "percentage; average active lanes per issued instruction, of 32).\n\n");
  TextTable stall_table({"Algorithm", "stall %", "active lanes / 32"});
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    stall_table.AddRow({kernels::DeviceAlgorithmName(algorithms[a]),
                        TextTable::Num(agg[a].stall_pct /
                                           std::max(1, agg[a].count), 2),
                        TextTable::Num(agg[a].active_lanes /
                                           std::max(1, agg[a].count), 2)});
  }
  std::fputs(stall_table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
