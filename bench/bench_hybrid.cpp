// §4.4 future-work evaluation: the fused warp/thread-level kernel with a
// row-length threshold. Sweeps the threshold on matrices that MIX long and
// short rows (where neither pure granularity is ideal) and compares against
// the pure warp-level and pure thread-level solvers.
#include "bench/bench_common.h"
#include "gen/assemble.h"
#include "support/rng.h"

namespace capellini::bench {
namespace {

/// A matrix mixing graph-like short rows with FEM-like wide rows inside a
/// SHALLOW dependency DAG (wide levels) — the §4.4 motivation: neither pure
/// granularity fits all rows, but the DAG still has plenty of parallelism.
NamedMatrix MixedRows(Idx rows, std::uint64_t seed) {
  Rng rng(seed);
  const Idx levels = 10;
  const Idx per_level = rows / levels;
  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(rows));
  for (Idx i = per_level; i < rows; ++i) {
    auto& row = cols[static_cast<std::size_t>(i)];
    const Idx level_start = (i / per_level) * per_level;
    // Half of each level is short rows (1-2 deps), half is wide rows
    // (~32 deps). All deps point to strictly earlier levels.
    const bool wide = (i - level_start) * 2 >= per_level;
    const Idx count = wide ? static_cast<Idx>(rng.NextInt(24, 40))
                           : static_cast<Idx>(rng.NextInt(1, 2));
    for (Idx k = 0; k < count; ++k) {
      row.push_back(static_cast<Idx>(
          rng.NextBounded(static_cast<std::uint64_t>(level_start))));
    }
  }
  NamedMatrix named;
  named.matrix = AssembleUnitLower(std::move(cols), seed ^ 0x1234);
  named.name = "mixed_rows";
  named.stats = ComputeStats(named.matrix, named.name);
  return named;
}

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions base_experiment = ToExperimentOptions(options);

  const Idx rows = options.full ? 65'536 : 16'384;
  const NamedMatrix mixed = MixedRows(rows, 0x44);

  std::printf(
      "Hybrid (§4.4): warp/thread fusion on a mixed-row-length matrix\n"
      "(%d rows, %lld nnz, alpha %.1f, delta %.2f), platform %s.\n\n",
      mixed.stats.rows, static_cast<long long>(mixed.stats.nnz),
      mixed.stats.avg_nnz_per_row, mixed.stats.parallel_granularity,
      device.name.c_str());

  TextTable table({"Solver", "threshold", "GFLOPS", "correct"});
  for (const auto algorithm : {kernels::DeviceAlgorithm::kSyncFreeCsc,
                               kernels::DeviceAlgorithm::kCapelliniWritingFirst}) {
    const RunRecord record = RunOne(mixed, algorithm, device, base_experiment);
    table.AddRow({kernels::DeviceAlgorithmName(algorithm), "-",
                  record.status.ok() ? TextTable::Num(record.result.gflops, 2)
                                     : record.status.ToString(),
                  record.correct ? "yes" : "no"});
  }
  for (const Idx threshold : {Idx{4}, Idx{8}, Idx{16}, Idx{24}, Idx{32},
                              Idx{64}}) {
    ExperimentOptions experiment = base_experiment;
    experiment.kernel_options.hybrid_row_length_threshold = threshold;
    const RunRecord record = RunOne(mixed, kernels::DeviceAlgorithm::kHybrid,
                                    device, experiment);
    table.AddRow({"Hybrid", std::to_string(threshold),
                  record.status.ok() ? TextTable::Num(record.result.gflops, 2)
                                     : record.status.ToString(),
                  record.correct ? "yes" : "no"});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
