// Preprocessing-cost bench: cold vs warm vs on-device registration (DESIGN.md
// §4i), with a fatal host-vs-device identity gate.
//
//  1. Identity gate (always on, fatal): for EVERY corpus matrix, the
//     AnalyzeOnDevice level sets (level_of / level_ptr / order) must be
//     bit-identical to host ComputeLevelSets, and the cache round-trip
//     (Store -> Load -> BuildLevelSetsFromLevelOf) must rehydrate the same
//     bits. Any mismatch exits nonzero — warm and on-device registration are
//     only allowed to skip the host sweep because they are indistinguishable
//     from it.
//  2. Registration-cost table: per matrix, cold (host Analyze, wall-clock),
//     warm (cache Load + AssembleAnalysis, wall-clock — the restart path,
//     which runs zero host level sweeps; asserted via
//     AnalyzeCallCountForTest), and on-device (simulated exec_ms of the
//     in-degree + propagation kernels, plus the host ms around the
//     launches). Host timings are best-of --reps.
//  3. Reorder-decision table: TuneLevelReorder's end-to-end verdict per
//     matrix — direct solve vs on-device analysis + level-permuted solve —
//     plus the analytic break-even solve count where the permutation starts
//     paying for itself.
//
// Writes --json=PATH in the same hand-rolled style as the other benches
// (CI uploads BENCH_analysis.json from the analysis-smoke job).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/autotune.h"
#include "gen/corpus.h"
#include "graph/levels.h"
#include "kernels/analyze.h"
#include "matrix/csr.h"
#include "serve/persist.h"
#include "sim/config.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"

namespace capellini::bench {
namespace {

bool SameLevels(const LevelSets& a, const LevelSets& b) {
  return a.level_of == b.level_of && a.level_ptr == b.level_ptr &&
         a.order == b.order;
}

struct CostRow {
  std::string name;
  Idx rows = 0;
  std::int64_t nnz = 0;
  Idx levels = 0;
  double cold_ms = 0.0;      // host Analyze(), wall-clock
  double warm_ms = 0.0;      // cache Load + AssembleAnalysis, wall-clock
  double device_exec_ms = 0.0;  // simulated in-degree + propagation kernels
  double device_host_ms = 0.0;  // host work around the launches
};

struct ReorderRow {
  std::string name;
  bool use_reorder = false;
  double direct_ms = 0.0;
  double analyze_ms = 0.0;
  double reordered_solve_ms = 0.0;
  /// Solves after which analysis + permuted solve beats the direct path
  /// (< 0 = never: the permuted solve is not faster per-solve).
  double break_even_solves = 0.0;
};

int Main(int argc, char** argv) {
  bool quick = false;
  std::int64_t reps = 5;
  CliFlags flags;
  flags.AddBool("quick", &quick, "CI smoke: quick corpus tier, fewer reps");
  flags.AddInt("reps", &reps, "host timing repetitions (best-of)");
  BenchOptions options = ParseBenchFlags(argc, argv, &flags);
  if (quick) {
    options.full = false;
    reps = std::min<std::int64_t>(reps, 2);
  }
  if (reps < 1) reps = 1;

  const sim::DeviceConfig config = SelectedPlatforms(options).front();
  const std::vector<NamedMatrix> corpus =
      GranularityCorpus(ToCorpusOptions(options));

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "capellini_bench_analysis")
          .string();
  std::filesystem::remove_all(cache_dir);
  const serve::AnalysisCache cache(cache_dir);

  // --- 1+2: identity gate + registration-cost sweep -----------------------
  std::vector<CostRow> costs;
  int gate_checks = 0;
  for (const NamedMatrix& entry : corpus) {
    if (options.progress) {
      std::fprintf(stderr, "analyze %s (%lld rows)\n", entry.name.c_str(),
                   static_cast<long long>(entry.matrix.rows()));
    }
    CostRow row;
    row.name = entry.name;
    row.rows = entry.matrix.rows();
    row.nnz = entry.matrix.nnz();

    // Cold: the full host registration analysis, best-of reps.
    Analysis host = Analyze(entry.matrix, entry.name);
    {
      Timer timer;
      host = Analyze(entry.matrix, entry.name);
      row.cold_ms = timer.ElapsedMs();
    }
    for (std::int64_t r = 1; r < reps; ++r) {
      Timer timer;
      const Analysis again = Analyze(entry.matrix, entry.name);
      row.cold_ms = std::min(row.cold_ms, timer.ElapsedMs());
      if (!SameLevels(again.levels, host.levels)) {
        std::fprintf(stderr, "FAIL: %s: host Analyze is not deterministic\n",
                     entry.name.c_str());
        return 1;
      }
    }
    row.levels = host.levels.num_levels();

    // Warm: persist, then time the restart path. The rehydrated analysis
    // must be bit-identical and must run zero host level sweeps.
    const Status stored =
        cache.Store(entry.name, entry.matrix, host.levels, row.cold_ms);
    if (!stored.ok()) {
      std::fprintf(stderr, "FAIL: %s: cache store: %s\n", entry.name.c_str(),
                   stored.ToString().c_str());
      return 1;
    }
    const std::int64_t sweeps_before = AnalyzeCallCountForTest();
    for (std::int64_t r = 0; r < reps; ++r) {
      Timer timer;
      auto persisted = cache.Load(entry.name, entry.matrix);
      if (!persisted.ok()) {
        std::fprintf(stderr, "FAIL: %s: cache load: %s\n", entry.name.c_str(),
                     persisted.status().ToString().c_str());
        return 1;
      }
      const Analysis warm = AssembleAnalysis(
          entry.matrix, entry.name,
          BuildLevelSetsFromLevelOf(std::move(persisted->level_of)));
      const double ms = timer.ElapsedMs();
      row.warm_ms = r == 0 ? ms : std::min(row.warm_ms, ms);
      if (!SameLevels(warm.levels, host.levels)) {
        std::fprintf(stderr,
                     "FAIL: %s: rehydrated levels differ from host Analyze\n",
                     entry.name.c_str());
        return 1;
      }
    }
    if (AnalyzeCallCountForTest() != sweeps_before) {
      std::fprintf(stderr,
                   "FAIL: %s: warm rehydration ran a host level sweep\n",
                   entry.name.c_str());
      return 1;
    }
    ++gate_checks;

    // On-device: simulated analyser kernels; FATAL if the level sets are
    // not bit-identical to the host sweep.
    auto device = kernels::AnalyzeOnDevice(entry.matrix, config);
    if (!device.ok()) {
      std::fprintf(stderr, "FAIL: %s: AnalyzeOnDevice: %s\n",
                   entry.name.c_str(), device.status().ToString().c_str());
      return 1;
    }
    if (!SameLevels(device->levels, host.levels)) {
      std::fprintf(stderr,
                   "FAIL: %s: on-device level sets differ from host "
                   "ComputeLevelSets\n",
                   entry.name.c_str());
      return 1;
    }
    ++gate_checks;
    row.device_exec_ms = device->exec_ms;
    row.device_host_ms = device->host_ms;
    costs.push_back(row);
  }
  std::printf(
      "identity gate OK: %d checks (device + rehydrated levels bit-identical "
      "to host) on %s\n\n",
      gate_checks, config.name.c_str());

  TextTable cost_table({"matrix", "rows", "nnz", "levels", "cold ms",
                        "warm ms", "warm speedup", "dev exec ms",
                        "dev host ms"});
  cost_table.SetTitle("registration cost: cold (host) vs warm (cache) vs "
                      "on-device (simulated)");
  for (const CostRow& row : costs) {
    cost_table.AddRow(
        {row.name, TextTable::Int(row.rows), TextTable::Int(row.nnz),
         TextTable::Int(row.levels), TextTable::Num(row.cold_ms, 3),
         TextTable::Num(row.warm_ms, 3),
         TextTable::Num(row.warm_ms > 0.0 ? row.cold_ms / row.warm_ms : 0.0,
                        1),
         TextTable::Num(row.device_exec_ms, 3),
         TextTable::Num(row.device_host_ms, 3)});
  }
  std::printf("%s\n", cost_table.ToString().c_str());

  // --- 3: end-to-end reorder decision -------------------------------------
  std::vector<ReorderRow> reorders;
  for (const NamedMatrix& entry : corpus) {
    if (options.progress) {
      std::fprintf(stderr, "reorder %s\n", entry.name.c_str());
    }
    auto profile = TuneLevelReorder(entry.matrix, config);
    if (!profile.ok()) {
      std::fprintf(stderr, "FAIL: %s: TuneLevelReorder: %s\n",
                   entry.name.c_str(), profile.status().ToString().c_str());
      return 1;
    }
    ReorderRow row;
    row.name = entry.name;
    row.use_reorder = profile->use_reorder;
    row.direct_ms = profile->direct_solve_ms;
    row.analyze_ms = profile->analyze_ms;
    row.reordered_solve_ms = profile->reordered_solve_ms;
    const double per_solve_gain =
        profile->direct_solve_ms - profile->reordered_solve_ms;
    row.break_even_solves =
        per_solve_gain > 0.0 ? profile->analyze_ms / per_solve_gain : -1.0;
    reorders.push_back(row);
  }
  TextTable reorder_table({"matrix", "reorder?", "direct ms", "analyze ms",
                           "permuted ms", "break-even solves"});
  reorder_table.SetTitle(
      "level-permutation verdict (end-to-end simulated, amortize=1)");
  for (const ReorderRow& row : reorders) {
    reorder_table.AddRow(
        {row.name, row.use_reorder ? "yes" : "no",
         TextTable::Num(row.direct_ms, 4), TextTable::Num(row.analyze_ms, 4),
         TextTable::Num(row.reordered_solve_ms, 4),
         row.break_even_solves < 0.0
             ? "never"
             : TextTable::Num(row.break_even_solves, 1)});
  }
  std::printf("%s\n", reorder_table.ToString().c_str());

  if (!options.json.empty()) {
    std::FILE* f = std::fopen(options.json.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", options.json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"platform\": \"%s\",\n", config.name.c_str());
    std::fprintf(f, "  \"identity_checks\": %d,\n", gate_checks);
    std::fprintf(f, "  \"registration\": [\n");
    for (std::size_t i = 0; i < costs.size(); ++i) {
      const CostRow& row = costs[i];
      std::fprintf(
          f,
          "    {\"matrix\": \"%s\", \"rows\": %lld, \"nnz\": %lld, "
          "\"levels\": %lld, \"cold_ms\": %.4f, \"warm_ms\": %.4f, "
          "\"device_exec_ms\": %.4f, \"device_host_ms\": %.4f}%s\n",
          row.name.c_str(), static_cast<long long>(row.rows),
          static_cast<long long>(row.nnz), static_cast<long long>(row.levels),
          row.cold_ms, row.warm_ms, row.device_exec_ms, row.device_host_ms,
          i + 1 < costs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"reorder\": [\n");
    for (std::size_t i = 0; i < reorders.size(); ++i) {
      const ReorderRow& row = reorders[i];
      std::fprintf(
          f,
          "    {\"matrix\": \"%s\", \"use_reorder\": %s, "
          "\"direct_ms\": %.6f, \"analyze_ms\": %.6f, "
          "\"reordered_solve_ms\": %.6f, \"break_even_solves\": %.2f}%s\n",
          row.name.c_str(), row.use_reorder ? "true" : "false", row.direct_ms,
          row.analyze_ms, row.reordered_solve_ms, row.break_even_solves,
          i + 1 < reorders.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("JSON written to %s\n", options.json.c_str());
  }
  std::filesystem::remove_all(cache_dir);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Main(argc, argv); }
