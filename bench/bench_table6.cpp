// Reproduces Table 6: the per-matrix deep dive on rajat29 / bayer01 /
// circuit5M_dc — performance, bandwidth, instruction count and stall
// indicator for cuSPARSE / SyncFree / Capellini, with the structural
// indicators (delta, alpha, beta) in the heading of each block.
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  std::vector<NamedMatrix> matrices;
  matrices.push_back(MakeProxy(ProxyId::kRajat29));
  matrices.push_back(MakeProxy(ProxyId::kBayer01));
  matrices.push_back(MakeProxy(ProxyId::kCircuit5MDc));

  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  std::printf(
      "Table 6: detailed indicators for three case-study matrices (platform\n"
      "%s). delta: parallel granularity; alpha: avg nnz/row; beta: avg\n"
      "components/level.\n",
      device.name.c_str());

  for (const NamedMatrix& named : matrices) {
    std::printf("\n%s (delta: %.2f; alpha: %.2f; beta: %.2f)\n",
                named.name.c_str(), named.stats.parallel_granularity,
                named.stats.avg_nnz_per_row,
                named.stats.avg_components_per_level);
    TextTable table({"Algorithm", "Performance (GFLOPS)", "Bandwidth (GB/s)",
                     "Instructions (10^7)", "Stall (%)"});
    for (const auto algorithm : algorithms) {
      const RunRecord record = RunOne(named, algorithm, device, experiment);
      if (!record.status.ok()) {
        table.AddRow({kernels::DeviceAlgorithmName(algorithm),
                      record.status.ToString(), "-", "-", "-"});
        continue;
      }
      table.AddRow(
          {kernels::DeviceAlgorithmName(algorithm),
           TextTable::Num(record.result.gflops, 2),
           TextTable::Num(record.result.bandwidth_gbs, 2),
           TextTable::Num(
               static_cast<double>(record.result.stats.instructions) / 1e7, 3),
           TextTable::Num(record.result.stats.StallPct(), 2)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
