// Reproduces Table 5: average and maximum speedup of CapelliniSpTRSV over
// SyncFree and over cuSPARSE on each platform, with the argmax matrix names.
// The corpus is the high-granularity slice plus the paper's named best-case
// proxies (lp1, neos, atmosmodd, bayer01).
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const auto platforms = SelectedPlatforms(options);
  const ExperimentOptions experiment = ToExperimentOptions(options);

  std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  corpus.push_back(MakeProxy(ProxyId::kLp1));
  corpus.push_back(MakeProxy(ProxyId::kNeos));
  corpus.push_back(MakeProxy(ProxyId::kAtmosmodd));
  corpus.push_back(MakeProxy(ProxyId::kBayer01));

  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  std::printf(
      "Table 5: average and maximum speedups of CapelliniSpTRSV over SyncFree\n"
      "and cuSPARSE per platform (%zu matrices).\n\n",
      corpus.size());

  TextTable table({"Platform", "avg/SyncFree", "max/SyncFree", "argmax",
                   "avg/cuSPARSE", "max/cuSPARSE", "argmax "});
  for (const auto& config : platforms) {
    const auto records = RunMany(corpus, algorithms, config, experiment);
    const SpeedupSummary vs_syncfree =
        Speedup(records, algorithms[2], algorithms[0]);
    const SpeedupSummary vs_cusparse =
        Speedup(records, algorithms[2], algorithms[1]);
    table.AddRow({config.name, TextTable::Num(vs_syncfree.mean, 2),
                  TextTable::Num(vs_syncfree.max, 2), vs_syncfree.argmax,
                  TextTable::Num(vs_cusparse.mean, 2),
                  TextTable::Num(vs_cusparse.max, 2), vs_cusparse.argmax});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
