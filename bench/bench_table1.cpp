// Reproduces Table 1 (preprocessing vs execution time of Level-Set, cuSPARSE
// and Sync-Free on nlpkkt160 / wiki-Talk / cant) and prints the qualitative
// Table 2 summary.
//
// Scale note: the proxies are ~50-500x smaller than the SuiteSparse originals
// (single-core interpreter), so absolute milliseconds are smaller than the
// paper's; the row ORDERING — Level-Set preprocessing >> cuSPARSE analysis >
// Sync-Free setup, and execution times within ~2x of each other — is the
// reproduced shape. Preprocessing is real measured host time; execution is
// simulated device time.
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  std::vector<NamedMatrix> matrices;
  matrices.push_back(MakeProxy(ProxyId::kNlpkkt160));
  matrices.push_back(MakeProxy(ProxyId::kWikiTalk));
  matrices.push_back(MakeProxy(ProxyId::kCant));

  const kernels::DeviceAlgorithm algorithms[] = {
      kernels::DeviceAlgorithm::kLevelSet,
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kSyncFreeCsc,
  };

  std::printf(
      "Table 1: preprocessing and execution time of different SpTRSV\n"
      "algorithms (platform %s; matrices are reduced-scale proxies).\n\n",
      device.name.c_str());

  TextTable table({"Algorithm", "Time (ms)", "nlpkkt160", "wiki-Talk", "cant"});
  for (const auto algorithm : algorithms) {
    std::vector<std::string> pre = {kernels::DeviceAlgorithmName(algorithm),
                                    "Preprocessing"};
    std::vector<std::string> exec = {"", "Execution"};
    for (const NamedMatrix& named : matrices) {
      const RunRecord record = RunOne(named, algorithm, device, experiment);
      if (!record.status.ok()) {
        pre.push_back("err");
        exec.push_back(record.status.ToString());
        continue;
      }
      if (!record.correct) {
        std::fprintf(stderr, "WARNING: %s on %s verification failed (%.2e)\n",
                     kernels::DeviceAlgorithmName(algorithm),
                     named.name.c_str(), record.max_rel_error);
      }
      pre.push_back(TextTable::Num(record.result.preprocessing_ms, 3));
      exec.push_back(TextTable::Num(record.result.exec_ms, 3));
    }
    table.AddRow(pre);
    table.AddRow(exec);
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::printf("\nTable 2: summary of the SpTRSV algorithm family.\n\n");
  TextTable summary({"Algorithm", "Preprocessing overhead", "Storage format",
                     "Synchronization", "Granularity"});
  summary.AddRow({"Level-Set", "high", "CSR", "yes", "thread/warp"});
  summary.AddRow({"Sync-Free", "low", "CSC", "no", "warp"});
  summary.AddRow({"cuSPARSE", "low", "CSR", "unknown", "unknown"});
  summary.AddRow({"CapelliniSpTRSV", "none", "CSR", "no", "thread"});
  std::fputs(summary.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
