// Reproduces Figure 4: GFLOPS of SyncFree / cuSPARSE / CapelliniSpTRSV on the
// three platforms, binned by parallel granularity in [0.7, 1.2]. Capellini's
// series should sit well above both warp-level baselines across the range.
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const auto platforms = SelectedPlatforms(options);
  const ExperimentOptions experiment = ToExperimentOptions(options);

  const std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  std::printf(
      "Figure 4: GFLOPS vs parallel granularity in [0.7, 1.2] for the three\n"
      "algorithms on each platform (%zu matrices per platform).\n",
      corpus.size());

  for (const auto& config : platforms) {
    const auto records = RunMany(corpus, algorithms, config, experiment);
    std::printf("\n-- %s --\n", config.name.c_str());
    TextTable table({"granularity", "n", "SyncFree", "cuSPARSE", "Capellini"});
    std::vector<std::vector<GranularityBin>> bins(
        algorithms.size(), MakeBins(0.7, 1.25, 0.05));
    for (const auto& record : records) {
      if (!record.status.ok() || !record.correct) continue;
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        if (record.algorithm == algorithms[a]) {
          AddToBin(bins[a], record.stats.parallel_granularity,
                   record.result.gflops);
        }
      }
    }
    for (std::size_t k = 0; k < bins[0].size(); ++k) {
      if (bins[0][k].count == 0 && bins[1][k].count == 0 &&
          bins[2][k].count == 0) {
        continue;
      }
      table.AddRow({TextTable::Num(bins[0][k].lo, 2) + "-" +
                        TextTable::Num(bins[0][k].hi, 2),
                    std::to_string(bins[0][k].count),
                    TextTable::Num(bins[0][k].Mean(), 2),
                    TextTable::Num(bins[1][k].Mean(), 2),
                    TextTable::Num(bins[2][k].Mean(), 2)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
