// Streaming-update bench: bit-identity gate + incremental-analysis wins +
// an update-rate x traffic sweep (DESIGN.md §4h).
//
//  1. Bit-identity gate (always on, fatal): for EVERY delta kind (value-only,
//     single insert, single delete, randomized 50-delta batch) and EVERY
//     algorithm, the FNV-1a checksum of a solve on the post-ApplyDelta epoch
//     must equal the checksum of the same solve on a FRESH registration of
//     the mutated matrix. Any mismatch exits nonzero — the incremental
//     analyzer is only allowed to be fast because it is indistinguishable
//     from full re-analysis.
//  2. Incremental-wins table: per workload, the cost of one incremental
//     apply (update_ms) against a from-scratch Analyze(), plus the cone
//     fraction rows_releveled/total_rows. Value-only batches must report
//     zero rows re-leveled (the zero-re-analysis fast path).
//  3. Update-rate x traffic sweep: zipf solve traffic with update events
//     interleaved at increasing rates, replayed through a live SolveService
//     with verification on. Any wrong solution is fatal — in-flight solves
//     must land on their admission epoch. Reports throughput and the
//     amortized per-update re-analysis cost.
//
// Writes --json=PATH in the same hand-rolled style as the other benches
// (CI uploads BENCH_update.json from the update-smoke job).
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/solver.h"
#include "gen/banded.h"
#include "gen/random_lower.h"
#include "matrix/triangular.h"
#include "serve/registry.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "sim/config.h"
#include "support/cli.h"
#include "support/status.h"
#include "support/table.h"
#include "support/timer.h"
#include "update/delta.h"
#include "update/incremental.h"

namespace capellini::bench {
namespace {

std::uint64_t FnvChecksum(const std::vector<Val>& x) {
  std::uint64_t h = serve::kFnvSeed;
  for (const Val v : x) h = serve::HashBytes(h, &v, sizeof(v));
  return h;
}

SolverOptions DeviceOptions() {
  SolverOptions options;
  options.device = sim::PascalGtx1080();
  return options;
}

bool HasEntry(const Csr& m, Idx row, Idx col) {
  const auto cols = m.RowCols(row);
  for (const Idx c : cols) {
    if (c == col) return true;
  }
  return false;
}

/// Absent strictly-lower position scanning from `from_row` (the generators
/// used here always leave one).
std::pair<Idx, Idx> FindAbsentStrictLower(const Csr& m, Idx from_row) {
  for (Idx i = std::max<Idx>(from_row, 1); i < m.rows(); ++i) {
    for (Idx j = 0; j < i; ++j) {
      if (!HasEntry(m, i, j)) return {i, j};
    }
  }
  std::fprintf(stderr, "FAIL: no absent strictly-lower position\n");
  std::exit(1);
}

std::pair<Idx, Idx> FindPresentStrictLower(const Csr& m, Idx from_row) {
  for (Idx i = std::max<Idx>(from_row, 1); i < m.rows(); ++i) {
    const auto cols = m.RowCols(i);
    if (cols.size() > 1) return {i, cols[0]};
  }
  std::fprintf(stderr, "FAIL: no present strictly-lower nonzero\n");
  std::exit(1);
}

/// The four delta kinds the gate and the issue's acceptance bar name.
std::vector<std::pair<std::string, update::DeltaBatch>> DeltaScenarios(
    const Csr& lower, std::uint64_t seed) {
  std::vector<std::pair<std::string, update::DeltaBatch>> scenarios;
  scenarios.emplace_back(
      "value_only",
      update::MakeRandomBatch(lower, 16, /*structural=*/false, seed));
  const auto [ins_row, ins_col] =
      FindAbsentStrictLower(lower, static_cast<Idx>(seed % 64));
  update::DeltaBatch insert_one;
  insert_one.Insert(ins_row, ins_col, 0.5);
  scenarios.emplace_back("single_insert", std::move(insert_one));
  const auto [del_row, del_col] =
      FindPresentStrictLower(lower, static_cast<Idx>(seed % 64));
  update::DeltaBatch erase_one;
  erase_one.Erase(del_row, del_col);
  scenarios.emplace_back("single_delete", std::move(erase_one));
  scenarios.emplace_back(
      "batch50",
      update::MakeRandomBatch(lower, 50, /*structural=*/true, seed + 1));
  return scenarios;
}

/// Section 1: every delta kind x every algorithm, streamed epoch vs fresh
/// registration, checksummed. Returns the number of (kind, algorithm) cells
/// checked; exits on the first mismatch.
int RunBitIdentityGate(Idx rows) {
  const std::vector<Algorithm> algorithms = {
      Algorithm::kSerialCpu,    Algorithm::kLevelSetCpu,
      Algorithm::kSyncFreeCpu,  Algorithm::kLevelSet,
      Algorithm::kSyncFree,     Algorithm::kSyncFreeCsr,
      Algorithm::kCusparse,     Algorithm::kCapelliniTwoPhase,
      Algorithm::kCapellini,    Algorithm::kHybrid,
  };
  const Csr lower = MakeRandomLower({.rows = rows,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 0,
                                     .empty_row_fraction = 0.15,
                                     .seed = 211});
  int cells = 0;
  for (const auto& [label, batch] : DeltaScenarios(lower, 7)) {
    serve::MatrixRegistry registry;
    auto handle = registry.Register(lower, "gate", DeviceOptions());
    if (!handle.ok()) {
      std::fprintf(stderr, "FAIL: register: %s\n",
                   handle.status().ToString().c_str());
      std::exit(1);
    }
    auto report = registry.ApplyDelta(*handle, batch);
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: ApplyDelta(%s): %s\n", label.c_str(),
                   report.status().ToString().c_str());
      std::exit(1);
    }
    auto entry = registry.Acquire(*handle);

    auto mutated = update::ApplyToMatrix(lower, batch);
    serve::MatrixRegistry fresh_registry;
    auto fresh_handle =
        fresh_registry.Register(*mutated, "gate", DeviceOptions());
    auto fresh = fresh_registry.Acquire(*fresh_handle);

    const ReferenceProblem problem = MakeReferenceProblem(*mutated, 212);
    for (const Algorithm algorithm : algorithms) {
      auto streamed = (*entry)->solver.Solve(algorithm, problem.b);
      auto oracle = (*fresh)->solver.Solve(algorithm, problem.b);
      if (!streamed.ok() || !oracle.ok()) {
        std::fprintf(stderr, "FAIL: %s/%s solve: %s\n", label.c_str(),
                     AlgorithmName(algorithm),
                     (!streamed.ok() ? streamed.status() : oracle.status())
                         .ToString()
                         .c_str());
        std::exit(1);
      }
      const std::uint64_t a = FnvChecksum(streamed->x);
      const std::uint64_t b = FnvChecksum(oracle->x);
      if (a != b) {
        std::fprintf(stderr,
                     "FAIL: bit-identity gate: %s/%s checksum %016llx vs "
                     "fresh %016llx\n",
                     label.c_str(), AlgorithmName(algorithm),
                     static_cast<unsigned long long>(a),
                     static_cast<unsigned long long>(b));
        std::exit(1);
      }
      ++cells;
    }
  }
  return cells;
}

struct WinRow {
  std::string workload;
  std::string kind;
  /// Cost of the non-incremental path for the SAME batch: ApplyToMatrix +
  /// from-scratch Analyze of the mutated factor (what a registry without
  /// src/update would pay per delta).
  double full_ms = 0.0;
  double update_ms = 0.0;
  Idx rows_releveled = 0;
  Idx total_rows = 0;
};

/// Section 2: incremental apply vs full Analyze, per workload and delta
/// kind. Best-of-`reps` timings on both sides.
std::vector<WinRow> RunIncrementalWins(Idx rows, int reps) {
  std::vector<std::pair<std::string, Csr>> workloads;
  workloads.emplace_back("banded_chain",
                         MakeBanded({.rows = rows, .bandwidth = 16,
                                     .fill = 0.7, .force_chain = true,
                                     .seed = 221}));
  workloads.emplace_back("random_sparse",
                         MakeRandomLower({.rows = rows,
                                          .avg_strict_nnz_per_row = 3.0,
                                          .window = 0,
                                          .empty_row_fraction = 0.2,
                                          .seed = 222}));
  workloads.emplace_back("random_local",
                         MakeRandomLower({.rows = rows,
                                          .avg_strict_nnz_per_row = 4.0,
                                          .window = 64,
                                          .empty_row_fraction = 0.0,
                                          .seed = 223}));

  std::vector<WinRow> out;
  update::IncrementalAnalyzer analyzer;
  for (const auto& [name, lower] : workloads) {
    const Analysis analysis = Analyze(lower, name);

    // A persistent consumer graph so every structural row reports the
    // steady-state (patch, not rebuild) cost the registry pays.
    update::ConsumerGraph graph = update::ConsumerGraph::Build(lower);
    for (const auto& [kind, batch] : DeltaScenarios(lower, 9)) {
      WinRow row;
      row.workload = name;
      row.kind = kind;
      for (int rep = 0; rep < reps; ++rep) {
        Timer timer;
        auto mutated = update::ApplyToMatrix(lower, batch);
        if (!mutated.ok()) {
          std::fprintf(stderr, "FAIL: oracle apply(%s/%s): %s\n",
                       name.c_str(), kind.c_str(),
                       mutated.status().ToString().c_str());
          std::exit(1);
        }
        const Analysis oracle = Analyze(*mutated, name);
        const double ms = timer.ElapsedMs();
        if (rep == 0 || ms < row.full_ms) row.full_ms = ms;
        if (oracle.levels.level_of.empty() && lower.rows() != 0) {
          std::fprintf(stderr, "FAIL: oracle analysis empty\n");
          std::exit(1);
        }
      }
      for (int rep = 0; rep < reps; ++rep) {
        update::ConsumerGraph scratch = graph;  // patching mutates it
        auto result = analyzer.Apply(lower, analysis, batch, &scratch);
        if (!result.ok()) {
          std::fprintf(stderr, "FAIL: incremental apply(%s/%s): %s\n",
                       name.c_str(), kind.c_str(),
                       result.status().ToString().c_str());
          std::exit(1);
        }
        if (rep == 0 || result->update_ms < row.update_ms) {
          row.update_ms = result->update_ms;
        }
        row.rows_releveled = result->rows_releveled;
        row.total_rows = result->total_rows;
        if (kind == "value_only" && result->rows_releveled != 0) {
          std::fprintf(stderr,
                       "FAIL: value-only batch re-leveled %lld rows\n",
                       static_cast<long long>(result->rows_releveled));
          std::exit(1);
        }
      }
      out.push_back(row);
    }
  }
  return out;
}

struct SweepRow {
  double update_rate = 0.0;
  std::size_t solves = 0;
  std::size_t updates = 0;
  std::uint64_t rows_releveled = 0;
  double requests_per_sec = 0.0;
  double amortized_update_ms = 0.0;  // mean registry-side ApplyDelta ms
  double wall_ms = 0.0;
};

/// Section 3: zipf traffic with updates interleaved at increasing rates
/// through a live service, verification fatal.
std::vector<SweepRow> RunSweep(Idx rows, int requests,
                               const std::vector<double>& rates) {
  std::vector<SweepRow> out;
  for (const double rate : rates) {
    serve::MatrixRegistry registry;
    std::vector<serve::MatrixHandle> handles;
    for (std::uint64_t seed = 231; seed < 235; ++seed) {
      const Csr lower = MakeRandomLower({.rows = rows,
                                         .avg_strict_nnz_per_row = 3.0,
                                         .window = 0,
                                         .empty_row_fraction = 0.1,
                                         .seed = seed});
      auto handle = registry.Register(lower, "m" + std::to_string(seed),
                                      DeviceOptions());
      if (!handle.ok()) {
        std::fprintf(stderr, "FAIL: register: %s\n",
                     handle.status().ToString().c_str());
        std::exit(1);
      }
      handles.push_back(*handle);
    }
    serve::ServiceOptions options;
    options.workers = 2;
    options.max_batch = 4;
    options.max_queue = static_cast<std::size_t>(requests) * 2 + 16;
    serve::SolveService service(&registry, options);

    serve::RequestTrace trace =
        serve::GenerateZipfTrace(requests, 4, 1.1, 236);
    if (rate > 0.0) {
      serve::InterleaveUpdates(trace, rate, 8, 0.5, 237);
    }

    Timer timer;
    auto report = serve::ReplayTrace(service, handles, trace, {});
    const double wall_ms = timer.ElapsedMs();
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: replay: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    if (report->wrong != 0 || report->failed != 0) {
      std::fprintf(stderr,
                   "FAIL: update-rate %.2f: %zu wrong, %zu failed solutions "
                   "(in-flight solves must land on their admission epoch)\n",
                   rate, report->wrong, report->failed);
      std::exit(1);
    }

    SweepRow row;
    row.update_rate = rate;
    row.solves = report->completed;
    row.updates = report->updates;
    row.rows_releveled = report->rows_releveled;
    row.requests_per_sec = report->requests_per_sec;
    row.wall_ms = wall_ms;
    const auto totals = service.stats().totals();
    if (totals.updates_value + totals.updates_structural != report->updates) {
      std::fprintf(stderr, "FAIL: update accounting diverged from replay\n");
      std::exit(1);
    }

    // Amortized re-analysis cost + stream bit-identity: re-apply ONLY the
    // trace's update events, serially, on a clone registry. Each batch is a
    // pure function of (matrix at apply time, seed), so the serial pass
    // reproduces the replay's update stream exactly — its summed update_ms
    // is the amortized cost, and the final matrices must match the live
    // registry's post-replay epochs bit for bit.
    if (report->updates > 0) {
      serve::MatrixRegistry clone;
      std::vector<serve::MatrixHandle> clone_handles;
      for (std::uint64_t seed = 231; seed < 235; ++seed) {
        const Csr lower = MakeRandomLower({.rows = rows,
                                           .avg_strict_nnz_per_row = 3.0,
                                           .window = 0,
                                           .empty_row_fraction = 0.1,
                                           .seed = seed});
        clone_handles.push_back(*clone.Register(
            lower, "c" + std::to_string(seed), DeviceOptions()));
      }
      double update_ms_total = 0.0;
      for (const serve::TraceRequest& event : trace.requests) {
        if (event.kind != serve::TraceEventKind::kUpdate) continue;
        const serve::MatrixHandle handle =
            clone_handles[static_cast<std::size_t>(event.matrix) %
                          clone_handles.size()];
        auto entry = clone.Peek(handle);
        const update::DeltaBatch batch = update::MakeRandomBatch(
            (*entry)->solver.matrix(), event.update_deltas, event.structural,
            event.seed);
        auto applied = clone.ApplyDelta(handle, batch);
        if (!applied.ok()) {
          std::fprintf(stderr, "FAIL: serial update replay: %s\n",
                       applied.status().ToString().c_str());
          std::exit(1);
        }
        update_ms_total += applied->update_ms;
      }
      row.amortized_update_ms =
          update_ms_total / static_cast<double>(report->updates);
      for (std::size_t i = 0; i < handles.size(); ++i) {
        const Csr& live = (*registry.Peek(handles[i]))->solver.matrix();
        const Csr& serial = (*clone.Peek(clone_handles[i]))->solver.matrix();
        if (!(live == serial)) {
          std::fprintf(stderr,
                       "FAIL: update-rate %.2f: post-replay matrix %zu "
                       "diverged from the serial update stream\n",
                       rate, i);
          std::exit(1);
        }
      }
    }
    out.push_back(row);
  }
  return out;
}

int Main(int argc, char** argv) {
  std::int64_t rows = 3000;
  std::int64_t requests = 200;
  std::int64_t reps = 5;
  bool quick = false;
  std::string json;
  CliFlags flags;
  flags.AddInt("rows", &rows, "rows per generated factor");
  flags.AddInt("requests", &requests, "solve requests per sweep point");
  flags.AddInt("reps", &reps, "timing repetitions (best-of)");
  flags.AddBool("quick", &quick, "CI smoke: smaller factors, fewer requests");
  flags.AddString("json", &json, "write machine-readable results here");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (quick) {
    rows = std::min<std::int64_t>(rows, 800);
    requests = std::min<std::int64_t>(requests, 60);
    reps = std::min<std::int64_t>(reps, 3);
  }

  // 1. Bit-identity gate (fatal on mismatch).
  const int gate_cells =
      RunBitIdentityGate(static_cast<Idx>(std::min<std::int64_t>(rows, 1200)));
  std::printf("bit-identity gate OK: %d delta-kind x algorithm cells\n\n",
              gate_cells);

  // 2. Incremental wins.
  const std::vector<WinRow> wins =
      RunIncrementalWins(static_cast<Idx>(rows), static_cast<int>(reps));
  TextTable win_table({"workload", "delta kind", "full ms", "update ms",
                       "speedup", "cone rows", "cone frac"});
  for (const WinRow& row : wins) {
    win_table.AddRow(
        {row.workload, row.kind, TextTable::Num(row.full_ms, 3),
         TextTable::Num(row.update_ms, 3),
         TextTable::Num(row.update_ms > 0.0 ? row.full_ms / row.update_ms
                                            : 0.0,
                        1),
         TextTable::Int(row.rows_releveled),
         TextTable::Num(row.total_rows == 0
                            ? 0.0
                            : static_cast<double>(row.rows_releveled) /
                                  static_cast<double>(row.total_rows),
                        4)});
  }
  std::printf("%s\n", win_table.ToString().c_str());

  // 3. Update-rate x traffic sweep (verification fatal inside).
  std::vector<double> rates = {0.0, 0.1, 0.3};
  if (quick) rates = {0.0, 0.25};
  const std::vector<SweepRow> sweep =
      RunSweep(static_cast<Idx>(std::min<std::int64_t>(rows, 1500)),
               static_cast<int>(requests), rates);
  TextTable sweep_table({"update rate", "solves", "updates", "releveled",
                         "req/s", "amortized ms", "wall ms"});
  for (const SweepRow& row : sweep) {
    sweep_table.AddRow({TextTable::Num(row.update_rate, 2),
                        TextTable::Int(static_cast<long long>(row.solves)),
                        TextTable::Int(static_cast<long long>(row.updates)),
                        TextTable::Int(static_cast<long long>(
                            row.rows_releveled)),
                        TextTable::Num(row.requests_per_sec, 1),
                        TextTable::Num(row.amortized_update_ms, 3),
                        TextTable::Num(row.wall_ms, 1)});
  }
  std::printf("%s\n", sweep_table.ToString().c_str());
  std::printf("all solutions verified at every update rate\n");

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bit_identity_cells\": %d,\n", gate_cells);
    std::fprintf(f, "  \"incremental_wins\": [\n");
    for (std::size_t i = 0; i < wins.size(); ++i) {
      const WinRow& row = wins[i];
      std::fprintf(
          f,
          "    {\"workload\": \"%s\", \"kind\": \"%s\", "
          "\"full_reanalysis_ms\": %.4f, \"update_ms\": %.4f, "
          "\"rows_releveled\": %lld, \"total_rows\": %lld}%s\n",
          row.workload.c_str(), row.kind.c_str(), row.full_ms,
          row.update_ms, static_cast<long long>(row.rows_releveled),
          static_cast<long long>(row.total_rows),
          i + 1 < wins.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& row = sweep[i];
      std::fprintf(f,
                   "    {\"update_rate\": %.2f, \"solves\": %zu, "
                   "\"updates\": %zu, \"rows_releveled\": %llu, "
                   "\"requests_per_sec\": %.2f, "
                   "\"amortized_update_ms\": %.4f, \"wall_ms\": %.2f}%s\n",
                   row.update_rate, row.solves, row.updates,
                   static_cast<unsigned long long>(row.rows_releveled),
                   row.requests_per_sec, row.amortized_update_ms, row.wall_ms,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("JSON written to %s\n", json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Main(argc, argv); }
