// Fleet self-healing: seeded device-kill recovery + degraded sharded serving
// (src/fleet recovery ladder + DeviceHealthTracker, DESIGN.md §4j).
//
//   ./bench/bench_fleet_faults                   # full sweep
//   ./bench/bench_fleet_faults --quick --json=BENCH_fleet_faults.json  # CI
//
// Part 1 — recovery sweep: for K in {2,4} x both partitioners x both
// thread-per-row algorithms, every device in turn is killed with a seeded
// drop-every-publish fault plan and the recovery-enabled fleet solve must
// heal. Fatal gates:
//   * zero-fault identity: with no injectors attached, the recovery-enabled
//     solve is byte-identical (FNV-1a) to the recovery-disabled solve and to
//     the single-device Solver::Solve;
//   * 100% recovery: every kill ends status-OK with the final stitched
//     VerifySolution passing, and the recovered solution is byte-identical
//     to the clean solve (the ladder rungs reproduce the kernel bytes);
//   * replay determinism: re-running the same seed takes the byte-identical
//     failover path (same devices, same ladder attempts, same rungs) and
//     produces the same solution checksum.
//
// Part 2 — degraded serving: a ShardedSolveService with health tracking gets
// one poisoned device (its matrix's fault injector drops every publish).
// The device is quarantined, its traffic fails over to the survivor, and
// half-open probes keep re-checking it. Fatal gates:
//   * the full trace is served on the K-1 healthy devices: every non-failed
//     request returns the clean reference bytes, and the poisoned device
//     completes zero OK requests;
//   * exactly-once accounting (PR 4): ok + failures + misses + rejections
//     across devices equals the submit count, with failovers counted
//     separately;
//   * replay determinism: a second identical trace reproduces every
//     per-request (status, checksum) pair and the same health lifecycle
//     counters.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/solver.h"
#include "fleet/fleet.h"
#include "fleet/shard.h"
#include "gen/banded.h"
#include "matrix/triangular.h"
#include "serve/replay.h"
#include "sim/fault.h"

namespace capellini::bench {
namespace {

std::uint64_t ChecksumX(const std::vector<Val>& x) {
  return serve::HashBytes(serve::kFnvSeed, x.data(), x.size() * sizeof(Val));
}

Algorithm HostAlgorithmFor(kernels::DeviceAlgorithm algorithm) {
  return algorithm == kernels::DeviceAlgorithm::kCapelliniTwoPhase
             ? Algorithm::kCapelliniTwoPhase
             : Algorithm::kCapellini;
}

/// The failover ledger, serialized for the replay-identity gate: two runs
/// recovered identically iff these strings match.
std::string RecoveryPath(const fleet::FleetStats& stats) {
  std::string path;
  for (const fleet::FailoverRecord& record : stats.failovers) {
    path += "dev=" + std::to_string(record.device);
    path += " upstream=" + std::to_string(record.upstream_induced ? 1 : 0);
    path += " attempts=[";
    for (std::size_t i = 0; i < record.attempts.size(); ++i) {
      if (i > 0) path += ",";
      path += std::to_string(record.attempts[i]);
    }
    path += "] on=" + std::to_string(record.recovered_on);
    path += " verified=" + std::to_string(record.verified ? 1 : 0);
    path += ";";
  }
  return path;
}

struct KillOutcome {
  bool recovered = false;       // status OK + final verification passed
  bool bytes_match = false;     // solution == clean-solve bytes
  bool replay_match = false;    // second run: same path + same checksum
  std::string path;             // serialized failover ladder
  std::uint64_t device_rungs = 0;
  std::uint64_t host_rungs = 0;
  std::uint64_t rows_reexecuted = 0;
};

struct SweepCase {
  int devices = 0;
  fleet::PartitionStrategy strategy = fleet::PartitionStrategy::kContiguousNnz;
  kernels::DeviceAlgorithm algorithm =
      kernels::DeviceAlgorithm::kCapelliniWritingFirst;
  bool zero_fault_identical = false;
  std::vector<KillOutcome> kills;  // one per victim device
};

fleet::FleetConfig SweepFleetConfig(const SweepCase& sweep, bool recovery) {
  fleet::FleetConfig config;
  config.num_devices = sweep.devices;
  config.device = sim::TinyTestDevice();
  config.device.no_progress_cycles = 30'000;  // fast watchdog
  config.strategy = sweep.strategy;
  config.algorithm = sweep.algorithm;
  config.host_threads = 1;
  config.recovery.enabled = recovery;
  return config;
}

/// One recovery-enabled solve with device `victim` killed (drop-every-publish
/// plan on its injector only — the model is a sick DEVICE, so the plan rides
/// on the victim's hardware seam, not on the rows).
Expected<fleet::FleetResult> RunKilled(const SweepCase& sweep,
                                       const Solver& solver,
                                       std::span<const Val> b, int victim,
                                       std::uint64_t seed) {
  fleet::DeviceFleet devices(SweepFleetConfig(sweep, /*recovery=*/true));
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.drop_publish_rate = 1.0;
  sim::FaultInjector injector;
  injector.Reseed(plan);
  devices.set_fault_injector(victim, &injector);
  return fleet::FleetSolver(&devices).Solve(solver, b);
}

Expected<SweepCase> RunSweepCase(int devices,
                                 fleet::PartitionStrategy strategy,
                                 kernels::DeviceAlgorithm algorithm, Idx rows,
                                 std::uint64_t base_seed) {
  SweepCase sweep;
  sweep.devices = devices;
  sweep.strategy = strategy;
  sweep.algorithm = algorithm;

  // A banded chain: every partition depends on its predecessor, so a killed
  // device drags every downstream partition into the recovery path too.
  const Csr lower = MakeBanded({.rows = rows, .bandwidth = 4, .fill = 0.8});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 13);
  const Solver solver(lower, SolverOptions{.device = sim::TinyTestDevice()});

  auto solo = solver.Solve(HostAlgorithmFor(algorithm), problem.b);
  if (!solo.ok()) return solo.status();
  const std::uint64_t solo_checksum = ChecksumX(solo->x);

  // Zero-fault gate: plain solve, then the recovery-enabled solve, must both
  // reproduce the single-device bytes (recovery never perturbs clean runs).
  fleet::DeviceFleet plain(SweepFleetConfig(sweep, /*recovery=*/false));
  auto clean = fleet::FleetSolver(&plain).Solve(solver, problem.b);
  if (!clean.ok()) return clean.status();
  if (!clean->status.ok()) return clean->status;
  const std::uint64_t clean_checksum = ChecksumX(clean->x);

  fleet::DeviceFleet armed(SweepFleetConfig(sweep, /*recovery=*/true));
  auto clean_armed = fleet::FleetSolver(&armed).Solve(solver, problem.b);
  if (!clean_armed.ok()) return clean_armed.status();
  if (!clean_armed->status.ok()) return clean_armed->status;
  sweep.zero_fault_identical = clean_checksum == solo_checksum &&
                               ChecksumX(clean_armed->x) == clean_checksum &&
                               clean_armed->stats.failovers.empty();

  for (int victim = 0; victim < devices; ++victim) {
    if (clean->partition.RowBegin(victim) == clean->partition.RowEnd(victim)) {
      continue;  // empty block: nothing to kill
    }
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(victim);
    KillOutcome kill;
    auto first = RunKilled(sweep, solver, problem.b, victim, seed);
    if (!first.ok()) return first.status();
    kill.recovered = first->status.ok() && first->verification.passed &&
                     !first->stats.failovers.empty();
    kill.bytes_match = ChecksumX(first->x) == clean_checksum;
    kill.path = RecoveryPath(first->stats);
    kill.device_rungs = first->stats.device_rung_recoveries;
    kill.host_rungs = first->stats.host_rung_recoveries;
    kill.rows_reexecuted = first->stats.rows_reexecuted;

    auto replay = RunKilled(sweep, solver, problem.b, victim, seed);
    if (!replay.ok()) return replay.status();
    kill.replay_match = RecoveryPath(replay->stats) == kill.path &&
                        ChecksumX(replay->x) == ChecksumX(first->x);
    sweep.kills.push_back(std::move(kill));
  }
  return sweep;
}

// --- Part 2: degraded sharded serving --------------------------------------

struct RequestRecord {
  StatusCode code = StatusCode::kOk;
  std::uint64_t checksum = 0;  // 0 for failed requests
};

struct DegradedRun {
  std::vector<RequestRecord> journal;
  fleet::ShardHealthStats health;
  std::uint64_t ok = 0;
  std::uint64_t failures = 0;
  std::uint64_t rejections = 0;
  std::uint64_t misses = 0;
  std::uint64_t owner_ok = 0;    // OK completions on the poisoned device
  std::uint64_t submitted = 0;
  bool reference_bytes = true;   // every OK result matched the clean solver
};

SolverOptions DegradedSolverOptions() {
  SolverOptions options;
  options.device = sim::TinyTestDevice();
  options.device.no_progress_cycles = 30'000;
  return options;
}

/// One serialized trace (submit -> get, one request at a time, so every
/// health transition lands at a deterministic request index) over K devices
/// with device 0's matrix poisoned by a drop-every-publish injector.
Expected<DegradedRun> RunDegraded(int devices, int rounds) {
  fleet::ShardOptions options;
  options.num_devices = devices;
  options.service = serve::SolveService::DeterministicOptions();
  options.service.max_queue = 4096;
  options.health.threshold = 2;     // two consecutive failures quarantine
  options.health.probe_cooldown = 3;
  fleet::ShardedSolveService sharded(options);

  sim::FaultPlan poison;
  poison.seed = 99;
  poison.drop_publish_rate = 1.0;
  sim::FaultInjector injector;
  injector.Reseed(poison);

  // One matrix per device (least-loaded placement round-robins the first K
  // registrations). Matrix 0 carries the poisoned device seam.
  std::vector<Csr> matrices;
  std::vector<fleet::ShardedHandle> handles;
  std::vector<std::unique_ptr<Solver>> reference;  // clean solvers, no seam
  for (int i = 0; i < devices; ++i) {
    matrices.push_back(MakeBanded(
        {.rows = 120 + 16 * static_cast<Idx>(i), .bandwidth = 3, .fill = 0.8}));
    SolverOptions solver_options = DegradedSolverOptions();
    if (i == 0) solver_options.kernel_options.fault_injector = &injector;
    auto handle = sharded.Register(matrices.back(),
                                   "m" + std::to_string(i), solver_options);
    if (!handle.ok()) return handle.status();
    if (handle->device != i) {
      return InvalidArgument("expected round-robin placement: matrix " +
                      std::to_string(i) + " landed on device " +
                      std::to_string(handle->device));
    }
    handles.push_back(*handle);
    reference.push_back(
        std::make_unique<Solver>(matrices.back(), DegradedSolverOptions()));
  }

  DegradedRun run;
  serve::RequestOptions request;
  request.algorithm = Algorithm::kCapellini;  // device path; deadlocks when
                                              // the poison drops its flags
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < devices; ++i) {
      const std::uint64_t seed =
          static_cast<std::uint64_t>(round * devices + i);
      const ReferenceProblem problem =
          MakeReferenceProblem(matrices[static_cast<std::size_t>(i)], seed);
      auto submitted =
          sharded.Submit(handles[static_cast<std::size_t>(i)], problem.b,
                         request);
      if (!submitted.ok()) return submitted.status();
      ++run.submitted;
      const serve::ServeResult result = submitted->get();
      RequestRecord record;
      record.code = result.status.code();
      if (result.status.ok()) {
        record.checksum = ChecksumX(result.solve.x);
        auto expect = reference[static_cast<std::size_t>(i)]->Solve(
            Algorithm::kCapellini, problem.b);
        if (!expect.ok()) return expect.status();
        if (record.checksum != ChecksumX(expect->x)) {
          run.reference_bytes = false;
        }
      }
      run.journal.push_back(record);
    }
  }

  for (int d = 0; d < devices; ++d) {
    const serve::ServiceStats::Totals totals = sharded.stats(d).totals();
    run.ok += totals.requests;
    run.failures += totals.failures;
    run.rejections += totals.rejections;
    run.misses += totals.deadline_misses;
    if (d == 0) run.owner_ok = totals.requests;
  }
  run.health = sharded.health_stats();
  return run;
}

bool SameJournal(const DegradedRun& a, const DegradedRun& b) {
  if (a.journal.size() != b.journal.size()) return false;
  for (std::size_t i = 0; i < a.journal.size(); ++i) {
    if (a.journal[i].code != b.journal[i].code ||
        a.journal[i].checksum != b.journal[i].checksum) {
      return false;
    }
  }
  return a.health.health.quarantines == b.health.health.quarantines &&
         a.health.health.probes == b.health.health.probes &&
         a.health.health.probe_failures == b.health.health.probe_failures &&
         a.health.health.probe_aborts == b.health.health.probe_aborts &&
         a.health.health.reinstatements == b.health.health.reinstatements &&
         a.health.health.deflections == b.health.health.deflections &&
         a.health.failover_submits == b.health.failover_submits &&
         a.health.failover_registrations == b.health.failover_registrations;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) {
  using namespace capellini;
  using namespace capellini::bench;

  bool quick = false;
  CliFlags extra;
  extra.AddBool("quick", &quick, "CI smoke: smaller matrices and traces");
  const BenchOptions options = ParseBenchFlags(argc, argv, &extra);

  const Idx rows = quick ? 192 : 448;
  const int rounds = quick ? 10 : 20;

  std::printf("fleet fault recovery sweep: %lld-row banded chain, "
              "drop-every-publish device kills\n",
              static_cast<long long>(rows));
  std::vector<SweepCase> sweeps;
  bool recovery_gate = true;
  for (const int devices : {2, 4}) {
    for (const fleet::PartitionStrategy strategy :
         {fleet::PartitionStrategy::kContiguousNnz,
          fleet::PartitionStrategy::kLevelAware}) {
      for (const kernels::DeviceAlgorithm algorithm :
           {kernels::DeviceAlgorithm::kCapelliniWritingFirst,
            kernels::DeviceAlgorithm::kCapelliniTwoPhase}) {
        auto sweep = RunSweepCase(devices, strategy, algorithm, rows,
                                  static_cast<std::uint64_t>(options.seed));
        if (!sweep.ok()) {
          std::fprintf(stderr, "sweep (K=%d %s %s) failed: %s\n", devices,
                       fleet::PartitionStrategyName(strategy),
                       kernels::DeviceAlgorithmName(algorithm),
                       sweep.status().ToString().c_str());
          return 1;
        }
        std::uint64_t device_rungs = 0;
        std::uint64_t host_rungs = 0;
        bool all_ok = sweep->zero_fault_identical;
        for (const KillOutcome& kill : sweep->kills) {
          all_ok = all_ok && kill.recovered && kill.bytes_match &&
                   kill.replay_match;
          device_rungs += kill.device_rungs;
          host_rungs += kill.host_rungs;
        }
        std::printf("  K=%d %-13s %-21s: %zu kills, rungs dev=%llu host=%llu, "
                    "zero-fault %s, recovered %s\n",
                    devices, fleet::PartitionStrategyName(strategy),
                    kernels::DeviceAlgorithmName(algorithm),
                    sweep->kills.size(),
                    static_cast<unsigned long long>(device_rungs),
                    static_cast<unsigned long long>(host_rungs),
                    sweep->zero_fault_identical ? "identical" : "DIVERGED",
                    all_ok ? "all+replayable" : "FAILED");
        recovery_gate = recovery_gate && all_ok;
        sweeps.push_back(std::move(*sweep));
      }
    }
  }
  if (!recovery_gate) {
    std::fprintf(stderr, "FATAL: fleet recovery gate failed (see above)\n");
    return 1;
  }
  std::printf("recovery gate: 100%% recovered, byte-identical, replayable "
              "-> PASS\n");

  std::printf("\ndegraded sharded serving: poisoned device 0, "
              "threshold=2 cooldown=3, %d rounds\n", rounds);
  struct DegradedPoint {
    int devices = 0;
    DegradedRun run;
    bool deterministic = false;
    bool accounted = false;
    bool survivors_served = false;
  };
  std::vector<DegradedPoint> degraded;
  bool degraded_gate = true;
  for (const int devices : {2, 4}) {
    auto first = RunDegraded(devices, rounds);
    if (!first.ok()) {
      std::fprintf(stderr, "degraded serve (K=%d) failed: %s\n", devices,
                   first.status().ToString().c_str());
      return 1;
    }
    auto replay = RunDegraded(devices, rounds);
    if (!replay.ok()) {
      std::fprintf(stderr, "degraded replay (K=%d) failed: %s\n", devices,
                   replay.status().ToString().c_str());
      return 1;
    }
    DegradedPoint point;
    point.devices = devices;
    point.deterministic = SameJournal(*first, *replay);
    // PR-4 exactly-once: every submit lands in exactly one terminal bucket;
    // failovers are routed, not double-counted.
    point.accounted = first->ok + first->failures + first->misses +
                          first->rejections == first->submitted &&
                      first->rejections == 0 && first->misses == 0;
    const fleet::HealthSnapshot& health = first->health.health;
    point.survivors_served =
        first->owner_ok == 0 && first->reference_bytes &&
        first->health.failover_submits > 0 &&
        first->health.failover_submits == health.deflections &&
        health.quarantines >= 1 && health.probes >= 1 &&
        health.probe_failures == health.probes &&
        health.reinstatements == 0;
    std::printf("  K=%d: %llu submits, %llu ok, %llu failed, "
                "failovers=%llu, quarantines=%llu probes=%llu "
                "(deterministic %s, accounted %s, survivors %s)\n",
                devices,
                static_cast<unsigned long long>(first->submitted),
                static_cast<unsigned long long>(first->ok),
                static_cast<unsigned long long>(first->failures),
                static_cast<unsigned long long>(first->health.failover_submits),
                static_cast<unsigned long long>(health.quarantines),
                static_cast<unsigned long long>(health.probes),
                point.deterministic ? "yes" : "NO",
                point.accounted ? "yes" : "NO",
                point.survivors_served ? "yes" : "NO");
    degraded_gate = degraded_gate && point.deterministic && point.accounted &&
                    point.survivors_served;
    point.run = std::move(*first);
    degraded.push_back(std::move(point));
  }
  if (!degraded_gate) {
    std::fprintf(stderr, "FATAL: degraded serving gate failed (see above)\n");
    return 1;
  }
  std::printf("degraded gate: K-1 serving deterministic with exactly-once "
              "accounting -> PASS\n");

  if (!options.json.empty()) {
    std::FILE* file = std::fopen(options.json.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json.c_str());
      return 1;
    }
    std::fprintf(file, "{\n  \"bench\": \"fleet_faults\",\n");
    std::fprintf(file, "  \"recovery\": [\n");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      const SweepCase& sweep = sweeps[i];
      std::uint64_t device_rungs = 0;
      std::uint64_t host_rungs = 0;
      std::uint64_t reexecuted = 0;
      for (const KillOutcome& kill : sweep.kills) {
        device_rungs += kill.device_rungs;
        host_rungs += kill.host_rungs;
        reexecuted += kill.rows_reexecuted;
      }
      std::fprintf(file,
                   "    {\"devices\": %d, \"strategy\": \"%s\", "
                   "\"algorithm\": \"%s\", \"kills\": %zu, "
                   "\"device_rung_recoveries\": %llu, "
                   "\"host_rung_recoveries\": %llu, "
                   "\"rows_reexecuted\": %llu, "
                   "\"zero_fault_identical\": %s}%s\n",
                   sweep.devices,
                   fleet::PartitionStrategyName(sweep.strategy),
                   kernels::DeviceAlgorithmName(sweep.algorithm),
                   sweep.kills.size(),
                   static_cast<unsigned long long>(device_rungs),
                   static_cast<unsigned long long>(host_rungs),
                   static_cast<unsigned long long>(reexecuted),
                   sweep.zero_fault_identical ? "true" : "false",
                   i + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(file, "  ],\n  \"degraded\": [\n");
    for (std::size_t i = 0; i < degraded.size(); ++i) {
      const DegradedPoint& point = degraded[i];
      const fleet::HealthSnapshot& health = point.run.health.health;
      std::fprintf(file,
                   "    {\"devices\": %d, \"submitted\": %llu, \"ok\": %llu, "
                   "\"failures\": %llu, \"failover_submits\": %llu, "
                   "\"failover_registrations\": %llu, \"quarantines\": %llu, "
                   "\"probes\": %llu, \"probe_failures\": %llu, "
                   "\"probe_aborts\": %llu, \"deterministic\": %s}%s\n",
                   point.devices,
                   static_cast<unsigned long long>(point.run.submitted),
                   static_cast<unsigned long long>(point.run.ok),
                   static_cast<unsigned long long>(point.run.failures),
                   static_cast<unsigned long long>(
                       point.run.health.failover_submits),
                   static_cast<unsigned long long>(
                       point.run.health.failover_registrations),
                   static_cast<unsigned long long>(health.quarantines),
                   static_cast<unsigned long long>(health.probes),
                   static_cast<unsigned long long>(health.probe_failures),
                   static_cast<unsigned long long>(health.probe_aborts),
                   point.deterministic ? "true" : "false",
                   i + 1 < degraded.size() ? "," : "");
    }
    std::fprintf(file, "  ],\n  \"gates\": {\"recovery\": true, "
                 "\"degraded\": true}\n}\n");
    std::fclose(file);
    std::printf("wrote %s\n", options.json.c_str());
  }
  return 0;
}
