// Reproduces Figure 3: GFLOPS of the warp-level synchronization-free SpTRSV
// as a function of parallel granularity — the motivating observation. The
// curve rises with granularity (more parallelism to exploit), peaks, and
// collapses past the ~0.7 crossover where warp-per-row execution wastes
// lanes and warp-residency rounds dominate.
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  const std::vector<NamedMatrix> corpus =
      GranularityCorpus(ToCorpusOptions(options));
  const kernels::DeviceAlgorithm algorithm =
      kernels::DeviceAlgorithm::kSyncFreeCsc;

  auto bins = MakeBins(0.0, 1.3, 0.1);
  for (const NamedMatrix& named : corpus) {
    const RunRecord record = RunOne(named, algorithm, device, experiment);
    if (!record.status.ok() || !record.correct) continue;
    AddToBin(bins, record.stats.parallel_granularity, record.result.gflops);
  }

  std::printf(
      "Figure 3: performance trend of warp-level synchronization-free SpTRSV\n"
      "(platform %s, %zu matrices). Expect a rise, a peak, then decline past\n"
      "granularity ~0.7.\n\n",
      device.name.c_str(), corpus.size());

  double max_mean = 0.0;
  for (const auto& bin : bins) max_mean = std::max(max_mean, bin.Mean());

  TextTable table({"granularity", "matrices", "SyncFree GFLOPS", ""});
  for (const auto& bin : bins) {
    if (bin.count == 0) continue;
    table.AddRow({TextTable::Num(bin.lo, 1) + "-" + TextTable::Num(bin.hi, 1),
                  std::to_string(bin.count), TextTable::Num(bin.Mean(), 2),
                  Bar(bin.Mean(), max_mean)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
