// Multi-device fleet: determinism gates + scaling table (src/fleet).
//
//   ./bench/bench_fleet                  # full run
//   ./bench/bench_fleet --quick --json=BENCH_fleet.json   # CI smoke
//
// Three gates, all fatal (nonzero exit):
//   * identity: the K=1 fleet solve must be byte-identical (FNV-1a) to the
//     single-device Solver::Solve;
//   * thread invariance: for K in {1,2,4} the fleet solution must be
//     byte-identical for every host thread count;
//   * scaling: sharded serving over the bench_serve zipf workload must show
//     > 1.0x aggregate simulated throughput at K=4 vs K=1.
//
// The JSON (--json) reports per-device cycles, cross-partition comm volume
// and the serve speedup table over K.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/solver.h"
#include "fleet/fleet.h"
#include "fleet/shard.h"
#include "gen/random_lower.h"
#include "matrix/triangular.h"
#include "serve/replay.h"
#include "support/timer.h"

namespace capellini::bench {
namespace {

std::uint64_t ChecksumX(const std::vector<Val>& x) {
  return serve::HashBytes(serve::kFnvSeed, x.data(), x.size() * sizeof(Val));
}

struct FleetPoint {
  int devices = 0;
  fleet::FleetStats stats;
  std::uint64_t checksum = 0;
  bool thread_invariant = true;
};

/// One fleet configuration across host thread counts: returns the stats of
/// the threads=1 run and whether every other thread count reproduced its
/// bytes AND its simulated makespan.
Expected<FleetPoint> RunFleet(const Solver& solver, std::span<const Val> b,
                              int devices) {
  FleetPoint point;
  point.devices = devices;
  for (const int host_threads : {1, 2, 8}) {
    fleet::FleetConfig config;
    config.num_devices = devices;
    config.host_threads = host_threads;
    fleet::DeviceFleet device_fleet(config);
    auto result = fleet::FleetSolver(&device_fleet).Solve(solver, b);
    if (!result.ok()) return result.status();
    if (!result->status.ok()) return result->status;
    const std::uint64_t checksum = ChecksumX(result->x);
    if (host_threads == 1) {
      point.stats = std::move(result->stats);
      point.checksum = checksum;
    } else if (checksum != point.checksum ||
               result->stats.makespan_cycles == 0 ||
               result->stats.makespan_cycles != point.stats.makespan_cycles) {
      point.thread_invariant = false;
    }
  }
  return point;
}

struct ServePoint {
  int devices = 0;
  std::size_t completed = 0;
  double max_device_busy_ms = 0.0;  // simulated critical-device solve time
  double throughput_rps = 0.0;      // requests / max busy (simulated)
  double speedup = 0.0;             // vs devices=1
};

/// The bench_serve zipf workload through a ShardedSolveService: K registries
/// + K single-worker services. The scaling metric is SIMULATED aggregate
/// throughput — requests over the busiest device's summed solve time — so
/// the gate measures placement quality, not host scheduling noise.
Expected<ServePoint> RunSharded(const std::vector<NamedMatrix>& corpus,
                                const serve::RequestTrace& trace,
                                int devices) {
  fleet::ShardOptions options;
  options.num_devices = devices;
  options.service = serve::SolveService::DeterministicOptions();
  options.service.max_queue = trace.requests.size() + 1;
  fleet::ShardedSolveService sharded(options);

  std::vector<fleet::ShardedHandle> handles;
  for (const NamedMatrix& named : corpus) {
    auto handle = sharded.Register(named.matrix, named.name);
    if (!handle.ok()) return handle.status();
    handles.push_back(*handle);
  }

  struct Pending {
    int device = 0;
    std::future<serve::ServeResult> future;
  };
  std::vector<Pending> pending;
  pending.reserve(trace.requests.size());
  for (const serve::TraceRequest& request : trace.requests) {
    const fleet::ShardedHandle& handle =
        handles[static_cast<std::size_t>(request.matrix) % handles.size()];
    const Csr& matrix =
        (*sharded.registry(handle.device).Peek(handle.handle))->solver.matrix();
    auto submitted = sharded.Submit(
        handle, MakeReferenceProblem(matrix, request.seed).b);
    if (!submitted.ok()) return submitted.status();
    pending.push_back(Pending{handle.device, std::move(*submitted)});
  }

  ServePoint point;
  point.devices = devices;
  std::vector<double> busy_ms(static_cast<std::size_t>(devices), 0.0);
  for (Pending& item : pending) {
    const serve::ServeResult result = item.future.get();
    if (!result.status.ok()) return result.status;
    ++point.completed;
    busy_ms[static_cast<std::size_t>(item.device)] += result.solve.solve_ms;
  }
  sharded.Shutdown();
  point.max_device_busy_ms =
      *std::max_element(busy_ms.begin(), busy_ms.end());
  point.throughput_rps = point.max_device_busy_ms > 0.0
                             ? 1000.0 * static_cast<double>(point.completed) /
                                   point.max_device_busy_ms
                             : 0.0;
  return point;
}

int Run(int argc, char** argv) {
  bool quick = false;
  std::int64_t requests = 160;
  double zipf = 1.1;
  CliFlags extra;
  extra.AddBool("quick", &quick, "CI smoke: small matrix and trace");
  extra.AddInt("requests", &requests, "requests in the zipf serve trace");
  extra.AddDouble("zipf", &zipf, "zipf exponent for matrix popularity");
  BenchOptions options = ParseBenchFlags(argc, argv, &extra);

  // --- the solved system for the determinism gates -------------------------
  const Idx rows = quick ? 3000 : 12000;
  const Csr lower = MakeRandomLower({.rows = rows,
                                     .avg_strict_nnz_per_row = 3.0,
                                     .window = 256,
                                     .empty_row_fraction = 0.05,
                                     .seed = static_cast<std::uint64_t>(
                                         options.seed)});
  const ReferenceProblem problem = MakeReferenceProblem(lower, 11);
  const Solver solver(lower);  // paper-default simulated Pascal
  auto solo = solver.Solve(Algorithm::kCapellini, problem.b);
  if (!solo.ok()) {
    std::fprintf(stderr, "single-device solve failed: %s\n",
                 solo.status().ToString().c_str());
    return 1;
  }
  const std::uint64_t solo_checksum = ChecksumX(solo->x);
  std::printf("bench_fleet: %lld rows, %lld nnz; single-device checksum "
              "%016llx\n",
              static_cast<long long>(lower.rows()),
              static_cast<long long>(lower.nnz()),
              static_cast<unsigned long long>(solo_checksum));

  // --- identity + thread-invariance gates ----------------------------------
  std::vector<FleetPoint> points;
  for (const int devices : {1, 2, 4}) {
    auto point = RunFleet(solver, problem.b, devices);
    if (!point.ok()) {
      std::fprintf(stderr, "fleet solve (K=%d) failed: %s\n", devices,
                   point.status().ToString().c_str());
      return 1;
    }
    points.push_back(std::move(*point));
  }
  const bool identity = points[0].checksum == solo_checksum;
  std::printf("K=1 identity gate: fleet %016llx vs solver %016llx -> %s\n",
              static_cast<unsigned long long>(points[0].checksum),
              static_cast<unsigned long long>(solo_checksum),
              identity ? "MATCH" : "MISMATCH");
  bool invariant = true;
  for (const FleetPoint& point : points) {
    std::printf("K=%d: makespan %llu cycles (%.4f ms), %lld cross edges, "
                "%llu msgs, %llu bytes, thread-invariant %s\n",
                point.devices,
                static_cast<unsigned long long>(point.stats.makespan_cycles),
                point.stats.exec_ms,
                static_cast<long long>(point.stats.cross_edges),
                static_cast<unsigned long long>(point.stats.total_messages),
                static_cast<unsigned long long>(point.stats.total_comm_bytes),
                point.thread_invariant ? "yes" : "NO");
    for (const fleet::DeviceStats& ds : point.stats.devices) {
      std::printf("    dev rows [%lld,%lld): %llu cycles, %llu in-msgs, "
                  "%llu comm-delay cycles\n",
                  static_cast<long long>(ds.row_begin),
                  static_cast<long long>(ds.row_end),
                  static_cast<unsigned long long>(ds.cycles),
                  static_cast<unsigned long long>(ds.in_messages),
                  static_cast<unsigned long long>(ds.comm_delay_cycles));
    }
    invariant = invariant && point.thread_invariant;
  }
  if (!identity || !invariant) {
    std::fprintf(stderr, "FATAL: fleet determinism gate failed (identity %s, "
                 "thread invariance %s)\n",
                 identity ? "ok" : "BROKEN", invariant ? "ok" : "BROKEN");
    return 1;
  }

  // --- sharded serving over the zipf workload ------------------------------
  CorpusOptions corpus_options = ToCorpusOptions(options);
  if (quick) {
    requests = std::min<std::int64_t>(requests, 96);
    if (corpus_options.target_rows == 0) corpus_options.target_rows = 1200;
  }
  const std::vector<NamedMatrix> corpus = HighGranularityCorpus(corpus_options);
  const serve::RequestTrace trace = serve::GenerateZipfTrace(
      static_cast<int>(requests), static_cast<int>(corpus.size()), zipf,
      static_cast<std::uint64_t>(options.seed) ^ 0x51ab);
  std::printf("\nsharded serving: %zu matrices, %zu requests (zipf %.2f)\n",
              corpus.size(), trace.requests.size(), zipf);
  std::vector<ServePoint> serve_points;
  for (const int devices : {1, 2, 4}) {
    auto point = RunSharded(corpus, trace, devices);
    if (!point.ok()) {
      std::fprintf(stderr, "sharded serve (K=%d) failed: %s\n", devices,
                   point.status().ToString().c_str());
      return 1;
    }
    point->speedup = serve_points.empty()
                         ? 1.0
                         : point->throughput_rps /
                               serve_points.front().throughput_rps;
    std::printf("  K=%d: %zu completed, busiest device %.3f ms simulated, "
                "%.1f req/s aggregate, speedup %.2fx\n",
                point->devices, point->completed, point->max_device_busy_ms,
                point->throughput_rps, point->speedup);
    serve_points.push_back(std::move(*point));
  }
  const double speedup4 = serve_points.back().speedup;
  if (speedup4 <= 1.0) {
    std::fprintf(stderr, "FATAL: K=4 sharded throughput speedup %.2fx is "
                 "not > 1.0x\n",
                 speedup4);
    return 1;
  }
  std::printf("scaling gate: K=4 speedup %.2fx > 1.0x -> PASS\n", speedup4);

  // --- JSON ---------------------------------------------------------------
  if (!options.json.empty()) {
    std::FILE* file = std::fopen(options.json.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json.c_str());
      return 1;
    }
    std::fprintf(file, "{\n  \"bench\": \"fleet\",\n");
    std::fprintf(file,
                 "  \"identity\": {\"solver_checksum\": \"%016llx\", "
                 "\"fleet_k1_checksum\": \"%016llx\", \"match\": true},\n",
                 static_cast<unsigned long long>(solo_checksum),
                 static_cast<unsigned long long>(points[0].checksum));
    std::fprintf(file, "  \"fleet\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const FleetPoint& point = points[i];
      std::fprintf(file,
                   "    {\"devices\": %d, \"makespan_cycles\": %llu, "
                   "\"exec_ms\": %.6f, \"cross_edges\": %lld, "
                   "\"messages\": %llu, \"comm_bytes\": %llu, "
                   "\"critical_device\": %d, \"thread_invariant\": %s, "
                   "\"per_device\": [",
                   point.devices,
                   static_cast<unsigned long long>(
                       point.stats.makespan_cycles),
                   point.stats.exec_ms,
                   static_cast<long long>(point.stats.cross_edges),
                   static_cast<unsigned long long>(
                       point.stats.total_messages),
                   static_cast<unsigned long long>(
                       point.stats.total_comm_bytes),
                   point.stats.critical_device,
                   point.thread_invariant ? "true" : "false");
      for (std::size_t d = 0; d < point.stats.devices.size(); ++d) {
        const fleet::DeviceStats& ds = point.stats.devices[d];
        // host_ns_per_sim_cycle: interpreter wall-clock speed for THIS
        // device's launch (host_ms is measured, never deterministic; it is
        // excluded from the identity/thread-invariance checksums).
        std::fprintf(file,
                     "%s{\"device\": %zu, \"row_begin\": %lld, "
                     "\"row_end\": %lld, \"cycles\": %llu, "
                     "\"in_messages\": %llu, \"out_messages\": %llu, "
                     "\"comm_bytes_in\": %llu, \"comm_delay_cycles\": %llu, "
                     "\"host_ms\": %.3f, \"host_ns_per_sim_cycle\": %.4f}",
                     d == 0 ? "" : ", ", d,
                     static_cast<long long>(ds.row_begin),
                     static_cast<long long>(ds.row_end),
                     static_cast<unsigned long long>(ds.cycles),
                     static_cast<unsigned long long>(ds.in_messages),
                     static_cast<unsigned long long>(ds.out_messages),
                     static_cast<unsigned long long>(ds.comm_bytes_in),
                     static_cast<unsigned long long>(ds.comm_delay_cycles),
                     ds.host_ms,
                     ds.cycles > 0
                         ? ds.host_ms * 1e6 / static_cast<double>(ds.cycles)
                         : 0.0);
      }
      std::fprintf(file, "]}%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(file, "  ],\n  \"serve\": [\n");
    for (std::size_t i = 0; i < serve_points.size(); ++i) {
      const ServePoint& point = serve_points[i];
      std::fprintf(file,
                   "    {\"devices\": %d, \"completed\": %zu, "
                   "\"max_device_busy_ms\": %.6f, \"throughput_rps\": %.3f, "
                   "\"speedup\": %.4f}%s\n",
                   point.devices, point.completed, point.max_device_busy_ms,
                   point.throughput_rps, point.speedup,
                   i + 1 < serve_points.size() ? "," : "");
    }
    std::fprintf(file, "  ]\n}\n");
    std::fclose(file);
    std::printf("wrote %s\n", options.json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
