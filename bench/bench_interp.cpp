// Interpreter-speed microbench: host_ns_per_sim_cycle for the threaded-
// dispatch core, gated three ways.
//
//  1. Identity gate (always on): the threaded core and the legacy scalar
//     core (the test-only oracle behind Machine::set_scalar_core_for_test)
//     must agree bit-for-bit on
//     simulated cycles, instruction counts, and the FNV-1a checksum of x on
//     every workload. Any mismatch exits nonzero — this is the same contract
//     tests/interp_equivalence_test.cpp enforces, repeated here so the perf
//     job cannot report a speedup from a wrong simulation.
//  2. Speedup gate (--min_speedup, default 0 = off): aggregate
//     scalar/threaded host-time ratio floor. Informational by default: the
//     batching win in the threaded core funded inlining and scheduling fixes
//     in machinery both cores share, so the two now run neck and neck and
//     the ratio mostly measures noise. The PR's 1.5x acceptance floor is
//     vs the pre-change bench_runner baseline, enforced by gate 3.
//  3. Regression gate (--baseline=PATH): the measured threaded
//     host_ns_per_sim_cycle may exceed the committed baseline's by at most
//     --tolerance (default 0.20). The baseline
//     (bench/baselines/BENCH_interp_baseline.json) is refreshed whenever the
//     CI hardware class changes; the gate catches interpreter-speed
//     regressions that land silently while tests stay green.
//
// Writes --json=PATH in the same hand-rolled style as the other benches.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/solver.h"
#include "gen/banded.h"
#include "gen/random_lower.h"
#include "matrix/triangular.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "support/cli.h"
#include "support/status.h"
#include "support/table.h"

namespace capellini::bench {
namespace {

std::uint64_t FnvChecksum(const std::vector<Val>& x) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Val v : x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct Workload {
  std::string name;
  Csr lower;
  Algorithm algorithm = Algorithm::kCapellini;
};

struct Measurement {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t checksum = 0;
  double best_ms = 0.0;  // best-of-reps wall for the Solve call
};

/// Solves `reps` times, keeps the best wall time (least scheduler noise) and
/// the stats/checksum of the last run (identical across reps by the
/// simulator's determinism contract).
Measurement Measure(const Workload& workload, const std::vector<Val>& b,
                    bool scalar, int reps) {
  SolverOptions options;
  options.device = sim::PascalGtx1080();
  Solver solver(workload.lower, options);
  solver.analysis();  // pay preprocessing once, outside the timed region
  sim::Machine::set_scalar_core_for_test(scalar);
  Measurement m;
  for (int rep = 0; rep < reps; ++rep) {
    const auto begin = std::chrono::steady_clock::now();
    auto result = solver.Solve(workload.algorithm, b);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL: %s (%s core): %s\n", workload.name.c_str(),
                   scalar ? "scalar" : "threaded",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (rep == 0 || ms < m.best_ms) m.best_ms = ms;
    m.cycles = result->device_stats.cycles;
    m.instructions = result->device_stats.instructions;
    m.checksum = FnvChecksum(result->x);
  }
  sim::Machine::set_scalar_core_for_test(false);
  return m;
}

/// Minimal scanner for the committed baseline: finds
/// "host_ns_per_sim_cycle": <number> (same no-dependency idiom as
/// serve/replay and sim/fault JSON readers).
double ReadBaselineNsPerCycle(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  const std::string key = "\"host_ns_per_sim_cycle\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "FAIL: no host_ns_per_sim_cycle in %s\n",
                 path.c_str());
    std::exit(1);
  }
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

int Main(int argc, char** argv) {
  std::int64_t rows = 12000;
  std::int64_t reps = 3;
  double min_speedup = 0.0;
  double tolerance = 0.20;
  std::string json;
  std::string baseline;
  CliFlags flags;
  flags.AddInt("rows", &rows, "rows per generated workload matrix");
  flags.AddInt("reps", &reps, "timed repetitions per (workload, core)");
  flags.AddDouble("min_speedup", &min_speedup,
                  "minimum aggregate scalar/threaded speedup (0 = off)");
  flags.AddDouble("tolerance", &tolerance,
                  "allowed fractional regression vs --baseline");
  flags.AddString("json", &json, "write machine-readable results here");
  flags.AddString("baseline", &baseline,
                  "committed baseline JSON to gate against (empty = off)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }

  // Three interpreter-shaped workloads: a chained band (spin-heavy, long
  // straight-line bodies), a random sparse factor (divergent), and the
  // Two-Phase kernel (different instruction mix) on the band.
  std::vector<Workload> workloads;
  workloads.push_back({"banded_capellini",
                       MakeBanded({.rows = static_cast<Idx>(rows),
                                   .bandwidth = 32, .fill = 0.8,
                                   .force_chain = true, .seed = 21}),
                       Algorithm::kCapellini});
  workloads.push_back(
      {"random_capellini",
       MakeRandomLower({.rows = static_cast<Idx>(rows),
                        .avg_strict_nnz_per_row = 4.0, .window = 0,
                        .empty_row_fraction = 0.2, .seed = 22}),
       Algorithm::kCapellini});
  workloads.push_back({"banded_twophase",
                       MakeBanded({.rows = static_cast<Idx>(rows),
                                   .bandwidth = 32, .fill = 0.8,
                                   .force_chain = true, .seed = 21}),
                       Algorithm::kCapelliniTwoPhase});

  TextTable table({"workload", "cycles", "scalar ms", "threaded ms",
                   "ns/cyc", "speedup"});
  double scalar_ms = 0.0;
  double threaded_ms = 0.0;
  std::uint64_t total_cycles = 0;
  bool identical = true;
  std::vector<std::string> json_rows;
  for (const Workload& workload : workloads) {
    const ReferenceProblem problem =
        MakeReferenceProblem(workload.lower, 23);
    const Measurement s =
        Measure(workload, problem.b, /*scalar=*/true, static_cast<int>(reps));
    const Measurement t =
        Measure(workload, problem.b, /*scalar=*/false, static_cast<int>(reps));
    if (s.cycles != t.cycles || s.instructions != t.instructions ||
        s.checksum != t.checksum) {
      identical = false;
      std::fprintf(stderr,
                   "FAIL: %s diverged: cycles %llu vs %llu, instr %llu vs "
                   "%llu, checksum %016llx vs %016llx\n",
                   workload.name.c_str(),
                   static_cast<unsigned long long>(s.cycles),
                   static_cast<unsigned long long>(t.cycles),
                   static_cast<unsigned long long>(s.instructions),
                   static_cast<unsigned long long>(t.instructions),
                   static_cast<unsigned long long>(s.checksum),
                   static_cast<unsigned long long>(t.checksum));
    }
    scalar_ms += s.best_ms;
    threaded_ms += t.best_ms;
    total_cycles += t.cycles;
    const double ns_per_cycle =
        t.cycles == 0 ? 0.0
                      : t.best_ms * 1e6 / static_cast<double>(t.cycles);
    table.AddRow({workload.name,
                  TextTable::Int(static_cast<long long>(t.cycles)),
                  TextTable::Num(s.best_ms, 1), TextTable::Num(t.best_ms, 1),
                  TextTable::Num(ns_per_cycle, 1),
                  TextTable::Num(s.best_ms / t.best_ms, 2)});
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"workload\": \"%s\", \"cycles\": %llu, "
                  "\"scalar_ms\": %.3f, \"threaded_ms\": %.3f, "
                  "\"host_ns_per_sim_cycle\": %.4f}",
                  workload.name.c_str(),
                  static_cast<unsigned long long>(t.cycles), s.best_ms,
                  t.best_ms, ns_per_cycle);
    json_rows.push_back(row);
  }

  const double ns_per_cycle =
      total_cycles == 0
          ? 0.0
          : threaded_ms * 1e6 / static_cast<double>(total_cycles);
  const double speedup = threaded_ms > 0.0 ? scalar_ms / threaded_ms : 0.0;
  std::printf("%s", table.ToString().c_str());
  std::printf("\naggregate host_ns_per_sim_cycle %.2f (scalar %.2f), "
              "speedup %.2fx\n",
              ns_per_cycle,
              total_cycles == 0
                  ? 0.0
                  : scalar_ms * 1e6 / static_cast<double>(total_cycles),
              speedup);

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"host_ns_per_sim_cycle\": %.4f,\n", ns_per_cycle);
    std::fprintf(f, "  \"scalar_ns_per_sim_cycle\": %.4f,\n",
                 total_cycles == 0
                     ? 0.0
                     : scalar_ms * 1e6 / static_cast<double>(total_cycles));
    std::fprintf(f, "  \"speedup\": %.4f,\n", speedup);
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(f, "%s%s\n", json_rows[i].c_str(),
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("JSON written to %s\n", json.c_str());
  }

  if (!identical) {
    std::fprintf(stderr, "FAIL: scalar/threaded identity gate\n");
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below floor %.2fx\n", speedup,
                 min_speedup);
    return 1;
  }
  if (!baseline.empty()) {
    const double base = ReadBaselineNsPerCycle(baseline);
    const double limit = base * (1.0 + tolerance);
    if (ns_per_cycle > limit) {
      std::fprintf(stderr,
                   "FAIL: host_ns_per_sim_cycle %.2f regressed past %.2f "
                   "(baseline %.2f + %.0f%%)\n",
                   ns_per_cycle, limit, base, tolerance * 100.0);
      return 1;
    }
    std::printf("baseline gate OK: %.2f <= %.2f (baseline %.2f + %.0f%%)\n",
                ns_per_cycle, limit, base, tolerance * 100.0);
  }
  std::printf("identity gate OK: scalar and threaded cores bit-identical\n");
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Main(argc, argv); }
