// Experiment-engine benchmark: sweeps the corpus x algorithms cross product
// through RunMany serially and with the requested worker count, reports
// wall-clock throughput, and verifies the two runs produce bit-identical
// records (the engine's determinism contract). With --json=PATH the results
// are also written as machine-readable JSON (CI uploads this artifact and
// fails the build when the checksums diverge).
//
//   bench_runner                   # quick tier, hardware-concurrency workers
//   bench_runner --threads=8 --json=BENCH_sweep.json
//   bench_runner --full --platform=Pascal
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace capellini::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

// FNV-1a over the deterministic fields of a record sequence. Wall-clock
// fields (preprocessing_ms) are excluded: everything else — status, cycles,
// counters, the solution vector itself — must match bit for bit between the
// serial and parallel engines.
std::uint64_t Fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t ChecksumRecords(const std::vector<RunRecord>& records) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const RunRecord& record : records) {
    hash = Fnv1a(hash, record.matrix.data(), record.matrix.size());
    const int algorithm = static_cast<int>(record.algorithm);
    hash = Fnv1a(hash, &algorithm, sizeof(algorithm));
    const int code = static_cast<int>(record.status.code());
    hash = Fnv1a(hash, &code, sizeof(code));
    const std::string& message = record.status.ok() ? "" : record.status.message();
    hash = Fnv1a(hash, message.data(), message.size());
    hash = Fnv1a(hash, &record.correct, sizeof(record.correct));
    hash = Fnv1a(hash, &record.max_rel_error, sizeof(record.max_rel_error));
    const sim::LaunchStats& stats = record.result.stats;
    hash = Fnv1a(hash, &stats, sizeof(stats));
    hash = Fnv1a(hash, &record.result.exec_ms, sizeof(record.result.exec_ms));
    hash = Fnv1a(hash, &record.result.gflops, sizeof(record.result.gflops));
    if (!record.result.x.empty()) {
      hash = Fnv1a(hash, record.result.x.data(),
                   record.result.x.size() * sizeof(Val));
    }
  }
  return hash;
}

std::uint64_t TotalCycles(const std::vector<RunRecord>& records) {
  std::uint64_t cycles = 0;
  for (const RunRecord& record : records) {
    if (record.status.ok()) cycles += record.result.stats.cycles;
  }
  return cycles;
}

struct PlatformSweep {
  std::string platform;
  std::size_t runs = 0;
  double serial_wall_ms = 0.0;
  double parallel_wall_ms = 0.0;
  std::uint64_t total_cycles = 0;
  // Interpreter speed: host nanoseconds of SINGLE-THREADED wall clock per
  // simulated device cycle. The serial run is used so the metric is not
  // confounded by worker count; tracked in BENCH_sweep.json from PR 7 on.
  double host_ns_per_sim_cycle = 0.0;
  std::uint64_t checksum_serial = 0;
  std::uint64_t checksum_parallel = 0;
  std::vector<std::pair<std::string, double>> algorithm_gflops;
};

void WriteJson(const std::string& path, int threads, bool full,
               const std::vector<PlatformSweep>& sweeps) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(file, "{\n  \"tier\": \"%s\",\n  \"threads\": %d,\n",
               full ? "full" : "quick", threads);
  std::fprintf(file, "  \"platforms\": [\n");
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const PlatformSweep& sweep = sweeps[i];
    const double parallel_s = sweep.parallel_wall_ms / 1000.0;
    std::fprintf(file, "    {\n");
    std::fprintf(file, "      \"platform\": \"%s\",\n", sweep.platform.c_str());
    std::fprintf(file, "      \"runs\": %zu,\n", sweep.runs);
    std::fprintf(file, "      \"serial_wall_ms\": %.3f,\n",
                 sweep.serial_wall_ms);
    std::fprintf(file, "      \"parallel_wall_ms\": %.3f,\n",
                 sweep.parallel_wall_ms);
    std::fprintf(file, "      \"speedup\": %.3f,\n",
                 sweep.parallel_wall_ms > 0.0
                     ? sweep.serial_wall_ms / sweep.parallel_wall_ms
                     : 0.0);
    std::fprintf(file, "      \"runs_per_sec\": %.3f,\n",
                 parallel_s > 0.0 ? static_cast<double>(sweep.runs) / parallel_s
                                  : 0.0);
    std::fprintf(file, "      \"total_simulated_cycles\": %" PRIu64 ",\n",
                 sweep.total_cycles);
    std::fprintf(file, "      \"host_ns_per_sim_cycle\": %.4f,\n",
                 sweep.host_ns_per_sim_cycle);
    std::fprintf(file, "      \"checksum_serial\": \"%016" PRIx64 "\",\n",
                 sweep.checksum_serial);
    std::fprintf(file, "      \"checksum_parallel\": \"%016" PRIx64 "\",\n",
                 sweep.checksum_parallel);
    std::fprintf(file, "      \"checksums_match\": %s,\n",
                 sweep.checksum_serial == sweep.checksum_parallel ? "true"
                                                                  : "false");
    std::fprintf(file, "      \"algorithms\": [\n");
    for (std::size_t k = 0; k < sweep.algorithm_gflops.size(); ++k) {
      std::fprintf(file, "        {\"name\": \"%s\", \"mean_gflops\": %.4f}%s\n",
                   sweep.algorithm_gflops[k].first.c_str(),
                   sweep.algorithm_gflops[k].second,
                   k + 1 < sweep.algorithm_gflops.size() ? "," : "");
    }
    std::fprintf(file, "      ]\n");
    std::fprintf(file, "    }%s\n", i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

int Main(int argc, char** argv) {
  BenchOptions options = ParseBenchFlags(argc, argv);
  const int threads = options.threads == 0
                          ? ThreadPool::HardwareConcurrency()
                          : static_cast<int>(options.threads);

  const std::vector<NamedMatrix> corpus =
      GranularityCorpus(ToCorpusOptions(options));
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kSyncFreeWarpCsr,
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kCapelliniTwoPhase,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
      kernels::DeviceAlgorithm::kHybrid,
  };

  std::printf(
      "Experiment-engine sweep: %zu matrices x %zu algorithms, serial vs "
      "%d worker thread%s.\n\n",
      corpus.size(), algorithms.size(), threads, threads == 1 ? "" : "s");

  ExperimentOptions serial_options = ToExperimentOptions(options);
  serial_options.threads = 1;
  ExperimentOptions parallel_options = ToExperimentOptions(options);
  parallel_options.threads = threads;

  bool diverged = false;
  std::vector<PlatformSweep> sweeps;
  TextTable table({"Platform", "Runs", "Serial ms", "Parallel ms", "Speedup",
               "Runs/s", "ns/cyc", "Records"});
  for (const sim::DeviceConfig& config : SelectedPlatforms(options)) {
    PlatformSweep sweep;
    sweep.platform = config.name;

    const auto serial_begin = Clock::now();
    const auto serial_records =
        RunMany(corpus, algorithms, config, serial_options);
    sweep.serial_wall_ms = ElapsedMs(serial_begin, Clock::now());

    const auto parallel_begin = Clock::now();
    const auto parallel_records =
        RunMany(corpus, algorithms, config, parallel_options);
    sweep.parallel_wall_ms = ElapsedMs(parallel_begin, Clock::now());

    sweep.runs = parallel_records.size();
    sweep.total_cycles = TotalCycles(parallel_records);
    sweep.host_ns_per_sim_cycle =
        sweep.total_cycles > 0
            ? sweep.serial_wall_ms * 1e6 /
                  static_cast<double>(sweep.total_cycles)
            : 0.0;
    sweep.checksum_serial = ChecksumRecords(serial_records);
    sweep.checksum_parallel = ChecksumRecords(parallel_records);
    for (const kernels::DeviceAlgorithm algorithm : algorithms) {
      sweep.algorithm_gflops.emplace_back(
          kernels::DeviceAlgorithmName(algorithm),
          MeanGflops(parallel_records, algorithm));
    }

    const bool match = sweep.checksum_serial == sweep.checksum_parallel;
    if (!match) diverged = true;
    const double parallel_s = sweep.parallel_wall_ms / 1000.0;
    table.AddRow(
        {sweep.platform, std::to_string(sweep.runs),
         TextTable::Num(sweep.serial_wall_ms, 1),
         TextTable::Num(sweep.parallel_wall_ms, 1),
         TextTable::Num(sweep.parallel_wall_ms > 0.0
                          ? sweep.serial_wall_ms / sweep.parallel_wall_ms
                          : 0.0,
                      2),
         TextTable::Num(parallel_s > 0.0
                          ? static_cast<double>(sweep.runs) / parallel_s
                          : 0.0,
                      1),
         TextTable::Num(sweep.host_ns_per_sim_cycle, 1),
         match ? "identical" : "DIVERGED"});
    sweeps.push_back(std::move(sweep));
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\nPer-algorithm mean GFLOPS (parallel run):\n");
  TextTable gflops_table({"Platform", "Algorithm", "GFLOPS"});
  for (const PlatformSweep& sweep : sweeps) {
    for (const auto& [name, gflops] : sweep.algorithm_gflops) {
      gflops_table.AddRow({sweep.platform, name, TextTable::Num(gflops, 2)});
    }
  }
  std::printf("%s", gflops_table.ToString().c_str());

  if (!options.json.empty()) {
    WriteJson(options.json, threads, options.full, sweeps);
    std::printf("\nJSON written to %s\n", options.json.c_str());
  }
  if (diverged) {
    std::fprintf(stderr,
                 "\nFAIL: parallel records diverge from the serial run\n");
    return 1;
  }
  std::printf("\nSerial and parallel record checksums match on every "
              "platform.\n");
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Main(argc, argv); }
