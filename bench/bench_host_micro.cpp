// google-benchmark microbenchmarks for the HOST solvers (real CPU execution,
// real wall-clock): serial, level-set with threads, sync-free with atomics,
// plus the level-set preprocessing cost itself. These complement the
// simulated device numbers with measurements a user can reproduce natively.
#include <benchmark/benchmark.h>

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "graph/levels.h"
#include "host/levelset_cpu.h"
#include "host/serial.h"
#include "host/syncfree_cpu.h"
#include "matrix/triangular.h"

namespace capellini {
namespace {

Csr BenchMatrix(int kind, Idx rows) {
  switch (kind) {
    case 0:  // wide levels, short rows (Capellini territory)
      return MakeLevelStructured({.num_levels = std::max<Idx>(4, rows / 4096),
                                  .components_per_level = 4096,
                                  .avg_nnz_per_row = 3.0,
                                  .size_jitter = 0.2,
                                  .interleave = false,
                                  .seed = 1});
    case 1:  // banded FEM-like
      return MakeBanded({.rows = rows, .bandwidth = 32, .fill = 0.8,
                         .force_chain = true, .seed = 2});
    default:  // random prefix references
      return MakeRandomLower({.rows = rows, .avg_strict_nnz_per_row = 4.0,
                              .window = 0, .empty_row_fraction = 0.2,
                              .seed = 3});
  }
}

void BM_HostSerial(benchmark::State& state) {
  const Csr matrix = BenchMatrix(static_cast<int>(state.range(0)),
                                 static_cast<Idx>(state.range(1)));
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  std::vector<Val> x(problem.b.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(host::SolveSerial(matrix, problem.b, x));
  }
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(matrix.nnz()) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostSerial)
    ->Args({0, 1 << 15})
    ->Args({1, 1 << 15})
    ->Args({2, 1 << 15});

void BM_HostLevelSet(benchmark::State& state) {
  const Csr matrix = BenchMatrix(static_cast<int>(state.range(0)),
                                 static_cast<Idx>(state.range(1)));
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  const LevelSets levels = ComputeLevelSets(matrix);
  std::vector<Val> x(problem.b.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        host::SolveLevelSetCpu(matrix, problem.b, x, &levels));
  }
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(matrix.nnz()) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostLevelSet)->Args({0, 1 << 15})->Args({1, 1 << 15});

void BM_HostSyncFree(benchmark::State& state) {
  const Csr matrix = BenchMatrix(static_cast<int>(state.range(0)),
                                 static_cast<Idx>(state.range(1)));
  const ReferenceProblem problem = MakeReferenceProblem(matrix, 7);
  std::vector<Val> x(problem.b.size());
  host::SyncFreeCpuOptions options;
  options.num_threads = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        host::SolveSyncFreeCpu(matrix, problem.b, x, options));
  }
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(matrix.nnz()) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostSyncFree)->Args({0, 1 << 15})->Args({2, 1 << 15});

void BM_LevelSetPreprocessing(benchmark::State& state) {
  const Csr matrix = BenchMatrix(static_cast<int>(state.range(0)),
                                 static_cast<Idx>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeLevelSets(matrix));
  }
}
BENCHMARK(BM_LevelSetPreprocessing)->Args({0, 1 << 15})->Args({1, 1 << 15});

}  // namespace
}  // namespace capellini

BENCHMARK_MAIN();
