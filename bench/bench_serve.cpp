// Serving throughput: batch size x worker count sweep over a zipf trace,
// compared against the one-shot path (a fresh Solver analyzed + solved per
// request — what a caller without the registry pays).
//
//   ./bench/bench_serve                  # full sweep
//   ./bench/bench_serve --quick --json=BENCH_serve.json   # CI smoke
//
// Three gates, all fatal (nonzero exit):
//   * determinism: the service in deterministic mode (workers=1, max_batch=1)
//     must byte-reproduce the serial one-shot solutions (FNV-1a checksum);
//   * correctness: every served solution is verified against the reference;
//   * scheduling: at every overloaded offered rate, EDF + cost-based
//     admission must show a strictly lower deadline-miss rate than FIFO with
//     count-only admission (the overload sweep; --sched_json dumps it).
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/solver.h"
#include "fleet/shard.h"
#include "matrix/triangular.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "support/table.h"
#include "support/timer.h"

namespace capellini::bench {
namespace {

using serve::MatrixHandle;
using serve::MatrixRegistry;
using serve::RequestTrace;
using serve::ServiceOptions;
using serve::SolveService;

struct SweepPoint {
  int max_batch = 1;
  int workers = 1;
  double requests_per_sec = 0.0;
  double speedup = 0.0;        // vs the one-shot baseline
  double mean_batch = 0.0;     // mean coalesced launch width
};

/// Serial one-shot loop: fresh Solver per request, Recommend + Solve. Returns
/// wall ms of the solve loop and the FNV-1a checksum over the solutions.
struct OneShotBaseline {
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t checksum = serve::kFnvSeed;
};

OneShotBaseline RunOneShot(const std::vector<NamedMatrix>& corpus,
                           const RequestTrace& trace,
                           const SolverOptions& solver_options) {
  // Manufacture the right-hand sides up front so the timed region is solves
  // only — the served sweep's clock also excludes problem generation.
  struct Item {
    std::size_t matrix;
    std::vector<Val> b;
  };
  std::vector<Item> items;
  items.reserve(trace.requests.size());
  for (const serve::TraceRequest& request : trace.requests) {
    const auto m = static_cast<std::size_t>(request.matrix) % corpus.size();
    items.push_back(
        Item{m, MakeReferenceProblem(corpus[m].matrix, request.seed).b});
  }

  OneShotBaseline baseline;
  Timer timer;
  for (const Item& item : items) {
    Solver solver(corpus[item.matrix].matrix, solver_options);
    auto solved = solver.Solve(solver.Recommend(), item.b);
    CAPELLINI_CHECK_MSG(solved.ok(), "one-shot solve failed");
    baseline.checksum = serve::HashBytes(baseline.checksum, solved->x.data(),
                                         solved->x.size() * sizeof(Val));
  }
  baseline.wall_ms = timer.ElapsedMs();
  if (baseline.wall_ms > 0.0) {
    baseline.requests_per_sec =
        static_cast<double>(items.size()) / (baseline.wall_ms / 1e3);
  }
  return baseline;
}

/// Builds a fresh registry + service for one sweep point and replays the
/// trace in preload mode (queue filled while paused, clock covers the drain).
Expected<SweepPoint> RunSweepPoint(const std::vector<NamedMatrix>& corpus,
                                   const RequestTrace& trace,
                                   const SolverOptions& solver_options,
                                   int max_batch, int workers,
                                   const OneShotBaseline& baseline,
                                   std::uint64_t* checksum_out = nullptr) {
  MatrixRegistry registry;
  std::vector<MatrixHandle> handles;
  for (const NamedMatrix& named : corpus) {
    auto handle = registry.Register(named.matrix, named.name, solver_options);
    if (!handle.ok()) return handle.status();
    handles.push_back(*handle);
  }

  ServiceOptions service_options;
  service_options.workers = workers;
  service_options.max_batch = max_batch;
  service_options.max_queue = trace.requests.size() + 1;
  service_options.start_paused = true;
  SolveService service(&registry, service_options);

  serve::ReplayOptions replay_options;
  replay_options.preload = true;
  auto report = serve::ReplayTrace(service, handles, trace, replay_options);
  if (!report.ok()) return report.status();
  service.Shutdown();
  if (report->failed != 0 || report->wrong != 0 || report->rejected != 0) {
    return InternalError("sweep point batch=" + std::to_string(max_batch) +
                         " workers=" + std::to_string(workers) + ": " +
                         std::to_string(report->failed) + " failed, " +
                         std::to_string(report->wrong) + " wrong, " +
                         std::to_string(report->rejected) + " rejected");
  }
  if (checksum_out != nullptr) *checksum_out = report->solution_checksum;

  SweepPoint point;
  point.max_batch = max_batch;
  point.workers = workers;
  point.requests_per_sec = report->requests_per_sec;
  point.speedup = baseline.requests_per_sec > 0.0
                      ? point.requests_per_sec / baseline.requests_per_sec
                      : 0.0;
  const serve::ServiceStats::Totals totals = service.stats().totals();
  point.mean_batch = totals.batches > 0
                         ? static_cast<double>(totals.requests) /
                               static_cast<double>(totals.batches)
                         : 0.0;
  return point;
}

/// One policy at one offered load in the overload sweep.
struct OverloadPoint {
  double load_factor = 0.0;       // offered rate / measured capacity
  serve::QueuePolicy policy = serve::QueuePolicy::kFifo;
  std::size_t submitted = 0;
  std::size_t rejected = 0;       // admission control (count or cost bound)
  std::size_t expired = 0;        // kDeadlineExceeded
  std::size_t completed = 0;
  double miss_rate = 0.0;         // expired / submitted
  double goodput_rps = 0.0;       // completed-in-deadline per second
  std::uint64_t reorders = 0;
  double cost_error = 0.0;        // mean |est - actual| / actual
};

const char* PolicyName(serve::QueuePolicy policy) {
  return policy == serve::QueuePolicy::kEdf ? "edf+cost" : "fifo";
}

/// Replays a deadline-stamped trace at a paced (open-loop) offered rate
/// through a fresh registry + service and reports the deadline outcome.
/// max_batch is pinned to 1 on both sides so the comparison isolates queue
/// ordering + admission — coalescing would let FIFO recover capacity and
/// blur the A/B.
Expected<OverloadPoint> RunOverloadPoint(
    const std::vector<NamedMatrix>& corpus, const RequestTrace& trace,
    const SolverOptions& solver_options, int workers, double offered_rps,
    double load_factor, serve::QueuePolicy policy, double max_queue_cost_ms) {
  MatrixRegistry registry;
  std::vector<MatrixHandle> handles;
  for (const NamedMatrix& named : corpus) {
    auto handle = registry.Register(named.matrix, named.name, solver_options);
    if (!handle.ok()) return handle.status();
    handles.push_back(*handle);
  }

  ServiceOptions service_options;
  service_options.workers = workers;
  service_options.max_batch = 1;
  service_options.max_queue = trace.requests.size() + 1;
  service_options.policy = policy;
  service_options.max_queue_cost_ms = max_queue_cost_ms;
  SolveService service(&registry, service_options);

  serve::ReplayOptions replay_options;
  replay_options.pace_requests_per_sec = offered_rps;
  replay_options.verify = false;  // correctness is gated by the main sweep
  auto report = serve::ReplayTrace(service, handles, trace, replay_options);
  if (!report.ok()) return report.status();
  service.Shutdown();
  if (report->failed != 0) {
    return InternalError("overload point " + std::string(PolicyName(policy)) +
                         ": " + std::to_string(report->failed) +
                         " requests failed outright");
  }

  OverloadPoint point;
  point.load_factor = load_factor;
  point.policy = policy;
  point.submitted = report->submitted;
  point.rejected = report->rejected;
  point.expired = report->expired;
  point.completed = report->completed;
  point.miss_rate = report->submitted > 0
                        ? static_cast<double>(report->expired) /
                              static_cast<double>(report->submitted)
                        : 0.0;
  point.goodput_rps = report->requests_per_sec;
  const serve::ServiceStats::Totals totals = service.stats().totals();
  point.reorders = totals.reorders;
  point.cost_error = service.stats().MeanCostErrorRatio();
  return point;
}

int Run(int argc, char** argv) {
  bool quick = false;
  std::int64_t requests = 240;
  double zipf = 1.1;
  std::string sched_json;
  std::int64_t devices = 1;
  CliFlags extra;
  extra.AddBool("quick", &quick, "CI smoke: small trace, reduced sweep");
  extra.AddInt("requests", &requests, "requests in the generated trace");
  extra.AddDouble("zipf", &zipf, "zipf exponent for matrix popularity");
  extra.AddInt("devices", &devices,
               "also run the trace through a sharded K-device fleet "
               "(src/fleet) and print per-device placement");
  extra.AddString("sched_json", &sched_json,
                  "write the overload-sweep (FIFO vs EDF+cost) results here");
  BenchOptions options = ParseBenchFlags(argc, argv, &extra);

  CorpusOptions corpus_options = ToCorpusOptions(options);
  if (quick) {
    requests = std::min<std::int64_t>(requests, 96);
    if (corpus_options.target_rows == 0) corpus_options.target_rows = 1200;
  }
  const std::vector<NamedMatrix> corpus = HighGranularityCorpus(corpus_options);
  const RequestTrace trace = serve::GenerateZipfTrace(
      static_cast<int>(requests), static_cast<int>(corpus.size()), zipf,
      static_cast<std::uint64_t>(options.seed) ^ 0x51ab);
  SolverOptions solver_options;  // paper-default simulated Pascal

  std::printf("bench_serve: %zu matrices, %zu requests (zipf %.2f)\n",
              corpus.size(), trace.requests.size(), zipf);

  // --- one-shot baseline ---------------------------------------------------
  const OneShotBaseline baseline = RunOneShot(corpus, trace, solver_options);
  std::printf("one-shot (fresh Solver per request): %.1f req/s\n",
              baseline.requests_per_sec);

  // --- determinism gate ----------------------------------------------------
  std::uint64_t serve_checksum = 0;
  {
    ServiceOptions det = SolveService::DeterministicOptions();
    auto gate = RunSweepPoint(corpus, trace, solver_options, det.max_batch,
                              det.workers, baseline, &serve_checksum);
    if (!gate.ok()) {
      std::fprintf(stderr, "determinism replay failed: %s\n",
                   gate.status().ToString().c_str());
      return 1;
    }
  }
  const bool deterministic = serve_checksum == baseline.checksum;
  std::printf("determinism gate: one-shot %016llx vs served %016llx -> %s\n",
              static_cast<unsigned long long>(baseline.checksum),
              static_cast<unsigned long long>(serve_checksum),
              deterministic ? "MATCH" : "MISMATCH");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FATAL: deterministic mode did not byte-reproduce the "
                 "one-shot solutions\n");
    return 1;
  }

  // --- batch x workers sweep -----------------------------------------------
  const std::vector<int> batches = quick ? std::vector<int>{1, 4}
                                         : std::vector<int>{1, 2, 4, 6};
  const std::vector<int> workers = quick ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4};
  std::vector<SweepPoint> points;
  for (int batch : batches) {
    for (int nworkers : workers) {
      auto point = RunSweepPoint(corpus, trace, solver_options, batch,
                                 nworkers, baseline);
      if (!point.ok()) {
        std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
        return 1;
      }
      if (options.progress) {
        std::fprintf(stderr, "  batch=%d workers=%d -> %.1f req/s\n", batch,
                     nworkers, point->requests_per_sec);
      }
      points.push_back(*point);
    }
  }

  TextTable table({"max_batch", "workers", "req/s", "vs one-shot",
                   "mean launch width"});
  table.SetTitle("served throughput (preloaded zipf trace, drain only)");
  for (const SweepPoint& point : points) {
    table.AddRow({std::to_string(point.max_batch),
                  std::to_string(point.workers),
                  TextTable::Num(point.requests_per_sec, 1),
                  TextTable::Num(point.speedup, 2) + "x",
                  TextTable::Num(point.mean_batch, 2)});
  }
  std::printf("\n%s", table.ToString().c_str());

  double best_batched = 0.0;
  for (const SweepPoint& point : points) {
    if (point.max_batch >= 4) best_batched = std::max(best_batched, point.speedup);
  }
  std::printf("\nbest batched (max_batch >= 4) speedup vs one-shot: %.2fx\n",
              best_batched);

  // --- multi-device axis: the same trace through a sharded fleet -----------
  if (devices > 1) {
    fleet::ShardOptions shard_options;
    shard_options.num_devices = static_cast<int>(devices);
    shard_options.service = SolveService::DeterministicOptions();
    shard_options.service.max_queue = trace.requests.size() + 1;
    fleet::ShardedSolveService sharded(shard_options);
    std::vector<fleet::ShardedHandle> sharded_handles;
    for (const NamedMatrix& named : corpus) {
      auto handle = sharded.Register(named.matrix, named.name, solver_options);
      CAPELLINI_CHECK_MSG(handle.ok(), "sharded registration failed");
      sharded_handles.push_back(*handle);
    }
    std::vector<std::pair<int, std::future<serve::ServeResult>>> inflight;
    for (const serve::TraceRequest& request : trace.requests) {
      const fleet::ShardedHandle& handle = sharded_handles[
          static_cast<std::size_t>(request.matrix) % sharded_handles.size()];
      const Csr& matrix = (*sharded.registry(handle.device)
                                .Peek(handle.handle))->solver.matrix();
      auto submitted = sharded.Submit(
          handle, MakeReferenceProblem(matrix, request.seed).b);
      CAPELLINI_CHECK_MSG(submitted.ok(), "sharded submit failed");
      inflight.emplace_back(handle.device, std::move(*submitted));
    }
    std::vector<std::size_t> served(static_cast<std::size_t>(devices), 0);
    std::vector<double> busy_ms(static_cast<std::size_t>(devices), 0.0);
    for (auto& [device, future] : inflight) {
      const serve::ServeResult result = future.get();
      CAPELLINI_CHECK_MSG(result.status.ok(), "sharded solve failed");
      ++served[static_cast<std::size_t>(device)];
      busy_ms[static_cast<std::size_t>(device)] += result.solve.solve_ms;
    }
    sharded.Shutdown();
    TextTable shard_table({"device", "matrices placed cost ms", "requests",
                           "busy ms (simulated)"});
    shard_table.SetTitle("sharded fleet (--devices=" +
                         std::to_string(devices) + ", cost-aware placement)");
    double max_busy = 0.0;
    for (int d = 0; d < static_cast<int>(devices); ++d) {
      shard_table.AddRow({std::to_string(d),
                          TextTable::Num(sharded.PlacedCostMs(d), 3),
                          std::to_string(served[static_cast<std::size_t>(d)]),
                          TextTable::Num(busy_ms[static_cast<std::size_t>(d)],
                                         3)});
      max_busy = std::max(max_busy, busy_ms[static_cast<std::size_t>(d)]);
    }
    std::printf("\n%s", shard_table.ToString().c_str());
    std::printf("aggregate simulated throughput: %.1f req/s (busiest device "
                "%.3f ms)\n",
                max_busy > 0.0 ? 1000.0 *
                                     static_cast<double>(
                                         trace.requests.size()) /
                                     max_busy
                               : 0.0,
                max_busy);
  }

  // --- overload sweep: FIFO vs EDF + cost admission ------------------------
  // Capacity is calibrated with the same workers / max_batch=1 configuration
  // the overload points run, so "load factor 2" genuinely offers twice what
  // the service can drain.
  const int overload_workers = 2;
  double capacity_rps = 0.0;
  double mean_service_ms = 0.0;   // host wall clock per request (deadlines)
  double model_mean_cost_ms = 0.0;  // cost-model units (admission budget)
  {
    MatrixRegistry registry;
    std::vector<MatrixHandle> handles;
    for (const NamedMatrix& named : corpus) {
      auto handle = registry.Register(named.matrix, named.name, solver_options);
      CAPELLINI_CHECK_MSG(handle.ok(), "calibration registration failed");
      handles.push_back(*handle);
    }
    ServiceOptions calib;
    calib.workers = overload_workers;
    calib.max_batch = 1;
    calib.max_queue = trace.requests.size() + 1;
    calib.start_paused = true;
    SolveService service(&registry, calib);
    serve::ReplayOptions replay_options;
    replay_options.preload = true;
    replay_options.verify = false;
    auto calibration =
        serve::ReplayTrace(service, handles, trace, replay_options);
    if (!calibration.ok() || calibration->requests_per_sec <= 0.0) {
      std::fprintf(stderr, "overload calibration failed\n");
      return 1;
    }
    service.Shutdown();
    capacity_rps = calibration->requests_per_sec;
    mean_service_ms =
        static_cast<double>(overload_workers) * 1e3 / capacity_rps;
    // The admission ledger lives in cost-model units (the simulator's kernel
    // ms, NOT the host wall clock that sets capacity). Read the calibrated
    // per-handle estimates back out of the drained registry and weight them
    // by the trace so the budget prices the queue the model will see.
    double model_cost_sum = 0.0;
    for (const serve::TraceRequest& request : trace.requests) {
      const auto m = static_cast<std::size_t>(request.matrix) % handles.size();
      auto entry = registry.Acquire(handles[m]);
      CAPELLINI_CHECK_MSG(entry.ok(), "calibration handle disappeared");
      model_cost_sum += (*entry)->cost.EstimateMs();
    }
    model_mean_cost_ms =
        model_cost_sum / static_cast<double>(trace.requests.size());
  }
  std::printf(
      "\noverload calibration: capacity %.1f req/s "
      "(mean service %.2f ms host, %.4f ms model, %d workers)\n",
      capacity_rps, mean_service_ms, model_mean_cost_ms, overload_workers);

  // Deadlines span a few to a couple dozen service times: tight enough that
  // an unbounded FIFO backlog blows through them, loose enough that a
  // cost-bounded queue can honor most. The cost budget caps queued work at
  // ~6 mean model-cost requests, so admitted requests wait a bounded time.
  RequestTrace deadline_trace = trace;
  serve::AssignDeadlines(deadline_trace, 4.0 * mean_service_ms,
                         24.0 * mean_service_ms,
                         static_cast<std::uint64_t>(options.seed) ^ 0xdead);
  const double cost_budget_ms = 6.0 * model_mean_cost_ms;
  const std::vector<double> load_factors =
      quick ? std::vector<double>{2.0, 4.0} : std::vector<double>{1.5, 3.0, 6.0};

  std::vector<OverloadPoint> overload_points;
  bool sched_gate_pass = true;
  for (double load : load_factors) {
    const double offered = load * capacity_rps;
    auto fifo = RunOverloadPoint(corpus, deadline_trace, solver_options,
                                 overload_workers, offered, load,
                                 serve::QueuePolicy::kFifo,
                                 /*max_queue_cost_ms=*/0.0);
    auto edf = RunOverloadPoint(corpus, deadline_trace, solver_options,
                                overload_workers, offered, load,
                                serve::QueuePolicy::kEdf, cost_budget_ms);
    if (!fifo.ok() || !edf.ok()) {
      std::fprintf(stderr, "overload point at load %.1f failed: %s\n", load,
                   (!fifo.ok() ? fifo.status() : edf.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (options.progress) {
      std::fprintf(stderr, "  load %.1fx: fifo miss %.1f%%, edf miss %.1f%%\n",
                   load, 100.0 * fifo->miss_rate, 100.0 * edf->miss_rate);
    }
    // The gate: at equal offered load, EDF + cost admission must miss
    // strictly less often than FIFO. FIFO missing nothing means the load
    // point is not actually overloaded — also a failure (the sweep would be
    // vacuous).
    if (fifo->expired == 0 || edf->miss_rate >= fifo->miss_rate) {
      sched_gate_pass = false;
    }
    overload_points.push_back(*fifo);
    overload_points.push_back(*edf);
  }

  TextTable sched_table({"load", "policy", "submitted", "rejected", "expired",
                         "completed", "miss rate", "goodput req/s"});
  sched_table.SetTitle("overload sweep (paced open-loop arrivals)");
  for (const OverloadPoint& p : overload_points) {
    sched_table.AddRow({TextTable::Num(p.load_factor, 1) + "x",
                        PolicyName(p.policy), std::to_string(p.submitted),
                        std::to_string(p.rejected), std::to_string(p.expired),
                        std::to_string(p.completed),
                        TextTable::Num(100.0 * p.miss_rate, 1) + "%",
                        TextTable::Num(p.goodput_rps, 1)});
  }
  std::printf("\n%s", sched_table.ToString().c_str());
  std::printf("\nscheduling gate (EDF+cost misses < FIFO misses at every "
              "load): %s\n",
              sched_gate_pass ? "PASS" : "FAIL");

  if (!sched_json.empty()) {
    std::FILE* file = std::fopen(sched_json.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", sched_json.c_str());
      return 1;
    }
    std::fprintf(file, "{\n  \"bench\": \"serve_sched\",\n");
    std::fprintf(file, "  \"requests\": %zu,\n", trace.requests.size());
    std::fprintf(file, "  \"capacity_requests_per_sec\": %.3f,\n",
                 capacity_rps);
    std::fprintf(file, "  \"mean_service_ms\": %.4f,\n", mean_service_ms);
    std::fprintf(file, "  \"cost_budget_ms\": %.4f,\n", cost_budget_ms);
    std::fprintf(file, "  \"gate_pass\": %s,\n",
                 sched_gate_pass ? "true" : "false");
    std::fprintf(file, "  \"points\": [\n");
    for (std::size_t i = 0; i < overload_points.size(); ++i) {
      const OverloadPoint& p = overload_points[i];
      std::fprintf(file,
                   "    {\"load_factor\": %.2f, \"policy\": \"%s\", "
                   "\"submitted\": %zu, \"rejected\": %zu, \"expired\": %zu, "
                   "\"completed\": %zu, \"miss_rate\": %.4f, "
                   "\"goodput_requests_per_sec\": %.3f, \"reorders\": %llu, "
                   "\"cost_error_ratio\": %.4f}%s\n",
                   p.load_factor, PolicyName(p.policy), p.submitted,
                   p.rejected, p.expired, p.completed, p.miss_rate,
                   p.goodput_rps, static_cast<unsigned long long>(p.reorders),
                   p.cost_error, i + 1 < overload_points.size() ? "," : "");
    }
    std::fprintf(file, "  ]\n}\n");
    std::fclose(file);
    std::printf("scheduling JSON written to %s\n", sched_json.c_str());
  }
  if (!sched_gate_pass) {
    std::fprintf(stderr,
                 "FATAL: EDF + cost admission did not beat FIFO's deadline-"
                 "miss rate at every overloaded offered load\n");
    return 1;
  }

  if (!options.json.empty()) {
    std::FILE* file = std::fopen(options.json.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json.c_str());
      return 1;
    }
    std::fprintf(file, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(file, "  \"requests\": %zu,\n", trace.requests.size());
    std::fprintf(file, "  \"matrices\": %zu,\n", corpus.size());
    std::fprintf(file, "  \"one_shot_requests_per_sec\": %.3f,\n",
                 baseline.requests_per_sec);
    std::fprintf(file,
                 "  \"determinism\": {\"one_shot_checksum\": \"%016llx\", "
                 "\"served_checksum\": \"%016llx\", \"match\": %s},\n",
                 static_cast<unsigned long long>(baseline.checksum),
                 static_cast<unsigned long long>(serve_checksum),
                 deterministic ? "true" : "false");
    std::fprintf(file, "  \"best_batched_speedup\": %.3f,\n", best_batched);
    std::fprintf(file, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(file,
                   "    {\"max_batch\": %d, \"workers\": %d, "
                   "\"requests_per_sec\": %.3f, \"speedup\": %.3f, "
                   "\"mean_launch_width\": %.3f}%s\n",
                   p.max_batch, p.workers, p.requests_per_sec, p.speedup,
                   p.mean_batch, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(file, "  ]\n}\n");
    std::fclose(file);
    std::printf("JSON written to %s\n", options.json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
