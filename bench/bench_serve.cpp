// Serving throughput: batch size x worker count sweep over a zipf trace,
// compared against the one-shot path (a fresh Solver analyzed + solved per
// request — what a caller without the registry pays).
//
//   ./bench/bench_serve                  # full sweep
//   ./bench/bench_serve --quick --json=BENCH_serve.json   # CI smoke
//
// Two gates, both fatal (nonzero exit):
//   * determinism: the service in deterministic mode (workers=1, max_batch=1)
//     must byte-reproduce the serial one-shot solutions (FNV-1a checksum);
//   * correctness: every served solution is verified against the reference.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/solver.h"
#include "matrix/triangular.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "support/table.h"
#include "support/timer.h"

namespace capellini::bench {
namespace {

using serve::MatrixHandle;
using serve::MatrixRegistry;
using serve::RequestTrace;
using serve::ServiceOptions;
using serve::SolveService;

struct SweepPoint {
  int max_batch = 1;
  int workers = 1;
  double requests_per_sec = 0.0;
  double speedup = 0.0;        // vs the one-shot baseline
  double mean_batch = 0.0;     // mean coalesced launch width
};

/// Serial one-shot loop: fresh Solver per request, Recommend + Solve. Returns
/// wall ms of the solve loop and the FNV-1a checksum over the solutions.
struct OneShotBaseline {
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t checksum = serve::kFnvSeed;
};

OneShotBaseline RunOneShot(const std::vector<NamedMatrix>& corpus,
                           const RequestTrace& trace,
                           const SolverOptions& solver_options) {
  // Manufacture the right-hand sides up front so the timed region is solves
  // only — the served sweep's clock also excludes problem generation.
  struct Item {
    std::size_t matrix;
    std::vector<Val> b;
  };
  std::vector<Item> items;
  items.reserve(trace.requests.size());
  for (const serve::TraceRequest& request : trace.requests) {
    const auto m = static_cast<std::size_t>(request.matrix) % corpus.size();
    items.push_back(
        Item{m, MakeReferenceProblem(corpus[m].matrix, request.seed).b});
  }

  OneShotBaseline baseline;
  Timer timer;
  for (const Item& item : items) {
    Solver solver(corpus[item.matrix].matrix, solver_options);
    auto solved = solver.Solve(solver.Recommend(), item.b);
    CAPELLINI_CHECK_MSG(solved.ok(), "one-shot solve failed");
    baseline.checksum = serve::HashBytes(baseline.checksum, solved->x.data(),
                                         solved->x.size() * sizeof(Val));
  }
  baseline.wall_ms = timer.ElapsedMs();
  if (baseline.wall_ms > 0.0) {
    baseline.requests_per_sec =
        static_cast<double>(items.size()) / (baseline.wall_ms / 1e3);
  }
  return baseline;
}

/// Builds a fresh registry + service for one sweep point and replays the
/// trace in preload mode (queue filled while paused, clock covers the drain).
Expected<SweepPoint> RunSweepPoint(const std::vector<NamedMatrix>& corpus,
                                   const RequestTrace& trace,
                                   const SolverOptions& solver_options,
                                   int max_batch, int workers,
                                   const OneShotBaseline& baseline,
                                   std::uint64_t* checksum_out = nullptr) {
  MatrixRegistry registry;
  std::vector<MatrixHandle> handles;
  for (const NamedMatrix& named : corpus) {
    auto handle = registry.Register(named.matrix, named.name, solver_options);
    if (!handle.ok()) return handle.status();
    handles.push_back(*handle);
  }

  ServiceOptions service_options;
  service_options.workers = workers;
  service_options.max_batch = max_batch;
  service_options.max_queue = trace.requests.size() + 1;
  service_options.start_paused = true;
  SolveService service(&registry, service_options);

  serve::ReplayOptions replay_options;
  replay_options.preload = true;
  auto report = serve::ReplayTrace(service, handles, trace, replay_options);
  if (!report.ok()) return report.status();
  service.Shutdown();
  if (report->failed != 0 || report->wrong != 0 || report->rejected != 0) {
    return InternalError("sweep point batch=" + std::to_string(max_batch) +
                         " workers=" + std::to_string(workers) + ": " +
                         std::to_string(report->failed) + " failed, " +
                         std::to_string(report->wrong) + " wrong, " +
                         std::to_string(report->rejected) + " rejected");
  }
  if (checksum_out != nullptr) *checksum_out = report->solution_checksum;

  SweepPoint point;
  point.max_batch = max_batch;
  point.workers = workers;
  point.requests_per_sec = report->requests_per_sec;
  point.speedup = baseline.requests_per_sec > 0.0
                      ? point.requests_per_sec / baseline.requests_per_sec
                      : 0.0;
  const serve::ServiceStats::Totals totals = service.stats().totals();
  point.mean_batch = totals.batches > 0
                         ? static_cast<double>(totals.requests) /
                               static_cast<double>(totals.batches)
                         : 0.0;
  return point;
}

int Run(int argc, char** argv) {
  bool quick = false;
  std::int64_t requests = 240;
  double zipf = 1.1;
  CliFlags extra;
  extra.AddBool("quick", &quick, "CI smoke: small trace, reduced sweep");
  extra.AddInt("requests", &requests, "requests in the generated trace");
  extra.AddDouble("zipf", &zipf, "zipf exponent for matrix popularity");
  BenchOptions options = ParseBenchFlags(argc, argv, &extra);

  CorpusOptions corpus_options = ToCorpusOptions(options);
  if (quick) {
    requests = std::min<std::int64_t>(requests, 96);
    if (corpus_options.target_rows == 0) corpus_options.target_rows = 1200;
  }
  const std::vector<NamedMatrix> corpus = HighGranularityCorpus(corpus_options);
  const RequestTrace trace = serve::GenerateZipfTrace(
      static_cast<int>(requests), static_cast<int>(corpus.size()), zipf,
      static_cast<std::uint64_t>(options.seed) ^ 0x51ab);
  SolverOptions solver_options;  // paper-default simulated Pascal

  std::printf("bench_serve: %zu matrices, %zu requests (zipf %.2f)\n",
              corpus.size(), trace.requests.size(), zipf);

  // --- one-shot baseline ---------------------------------------------------
  const OneShotBaseline baseline = RunOneShot(corpus, trace, solver_options);
  std::printf("one-shot (fresh Solver per request): %.1f req/s\n",
              baseline.requests_per_sec);

  // --- determinism gate ----------------------------------------------------
  std::uint64_t serve_checksum = 0;
  {
    ServiceOptions det = SolveService::DeterministicOptions();
    auto gate = RunSweepPoint(corpus, trace, solver_options, det.max_batch,
                              det.workers, baseline, &serve_checksum);
    if (!gate.ok()) {
      std::fprintf(stderr, "determinism replay failed: %s\n",
                   gate.status().ToString().c_str());
      return 1;
    }
  }
  const bool deterministic = serve_checksum == baseline.checksum;
  std::printf("determinism gate: one-shot %016llx vs served %016llx -> %s\n",
              static_cast<unsigned long long>(baseline.checksum),
              static_cast<unsigned long long>(serve_checksum),
              deterministic ? "MATCH" : "MISMATCH");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FATAL: deterministic mode did not byte-reproduce the "
                 "one-shot solutions\n");
    return 1;
  }

  // --- batch x workers sweep -----------------------------------------------
  const std::vector<int> batches = quick ? std::vector<int>{1, 4}
                                         : std::vector<int>{1, 2, 4, 6};
  const std::vector<int> workers = quick ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4};
  std::vector<SweepPoint> points;
  for (int batch : batches) {
    for (int nworkers : workers) {
      auto point = RunSweepPoint(corpus, trace, solver_options, batch,
                                 nworkers, baseline);
      if (!point.ok()) {
        std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
        return 1;
      }
      if (options.progress) {
        std::fprintf(stderr, "  batch=%d workers=%d -> %.1f req/s\n", batch,
                     nworkers, point->requests_per_sec);
      }
      points.push_back(*point);
    }
  }

  TextTable table({"max_batch", "workers", "req/s", "vs one-shot",
                   "mean launch width"});
  table.SetTitle("served throughput (preloaded zipf trace, drain only)");
  for (const SweepPoint& point : points) {
    table.AddRow({std::to_string(point.max_batch),
                  std::to_string(point.workers),
                  TextTable::Num(point.requests_per_sec, 1),
                  TextTable::Num(point.speedup, 2) + "x",
                  TextTable::Num(point.mean_batch, 2)});
  }
  std::printf("\n%s", table.ToString().c_str());

  double best_batched = 0.0;
  for (const SweepPoint& point : points) {
    if (point.max_batch >= 4) best_batched = std::max(best_batched, point.speedup);
  }
  std::printf("\nbest batched (max_batch >= 4) speedup vs one-shot: %.2fx\n",
              best_batched);

  if (!options.json.empty()) {
    std::FILE* file = std::fopen(options.json.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json.c_str());
      return 1;
    }
    std::fprintf(file, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(file, "  \"requests\": %zu,\n", trace.requests.size());
    std::fprintf(file, "  \"matrices\": %zu,\n", corpus.size());
    std::fprintf(file, "  \"one_shot_requests_per_sec\": %.3f,\n",
                 baseline.requests_per_sec);
    std::fprintf(file,
                 "  \"determinism\": {\"one_shot_checksum\": \"%016llx\", "
                 "\"served_checksum\": \"%016llx\", \"match\": %s},\n",
                 static_cast<unsigned long long>(baseline.checksum),
                 static_cast<unsigned long long>(serve_checksum),
                 deterministic ? "true" : "false");
    std::fprintf(file, "  \"best_batched_speedup\": %.3f,\n", best_batched);
    std::fprintf(file, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(file,
                   "    {\"max_batch\": %d, \"workers\": %d, "
                   "\"requests_per_sec\": %.3f, \"speedup\": %.3f, "
                   "\"mean_launch_width\": %.3f}%s\n",
                   p.max_batch, p.workers, p.requests_per_sec, p.speedup,
                   p.mean_batch, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(file, "  ]\n}\n");
    std::fclose(file);
    std::printf("JSON written to %s\n", options.json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
