// Ablations from §5.3 "Optimization analysis" and §3.3 "Challenge 1":
//
//  1. Writing-First vs Two-Phase CapelliniSpTRSV — performance, bandwidth and
//     instruction deltas (the paper reports 28.9x performance, 4.57x
//     bandwidth, 56% fewer instructions on its corpus; the gap widens with
//     intra-warp dependencies, so an interleaved stress matrix is included).
//  2. The naive unbounded-busy-wait thread-level kernel: deadlocks whenever a
//     warp contains dependent rows (demonstrated; detected by the watchdog).
//  3. SyncFree-CSC (the published baseline) vs SyncFree-CSR (Algorithm 3 as
//     printed) — a consistency check that the two warp-level formulations
//     behave alike.
#include "bench/bench_common.h"
#include "gen/banded.h"
#include "gen/level_structured.h"

namespace capellini::bench {
namespace {

NamedMatrix Interleaved(Idx levels, Idx beta, double alpha,
                        std::uint64_t seed) {
  NamedMatrix named;
  named.matrix = MakeLevelStructured({.num_levels = levels,
                                      .components_per_level = beta,
                                      .avg_nnz_per_row = alpha,
                                      .size_jitter = 0.2,
                                      .interleave = true,
                                      .seed = seed});
  named.name = "interleaved";
  named.stats = ComputeStats(named.matrix, named.name);
  return named;
}

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  // --- 1. Writing-First vs Two-Phase --------------------------------------
  std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  corpus.push_back(Interleaved(64, 256, 2.6, 0xAB1));

  const std::vector<kernels::DeviceAlgorithm> variants = {
      kernels::DeviceAlgorithm::kCapelliniTwoPhase,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };
  const auto records = RunMany(corpus, variants, device, experiment);

  double perf[2] = {0, 0}, bw[2] = {0, 0}, instr[2] = {0, 0};
  int counts[2] = {0, 0};
  for (const auto& record : records) {
    if (!record.status.ok()) continue;
    const int a =
        record.algorithm == kernels::DeviceAlgorithm::kCapelliniTwoPhase ? 0
                                                                         : 1;
    perf[a] += record.result.gflops;
    bw[a] += record.result.bandwidth_gbs;
    instr[a] += static_cast<double>(record.result.stats.instructions);
    ++counts[a];
  }
  for (int a = 0; a < 2; ++a) {
    const double n = std::max(1, counts[a]);
    perf[a] /= n;
    bw[a] /= n;
    instr[a] /= n;
  }

  std::printf(
      "Ablation 1 (paper §5.3): Writing-First vs Two-Phase CapelliniSpTRSV on\n"
      "%zu matrices, platform %s.\n\n",
      corpus.size(), device.name.c_str());
  TextTable table({"Variant", "GFLOPS", "Bandwidth GB/s",
                   "Instructions (10^6)"});
  table.AddRow({"Two-Phase", TextTable::Num(perf[0], 2),
                TextTable::Num(bw[0], 2), TextTable::Num(instr[0] / 1e6, 2)});
  table.AddRow({"Writing-First", TextTable::Num(perf[1], 2),
                TextTable::Num(bw[1], 2), TextTable::Num(instr[1] / 1e6, 2)});
  table.AddRow({"Writing-First gain", TextTable::Num(perf[1] / perf[0], 2) + "x",
                TextTable::Num(bw[1] / bw[0], 2) + "x",
                TextTable::Num(100.0 * (1.0 - instr[1] / instr[0]), 1) +
                    "% fewer"});
  std::fputs(table.ToString().c_str(), stdout);

  // --- 2. Naive busy-wait deadlock (§3.3 Challenge 1) ----------------------
  std::printf(
      "\nAblation 2 (paper §3.3, Challenge 1): unbounded busy-wait at thread\n"
      "level vs the two deadlock-free designs on a dependency chain.\n\n");
  NamedMatrix chain;
  chain.matrix = MakeBidiagonal(2048);
  chain.name = "chain2048";
  chain.stats = ComputeStats(chain.matrix, chain.name);
  sim::DeviceConfig watchdog_device = device;
  watchdog_device.no_progress_cycles = 200'000;
  TextTable deadlock_table({"Kernel", "outcome"});
  for (const auto algorithm :
       {kernels::DeviceAlgorithm::kCapelliniNaive,
        kernels::DeviceAlgorithm::kCapelliniTwoPhase,
        kernels::DeviceAlgorithm::kCapelliniWritingFirst}) {
    const RunRecord record =
        RunOne(chain, algorithm, watchdog_device, experiment);
    deadlock_table.AddRow(
        {kernels::DeviceAlgorithmName(algorithm),
         record.status.ok()
             ? (record.correct ? "solved correctly" : "WRONG RESULT")
             : record.status.ToString()});
  }
  std::fputs(deadlock_table.ToString().c_str(), stdout);

  // --- 3. CSC vs CSR warp-level formulations -------------------------------
  std::printf(
      "\nAblation 3: the two warp-level synchronization-free formulations\n"
      "(Liu et al. CSC with atomic scatter; Algorithm 3 CSR with busy-wait)\n"
      "on the high-granularity corpus.\n\n");
  const std::vector<kernels::DeviceAlgorithm> warp_variants = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kSyncFreeWarpCsr,
  };
  const auto warp_records = RunMany(corpus, warp_variants, device, experiment);
  TextTable warp_table({"Variant", "GFLOPS"});
  warp_table.AddRow({"SyncFree (CSC, atomics)",
                     TextTable::Num(MeanGflops(warp_records, warp_variants[0]),
                                    2)});
  warp_table.AddRow({"SyncFree (CSR, busy-wait)",
                     TextTable::Num(MeanGflops(warp_records, warp_variants[1]),
                                    2)});
  std::fputs(warp_table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
