// Reproduces Figure 6: the optimal-algorithm map over the two structural
// axes — average nonzeros per row (alpha) and average components per level
// (beta). CapelliniSpTRSV should own the low-alpha / high-beta corner (the
// wedge the paper draws); SyncFree the wide-row / small-level region.
#include "bench/bench_common.h"
#include "gen/level_structured.h"
#include "support/rng.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  const std::vector<double> alphas = {2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0};
  const std::vector<Idx> betas = {16, 64, 256, 1024, 4096, 16384};

  std::printf(
      "Figure 6: optimal algorithm (Capellini vs SyncFree) over the\n"
      "(alpha = nnz/row, beta = components/level) plane, platform %s.\n"
      "C = Capellini fastest, S = SyncFree fastest, each cell also shows\n"
      "the parallel granularity.\n\n",
      device.name.c_str());

  std::vector<std::string> header = {"beta \\ alpha"};
  for (const double alpha : alphas) header.push_back(TextTable::Num(alpha, 0));
  TextTable table(header);

  Rng rng(static_cast<std::uint64_t>(options.seed));
  const Idx target_rows = options.full ? 60'000 : 16'000;
  for (auto it = betas.rbegin(); it != betas.rend(); ++it) {
    const Idx beta = *it;
    std::vector<std::string> row = {std::to_string(beta)};
    for (const double alpha : alphas) {
      LevelStructuredOptions ls;
      ls.components_per_level = beta;
      ls.num_levels = std::max<Idx>(4, target_rows / beta);
      ls.avg_nnz_per_row = alpha;
      ls.size_jitter = 0.2;
      ls.seed = rng.Next();
      NamedMatrix named;
      named.matrix = MakeLevelStructured(ls);
      named.name = "grid";
      named.stats = ComputeStats(named.matrix, named.name);

      const RunRecord capellini =
          RunOne(named, kernels::DeviceAlgorithm::kCapelliniWritingFirst,
                 device, experiment);
      const RunRecord syncfree = RunOne(
          named, kernels::DeviceAlgorithm::kSyncFreeCsc, device, experiment);
      if (!capellini.status.ok() || !syncfree.status.ok()) {
        row.push_back("err");
        continue;
      }
      const bool capellini_wins =
          capellini.result.gflops > syncfree.result.gflops;
      row.push_back(std::string(capellini_wins ? "C" : "S") + " (" +
                    TextTable::Num(named.stats.parallel_granularity, 2) + ")");
    }
    table.AddRow(row);
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
