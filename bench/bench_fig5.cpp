// Reproduces Figure 5: per-matrix speedup of CapelliniSpTRSV over the
// SyncFree baseline as a function of parallel granularity. The paper's shape:
// speedups grow with granularity (their lp1 peaks at ~35x averaged across
// platforms; our simulated magnitudes are compressed — see EXPERIMENTS.md).
#include <algorithm>
#include <map>

#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const auto platforms = SelectedPlatforms(options);
  const ExperimentOptions experiment = ToExperimentOptions(options);

  std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  corpus.push_back(MakeProxy(ProxyId::kLp1));  // the paper's best case

  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  // matrix -> (granularity, sum of per-platform speedups, platforms counted)
  struct Entry {
    double granularity = 0.0;
    double speedup_sum = 0.0;
    int platforms = 0;
  };
  std::map<std::string, Entry> per_matrix;

  for (const auto& config : platforms) {
    const auto records = RunMany(corpus, algorithms, config, experiment);
    std::map<std::string, double> syncfree, capellini;
    for (const auto& record : records) {
      if (!record.status.ok() || !record.correct) continue;
      auto& entry = per_matrix[record.matrix];
      entry.granularity = record.stats.parallel_granularity;
      if (record.algorithm == algorithms[0]) {
        syncfree[record.matrix] = record.result.gflops;
      } else {
        capellini[record.matrix] = record.result.gflops;
      }
    }
    for (const auto& [matrix, gflops] : capellini) {
      const auto it = syncfree.find(matrix);
      if (it == syncfree.end() || it->second <= 0.0) continue;
      per_matrix[matrix].speedup_sum += gflops / it->second;
      ++per_matrix[matrix].platforms;
    }
  }

  std::printf(
      "Figure 5: speedup of CapelliniSpTRSV over SyncFree per matrix,\n"
      "averaged over %zu platform(s), sorted by parallel granularity.\n\n",
      platforms.size());

  std::vector<std::pair<std::string, Entry>> rows(per_matrix.begin(),
                                                  per_matrix.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.granularity < b.second.granularity;
  });

  double max_speedup = 0.0;
  for (const auto& [name, entry] : rows) {
    if (entry.platforms > 0) {
      max_speedup = std::max(max_speedup, entry.speedup_sum / entry.platforms);
    }
  }

  TextTable table({"matrix", "granularity", "speedup", ""});
  for (const auto& [name, entry] : rows) {
    if (entry.platforms == 0) continue;
    const double speedup = entry.speedup_sum / entry.platforms;
    table.AddRow({name, TextTable::Num(entry.granularity, 2),
                  TextTable::Num(speedup, 2) + "x",
                  Bar(speedup, max_speedup)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
