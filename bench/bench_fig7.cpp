// Reproduces Figure 7: achieved DRAM bandwidth (read+write) per algorithm on
// the high-granularity corpus. CapelliniSpTRSV moves the same compulsory
// bytes in far less time, so its bandwidth utilization is a multiple of the
// warp-level baselines' (the paper reports 5.17x over SyncFree, 5.25x over
// cuSPARSE, with Capellini averaging 56 GB/s).
#include "bench/bench_common.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();
  const ExperimentOptions experiment = ToExperimentOptions(options);

  const std::vector<NamedMatrix> corpus =
      HighGranularityCorpus(ToCorpusOptions(options));
  const std::vector<kernels::DeviceAlgorithm> algorithms = {
      kernels::DeviceAlgorithm::kCusparseProxy,
      kernels::DeviceAlgorithm::kSyncFreeCsc,
      kernels::DeviceAlgorithm::kCapelliniWritingFirst,
  };

  const auto records = RunMany(corpus, algorithms, device, experiment);

  std::printf(
      "Figure 7: modeled DRAM bandwidth utilization (read+write) on the\n"
      "high-granularity corpus (%zu matrices, platform %s).\n\n",
      corpus.size(), device.name.c_str());

  double means[3] = {0, 0, 0};
  TextTable table({"Algorithm", "mean GB/s", "vs Capellini", ""});
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    double sum = 0.0;
    int count = 0;
    for (const auto& record : records) {
      if (record.algorithm != algorithms[a] || !record.status.ok()) continue;
      sum += record.result.bandwidth_gbs;
      ++count;
    }
    means[a] = count == 0 ? 0.0 : sum / count;
  }
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    table.AddRow({kernels::DeviceAlgorithmName(algorithms[a]),
                  TextTable::Num(means[a], 2),
                  means[a] > 0 ? TextTable::Num(means[2] / means[a], 2) + "x"
                               : "-",
                  Bar(means[a], means[2])});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
