// Extension bench (Liu et al. CCPE'17 direction): multiple right-hand sides.
// For k in {1, 2, 4, 6}: the fused SpTRSM kernels vs k repeated single
// solves. The structure walk (row pointers, column indices, flags) amortizes
// over k, so fused GFLOPS grow with k for both granularities while the
// thread-level advantage persists.
#include "bench/bench_common.h"
#include "gen/level_structured.h"
#include "matrix/triangular.h"
#include "support/rng.h"

namespace capellini::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchFlags(argc, argv);
  const sim::DeviceConfig device = SelectedPlatforms(options).front();

  const Idx beta = options.full ? 12'000 : 6'000;
  const Csr lower = MakeLevelStructured({.num_levels = 10,
                                         .components_per_level = beta,
                                         .avg_nnz_per_row = 3.0,
                                         .size_jitter = 0.25,
                                         .interleave = false,
                                         .seed = 0xEE});
  const MatrixStats stats = ComputeStats(lower, "mrhs-bench");
  std::printf(
      "SpTRSM (multiple right-hand sides): %d rows, %lld nnz, delta %.2f,\n"
      "platform %s. GFLOPS = 2*nnz*k / time.\n\n",
      stats.rows, static_cast<long long>(stats.nnz),
      stats.parallel_granularity, device.name.c_str());

  const auto n = static_cast<std::size_t>(lower.rows());
  Rng rng(7);
  std::vector<Val> x_true(n * 6);
  std::vector<Val> b(n * 6);
  for (auto& v : x_true) v = rng.NextDouble(0.5, 1.5);
  for (int r = 0; r < 6; ++r) {
    lower.SpMv(std::span<const Val>(x_true.data() + r * n, n),
               std::span<Val>(b.data() + r * n, n));
  }

  TextTable table({"k", "Capellini-mrhs", "SyncFree-mrhs",
                   "k x Capellini single", "fused speedup"});
  for (const int k : {1, 2, 4, 6}) {
    const std::span<const Val> bk(b.data(), n * static_cast<std::size_t>(k));
    auto fused_cap = kernels::SolveMrhsOnDevice(
        kernels::MrhsAlgorithm::kCapelliniMrhs, lower, bk, k, device);
    auto fused_sync = kernels::SolveMrhsOnDevice(
        kernels::MrhsAlgorithm::kSyncFreeMrhs, lower, bk, k, device);
    if (!fused_cap.ok() || !fused_sync.ok()) {
      std::fprintf(stderr, "mrhs run failed\n");
      return 1;
    }
    const double err = MaxRelativeError(
        fused_cap->x,
        std::span<const Val>(x_true.data(), n * static_cast<std::size_t>(k)));
    if (err > 1e-10) {
      std::fprintf(stderr, "WARNING: verification failed (%.2e)\n", err);
    }

    double repeated_ms = 0.0;
    for (int r = 0; r < k; ++r) {
      auto single = kernels::SolveOnDevice(
          kernels::DeviceAlgorithm::kCapelliniWritingFirst, lower,
          std::span<const Val>(b.data() + static_cast<std::size_t>(r) * n, n),
          device);
      if (!single.ok()) return 1;
      repeated_ms += single->exec_ms;
    }
    const double repeated_gflops =
        2.0 * static_cast<double>(lower.nnz()) * k / (repeated_ms / 1e3) / 1e9;

    table.AddRow({std::to_string(k), TextTable::Num(fused_cap->gflops, 2),
                  TextTable::Num(fused_sync->gflops, 2),
                  TextTable::Num(repeated_gflops, 2),
                  TextTable::Num(fused_cap->exec_ms > 0
                                     ? repeated_ms / fused_cap->exec_ms
                                     : 0.0,
                                 2) +
                      "x"});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace capellini::bench

int main(int argc, char** argv) { return capellini::bench::Run(argc, argv); }
