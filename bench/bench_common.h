// Shared scaffolding for the per-table/per-figure benchmark binaries.
//
// Every binary accepts the same flags:
//   --full            use the larger corpus tier (default: quick)
//   --target_rows=N   override rows per generated matrix
//   --seed=N          corpus seed
//   --progress        per-run progress lines on stderr
//   --platform=NAME   restrict to one platform (Pascal|Volta|Turing)
//   --threads=N       worker threads for the experiment engine
//                     (0 = hardware concurrency; results are identical
//                     for every value)
//   --json=PATH       also write machine-readable results to PATH
//                     (consumed by bench_runner / CI)
//
// Absolute numbers come from the SIMT simulator (DESIGN.md §2); EXPERIMENTS.md
// records how each printed table compares with the paper.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "gen/corpus.h"
#include "gen/proxies.h"
#include "sim/config.h"
#include "support/cli.h"
#include "support/table.h"

namespace capellini::bench {

struct BenchOptions {
  bool full = false;
  std::int64_t target_rows = 0;  // 0 = tier default
  std::int64_t seed = 0xC0FFEE;
  bool progress = false;
  std::string platform;  // empty = all
  std::int64_t threads = 1;  // 0 = hardware concurrency
  std::string json;          // empty = no JSON output
};

/// Parses the common flags; exits on --help or bad flags.
inline BenchOptions ParseBenchFlags(int argc, char** argv,
                                    CliFlags* extra = nullptr) {
  BenchOptions options;
  CliFlags local;
  CliFlags& flags = extra != nullptr ? *extra : local;
  flags.AddBool("full", &options.full, "use the larger corpus tier");
  flags.AddInt("target_rows", &options.target_rows,
               "rows per generated matrix (0 = tier default)");
  flags.AddInt("seed", &options.seed, "corpus seed");
  flags.AddBool("progress", &options.progress, "per-run progress on stderr");
  flags.AddString("platform", &options.platform,
                  "run only this platform (Pascal|Volta|Turing)");
  flags.AddInt("threads", &options.threads,
               "worker threads (0 = hardware concurrency, 1 = serial)");
  flags.AddString("json", &options.json,
                  "write machine-readable results to this path");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != StatusCode::kNotFound || status.message() != "help") {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    std::exit(status.code() == StatusCode::kNotFound ? 0 : 2);
  }
  return options;
}

inline CorpusOptions ToCorpusOptions(const BenchOptions& options) {
  CorpusOptions corpus;
  corpus.tier = options.full ? CorpusTier::kFull : CorpusTier::kQuick;
  corpus.seed = static_cast<std::uint64_t>(options.seed);
  corpus.target_rows = static_cast<Idx>(options.target_rows);
  return corpus;
}

inline ExperimentOptions ToExperimentOptions(const BenchOptions& options) {
  ExperimentOptions experiment;
  experiment.progress = options.progress;
  experiment.threads = static_cast<int>(options.threads);
  return experiment;
}

/// Platforms selected by --platform (all three by default).
inline std::vector<sim::DeviceConfig> SelectedPlatforms(
    const BenchOptions& options) {
  std::vector<sim::DeviceConfig> platforms = sim::PaperPlatforms();
  if (!options.platform.empty()) {
    std::erase_if(platforms, [&](const sim::DeviceConfig& config) {
      return config.name != options.platform;
    });
    if (platforms.empty()) {
      std::fprintf(stderr, "unknown platform '%s'\n",
                   options.platform.c_str());
      std::exit(2);
    }
  }
  return platforms;
}

/// Granularity bin [lo, hi) aggregation used by the figure benches.
struct GranularityBin {
  double lo = 0.0;
  double hi = 0.0;
  int count = 0;
  double sum_value = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum_value / count; }
};

inline std::vector<GranularityBin> MakeBins(double lo, double hi,
                                            double width) {
  std::vector<GranularityBin> bins;
  for (double x = lo; x < hi - 1e-12; x += width) {
    bins.push_back(GranularityBin{x, x + width, 0, 0.0});
  }
  return bins;
}

inline void AddToBin(std::vector<GranularityBin>& bins, double key,
                     double value) {
  for (GranularityBin& bin : bins) {
    if (key >= bin.lo && key < bin.hi) {
      ++bin.count;
      bin.sum_value += value;
      return;
    }
  }
}

/// An ASCII bar for the figure benches (value scaled to `max` over `width`
/// characters).
inline std::string Bar(double value, double max, int width = 40) {
  if (max <= 0.0) return "";
  int n = static_cast<int>(value / max * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace capellini::bench
