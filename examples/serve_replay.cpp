// Serving-layer demo: stand up a MatrixRegistry + SolveService over a
// generated corpus, replay a zipf-distributed request trace against it, and
// print the service dashboard (throughput, batch occupancy, latency
// percentiles, cache hits/evictions).
//
//   ./examples/serve_replay
//   ./examples/serve_replay --requests=500 --workers=4 --max_batch=6
//   ./examples/serve_replay --trace=trace.json          # persist the trace
//   ./examples/serve_replay --stats_json=serve_stats.json
//   # deadline-aware scheduling + cost-based admission under overload:
//   ./examples/serve_replay --deadline_min_ms=5 --deadline_max_ms=50
//       --pace_rps=200 --max_queue_cost_ms=2 --preload=false
//   ./examples/serve_replay --policy=fifo ...           # A/B the scheduler
//
// Every solution is verified against the serial reference; the binary exits
// nonzero on any wrong answer, so it doubles as an end-to-end smoke test.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/corpus.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace capellini;
  using namespace capellini::serve;

  std::int64_t requests = 200;
  std::int64_t workers = 2;
  std::int64_t max_batch = 4;
  std::int64_t max_queue = 4096;
  std::int64_t target_rows = 2000;
  std::int64_t budget_kb = 0;
  std::int64_t seed = 0xC0FFEE;
  double zipf = 1.1;
  bool preload = true;
  std::string policy = "edf";
  double max_queue_cost_ms = 0.0;
  double coalesce_window_ms = 0.0;
  double deadline_min_ms = 0.0;
  double deadline_max_ms = 0.0;
  double pace_rps = 0.0;
  std::string trace_path;
  std::string stats_json;

  CliFlags flags;
  flags.AddInt("requests", &requests, "requests in the generated trace");
  flags.AddInt("workers", &workers, "service worker threads");
  flags.AddInt("max_batch", &max_batch,
               "coalesce up to this many same-matrix requests per launch");
  flags.AddInt("max_queue", &max_queue, "admission-control queue bound");
  flags.AddInt("target_rows", &target_rows, "rows per corpus matrix");
  flags.AddInt("budget_kb", &budget_kb,
               "registry byte budget in KiB (0 = unlimited; small values "
               "exercise LRU eviction)");
  flags.AddInt("seed", &seed, "corpus + trace seed");
  flags.AddDouble("zipf", &zipf, "zipf exponent for handle popularity");
  flags.AddBool("preload", &preload,
                "queue the whole trace before starting the workers "
                "(maximal coalescing)");
  flags.AddString("policy", &policy,
                  "queue ordering: edf (earliest deadline first) or fifo");
  flags.AddDouble("max_queue_cost_ms", &max_queue_cost_ms,
                  "cost-based admission: reject when the estimated queued "
                  "work exceeds this many model ms (0 = count bound only)");
  flags.AddDouble("coalesce_window_ms", &coalesce_window_ms,
                  "only coalesce requests whose deadlines are within this "
                  "many ms of the group leader's (0 = unlimited)");
  flags.AddDouble("deadline_min_ms", &deadline_min_ms,
                  "stamp uniform-random deadlines in "
                  "[deadline_min_ms, deadline_max_ms] on the trace (0 = none)");
  flags.AddDouble("deadline_max_ms", &deadline_max_ms,
                  "upper bound for --deadline_min_ms");
  flags.AddDouble("pace_rps", &pace_rps,
                  "offer requests open-loop at this rate instead of as fast "
                  "as possible (forces --preload=false)");
  flags.AddString("trace", &trace_path, "also write the trace JSON here");
  flags.AddString("stats_json", &stats_json, "write the stats JSON here");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    if (status.code() == StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }

  // --- corpus + registry ---------------------------------------------------
  CorpusOptions corpus_options;
  corpus_options.seed = static_cast<std::uint64_t>(seed);
  corpus_options.target_rows = static_cast<Idx>(target_rows);
  const std::vector<NamedMatrix> corpus = HighGranularityCorpus(corpus_options);

  MatrixRegistry registry(
      RegistryOptions{.byte_budget = static_cast<std::size_t>(budget_kb) * 1024});
  std::vector<MatrixHandle> handles;
  SolverOptions solver_options;  // paper-default simulated Pascal
  for (const NamedMatrix& named : corpus) {
    auto handle = registry.Register(named.matrix, named.name, solver_options);
    if (!handle.ok()) {
      std::fprintf(stderr, "register '%s' failed: %s\n", named.name.c_str(),
                   handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*handle);
  }
  std::printf("registered %zu matrices (%zu KiB resident)\n", handles.size(),
              registry.Snapshot().resident_bytes / 1024);

  // --- trace ---------------------------------------------------------------
  RequestTrace trace =
      GenerateZipfTrace(static_cast<int>(requests),
                        static_cast<int>(handles.size()), zipf,
                        static_cast<std::uint64_t>(seed) ^ 0x51ab);
  if (deadline_min_ms > 0.0) {
    AssignDeadlines(trace, deadline_min_ms,
                    std::max(deadline_min_ms, deadline_max_ms),
                    static_cast<std::uint64_t>(seed) ^ 0xdead);
  }
  if (pace_rps > 0.0) preload = false;  // pacing needs live workers
  if (!trace_path.empty()) {
    if (const Status status = WriteTraceJson(trace, trace_path); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_path.c_str());
  }

  // --- serve ---------------------------------------------------------------
  ServiceOptions service_options;
  service_options.workers = static_cast<int>(workers);
  service_options.max_batch = static_cast<int>(max_batch);
  service_options.max_queue = static_cast<std::size_t>(max_queue);
  service_options.max_queue_cost_ms = max_queue_cost_ms;
  service_options.coalesce_window_ms = coalesce_window_ms;
  service_options.start_paused = preload;
  if (policy == "fifo") {
    service_options.policy = QueuePolicy::kFifo;
  } else if (policy != "edf") {
    std::fprintf(stderr, "unknown --policy '%s' (edf|fifo)\n", policy.c_str());
    return 2;
  }
  SolveService service(&registry, service_options);

  ReplayOptions replay_options;
  replay_options.preload = preload;
  replay_options.pace_requests_per_sec = pace_rps;
  auto report = ReplayTrace(service, handles, trace, replay_options);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  service.Shutdown();

  std::printf("\nreplayed %zu requests: %zu completed, %zu rejected, "
              "%zu expired, %zu failed, %zu wrong\n",
              report->submitted, report->completed, report->rejected,
              report->expired, report->failed, report->wrong);
  const ServiceStats::Totals totals = service.stats().totals();
  std::printf("scheduler: policy=%s, %llu reorders, mean cost-model error "
              "%.2fx, queued cost at shutdown %.3f ms\n",
              policy.c_str(),
              static_cast<unsigned long long>(totals.reorders),
              service.stats().MeanCostErrorRatio(), service.QueuedCostMs());
  std::printf("wall %.1f ms -> %.1f requests/s (solution checksum "
              "%016llx)\n\n",
              report->wall_ms, report->requests_per_sec,
              static_cast<unsigned long long>(report->solution_checksum));

  const RegistrySnapshot cache = registry.Snapshot();
  std::fputs(service.stats().ToTable(&cache).c_str(), stdout);

  if (!stats_json.empty()) {
    std::FILE* file = std::fopen(stats_json.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", stats_json.c_str());
      return 1;
    }
    const std::string json = service.stats().ToJson(&cache);
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("stats JSON written to %s\n", stats_json.c_str());
  }

  return (report->wrong == 0 && report->failed == 0) ? 0 : 1;
}
