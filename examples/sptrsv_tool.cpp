// A command-line SpTRSV utility on Matrix Market files — the workflow a
// SuiteSparse user would run:
//
//   1. read an .mtx file (any square matrix),
//   2. apply the paper's dataset rule (keep the lower-left, unit diagonal),
//   3. print the structural indicators (alpha, beta, delta) and the
//      recommended algorithm,
//   4. solve against a manufactured right-hand side on a simulated GPU and
//      verify.
//
// With --generate it synthesizes an input first, so it runs out of the box:
//
//   ./examples/sptrsv_tool --generate
//   ./examples/sptrsv_tool --input=matrix.mtx --algorithm=Capellini
#include <cstdio>

#include "core/analysis.h"
#include "core/autotune.h"
#include "core/solver.h"
#include "gen/rmat.h"
#include "matrix/convert.h"
#include "matrix/mm_io.h"
#include "matrix/triangular.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace capellini;

  std::string input;
  std::string algorithm_name = "auto";
  std::string platform = "Pascal";
  bool generate = false;
  bool tune = false;
  std::int64_t generate_nodes = 1 << 14;

  CliFlags flags;
  flags.AddString("input", &input, "Matrix Market file to solve");
  flags.AddBool("generate", &generate,
                "generate an RMAT input instead of reading a file");
  flags.AddInt("generate_nodes", &generate_nodes, "size of generated input");
  flags.AddString("algorithm", &algorithm_name,
                  "auto|Capellini|SyncFree|cuSPARSE|Level-Set|Hybrid");
  flags.AddString("platform", &platform, "Pascal|Volta|Turing");
  flags.AddBool("tune", &tune,
                "also autotune the hybrid warp/thread threshold (§4.4)");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == StatusCode::kNotFound ? 0 : 2;
  }

  // --- load or generate ------------------------------------------------
  Csr general;
  if (generate || input.empty()) {
    std::printf("generating an RMAT graph factor (%lld nodes)...\n",
                static_cast<long long>(generate_nodes));
    general = MakeRmatLower({.nodes = static_cast<Idx>(generate_nodes),
                             .edges_per_node = 3.0,
                             .a = 0.57,
                             .b = 0.19,
                             .c = 0.19,
                             .seed = 99});
  } else {
    auto coo = ReadMatrixMarketFile(input);
    if (!coo.ok()) {
      std::fprintf(stderr, "cannot read '%s': %s\n", input.c_str(),
                   coo.status().ToString().c_str());
      return 1;
    }
    if (coo->rows() != coo->cols()) {
      std::fprintf(stderr, "matrix must be square\n");
      return 1;
    }
    general = CooToCsr(std::move(*coo));
  }

  // --- the paper's dataset rule ------------------------------------------
  const Csr lower = ExtractLowerTriangular(general, {});
  const Analysis analysis =
      Analyze(lower, input.empty() ? "generated" : input);
  std::fputs(FormatAnalysis(analysis).c_str(), stdout);

  // --- pick algorithm and platform ----------------------------------------
  Algorithm algorithm = analysis.recommended;
  if (algorithm_name != "auto") {
    bool found = false;
    for (const Algorithm candidate :
         {Algorithm::kCapellini, Algorithm::kCapelliniTwoPhase,
          Algorithm::kSyncFree, Algorithm::kSyncFreeCsr, Algorithm::kCusparse,
          Algorithm::kLevelSet, Algorithm::kHybrid, Algorithm::kSerialCpu,
          Algorithm::kLevelSetCpu, Algorithm::kSyncFreeCpu}) {
      if (algorithm_name == AlgorithmName(candidate)) {
        algorithm = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
      return 2;
    }
  }
  SolverOptions options;
  for (const auto& device : sim::PaperPlatforms()) {
    if (device.name == platform) options.device = device;
  }

  // --- solve and verify ----------------------------------------------------
  const ReferenceProblem problem = MakeReferenceProblem(lower, 11);
  const Solver solver(lower, options);
  auto result = solver.Solve(algorithm, problem.b);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double error = MaxRelativeError(result->x, problem.x_true);
  std::printf("\nsolved with %s on %s\n", AlgorithmName(algorithm),
              options.device.name.c_str());
  std::printf("  solve time          %.4f ms%s\n", result->solve_ms,
              IsDeviceAlgorithm(algorithm) ? " (simulated)" : " (measured)");
  std::printf("  preprocessing       %.4f ms\n", result->preprocessing_ms);
  std::printf("  throughput          %.2f GFLOPS\n", result->gflops);
  if (IsDeviceAlgorithm(algorithm)) {
    std::printf("  bandwidth           %.2f GB/s\n", result->bandwidth_gbs);
    std::printf("  warp instructions   %llu\n",
                static_cast<unsigned long long>(
                    result->device_stats.instructions));
  }
  std::printf("  max relative error  %.2e\n", error);

  if (tune) {
    auto tuned = TuneHybridThreshold(lower, options.device);
    if (!tuned.ok()) {
      std::fprintf(stderr, "autotune failed: %s\n",
                   tuned.status().ToString().c_str());
      return 1;
    }
    std::printf("\nhybrid threshold autotune (§4.4):\n");
    for (const ThresholdProfile& profile : tuned->profile) {
      std::printf("  threshold %3d: %7.2f GFLOPS\n", profile.threshold,
                  profile.gflops);
    }
    std::printf("  best threshold %d (%.2f GFLOPS); pure Capellini %.2f, "
                "pure SyncFree %.2f\n",
                tuned->best_threshold, tuned->best_gflops,
                tuned->capellini_gflops, tuned->syncfree_gflops);
  }
  return error < 1e-8 ? 0 : 1;
}
