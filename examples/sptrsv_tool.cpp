// A command-line SpTRSV utility on Matrix Market files — the workflow a
// SuiteSparse user would run:
//
//   1. read an .mtx file (any square matrix),
//   2. apply the paper's dataset rule (keep the lower-left, unit diagonal),
//   3. print the structural indicators (alpha, beta, delta) and the
//      recommended algorithm,
//   4. solve against a manufactured right-hand side on a simulated GPU and
//      verify.
//
// With --generate it synthesizes an input first, so it runs out of the box:
//
//   ./examples/sptrsv_tool --generate
//   ./examples/sptrsv_tool --input=matrix.mtx --algorithm=Capellini
//
// Tracing (device algorithms only):
//
//   ./examples/sptrsv_tool --generate --trace=trace.json --trace_summary
//
// writes a Chrome trace-event file (load it at ui.perfetto.dev) and prints
// the stall-attribution table and solve-progress ramp.
//
// Serving (src/serve):
//
//   ./examples/sptrsv_tool --serve_replay=trace.json
//
// replays a request trace through the batching solve service over a generated
// corpus (the trace is generated and written to the path first if the file
// does not exist); --list-algorithms prints every algorithm the tool accepts.
// Streaming factors (src/update):
//
//   ./examples/sptrsv_tool --update_trace=mixed.json
//
// replays a MIXED solve/update trace: update events apply DeltaBatches to the
// registered factors mid-replay (epoch-swapped snapshots; in-flight solves
// finish on the pre-update matrix). A missing file gets a generated zipf
// trace with interleaved updates written to it first.
// Reliability (src/core/verify.h + src/sim/fault.h):
//
//   ./examples/sptrsv_tool --generate --check
//   ./examples/sptrsv_tool --generate --faults=plan.json --check
//   ./examples/sptrsv_tool --generate --faults=plan.json --reliable
//
// --check verifies the solution (NaN/Inf guard + relative residual) and
// prints the verdict; --faults replays a deterministic fault plan against
// the simulated device (same seed => same faults => same outcome); --reliable
// solves through the self-healing retry ladder and prints every attempt.
// Multi-device fleet (src/fleet):
//
//   ./examples/sptrsv_tool --generate --devices=4
//
// partitions the factor across 4 simulated GPUs (level-aware cuts), charges
// a comm model for every cross-partition dependency and prints per-device
// cycles + boundary traffic; composes with --faults (the same plan is
// replayed on every device, so row-scoped plans kill exactly the partition
// that owns the rows). Fleet reliability (DESIGN.md §4j):
//
//   ./examples/sptrsv_tool --generate --devices=4 --faults=plan.json --reliable
//
// enables the fleet recovery ladder: a killed partition is re-executed on a
// surviving device (or the host serial rung), every recovered range is
// verified, and a per-device recovery-counters table reports who failed
// over where.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "core/analysis.h"
#include "fleet/fleet.h"
#include "core/autotune.h"
#include "core/solver.h"
#include "core/verify.h"
#include "graph/levels.h"
#include "sim/fault.h"
#include "gen/corpus.h"
#include "gen/rmat.h"
#include "matrix/convert.h"
#include "matrix/mm_io.h"
#include "matrix/triangular.h"
#include "serve/persist.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "support/cli.h"
#include "support/timer.h"
#include "trace/session.h"

namespace {

/// --list-algorithms: one line per algorithm the --algorithm flag accepts.
int ListAlgorithms() {
  using namespace capellini;
  std::printf("%-16s %-6s %-9s\n", "name", "runs", "batchable");
  for (const Algorithm algorithm :
       {Algorithm::kCapellini, Algorithm::kCapelliniTwoPhase,
        Algorithm::kSyncFree, Algorithm::kSyncFreeCsr, Algorithm::kCusparse,
        Algorithm::kLevelSet, Algorithm::kHybrid, Algorithm::kSerialCpu,
        Algorithm::kLevelSetCpu, Algorithm::kSyncFreeCpu}) {
    // "batchable" = has a k-rhs kernel, so the solve service can coalesce
    // same-matrix requests into one launch.
    const bool batchable = algorithm == Algorithm::kCapellini ||
                           algorithm == Algorithm::kSyncFreeCsr;
    std::printf("%-16s %-6s %-9s\n", AlgorithmName(algorithm),
                IsDeviceAlgorithm(algorithm) ? "device" : "host",
                batchable ? "yes" : "no");
  }
  std::printf("\n'auto' picks Capellini when parallel granularity > 0.7, "
              "SyncFree otherwise (Figure 6).\n");
  return 0;
}

/// --serve_replay / --update_trace: replay `path` (generated and written
/// first if missing) through a MatrixRegistry + SolveService over a small
/// generated corpus. `with_updates` makes a generated trace carry interleaved
/// update events (streaming factors); a read trace replays whatever mix it
/// holds either way.
int ServeReplay(const std::string& path, const capellini::SolverOptions& options,
                bool with_updates, const std::string& analysis_cache_dir) {
  using namespace capellini;
  using namespace capellini::serve;

  CorpusOptions corpus_options;
  corpus_options.target_rows = 1200;
  const std::vector<NamedMatrix> corpus = HighGranularityCorpus(corpus_options);

  RequestTrace trace;
  auto read = ReadTraceJson(path);
  if (read.ok() && !read->requests.empty()) {
    trace = std::move(*read);
    std::printf("replaying %zu requests from %s\n", trace.requests.size(),
                path.c_str());
  } else {
    trace = GenerateZipfTrace(96, static_cast<int>(corpus.size()), 1.1, 0x51ab);
    if (with_updates) {
      InterleaveUpdates(trace, /*update_fraction=*/0.25,
                        /*deltas_per_update=*/6, /*structural_fraction=*/0.5,
                        0x51ab);
    }
    if (const Status status = WriteTraceJson(trace, path); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("no readable trace at %s — generated a zipf trace "
                "(%zu events%s) and wrote it there\n",
                path.c_str(), trace.requests.size(),
                with_updates ? ", updates interleaved" : "");
  }

  RegistryOptions registry_options;
  registry_options.analysis_cache_dir = analysis_cache_dir;
  MatrixRegistry registry(registry_options);
  Timer register_timer;
  std::vector<MatrixHandle> handles;
  for (const NamedMatrix& named : corpus) {
    auto handle = registry.Register(named.matrix, named.name, options);
    if (!handle.ok()) {
      std::fprintf(stderr, "register '%s' failed: %s\n", named.name.c_str(),
                   handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*handle);
  }
  if (!analysis_cache_dir.empty()) {
    const RegistrySnapshot snap = registry.Snapshot();
    std::printf("analysis cache (%s): %llu warm, %llu cold; %zu "
                "registrations in %.2f ms\n",
                analysis_cache_dir.c_str(),
                static_cast<unsigned long long>(snap.analysis_cache_hits),
                static_cast<unsigned long long>(snap.analysis_cache_misses),
                handles.size(), register_timer.ElapsedMs());
  }

  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.max_batch = 4;
  service_options.max_queue = trace.requests.size() + 1;
  service_options.start_paused = true;
  SolveService service(&registry, service_options);

  ReplayOptions replay_options;
  replay_options.preload = true;
  auto report = ReplayTrace(service, handles, trace, replay_options);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  service.Shutdown();

  std::printf("%zu completed, %zu rejected, %zu failed, %zu wrong; "
              "%.1f req/s (checksum %016llx)\n",
              report->completed, report->rejected, report->failed,
              report->wrong, report->requests_per_sec,
              static_cast<unsigned long long>(report->solution_checksum));
  if (report->updates != 0 || report->updates_rejected != 0) {
    std::printf("%zu updates applied (%llu rows re-leveled), "
                "%zu update rejections\n",
                report->updates,
                static_cast<unsigned long long>(report->rows_releveled),
                report->updates_rejected);
  }
  std::printf("\n");
  const RegistrySnapshot cache = registry.Snapshot();
  std::fputs(service.stats().ToTable(&cache).c_str(), stdout);
  return (report->wrong == 0 && report->failed == 0) ? 0 : 1;
}

/// Every pairwise flag-compatibility rule, in one place, checked after the
/// algorithm is resolved and before any work runs. Each rejection says which
/// flag to drop. (The trace/threads rule used to live inline in main; new
/// axes like --devices land here instead of growing more ad-hoc blocks.)
capellini::Status ValidateToolFlags(std::int64_t devices, std::int64_t threads,
                                    bool want_trace, bool tune, bool reliable,
                                    capellini::Algorithm algorithm,
                                    bool serve_replay, bool update_trace) {
  using namespace capellini;
  if (devices < 1) return InvalidArgument("--devices must be >= 1");
  if (threads < 0) return InvalidArgument("--threads must be >= 0");
  if (serve_replay && update_trace) {
    return InvalidArgument(
        "--serve_replay and --update_trace are both service replay modes; "
        "pick one (--update_trace replays mixed solve/update traces)");
  }
  if (update_trace) {
    if (want_trace) {
      return InvalidArgument(
          "--update_trace replays through the solve service, which has no "
          "per-solve trace sink; drop --trace/--trace_summary/--trace_csv");
    }
    if (devices > 1) {
      return InvalidArgument(
          "--update_trace drives the single-device solve service; drop "
          "--devices");
    }
    if (tune) {
      return InvalidArgument(
          "--tune sweeps the hybrid kernel outside the service; drop "
          "--update_trace or --tune");
    }
    if (reliable) {
      return InvalidArgument(
          "--reliable (the retry ladder) is a one-shot solve path; drop "
          "--update_trace or --reliable");
    }
  }
  if (want_trace && threads > 1) {
    return InvalidArgument(
        "--threads=" + std::to_string(threads) +
        " is incompatible with tracing — a trace sink observes one machine "
        "at a time. Drop --trace/--trace_summary/--trace_csv or use "
        "--threads=1.");
  }
  if (want_trace && !IsDeviceAlgorithm(algorithm)) {
    return InvalidArgument(
        std::string("--trace/--trace_summary need a simulated-device "
                    "algorithm, but '") +
        AlgorithmName(algorithm) +
        "' runs on the host CPU and has no device execution to trace (pick "
        "e.g. --algorithm=Capellini)");
  }
  if (devices > 1) {
    if (want_trace) {
      return InvalidArgument(
          "--trace/--trace_summary/--trace_csv observe ONE machine; drop "
          "--devices or trace a single-device run (per-device sinks are "
          "available programmatically via DeviceFleet::set_trace_sink)");
    }
    if (tune) {
      return InvalidArgument(
          "--tune sweeps the single-device hybrid kernel; drop --devices");
    }
    if (algorithm != Algorithm::kCapellini &&
        algorithm != Algorithm::kCapelliniTwoPhase) {
      return InvalidArgument(
          std::string("--devices needs a Capellini thread-per-row algorithm "
                      "(Capellini or Capellini2P), got '") +
          AlgorithmName(algorithm) + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace capellini;

  std::string input;
  std::string algorithm_name = "auto";
  std::string platform = "Pascal";
  std::string trace_path;
  std::string trace_csv_path;
  bool generate = false;
  bool tune = false;
  bool trace_summary = false;
  bool list_algorithms = false;
  std::string serve_replay_path;
  std::string update_trace_path;
  std::string faults_path;
  std::string analysis_cache_dir;
  bool check = false;
  bool reliable = false;
  std::int64_t generate_nodes = 1 << 14;
  std::int64_t threads = 0;
  std::int64_t devices = 1;

  CliFlags flags;
  flags.AddString("input", &input, "Matrix Market file to solve");
  flags.AddBool("generate", &generate,
                "generate an RMAT input instead of reading a file");
  flags.AddInt("generate_nodes", &generate_nodes, "size of generated input");
  flags.AddString("algorithm", &algorithm_name,
                  "auto|Capellini|SyncFree|cuSPARSE|Level-Set|Hybrid");
  flags.AddString("platform", &platform, "Pascal|Volta|Turing");
  flags.AddBool("tune", &tune,
                "also autotune the hybrid warp/thread threshold (§4.4)");
  flags.AddString("trace", &trace_path,
                  "write a Chrome trace-event JSON of the solve (open at "
                  "ui.perfetto.dev); device algorithms only");
  flags.AddBool("trace_summary", &trace_summary,
                "print the stall-attribution table and solve-progress ramp; "
                "device algorithms only");
  flags.AddString("trace_csv", &trace_csv_path,
                  "write the per-warp stall-attribution CSV");
  flags.AddInt("threads", &threads,
               "worker threads for --tune (0 = hardware concurrency); "
               "incompatible with tracing");
  flags.AddInt("devices", &devices,
               "solve across this many simulated GPUs (src/fleet; Capellini "
               "algorithms only, composes with --faults/--check)");
  flags.AddBool("list_algorithms", &list_algorithms,
                "print every accepted --algorithm value and exit");
  flags.AddString("serve_replay", &serve_replay_path,
                  "replay this request-trace JSON through the batching solve "
                  "service (generates + writes the trace if the file is "
                  "missing)");
  flags.AddString("update_trace", &update_trace_path,
                  "replay this MIXED solve/update trace JSON through the "
                  "solve service — update events stream DeltaBatches into "
                  "the registered factors (generates + writes a trace with "
                  "interleaved updates if the file is missing)");
  flags.AddString("analysis_cache", &analysis_cache_dir,
                  "persist/rehydrate analyzed level sets in this directory "
                  "(serve/persist.h): the first run on a factor is cold "
                  "(analyze + store), repeats are warm (zero host level "
                  "sweeps); also engages the registry cache in the replay "
                  "modes");
  flags.AddString("faults", &faults_path,
                  "inject deterministic faults from this plan JSON (see "
                  "sim/fault.h; generates + writes a sample plan if the file "
                  "is missing)");
  flags.AddBool("check", &check,
                "verify the solution (NaN/Inf guard + relative residual) and "
                "print the verdict");
  flags.AddBool("reliable", &reliable,
                "solve through the self-healing retry ladder (implies "
                "--check) and print every attempt; with --devices=K, "
                "enable the fleet recovery ladder instead");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == StatusCode::kNotFound ? 0 : 2;
  }
  if (list_algorithms) return ListAlgorithms();
  if (!serve_replay_path.empty() || !update_trace_path.empty()) {
    // Replay modes bypass the algorithm resolution below (the service picks
    // per-matrix), but every pairwise flag rule still runs — with a
    // placeholder algorithm, since none was resolved.
    const bool early_want_trace =
        !trace_path.empty() || !trace_csv_path.empty() || trace_summary;
    if (const Status status = ValidateToolFlags(
            devices, threads, early_want_trace, tune, reliable,
            Algorithm::kCapellini, !serve_replay_path.empty(),
            !update_trace_path.empty());
        !status.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   std::string(status.message()).c_str());
      return 2;
    }
    SolverOptions serve_options;
    for (const auto& device : sim::PaperPlatforms()) {
      if (device.name == platform) serve_options.device = device;
    }
    const bool with_updates = !update_trace_path.empty();
    return ServeReplay(with_updates ? update_trace_path : serve_replay_path,
                       serve_options, with_updates, analysis_cache_dir);
  }

  // --- load or generate ------------------------------------------------
  Csr general;
  if (generate || input.empty()) {
    std::printf("generating an RMAT graph factor (%lld nodes)...\n",
                static_cast<long long>(generate_nodes));
    general = MakeRmatLower({.nodes = static_cast<Idx>(generate_nodes),
                             .edges_per_node = 3.0,
                             .a = 0.57,
                             .b = 0.19,
                             .c = 0.19,
                             .seed = 99});
  } else {
    auto coo = ReadMatrixMarketFile(input);
    if (!coo.ok()) {
      std::fprintf(stderr, "cannot read '%s': %s\n", input.c_str(),
                   coo.status().ToString().c_str());
      return 1;
    }
    if (coo->rows() != coo->cols()) {
      std::fprintf(stderr, "matrix must be square\n");
      return 1;
    }
    general = CooToCsr(std::move(*coo));
  }

  // --- the paper's dataset rule ------------------------------------------
  const Csr lower = ExtractLowerTriangular(general, {});
  const std::string matrix_name = input.empty() ? "generated" : input;
  Analysis analysis;
  if (analysis_cache_dir.empty()) {
    analysis = Analyze(lower, matrix_name);
  } else {
    // Preprocessing as an avoidable cost: rehydrate from the cache when the
    // stored level sets still match the factor's structure, otherwise pay
    // the cold analysis once and persist it for the next run.
    const serve::AnalysisCache cache(analysis_cache_dir);
    Timer analysis_timer;
    auto persisted = cache.Load(matrix_name, lower);
    if (persisted.ok()) {
      analysis = AssembleAnalysis(
          lower, matrix_name,
          BuildLevelSetsFromLevelOf(std::move(persisted->level_of)));
      std::printf("analysis cache: warm — rehydrated in %.2f ms (zero host "
                  "level sweeps)\n",
                  analysis_timer.ElapsedMs());
    } else {
      analysis = Analyze(lower, matrix_name);
      const double cold_ms = analysis_timer.ElapsedMs();
      if (const Status status = cache.Store(matrix_name, lower,
                                            analysis.levels, cold_ms);
          !status.ok()) {
        std::fprintf(stderr, "cannot store analysis: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("analysis cache: cold (%s) — analyzed in %.2f ms and "
                  "stored to %s\n",
                  StatusCodeName(persisted.status().code()), cold_ms,
                  cache.PathFor(matrix_name).c_str());
    }
  }
  std::fputs(FormatAnalysis(analysis).c_str(), stdout);

  // --- pick algorithm and platform ----------------------------------------
  Algorithm algorithm = analysis.recommended;
  if (algorithm_name != "auto") {
    bool found = false;
    for (const Algorithm candidate :
         {Algorithm::kCapellini, Algorithm::kCapelliniTwoPhase,
          Algorithm::kSyncFree, Algorithm::kSyncFreeCsr, Algorithm::kCusparse,
          Algorithm::kLevelSet, Algorithm::kHybrid, Algorithm::kSerialCpu,
          Algorithm::kLevelSetCpu, Algorithm::kSyncFreeCpu}) {
      if (algorithm_name == AlgorithmName(candidate)) {
        algorithm = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
      return 2;
    }
  }
  // The fleet only runs the Capellini thread-per-row kernels; with 'auto'
  // don't bounce the user off a SyncFree recommendation, just pick Capellini.
  // An EXPLICIT incompatible --algorithm still errors in ValidateToolFlags.
  if (devices > 1 && algorithm_name == "auto") algorithm = Algorithm::kCapellini;
  SolverOptions options;
  for (const auto& device : sim::PaperPlatforms()) {
    if (device.name == platform) options.device = device;
  }

  // --- flag compatibility (one place, every rule) --------------------------
  const bool want_trace =
      !trace_path.empty() || !trace_csv_path.empty() || trace_summary;
  if (const Status status =
          ValidateToolFlags(devices, threads, want_trace, tune, reliable,
                            algorithm, /*serve_replay=*/false,
                            /*update_trace=*/false);
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", std::string(status.message()).c_str());
    return 2;
  }
  // --- fault injection -----------------------------------------------------
  sim::FaultPlan fault_plan;
  bool have_fault_plan = false;
  sim::FaultInjector injector;  // must outlive the Solver's launches
  if (!faults_path.empty()) {
    auto read_plan = sim::ReadFaultPlanJson(faults_path);
    if (read_plan.ok()) {
      fault_plan = *read_plan;
    } else {
      // A runnable starting point: ~2 expected dropped publishes per solve.
      fault_plan.seed = 7;
      fault_plan.drop_publish_rate = 2.0 / static_cast<double>(lower.rows());
      if (const Status status =
              sim::WriteFaultPlanJson(fault_plan, faults_path);
          !status.ok()) {
        std::fprintf(stderr, "cannot write fault plan: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("no readable fault plan at %s — wrote a sample plan there\n",
                  faults_path.c_str());
    }
    have_fault_plan = true;
    injector.Reseed(fault_plan);
    if (devices == 1) options.kernel_options.fault_injector = &injector;
    std::printf("injecting faults: %s\n",
                sim::FaultPlanSummary(fault_plan).c_str());
  }

  std::optional<trace::TraceSession> trace_session;
  if (want_trace) {
    trace::TraceSession::Options trace_options;
    if (algorithm == Algorithm::kLevelSet || algorithm == Algorithm::kSyncFree) {
      // These kernels publish through the f64 x vector, not get_value flags.
      trace_options.publish_param_index = 5;
      trace_options.publish_elem_size = 8;
    }
    trace_session.emplace(trace_options);
    options.kernel_options.trace_sink = trace_session->sink();
  }

  // --- solve and verify ----------------------------------------------------
  const ReferenceProblem problem = MakeReferenceProblem(lower, 11);
  const Solver solver(lower, options);

  // --- multi-device fleet path ---------------------------------------------
  if (devices > 1) {
    fleet::FleetConfig fleet_config;
    fleet_config.num_devices = static_cast<int>(devices);
    fleet_config.device = options.device;
    fleet_config.algorithm = algorithm == Algorithm::kCapelliniTwoPhase
                                 ? kernels::DeviceAlgorithm::kCapelliniTwoPhase
                                 : kernels::DeviceAlgorithm::kCapelliniWritingFirst;
    if (threads > 0) fleet_config.host_threads = static_cast<int>(threads);
    // --reliable on the fleet path = the §4j recovery ladder: failed
    // partitions re-execute on a survivor (or the host rung) with every
    // accepted range and the stitched solution verified.
    fleet_config.recovery.enabled = reliable;
    fleet::DeviceFleet device_fleet(fleet_config);
    // Every device replays the SAME plan: plans scoped by rows/warps (global
    // coordinates) then hit exactly the device that owns those rows.
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
    if (have_fault_plan) {
      for (int d = 0; d < fleet_config.num_devices; ++d) {
        injectors.push_back(std::make_unique<sim::FaultInjector>());
        injectors.back()->Reseed(fault_plan);
        device_fleet.set_fault_injector(d, injectors.back().get());
      }
    }
    const fleet::FleetSolver fleet_solver(&device_fleet);
    auto result = fleet_solver.Solve(solver, problem.b);
    if (!result.ok()) {
      std::fprintf(stderr, "fleet solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nfleet solve: %lld devices, %s cuts, %s on %s\n",
                static_cast<long long>(devices),
                fleet::PartitionStrategyName(fleet_config.strategy),
                AlgorithmName(algorithm), options.device.name.c_str());
    std::printf("  %-3s %-14s %10s %12s %7s %7s %10s\n", "dev", "rows",
                "cycles", "est cost ms", "msg in", "msg out", "comm stall");
    for (std::size_t d = 0; d < result->stats.devices.size(); ++d) {
      const fleet::DeviceStats& ds = result->stats.devices[d];
      const std::string rows = "[" + std::to_string(ds.row_begin) + "," +
                               std::to_string(ds.row_end) + ")";
      std::printf("  %-3zu %-14s %10llu %12.4f %7llu %7llu %10llu%s%s\n", d,
                  rows.c_str(), static_cast<unsigned long long>(ds.cycles),
                  ds.est_cost_ms,
                  static_cast<unsigned long long>(ds.in_messages),
                  static_cast<unsigned long long>(ds.out_messages),
                  static_cast<unsigned long long>(ds.comm_delay_cycles),
                  static_cast<int>(d) == result->stats.critical_device
                      ? "  <- critical"
                      : "",
                  ds.status.ok() ? "" : "  FAILED");
    }
    if (reliable) {
      std::printf("  recovery: %zu failover%s, %llu rows re-executed, "
                  "%llu device-rung + %llu host-rung recoveries\n",
                  result->stats.failovers.size(),
                  result->stats.failovers.size() == 1 ? "" : "s",
                  static_cast<unsigned long long>(
                      result->stats.rows_reexecuted),
                  static_cast<unsigned long long>(
                      result->stats.device_rung_recoveries),
                  static_cast<unsigned long long>(
                      result->stats.host_rung_recoveries));
      if (!result->stats.failovers.empty()) {
        std::printf("  %-3s %-9s %-10s %-12s %10s\n", "dev", "cause",
                    "attempts", "recovered on", "residual");
        for (const fleet::FailoverRecord& record : result->stats.failovers) {
          std::string attempts;
          for (std::size_t i = 0; i < record.attempts.size(); ++i) {
            if (i > 0) attempts += ",";
            attempts += record.attempts[i] == fleet::kHostExecutor
                            ? "host"
                            : std::to_string(record.attempts[i]);
          }
          std::printf("  %-3d %-9s %-10s %-12s %10.2e%s\n", record.device,
                      record.upstream_induced ? "upstream" : "device",
                      attempts.c_str(),
                      record.recovered_on == fleet::kHostExecutor
                          ? "host"
                          : ("device " + std::to_string(record.recovered_on))
                                .c_str(),
                      record.residual,
                      record.verified ? "" : "  NOT RECOVERED");
        }
      }
    }
    std::printf("  makespan %llu cycles (%.4f ms simulated), %lld cross "
                "edges, %llu messages, %llu comm bytes\n",
                static_cast<unsigned long long>(result->stats.makespan_cycles),
                result->stats.exec_ms,
                static_cast<long long>(result->stats.cross_edges),
                static_cast<unsigned long long>(result->stats.total_messages),
                static_cast<unsigned long long>(result->stats.total_comm_bytes));
    if (!result->status.ok()) {
      std::printf("  fleet status: %s\n", result->status.ToString().c_str());
      return 1;
    }
    const double fleet_error = MaxRelativeError(result->x, problem.x_true);
    std::printf("  max relative error  %.2e\n", fleet_error);
    bool fleet_check = true;
    if (reliable && !result->stats.failovers.empty()) {
      // Recovery already ran the final stitched verification; report it
      // instead of re-verifying.
      fleet_check = result->verification.passed;
      std::printf("  residual            %.2e (bound %.0e) — %s\n",
                  result->verification.residual,
                  VerifyOptions{}.residual_bound,
                  fleet_check ? "VERIFIED (recovered)" : "FAILED VERIFICATION");
    } else if (check || reliable) {
      const Verification verdict = VerifySolution(lower, problem.b, result->x);
      fleet_check = verdict.passed;
      std::printf("  residual            %.2e (bound %.0e) — %s\n",
                  verdict.residual, VerifyOptions{}.residual_bound,
                  fleet_check ? "VERIFIED" : "FAILED VERIFICATION");
    }
    return fleet_error < 1e-8 && fleet_check ? 0 : 1;
  }

  SolveResult solved;
  bool ladder_verified = true;
  if (reliable) {
    auto result = solver.SolveReliable(algorithm, problem.b);
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nretry ladder (%zu attempt%s, %.4f ms verifying):\n",
                result->attempts.size(),
                result->attempts.size() == 1 ? "" : "s", result->verify_ms);
    for (const AttemptRecord& attempt : result->attempts) {
      std::printf("  %-20s %-18s residual %.2e %s\n",
                  AlgorithmName(attempt.algorithm),
                  StatusCodeName(attempt.status), attempt.residual,
                  attempt.verified ? "VERIFIED" : "rejected");
    }
    solved = std::move(result->solve);
    algorithm = result->final_algorithm;
    ladder_verified = result->verified;
  } else {
    auto result = solver.Solve(algorithm, problem.b);
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    solved = std::move(*result);
  }
  const double error = MaxRelativeError(solved.x, problem.x_true);
  std::printf("\nsolved with %s on %s\n", AlgorithmName(algorithm),
              options.device.name.c_str());
  std::printf("  solve time          %.4f ms%s\n", solved.solve_ms,
              IsDeviceAlgorithm(algorithm) ? " (simulated)" : " (measured)");
  std::printf("  preprocessing       %.4f ms\n", solved.preprocessing_ms);
  std::printf("  throughput          %.2f GFLOPS\n", solved.gflops);
  if (IsDeviceAlgorithm(algorithm)) {
    std::printf("  bandwidth           %.2f GB/s\n", solved.bandwidth_gbs);
    std::printf("  warp instructions   %llu\n",
                static_cast<unsigned long long>(
                    solved.device_stats.instructions));
  }
  std::printf("  max relative error  %.2e\n", error);

  bool check_passed = true;
  if (check || reliable) {
    const Verification verdict = VerifySolution(lower, problem.b, solved.x);
    check_passed = verdict.passed && ladder_verified;
    std::printf("  residual            %.2e (bound %.0e) — %s\n",
                verdict.residual, VerifyOptions{}.residual_bound,
                check_passed ? "VERIFIED" : "FAILED VERIFICATION");
  }
  if (!faults_path.empty()) {
    const sim::FaultCounts counts = injector.counts();
    std::printf("  injected faults     drop=%llu flip=%llu stuck=%llu "
                "delay=%llu\n",
                static_cast<unsigned long long>(
                    counts[sim::FaultKind::kDropPublish]),
                static_cast<unsigned long long>(
                    counts[sim::FaultKind::kBitFlipStore]),
                static_cast<unsigned long long>(
                    counts[sim::FaultKind::kStuckWarp]),
                static_cast<unsigned long long>(
                    counts[sim::FaultKind::kMemDelay]));
  }

  if (trace_session) {
    if (trace_summary) {
      std::printf("\n%s", trace_session->attribution().SummaryTable().c_str());
      const trace::SolveTimeline& timeline = trace_session->timeline();
      std::printf("solve progress: 50%% of rows by cycle %llu, 90%% by "
                  "%llu, all by %llu (%zu publishes",
                  static_cast<unsigned long long>(
                      timeline.CycleAtFraction(0.5, lower.rows())),
                  static_cast<unsigned long long>(
                      timeline.CycleAtFraction(0.9, lower.rows())),
                  static_cast<unsigned long long>(
                      timeline.CycleAtFraction(1.0, lower.rows())),
                  timeline.records().size());
      if (timeline.unresolved() > 0) {
        std::printf(", %llu unresolved",
                    static_cast<unsigned long long>(timeline.unresolved()));
      }
      std::printf(")\n");
    }
    if (!trace_path.empty()) {
      if (const Status status = trace_session->WriteChromeTrace(trace_path);
          !status.ok()) {
        std::fprintf(stderr, "cannot write trace: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("wrote Chrome trace to %s (%zu events; open at "
                  "ui.perfetto.dev)\n",
                  trace_path.c_str(), trace_session->chrome().event_count());
    }
    if (!trace_csv_path.empty()) {
      if (const Status status =
              trace_session->attribution().WriteCsv(trace_csv_path);
          !status.ok()) {
        std::fprintf(stderr, "cannot write trace CSV: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("wrote per-warp attribution CSV to %s\n",
                  trace_csv_path.c_str());
    }
  }

  if (tune) {
    AutotuneOptions tune_options;
    // Tracing forces the serial sweep; otherwise fan candidates across the
    // requested worker count (0 = hardware concurrency). The tuned result is
    // identical either way.
    tune_options.threads = want_trace ? 1 : static_cast<int>(threads);
    auto tuned = TuneHybridThreshold(lower, options.device, tune_options);
    if (!tuned.ok()) {
      std::fprintf(stderr, "autotune failed: %s\n",
                   tuned.status().ToString().c_str());
      return 1;
    }
    std::printf("\nhybrid threshold autotune (§4.4):\n");
    for (const ThresholdProfile& profile : tuned->profile) {
      std::printf("  threshold %3d: %7.2f GFLOPS\n", profile.threshold,
                  profile.gflops);
    }
    std::printf("  best threshold %d (%.2f GFLOPS); pure Capellini %.2f, "
                "pure SyncFree %.2f\n",
                tuned->best_threshold, tuned->best_gflops,
                tuned->capellini_gflops, tuned->syncfree_gflops);
  }
  return error < 1e-8 && check_passed ? 0 : 1;
}
