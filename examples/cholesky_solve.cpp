// Direct-method example (paper §1: SpTRSV is the building block of direct
// solvers): solve the SPD system A y = c where A = L * L^T is given by its
// Cholesky factor L.
//
// Both triangular halves are registered once in a MatrixRegistry — L itself
// and the reversed L^T (ReverseSystem turns the upper factor into an
// equivalent lower system) — so the structural analysis for each factor is
// computed exactly once no matter how many right-hand sides follow:
//
//  * forward substitution  L z = c   -> registry solver, CapelliniSpTRSV
//  * backward substitution L^T y = z -> registry solver on the reversed
//    factor; cross-checked byte-for-byte against the one-shot
//    SolveUpperSystem path and against a hand-written host backward solve
//
// The residual || A y - c || verifies the pipeline end to end.
//
//   ./examples/cholesky_solve
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "gen/level_structured.h"
#include "matrix/convert.h"
#include "matrix/triangular.h"
#include "serve/registry.h"
#include "support/rng.h"

namespace {

using namespace capellini;

/// Backward substitution on U = L^T (CSR, diagonal first in each row).
void SolveUpper(const Csr& upper, std::span<const Val> z, std::span<Val> y) {
  const Idx n = upper.rows();
  for (Idx i = n - 1; i >= 0; --i) {
    const auto cols = upper.RowCols(i);
    const auto vals = upper.RowVals(i);
    Val sum = 0.0;
    // Diagonal is the first entry; everything after it is to the right.
    for (std::size_t j = 1; j < cols.size(); ++j) {
      sum += vals[j] * y[static_cast<std::size_t>(cols[j])];
    }
    y[static_cast<std::size_t>(i)] =
        (z[static_cast<std::size_t>(i)] - sum) / vals[0];
  }
}

/// y += A * x with A = L * L^T applied factor by factor.
void ApplyA(const Csr& lower, const Csr& upper, std::span<const Val> x,
            std::span<Val> y) {
  std::vector<Val> tmp(x.size());
  upper.SpMv(x, tmp);   // tmp = L^T x
  lower.SpMv(tmp, y);   // y = L tmp
}

}  // namespace

int main() {
  // The Cholesky factor: a sparse unit-lower matrix (so A = L L^T is SPD).
  const Csr lower = MakeLevelStructured({.num_levels = 12,
                                         .components_per_level = 1500,
                                         .avg_nnz_per_row = 3.0,
                                         .size_jitter = 0.2,
                                         .interleave = false,
                                         .seed = 2024});
  const Csr upper = TransposeCsr(lower);
  const Idx n = lower.rows();
  std::printf("Cholesky-factored SPD system: n = %d, nnz(L) = %lld\n", n,
              static_cast<long long>(lower.nnz()));

  // Manufacture c = A * y_true.
  Rng rng(5);
  std::vector<Val> y_true(static_cast<std::size_t>(n));
  for (auto& v : y_true) v = rng.NextDouble(-1.0, 1.0);
  std::vector<Val> c(static_cast<std::size_t>(n));
  ApplyA(lower, upper, y_true, c);

  // Register both factors once; every later solve reuses the memoized
  // analysis (levels, granularity, algorithm verdict).
  serve::MatrixRegistry registry;
  auto forward_handle = registry.Register(lower, "cholesky-L");
  auto backward_handle =
      registry.Register(ReverseSystem(upper), "cholesky-Lt-reversed");
  if (!forward_handle.ok() || !backward_handle.ok()) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }
  auto forward_entry = registry.Acquire(*forward_handle);
  auto backward_entry = registry.Acquire(*backward_handle);
  if (!forward_entry.ok() || !backward_entry.ok()) {
    std::fprintf(stderr, "acquire failed\n");
    return 1;
  }
  std::printf("registered both factors: analysis %.2f ms (L) + %.2f ms "
              "(reversed L^T), done once\n",
              (*forward_entry)->analysis_ms, (*backward_entry)->analysis_ms);

  // Forward solve on the simulated GPU through the registry solver.
  const Solver& forward_solver = (*forward_entry)->solver;
  auto forward = forward_solver.Solve(Algorithm::kCapellini, c);
  if (!forward.ok()) {
    std::fprintf(stderr, "forward solve failed: %s\n",
                 forward.status().ToString().c_str());
    return 1;
  }
  std::printf("forward  (L z = c)    %s, %.2f GFLOPS, %.4f simulated ms\n",
              AlgorithmName(Algorithm::kCapellini), forward->gflops,
              forward->solve_ms);

  // Backward solve through the registry's pre-reversed factor: reverse the
  // right-hand side, solve the equivalent lower system, reverse back.
  const Solver& backward_solver = (*backward_entry)->solver;
  std::vector<Val> z_reversed(static_cast<std::size_t>(n));
  ReverseVector(forward->x, z_reversed);
  auto backward = backward_solver.Solve(Algorithm::kCapellini, z_reversed);
  if (!backward.ok()) {
    std::fprintf(stderr, "backward solve failed: %s\n",
                 backward.status().ToString().c_str());
    return 1;
  }
  std::vector<Val> y(static_cast<std::size_t>(n));
  ReverseVector(backward->x, y);
  std::printf("backward (L^T y = z)  %s via registry (reversed factor), "
              "%.2f GFLOPS\n",
              AlgorithmName(Algorithm::kCapellini), backward->gflops);

  // The one-shot upper-triangular API must produce bit-identical results —
  // it performs exactly the same reversal internally.
  auto one_shot = SolveUpperSystem(upper, forward->x, Algorithm::kCapellini, {});
  if (!one_shot.ok()) {
    std::fprintf(stderr, "SolveUpperSystem failed: %s\n",
                 one_shot.status().ToString().c_str());
    return 1;
  }
  if (one_shot->x != y) {
    std::fprintf(stderr,
                 "registry backward solve differs from SolveUpperSystem\n");
    return 1;
  }
  std::printf("one-shot SolveUpperSystem cross-check: bit-identical\n");

  // Cross-check with a hand-written host backward substitution.
  std::vector<Val> y_host(static_cast<std::size_t>(n));
  SolveUpper(upper, forward->x, y_host);
  std::printf("host backward cross-check: %.2e\n",
              MaxRelativeError(y, y_host));

  const double error = MaxRelativeError(y, y_true);
  std::printf("max relative error vs manufactured solution: %.2e\n", error);

  // Independent residual check.
  std::vector<Val> ay(static_cast<std::size_t>(n));
  ApplyA(lower, upper, y, ay);
  double residual = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < ay.size(); ++i) {
    residual += (ay[i] - c[i]) * (ay[i] - c[i]);
    norm += c[i] * c[i];
  }
  std::printf("relative residual ||Ay - c|| / ||c||: %.2e\n",
              std::sqrt(residual / norm));
  return error < 1e-8 ? 0 : 1;
}
