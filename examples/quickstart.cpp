// Quickstart: build a sparse lower-triangular system, analyze its structure
// with the paper's indicators, and solve it with CapelliniSpTRSV on the
// simulated GPU — then cross-check against the host serial solver.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/analysis.h"
#include "core/solver.h"
#include "gen/random_lower.h"
#include "matrix/triangular.h"

int main() {
  using namespace capellini;

  // 1. A sparse unit-lower-triangular matrix: 20,000 rows, ~3 nonzeros per
  //    row referencing arbitrary earlier rows (graph-ish structure — the
  //    regime CapelliniSpTRSV targets).
  Csr lower = MakeRandomLower({.rows = 20'000,
                               .avg_strict_nnz_per_row = 2.0,
                               .window = 0,
                               .empty_row_fraction = 0.2,
                               .seed = 42});

  // 2. Analyze: levels, alpha/beta, and Equation 1's parallel granularity.
  const Analysis analysis = Analyze(lower, "quickstart");
  std::fputs(FormatAnalysis(analysis).c_str(), stdout);

  // 3. Manufacture a right-hand side with a known solution.
  const ReferenceProblem problem = MakeReferenceProblem(lower, 7);

  // 4. Solve on the simulated Pascal GPU with the recommended algorithm.
  Solver solver(std::move(lower));
  const Algorithm algorithm = solver.Recommend();
  auto result = solver.Solve(algorithm, problem.b);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s on %s:\n", AlgorithmName(algorithm),
              solver.options().device.name.c_str());
  std::printf("  simulated execution  %.4f ms\n", result->solve_ms);
  std::printf("  throughput           %.2f GFLOPS\n", result->gflops);
  std::printf("  modeled bandwidth    %.2f GB/s\n", result->bandwidth_gbs);
  std::printf("  preprocessing        %.4f ms (Capellini needs none)\n",
              result->preprocessing_ms);

  // 5. Verify against the known solution and the host serial solver.
  const double error = MaxRelativeError(result->x, problem.x_true);
  std::printf("  max relative error   %.2e\n", error);

  auto serial = solver.Solve(Algorithm::kSerialCpu, problem.b);
  if (!serial.ok()) return 1;
  std::printf("  vs host serial       %.2e\n",
              MaxRelativeError(result->x, serial->x));
  return error < 1e-10 ? 0 : 1;
}
