// Runs every SpTRSV algorithm on one matrix across the three simulated GPU
// generations of the paper's Table 3 — a miniature of the paper's
// cross-platform evaluation, and a demonstration of the multi-device API.
//
//   ./examples/platform_comparison
#include <cstdio>

#include "core/solver.h"
#include "gen/proxies.h"
#include "matrix/triangular.h"
#include "support/table.h"

int main() {
  using namespace capellini;

  const NamedMatrix named = MakeProxy(ProxyId::kBayer01);
  std::printf(
      "matrix %s: %d rows, %lld nnz, parallel granularity %.2f\n\n",
      named.name.c_str(), named.stats.rows,
      static_cast<long long>(named.stats.nnz),
      named.stats.parallel_granularity);
  const ReferenceProblem problem = MakeReferenceProblem(named.matrix, 3);

  const Algorithm algorithms[] = {Algorithm::kLevelSet, Algorithm::kSyncFree,
                                  Algorithm::kCusparse,
                                  Algorithm::kCapelliniTwoPhase,
                                  Algorithm::kCapellini, Algorithm::kHybrid};

  TextTable table({"Algorithm", "Pascal GFLOPS", "Volta GFLOPS",
                   "Turing GFLOPS"});
  for (const Algorithm algorithm : algorithms) {
    std::vector<std::string> row = {AlgorithmName(algorithm)};
    for (const auto& device : sim::PaperPlatforms()) {
      SolverOptions options;
      options.device = device;
      const Solver solver(named.matrix, options);
      auto result = solver.Solve(algorithm, problem.b);
      if (!result.ok()) {
        row.push_back(result.status().ToString());
        continue;
      }
      const double error = MaxRelativeError(result->x, problem.x_true);
      row.push_back(TextTable::Num(result->gflops, 2) +
                    (error < 1e-10 ? "" : " (WRONG)"));
    }
    table.AddRow(row);
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nCapelliniSpTRSV should lead on every platform for this matrix\n"
      "(granularity %.2f > 0.7); Level-Set pays one launch per level.\n",
      named.stats.parallel_granularity);
  return 0;
}
