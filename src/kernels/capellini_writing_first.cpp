// Algorithm 5: Writing-First CapelliniSpTRSV — the optimized kernel and the
// paper's headline contribution. One thread per component, no preprocessing,
// CSR order, a single structured loop:
//
//   while true:                  (outer; all live lanes share this PC)
//     col = csrColIdx[j]
//     while get_value[col]:      (drain every published element)
//       left_sum += val[j] * x[col]; j++; col = csrColIdx[j]
//     if col == i:               (diagonal reached -> publish and exit)
//       x[i] = (b[i] - left_sum) / val[end-1]; fence; get_value[i] = 1
//
// Unlike the naive kernel there is no unbounded spin at a single element:
// every pass through the outer loop re-polls, producers publish as soon as
// their diagonal is reached ("writing first"), and finished lanes exit, so
// the warp always makes progress — deadlock-free by construction.
#include "kernels/common.h"

namespace capellini::kernels {
namespace {

// `range` = the fleet's partitioned launch: local thread t becomes global row
// kParamAux0 + t and kParamM carries the partition's global row_end. The body
// is instruction-for-instruction the plain kernel — left_sum still drains in
// strict CSR j order, so the computed values are bit-identical to a whole-
// matrix launch no matter how arrivals interleave. range=false emits exactly
// the pre-fleet instruction stream (cycle counts of existing launches are
// unchanged).
sim::Kernel BuildWritingFirstImpl(bool range) {
  using sim::Special;
  sim::KernelBuilder b(range ? "capellini_writing_first_range"
                             : "capellini_writing_first",
                       kNumParams);

  const int tid = b.R("tid");
  const int m = b.R("m");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  const int f_sum = b.F("sum");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  if (range) {
    b.LdParam(addr, kParamAux0);  // partition row_begin
    b.Add(tid, tid, addr);        // tid is a GLOBAL row from here on
  }
  b.LdParam(m, kParamM);  // range: global row_end
  b.SetLt(pred, tid, m);
  b.ExitIfZero(pred);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);

  // j = csrRowPtr[i] (line 5); end caches csrRowPtr[i+1] for the diagonal.
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);  // line 4

  sim::Label outer = b.NewLabel();
  sim::Label inner = b.NewLabel();
  sim::Label after_inner = b.NewLabel();
  sim::Label next_pass = b.NewLabel();

  b.Bind(outer);  // line 6 (the diagonal terminates the loop, lines 12-18)
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);  // line 7

  b.Bind(inner);  // lines 8-11: while get_value[col] == true
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);
  b.Ld4(g, gvaddr);
  b.Brz(g, after_inner, after_inner);
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FFma(f_sum, f_val, f_x);  // line 9
  b.AddI(j, j, 1);            // line 10
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);  // line 11
  b.Jmp(inner);

  b.Bind(after_inner);  // line 12: if i == col (diagonal reached)
  b.SetEq(pred, col, tid);
  b.Brz(pred, next_pass, next_pass);

  // Lines 13-18: write first — publish the component immediately.
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, rx);
  b.St8F(addr, f_b);  // line 14
  b.Fence();          // line 15
  b.MovI(one, 1);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);  // line 16
  b.Exit();          // lines 17-18

  // Only the failed-pass backedge is a busy-wait here: the inner re-polls
  // share their loads with productive draining, the paper's key saving.
  b.BeginSpin();
  b.Bind(next_pass);
  b.Jmp(outer);
  b.EndSpin();
  return b.Build();
}

}  // namespace

sim::Kernel BuildCapelliniWritingFirstKernel() {
  return BuildWritingFirstImpl(/*range=*/false);
}

sim::Kernel BuildCapelliniWritingFirstRangeKernel() {
  return BuildWritingFirstImpl(/*range=*/true);
}

}  // namespace capellini::kernels
