#include "kernels/common.h"

// Factories live in their own translation units; this file anchors the
// header for the build.
