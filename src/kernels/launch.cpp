#include "kernels/launch.h"
#include <array>

#include <algorithm>
#include <mutex>

#include "graph/levels.h"
#include "kernels/common.h"
#include "matrix/convert.h"
#include "matrix/csc.h"
#include "sim/machine.h"
#include "sim/memory.h"
#include "support/timer.h"

namespace capellini::kernels {
namespace {

/// Device images of the shared CSR arrays plus the standard vectors.
struct DeviceProblem {
  sim::DevicePtr row_ptr = 0;
  sim::DevicePtr col_idx = 0;
  sim::DevicePtr val = 0;
  sim::DevicePtr b = 0;
  sim::DevicePtr x = 0;
  sim::DevicePtr get_value = 0;
};

DeviceProblem UploadCsrProblem(const Csr& lower, std::span<const Val> b,
                               sim::DeviceMemory& memory) {
  DeviceProblem dev;
  const auto rows = static_cast<std::uint64_t>(lower.rows());
  const auto nnz = static_cast<std::uint64_t>(lower.nnz());
  dev.row_ptr = memory.AllocArray<Idx>(rows + 1);
  dev.col_idx = memory.AllocArray<Idx>(std::max<std::uint64_t>(1, nnz));
  dev.val = memory.AllocArray<Val>(std::max<std::uint64_t>(1, nnz));
  dev.b = memory.AllocArray<Val>(rows);
  dev.x = memory.AllocArray<Val>(rows);
  dev.get_value = memory.AllocArray<std::int32_t>(rows);
  memory.CopyToDevice(dev.row_ptr, lower.row_ptr());
  memory.CopyToDevice(dev.col_idx, lower.col_idx());
  memory.CopyToDevice(dev.val, lower.val());
  memory.CopyToDevice(dev.b, b);
  memory.Fill(dev.x, rows * sizeof(Val), 0);
  memory.Fill(dev.get_value, rows * sizeof(std::int32_t), 0);
  return dev;
}

std::vector<std::int64_t> BaseParams(const Csr& lower, const DeviceProblem& dev) {
  std::vector<std::int64_t> params(kNumParams, 0);
  params[kParamM] = lower.rows();
  params[kParamRowPtr] = static_cast<std::int64_t>(dev.row_ptr);
  params[kParamColIdx] = static_cast<std::int64_t>(dev.col_idx);
  params[kParamVal] = static_cast<std::int64_t>(dev.val);
  params[kParamB] = static_cast<std::int64_t>(dev.b);
  params[kParamX] = static_cast<std::int64_t>(dev.x);
  params[kParamGetValue] = static_cast<std::int64_t>(dev.get_value);
  return params;
}

const sim::Kernel& CachedKernel(DeviceAlgorithm algorithm) {
  switch (algorithm) {
    case DeviceAlgorithm::kSerialRow: {
      static const sim::Kernel kernel = BuildSerialRowKernel();
      return kernel;
    }
    case DeviceAlgorithm::kLevelSet: {
      static const sim::Kernel kernel = BuildLevelSetKernel();
      return kernel;
    }
    case DeviceAlgorithm::kSyncFreeCsc: {
      static const sim::Kernel kernel = BuildSyncFreeCscKernel();
      return kernel;
    }
    case DeviceAlgorithm::kSyncFreeWarpCsr: {
      static const sim::Kernel kernel = BuildSyncFreeWarpCsrKernel();
      return kernel;
    }
    case DeviceAlgorithm::kCusparseProxy: {
      static const sim::Kernel kernel = BuildCusparseProxyKernel();
      return kernel;
    }
    case DeviceAlgorithm::kCapelliniNaive: {
      static const sim::Kernel kernel = BuildCapelliniNaiveKernel();
      return kernel;
    }
    case DeviceAlgorithm::kCapelliniTwoPhase: {
      static const sim::Kernel kernel = BuildCapelliniTwoPhaseKernel();
      return kernel;
    }
    case DeviceAlgorithm::kCapelliniWritingFirst: {
      static const sim::Kernel kernel = BuildCapelliniWritingFirstKernel();
      return kernel;
    }
    case DeviceAlgorithm::kHybrid: {
      static const sim::Kernel kernel = BuildHybridKernel();
      return kernel;
    }
  }
  CAPELLINI_CHECK_MSG(false, "unknown algorithm");
  static const sim::Kernel unreachable;
  return unreachable;
}

}  // namespace

const char* DeviceAlgorithmName(DeviceAlgorithm algorithm) {
  switch (algorithm) {
    case DeviceAlgorithm::kSerialRow:
      return "SerialRow";
    case DeviceAlgorithm::kLevelSet:
      return "Level-Set";
    case DeviceAlgorithm::kSyncFreeCsc:
      return "SyncFree";
    case DeviceAlgorithm::kSyncFreeWarpCsr:
      return "SyncFree-CSR";
    case DeviceAlgorithm::kCusparseProxy:
      return "cuSPARSE";
    case DeviceAlgorithm::kCapelliniNaive:
      return "Capellini-Naive";
    case DeviceAlgorithm::kCapelliniTwoPhase:
      return "Capellini-TwoPhase";
    case DeviceAlgorithm::kCapelliniWritingFirst:
      return "Capellini";
    case DeviceAlgorithm::kHybrid:
      return "Hybrid";
  }
  return "unknown";
}

std::vector<DeviceAlgorithm> AllDeviceAlgorithms() {
  return {DeviceAlgorithm::kSerialRow,
          DeviceAlgorithm::kLevelSet,
          DeviceAlgorithm::kSyncFreeCsc,
          DeviceAlgorithm::kSyncFreeWarpCsr,
          DeviceAlgorithm::kCusparseProxy,
          DeviceAlgorithm::kCapelliniNaive,
          DeviceAlgorithm::kCapelliniTwoPhase,
          DeviceAlgorithm::kCapelliniWritingFirst,
          DeviceAlgorithm::kHybrid};
}

Expected<DeviceSolveResult> SolveOnDevice(DeviceAlgorithm algorithm,
                                          const Csr& lower,
                                          std::span<const Val> b,
                                          const sim::DeviceConfig& config,
                                          const SolveOptions& options_in) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument(
        "SpTRSV needs a lower-triangular matrix with a full diagonal");
  }
  if (b.size() != static_cast<std::size_t>(lower.rows())) {
    return InvalidArgument("b has the wrong size");
  }
  if (lower.rows() == 0) return InvalidArgument("empty system");

  const std::int64_t m = lower.rows();
  DeviceSolveResult result;
  sim::DeviceMemory memory;
  sim::Machine machine(config, &memory);
  machine.set_trace_sink(options_in.trace_sink);
  machine.set_fault_injector(options_in.fault_injector);
  // Clamp the block size to what the device can host (matters for the tiny
  // test device, whose SMs hold fewer warps than a default 256-thread block).
  SolveOptions options = options_in;
  options.threads_per_block = std::min(options.threads_per_block,
                                       config.max_warps_per_sm * 32);

  sim::LaunchStats total;
  Timer preprocessing_timer;

  switch (algorithm) {
    case DeviceAlgorithm::kSerialRow: {
      const DeviceProblem dev = UploadCsrProblem(lower, b, memory);
      const auto params = BaseParams(lower, dev);
      result.preprocessing_ms = 0.0;
      auto stats = machine.Launch(CachedKernel(algorithm),
                                  {.num_threads = 32,
                                   .threads_per_block = options.threads_per_block},
                                  params);
      if (!stats.ok()) return stats.status();
      total = *stats;
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }

    case DeviceAlgorithm::kLevelSet: {
      // Preprocessing (the expensive part the paper criticizes): the full
      // level-set build — levels, per-level row counts, the reordered `order`
      // array (Algorithm 2's layer/layer_num/order) AND the level-permuted
      // copy of the matrix that makes per-level launches coalesced.
      preprocessing_timer.Reset();
      const LevelSets levels = ComputeLevelSets(lower);
      const Csr permuted = GatherRowsByLevel(lower, levels);
      result.preprocessing_ms = preprocessing_timer.ElapsedMs();

      const DeviceProblem dev = UploadCsrProblem(permuted, b, memory);
      const sim::DevicePtr dev_order =
          memory.AllocArray<Idx>(static_cast<std::uint64_t>(m));
      memory.CopyToDevice(dev_order, std::span<const Idx>(levels.order));

      auto params = BaseParams(permuted, dev);
      params[kParamAux0] = static_cast<std::int64_t>(dev_order);
      // One launch per level; the launch boundary is the synchronization.
      for (Idx level = 0; level < levels.num_levels(); ++level) {
        params[kParamAux1] = levels.level_ptr[static_cast<std::size_t>(level)];
        params[kParamAux2] = levels.LevelSize(level);
        auto stats = machine.Launch(
            CachedKernel(algorithm),
            {.num_threads = levels.LevelSize(level),
             .threads_per_block = options.threads_per_block},
            params);
        if (!stats.ok()) return stats.status();
        total += *stats;
      }
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }

    case DeviceAlgorithm::kSyncFreeCsc: {
      // Liu et al.'s solver takes CSC input, so the format conversion is the
      // caller's job, not preprocessing (their measured preprocessing is just
      // the in-degree analysis plus buffer setup — why Table 1 shows it as
      // the cheapest by far).
      const Csc csc = CsrToCsc(lower);
      preprocessing_timer.Reset();
      std::vector<std::int32_t> in_degree(static_cast<std::size_t>(m));
      for (Idx r = 0; r < m; ++r) {
        in_degree[static_cast<std::size_t>(r)] = lower.RowLen(r) - 1;
      }
      result.preprocessing_ms = preprocessing_timer.ElapsedMs();

      const auto rows = static_cast<std::uint64_t>(m);
      const auto nnz = static_cast<std::uint64_t>(csc.nnz());
      DeviceProblem dev;
      dev.row_ptr = memory.AllocArray<Idx>(rows + 1);  // CSC col_ptr
      dev.col_idx = memory.AllocArray<Idx>(nnz);       // CSC row_idx
      dev.val = memory.AllocArray<Val>(nnz);
      dev.b = memory.AllocArray<Val>(rows);
      dev.x = memory.AllocArray<Val>(rows);
      dev.get_value = memory.AllocArray<std::int32_t>(rows);  // dep counters
      const sim::DevicePtr dev_left_sum = memory.AllocArray<Val>(rows);
      memory.CopyToDevice(dev.row_ptr, csc.col_ptr());
      memory.CopyToDevice(dev.col_idx, csc.row_idx());
      memory.CopyToDevice(dev.val, csc.val());
      memory.CopyToDevice(dev.b, b);
      memory.Fill(dev.x, rows * sizeof(Val), 0);
      memory.CopyToDevice(dev.get_value, std::span<const std::int32_t>(in_degree));
      memory.Fill(dev_left_sum, rows * sizeof(Val), 0);

      auto params = BaseParams(lower, dev);
      params[kParamAux0] = static_cast<std::int64_t>(dev_left_sum);
      auto stats = machine.Launch(CachedKernel(algorithm),
                                  {.num_threads = m * 32,
                                   .threads_per_block = options.threads_per_block},
                                  params);
      if (!stats.ok()) return stats.status();
      total = *stats;
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }

    case DeviceAlgorithm::kSyncFreeWarpCsr: {
      // Preprocessing: only the solved-flag array (allocated and zeroed in
      // UploadCsrProblem); nothing to measure beyond noise.
      const DeviceProblem dev = UploadCsrProblem(lower, b, memory);
      result.preprocessing_ms = 0.0;
      const auto params = BaseParams(lower, dev);
      auto stats = machine.Launch(CachedKernel(algorithm),
                                  {.num_threads = m * 32,
                                   .threads_per_block = options.threads_per_block},
                                  params);
      if (!stats.ok()) return stats.status();
      total = *stats;
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }

    case DeviceAlgorithm::kCusparseProxy: {
      // csrsv2_analysis equivalent: a level analysis that yields the
      // execution order (cheaper than the full Level-Set preprocessing,
      // which additionally materializes per-level launch metadata).
      preprocessing_timer.Reset();
      const LevelSets levels = ComputeLevelSets(lower);
      result.preprocessing_ms = preprocessing_timer.ElapsedMs();

      const DeviceProblem dev = UploadCsrProblem(lower, b, memory);
      const sim::DevicePtr dev_order =
          memory.AllocArray<Idx>(static_cast<std::uint64_t>(m));
      memory.CopyToDevice(dev_order, std::span<const Idx>(levels.order));
      auto params = BaseParams(lower, dev);
      params[kParamAux0] = static_cast<std::int64_t>(dev_order);
      auto stats = machine.Launch(CachedKernel(algorithm),
                                  {.num_threads = m * 32,
                                   .threads_per_block = options.threads_per_block},
                                  params);
      if (!stats.ok()) return stats.status();
      total = *stats;
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }

    case DeviceAlgorithm::kCapelliniNaive:
    case DeviceAlgorithm::kCapelliniTwoPhase:
    case DeviceAlgorithm::kCapelliniWritingFirst: {
      // No preprocessing — the CapelliniSpTRSV design goal.
      const DeviceProblem dev = UploadCsrProblem(lower, b, memory);
      result.preprocessing_ms = 0.0;
      const auto params = BaseParams(lower, dev);
      auto stats = machine.Launch(CachedKernel(algorithm),
                                  {.num_threads = m,
                                   .threads_per_block = options.threads_per_block},
                                  params);
      if (!stats.ok()) return stats.status();
      total = *stats;
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }

    case DeviceAlgorithm::kHybrid: {
      // Preprocessing (§4.4): one scan over row lengths to build the task
      // list — warp-mode task per long row, thread-mode task per pack of up
      // to 32 consecutive short rows.
      preprocessing_timer.Reset();
      std::vector<Idx> task_row;
      std::vector<Idx> task_info;
      const Idx threshold = options.hybrid_row_length_threshold;
      for (Idx r = 0; r < m;) {
        if (lower.RowLen(r) >= threshold) {
          task_row.push_back(r);
          task_info.push_back(0);  // warp mode
          ++r;
        } else {
          Idx count = 0;
          while (r + count < m && count < 32 &&
                 lower.RowLen(r + count) < threshold) {
            ++count;
          }
          task_row.push_back(r);
          task_info.push_back(count);  // thread mode
          r += count;
        }
      }
      result.preprocessing_ms = preprocessing_timer.ElapsedMs();

      const DeviceProblem dev = UploadCsrProblem(lower, b, memory);
      const auto num_tasks = static_cast<std::int64_t>(task_row.size());
      const sim::DevicePtr dev_task_row =
          memory.AllocArray<Idx>(static_cast<std::uint64_t>(num_tasks));
      const sim::DevicePtr dev_task_info =
          memory.AllocArray<Idx>(static_cast<std::uint64_t>(num_tasks));
      memory.CopyToDevice(dev_task_row, std::span<const Idx>(task_row));
      memory.CopyToDevice(dev_task_info, std::span<const Idx>(task_info));

      auto params = BaseParams(lower, dev);
      params[kParamAux0] = static_cast<std::int64_t>(dev_task_row);
      params[kParamAux1] = static_cast<std::int64_t>(dev_task_info);
      auto stats = machine.Launch(CachedKernel(algorithm),
                                  {.num_threads = num_tasks * 32,
                                   .threads_per_block = options.threads_per_block},
                                  params);
      if (!stats.ok()) return stats.status();
      total = *stats;
      result.x.resize(static_cast<std::size_t>(m));
      memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
      break;
    }
  }

  result.stats = total;
  result.exec_ms = config.CyclesToMs(total.cycles);
  const double seconds = result.exec_ms / 1e3;
  if (seconds > 0.0) {
    result.gflops =
        2.0 * static_cast<double>(lower.nnz()) / seconds / 1e9;
    result.bandwidth_gbs =
        static_cast<double>(total.dram_bytes) / seconds / 1e9;
  }
  return result;
}

namespace {

/// Resolves MarkPublish store addresses back to rows and records each local
/// row's first publish cycle. Observation only — attached via MultiSink next
/// to any caller-supplied sink.
class PublishCaptureSink final : public trace::TraceSink {
 public:
  PublishCaptureSink(sim::DevicePtr gv_base, Idx row_begin, Idx row_end,
                     std::vector<std::uint64_t>* cycles)
      : gv_base_(gv_base),
        row_begin_(row_begin),
        row_end_(row_end),
        cycles_(cycles) {}

  void OnPublish(const trace::PublishInfo& info) override {
    if (info.addr < gv_base_) return;
    const std::uint64_t row = (info.addr - gv_base_) / 4;
    if (row < static_cast<std::uint64_t>(row_begin_) ||
        row >= static_cast<std::uint64_t>(row_end_)) {
      return;
    }
    std::uint64_t& slot =
        (*cycles_)[row - static_cast<std::uint64_t>(row_begin_)];
    if (slot == UINT64_MAX) slot = info.cycle;
  }

 private:
  sim::DevicePtr gv_base_;
  Idx row_begin_;
  Idx row_end_;
  std::vector<std::uint64_t>* cycles_;
};

const sim::Kernel& CachedRangeKernel(DeviceAlgorithm algorithm) {
  if (algorithm == DeviceAlgorithm::kCapelliniTwoPhase) {
    static const sim::Kernel kernel = BuildCapelliniTwoPhaseRangeKernel();
    return kernel;
  }
  static const sim::Kernel kernel = BuildCapelliniWritingFirstRangeKernel();
  return kernel;
}

}  // namespace

Expected<RangeSolveResult> SolveRangeOnDevice(
    DeviceAlgorithm algorithm, const Csr& lower, std::span<const Val> b,
    Idx row_begin, Idx row_end, std::span<const RangeArrival> arrivals,
    sim::Machine& machine, sim::DeviceMemory& memory,
    const SolveOptions& options_in) {
  if (algorithm != DeviceAlgorithm::kCapelliniTwoPhase &&
      algorithm != DeviceAlgorithm::kCapelliniWritingFirst) {
    return InvalidArgument(
        "SolveRangeOnDevice supports the Capellini thread-per-row algorithms "
        "only");
  }
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument(
        "SpTRSV needs a lower-triangular matrix with a full diagonal");
  }
  const Idx m = lower.rows();
  if (b.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("b has the wrong size");
  }
  if (row_begin < 0 || row_end > m || row_begin >= row_end) {
    return InvalidArgument("bad row range");
  }
  for (const RangeArrival& arrival : arrivals) {
    if (arrival.row < 0 || arrival.row >= m ||
        (arrival.row >= row_begin && arrival.row < row_end)) {
      return InvalidArgument("arrival row outside the remote range");
    }
  }

  memory.Reset();
  const DeviceProblem dev = UploadCsrProblem(lower, b, memory);
  auto params = BaseParams(lower, dev);
  params[kParamM] = row_end;      // global end of the local range
  params[kParamAux0] = row_begin; // local thread 0's global row

  std::vector<sim::ExternalStore> stores;
  stores.reserve(arrivals.size());
  for (const RangeArrival& arrival : arrivals) {
    sim::ExternalStore store;
    store.cycle = arrival.cycle;
    store.f64_addr =
        dev.x + 8ull * static_cast<std::uint64_t>(arrival.row);
    store.f64_value = arrival.value;
    store.i32_addr =
        dev.get_value + 4ull * static_cast<std::uint64_t>(arrival.row);
    store.i32_value = 1;
    stores.push_back(store);
  }
  machine.set_external_stores(std::move(stores));

  RangeSolveResult result;
  result.publish_cycles.assign(
      static_cast<std::size_t>(row_end - row_begin), UINT64_MAX);
  PublishCaptureSink capture(dev.get_value, row_begin, row_end,
                             &result.publish_cycles);
  trace::MultiSink multi;
  multi.Add(&capture);
  multi.Add(options_in.trace_sink);
  machine.set_trace_sink(&multi);
  machine.set_fault_injector(options_in.fault_injector);

  const int threads_per_block =
      std::min(options_in.threads_per_block,
               machine.config().max_warps_per_sm * 32);
  auto stats = machine.Launch(CachedRangeKernel(algorithm),
                              {.num_threads = row_end - row_begin,
                               .threads_per_block = threads_per_block},
                              params);
  machine.set_trace_sink(nullptr);
  machine.set_fault_injector(nullptr);
  if (!stats.ok()) return stats.status();

  result.stats = *stats;
  result.exec_ms = machine.config().CyclesToMs(result.stats.cycles);
  result.x.resize(static_cast<std::size_t>(m));
  memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
  // A dropped publish still fires OnPublish (the bandwidth was spent, the
  // value wasn't), so the flag array is the ground truth: rows whose flag
  // never landed stay UINT64_MAX regardless of the captured cycle.
  std::vector<std::int32_t> flags(
      static_cast<std::size_t>(row_end - row_begin));
  memory.CopyFromDevice(
      std::span<std::int32_t>(flags),
      dev.get_value + 4ull * static_cast<std::uint64_t>(row_begin));
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] == 0) result.publish_cycles[i] = UINT64_MAX;
  }
  return result;
}

const char* MrhsAlgorithmName(MrhsAlgorithm algorithm) {
  switch (algorithm) {
    case MrhsAlgorithm::kCapelliniMrhs:
      return "Capellini-mrhs";
    case MrhsAlgorithm::kSyncFreeMrhs:
      return "SyncFree-mrhs";
  }
  return "unknown";
}

Expected<MrhsSolveResult> SolveMrhsOnDevice(MrhsAlgorithm algorithm,
                                            const Csr& lower,
                                            std::span<const Val> b, int k,
                                            const sim::DeviceConfig& config,
                                            const SolveOptions& options_in) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument(
        "SpTRSM needs a lower-triangular matrix with a full diagonal");
  }
  if (k < 1 || k > 6) return InvalidArgument("k must be in [1, 6]");
  const std::int64_t m = lower.rows();
  if (m == 0) return InvalidArgument("empty system");
  if (b.size() != static_cast<std::size_t>(m) * static_cast<std::size_t>(k)) {
    return InvalidArgument("B must be column-major rows x k");
  }

  // Per-k kernel caches (kernels are parameter-free given k). The mutex makes
  // first-use population safe when solves are fanned across a thread pool;
  // after that the reference is read-only.
  static std::mutex mrhs_cache_mutex;
  static std::array<sim::Kernel, 7> capellini_cache;
  static std::array<sim::Kernel, 7> syncfree_cache;
  sim::Kernel& cached = [&]() -> sim::Kernel& {
    std::lock_guard<std::mutex> lock(mrhs_cache_mutex);
    sim::Kernel& slot =
        algorithm == MrhsAlgorithm::kCapelliniMrhs
            ? capellini_cache[static_cast<std::size_t>(k)]
            : syncfree_cache[static_cast<std::size_t>(k)];
    if (slot.code.empty()) {
      slot = algorithm == MrhsAlgorithm::kCapelliniMrhs
                 ? BuildCapelliniWritingFirstMrhsKernel(k)
                 : BuildSyncFreeWarpMrhsKernel(k);
    }
    return slot;
  }();

  SolveOptions options = options_in;
  options.threads_per_block =
      std::min(options.threads_per_block, config.max_warps_per_sm * 32);

  sim::DeviceMemory memory;
  sim::Machine machine(config, &memory);
  machine.set_trace_sink(options_in.trace_sink);
  machine.set_fault_injector(options_in.fault_injector);
  const auto rows = static_cast<std::uint64_t>(m);
  const auto nnz = static_cast<std::uint64_t>(lower.nnz());
  const auto vec = rows * static_cast<std::uint64_t>(k);

  DeviceProblem dev;
  dev.row_ptr = memory.AllocArray<Idx>(rows + 1);
  dev.col_idx = memory.AllocArray<Idx>(nnz);
  dev.val = memory.AllocArray<Val>(nnz);
  dev.b = memory.AllocArray<Val>(vec);
  dev.x = memory.AllocArray<Val>(vec);
  dev.get_value = memory.AllocArray<std::int32_t>(rows);
  memory.CopyToDevice(dev.row_ptr, lower.row_ptr());
  memory.CopyToDevice(dev.col_idx, lower.col_idx());
  memory.CopyToDevice(dev.val, lower.val());
  memory.CopyToDevice(dev.b, b);
  memory.Fill(dev.x, vec * sizeof(Val), 0);
  memory.Fill(dev.get_value, rows * sizeof(std::int32_t), 0);

  const auto params = BaseParams(lower, dev);
  const std::int64_t num_threads =
      algorithm == MrhsAlgorithm::kCapelliniMrhs ? m : m * 32;
  auto stats = machine.Launch(cached,
                              {.num_threads = num_threads,
                               .threads_per_block = options.threads_per_block},
                              params);
  if (!stats.ok()) return stats.status();

  MrhsSolveResult result;
  result.stats = *stats;
  result.x.resize(static_cast<std::size_t>(vec));
  memory.CopyFromDevice(std::span<Val>(result.x), dev.x);
  result.exec_ms = config.CyclesToMs(result.stats.cycles);
  const double seconds = result.exec_ms / 1e3;
  if (seconds > 0.0) {
    result.gflops = 2.0 * static_cast<double>(lower.nnz()) * k / seconds / 1e9;
    result.bandwidth_gbs =
        static_cast<double>(result.stats.dram_bytes) / seconds / 1e9;
  }
  return result;
}

}  // namespace capellini::kernels
