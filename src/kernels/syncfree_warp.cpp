// Algorithm 3: the warp-level synchronization-free SpTRSV on CSR (the
// row-oriented formulation of Dufrechou & Ezzatti, structurally identical to
// the paper's Algorithm 3). One warp computes one component; each lane
// handles a 32-stride slice of the row's off-diagonal elements, busy-waiting
// on the producer flag; a shuffle tree reduces the partial sums (the shared
// array of Alg 3 lines 13-17); lane 0 publishes the component.
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildSyncFreeWarpCsrKernel() {
  using sim::Special;
  sim::KernelBuilder b("syncfree_warp_csr", kNumParams);

  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int i = b.R("i");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  const int f_sum = b.F("sum");
  const int f_t = b.F("t");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  b.AndI(lane, tid, 31);
  b.ShrI(i, tid, 5);  // one warp per component (Alg 3 line 3)

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);

  b.ShlI(addr, i, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);
  b.Add(j, j, lane);  // j = csrRowPtr[i] + thread_id (line 8)

  sim::Label elem_loop = b.NewLabel();
  sim::Label reduce = b.NewLabel();
  sim::Label spin = b.NewLabel();
  sim::Label got = b.NewLabel();
  sim::Label fin = b.NewLabel();

  b.Bind(elem_loop);  // step WARP_SIZE over the off-diagonal elements
  b.AddI(pred, end, -1);
  b.SetLt(pred, j, pred);
  b.Brz(pred, reduce, reduce);

  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);

  b.BeginSpin();
  b.Bind(spin);  // lines 10-11: busy-wait for the producer warp
  b.Ld4(g, gvaddr);
  b.Brnz(g, got, got);
  b.Jmp(spin);
  b.EndSpin();

  b.Bind(got);  // line 12: sum += csrVal[j] * x[col]
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FFma(f_sum, f_val, f_x);
  b.AddI(j, j, 32);
  b.Jmp(elem_loop);

  b.Bind(reduce);  // lines 13-17 via a shuffle tree (all 32 lanes rejoin here)
  for (int delta = 16; delta >= 1; delta /= 2) {
    b.ShflDownF(f_t, f_sum, delta);
    b.FAdd(f_sum, f_sum, f_t);
  }

  b.SetNeI(pred, lane, 0);
  b.Brnz(pred, fin, fin);  // lines 18-22 run on lane 0 only

  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rx);
  b.St8F(addr, f_b);  // x[i] = xi (line 20)
  b.Fence();          // threadfence (line 21)
  b.MovI(one, 1);
  b.ShlI(addr, i, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);  // get_value[i] = true (line 22)

  b.Bind(fin);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
