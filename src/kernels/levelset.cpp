// Algorithm 2 (level-set SpTRSV): one thread per component within one level.
// The launcher performs one kernel launch per level; the inter-level
// synchronization of the paper's Algorithm 2 is realized by launch
// boundaries, whose cost is the per-launch overhead of the device config.
//
// The matrix arrays (kParamRowPtr/kParamColIdx/kParamVal) are the LEVEL-
// PERMUTED copy built by the preprocessing (rows of one level contiguous, so
// neighbouring threads read neighbouring rows — the standard level-set
// implementation trick, and a large part of why its preprocessing is heavy).
// Column indices still refer to original row numbers, as do b and x.
//
// Aux params: kParamAux0 = order array (permuted position -> original row),
//             kParamAux1 = offset of this level inside the permutation,
//             kParamAux2 = number of rows in this level.
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildLevelSetKernel() {
  using sim::Special;
  sim::KernelBuilder b("levelset", kNumParams);

  const int tid = b.R("tid");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int order = b.R("order");
  const int level_base = b.R("level_base");
  const int level_size = b.R("level_size");
  const int id = b.R("id");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int f_sum = b.F("sum");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(level_size, kParamAux2);
  b.SetLt(pred, tid, level_size);
  b.ExitIfZero(pred);  // grid is rounded up to full warps

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(order, kParamAux0);
  b.LdParam(level_base, kParamAux1);

  // id = order[level_base + tid]   (Alg 2 line 3) — original row number,
  // used for b and x.
  const int pos = b.R("pos");
  b.Add(pos, level_base, tid);
  b.ShlI(addr, pos, 2);
  b.Add(addr, addr, order);
  b.Ld4(id, addr);

  // Row bounds come from the level-permuted matrix at `pos` (coalesced).
  b.ShlI(addr, pos, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);  // left_sum = 0 (line 4)

  sim::Label loop = b.NewLabel();
  sim::Label loop_done = b.NewLabel();

  b.Bind(loop);  // lines 5-6: accumulate everything left of the diagonal
  b.AddI(pred, end, -1);
  b.SetLt(pred, j, pred);
  b.Brz(pred, loop_done, loop_done);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);  // components of earlier levels are complete
  b.FFma(f_sum, f_val, f_x);
  b.AddI(j, j, 1);
  b.Jmp(loop);

  b.Bind(loop_done);  // lines 7-8
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, id, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, id, 3);
  b.Add(addr, addr, rx);
  b.MarkPublish();
  b.St8F(addr, f_b);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
