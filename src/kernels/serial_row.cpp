// Algorithm 1 (basic serial SpTRSV) as a single-thread device kernel.
// Used to validate the interpreter against the host serial solver and as the
// no-parallelism reference point in the ablation bench.
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildSerialRowKernel() {
  using sim::Special;
  sim::KernelBuilder b("serial_row", kNumParams);

  const int tid = b.R("tid");
  const int m = b.R("m");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int i = b.R("i");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int f_sum = b.F("sum");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  // Only thread 0 runs; the launcher launches a single warp.
  b.S2R(tid, Special::kGlobalTid);
  b.SetEqI(pred, tid, 0);
  b.ExitIfZero(pred);

  b.LdParam(m, kParamM);
  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.MovI(i, 0);

  sim::Label row_loop = b.NewLabel();
  sim::Label done = b.NewLabel();
  sim::Label inner_loop = b.NewLabel();
  sim::Label inner_done = b.NewLabel();

  b.Bind(row_loop);  // for i = 0 .. m-1 (Alg 1 line 1)
  b.SetLt(pred, i, m);
  b.Brz(pred, done, done);

  // j = row_ptr[i]; end = row_ptr[i+1]
  b.ShlI(addr, i, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);  // left_sum = 0 (line 2)

  b.Bind(inner_loop);  // lines 3-4: all elements but the diagonal
  b.AddI(pred, end, -1);
  b.SetLt(pred, j, pred);
  b.Brz(pred, inner_done, inner_done);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.FFma(f_sum, f_val, f_x);  // left_sum += val[j] * x[col]
  b.AddI(j, j, 1);
  b.Jmp(inner_loop);

  b.Bind(inner_done);  // lines 5-6: x[i] = (b[i] - left_sum) / diag
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rx);
  b.MarkPublish();
  b.St8F(addr, f_b);
  b.AddI(i, i, 1);
  b.Jmp(row_loop);

  b.Bind(done);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
