// Shared conventions for the SpTRSV device kernels.
//
// All kernels receive their arguments through the same parameter slots so the
// launcher can set up any of them uniformly. Addresses are device byte
// offsets; index arrays are int32, value arrays are f64 (double precision, as
// evaluated in the paper).
#pragma once

#include "sim/kernel.h"

namespace capellini::kernels {

/// Parameter-slot convention (values are device addresses unless noted).
enum Param : int {
  kParamM = 0,         // number of rows (scalar)
  kParamRowPtr = 1,    // CSR row_ptr (or CSC col_ptr for the CSC kernel)
  kParamColIdx = 2,    // CSR col_idx (or CSC row_idx)
  kParamVal = 3,       // nonzero values
  kParamB = 4,         // right-hand side
  kParamX = 5,         // solution vector
  kParamGetValue = 6,  // i32 flags: component solved (or dep counters)
  kParamAux0 = 7,      // kernel-specific
  kParamAux1 = 8,      // kernel-specific
  kParamAux2 = 9,      // kernel-specific
  kNumParams = 10,
};

// Kernel factories. Each returns a freshly built program; the launcher caches
// them. See the .cpp files for line-by-line commentary against the paper's
// pseudocode (Algorithms 1-5).
sim::Kernel BuildSerialRowKernel();            // Algorithm 1 (one thread)
sim::Kernel BuildLevelSetKernel();             // Algorithm 2 (per-level launch)
sim::Kernel BuildSyncFreeWarpCsrKernel();      // Algorithm 3 (warp per row, CSR)
sim::Kernel BuildSyncFreeCscKernel();          // Liu et al. CSC formulation
sim::Kernel BuildCapelliniNaiveKernel();       // deliberately deadlocking
sim::Kernel BuildCapelliniTwoPhaseKernel();    // Algorithm 4
sim::Kernel BuildCapelliniWritingFirstKernel();// Algorithm 5
sim::Kernel BuildCusparseProxyKernel();        // black-box baseline proxy
sim::Kernel BuildHybridKernel();               // §4.4 warp/thread hybrid

// Partition-range variants for the multi-device fleet (src/fleet): the launch
// covers global rows [kParamAux0, kParamM) with row_end - row_begin threads;
// full global arrays are uploaded per device and remote dependencies arrive
// as delayed external stores (sim::ExternalStore). Bit-identical values to
// the whole-matrix kernels by construction (same CSR drain order).
sim::Kernel BuildCapelliniWritingFirstRangeKernel();
sim::Kernel BuildCapelliniTwoPhaseRangeKernel();

// Multiple right-hand sides (SpTRSM, Liu et al. CCPE'17 direction); k in
// [1, 6]. B and X are column-major n x k.
sim::Kernel BuildCapelliniWritingFirstMrhsKernel(int k);
sim::Kernel BuildSyncFreeWarpMrhsKernel(int k);

}  // namespace capellini::kernels
