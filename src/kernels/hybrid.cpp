// The §4.4 "future work" fusion: warp-level and thread-level granularity in
// one kernel, selected per consecutive-row set by a preprocessing pass.
//
// The host builds a TASK LIST ordered by row: a warp-mode task is one long
// row (solved Alg-3 style by the whole warp); a thread-mode task is a pack of
// up to 32 consecutive short rows (solved Writing-First style, one lane per
// row). One warp per task. Ordering by row preserves the in-order-dispatch
// invariant, so cross-task busy-waits are deadlock-free; intra-task
// dependencies are handled by the Writing-First control flow.
//
// Aux params: kParamAux0 = task_row (i32 first row of each task),
//             kParamAux1 = task_info (i32; 0 = warp mode, >0 = lane count).
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildHybridKernel() {
  using sim::Special;
  sim::KernelBuilder b("hybrid", kNumParams);

  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int w = b.R("w");
  const int row0 = b.R("row0");
  const int cnt = b.R("cnt");
  const int i = b.R("i");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int taskrow = b.R("taskrow");
  const int taskinfo = b.R("taskinfo");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  const int f_sum = b.F("sum");
  const int f_t = b.F("t");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  b.AndI(lane, tid, 31);
  b.ShrI(w, tid, 5);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);
  b.LdParam(taskrow, kParamAux0);
  b.LdParam(taskinfo, kParamAux1);

  b.ShlI(addr, w, 2);
  b.Add(addr, addr, taskrow);
  b.Ld4(row0, addr);
  b.ShlI(addr, w, 2);
  b.Add(addr, addr, taskinfo);
  b.Ld4(cnt, addr);

  sim::Label thread_mode = b.NewLabel();
  b.Brnz(cnt, thread_mode, thread_mode);  // warp-uniform: no divergence

  // ======================= Warp mode (Algorithm 3) ========================
  {
    b.Mov(i, row0);
    b.ShlI(addr, i, 2);
    b.Add(addr, addr, rp);
    b.Ld4(j, addr);
    b.AddI(addr, addr, 4);
    b.Ld4(end, addr);
    b.FMovI(f_sum, 0.0);
    b.Add(j, j, lane);

    sim::Label elem_loop = b.NewLabel();
    sim::Label reduce = b.NewLabel();
    sim::Label spin = b.NewLabel();
    sim::Label got = b.NewLabel();
    sim::Label fin = b.NewLabel();

    b.Bind(elem_loop);
    b.AddI(pred, end, -1);
    b.SetLt(pred, j, pred);
    b.Brz(pred, reduce, reduce);
    b.ShlI(addr, j, 2);
    b.Add(addr, addr, ci);
    b.Ld4(col, addr);
    b.ShlI(gvaddr, col, 2);
    b.Add(gvaddr, gvaddr, gv);

    b.BeginSpin();
    b.Bind(spin);  // producers live in earlier tasks: safe busy-wait
    b.Ld4(g, gvaddr);
    b.Brnz(g, got, got);
    b.Jmp(spin);
    b.EndSpin();

    b.Bind(got);
    b.ShlI(addr, col, 3);
    b.Add(addr, addr, rx);
    b.Ld8F(f_x, addr);
    b.ShlI(addr, j, 3);
    b.Add(addr, addr, va);
    b.Ld8F(f_val, addr);
    b.FFma(f_sum, f_val, f_x);
    b.AddI(j, j, 32);
    b.Jmp(elem_loop);

    b.Bind(reduce);
    for (int delta = 16; delta >= 1; delta /= 2) {
      b.ShflDownF(f_t, f_sum, delta);
      b.FAdd(f_sum, f_sum, f_t);
    }
    b.SetNeI(pred, lane, 0);
    b.Brnz(pred, fin, fin);
    b.AddI(pred, end, -1);
    b.ShlI(addr, pred, 3);
    b.Add(addr, addr, va);
    b.Ld8F(f_diag, addr);
    b.ShlI(addr, i, 3);
    b.Add(addr, addr, rb);
    b.Ld8F(f_b, addr);
    b.FSub(f_b, f_b, f_sum);
    b.FDiv(f_b, f_b, f_diag);
    b.ShlI(addr, i, 3);
    b.Add(addr, addr, rx);
    b.St8F(addr, f_b);
    b.Fence();
    b.MovI(one, 1);
    b.ShlI(addr, i, 2);
    b.Add(addr, addr, gv);
    b.MarkPublish();
    b.St4(addr, one);
    b.Bind(fin);
    b.Exit();
  }

  // ==================== Thread mode (Writing-First) =======================
  b.Bind(thread_mode);
  b.SetLt(pred, lane, cnt);
  b.ExitIfZero(pred);
  b.Add(i, row0, lane);

  b.ShlI(addr, i, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);

  {
    sim::Label outer = b.NewLabel();
    sim::Label inner = b.NewLabel();
    sim::Label after_inner = b.NewLabel();
    sim::Label next_pass = b.NewLabel();

    b.Bind(outer);
    b.ShlI(addr, j, 2);
    b.Add(addr, addr, ci);
    b.Ld4(col, addr);

    b.Bind(inner);
    b.ShlI(gvaddr, col, 2);
    b.Add(gvaddr, gvaddr, gv);
    b.Ld4(g, gvaddr);
    b.Brz(g, after_inner, after_inner);
    b.ShlI(addr, col, 3);
    b.Add(addr, addr, rx);
    b.Ld8F(f_x, addr);
    b.ShlI(addr, j, 3);
    b.Add(addr, addr, va);
    b.Ld8F(f_val, addr);
    b.FFma(f_sum, f_val, f_x);
    b.AddI(j, j, 1);
    b.ShlI(addr, j, 2);
    b.Add(addr, addr, ci);
    b.Ld4(col, addr);
    b.Jmp(inner);

    b.Bind(after_inner);
    b.SetEq(pred, col, i);
    b.Brz(pred, next_pass, next_pass);

    b.AddI(pred, end, -1);
    b.ShlI(addr, pred, 3);
    b.Add(addr, addr, va);
    b.Ld8F(f_diag, addr);
    b.ShlI(addr, i, 3);
    b.Add(addr, addr, rb);
    b.Ld8F(f_b, addr);
    b.FSub(f_b, f_b, f_sum);
    b.FDiv(f_b, f_b, f_diag);
    b.ShlI(addr, i, 3);
    b.Add(addr, addr, rx);
    b.St8F(addr, f_b);
    b.Fence();
    b.MovI(one, 1);
    b.ShlI(addr, i, 2);
    b.Add(addr, addr, gv);
    b.MarkPublish();
    b.St4(addr, one);
    b.Exit();

    b.BeginSpin();
    b.Bind(next_pass);
    b.Jmp(outer);
    b.EndSpin();
  }
  return b.Build();
}

}  // namespace capellini::kernels
