// Multiple right-hand sides (SpTRSM): solve L X = B for k dense columns in
// one pass. This is the extension direction of Liu et al.'s follow-up work
// ("Fast synchronization-free algorithms for parallel sparse triangular
// solves with multiple right-hand sides", CCPE 2017) applied to both
// granularities:
//
//  * BuildCapelliniWritingFirstMrhsKernel(k): thread-level Writing-First
//    with k accumulators — the structure walk (col indices, flags, values)
//    is paid ONCE for all k systems.
//  * BuildSyncFreeWarpMrhsKernel(k): the warp-level counterpart.
//
// B and X are column-major n x k (column r of X starts at X + r*n*8).
// One solved-flag per row guards all k components (set after the last store).
#include <string>

#include "kernels/common.h"
#include "support/status.h"

namespace capellini::kernels {

sim::Kernel BuildCapelliniWritingFirstMrhsKernel(int k) {
  CAPELLINI_CHECK_MSG(k >= 1 && k <= 6, "mrhs supports 1..6 right-hand sides");
  using sim::Special;
  sim::KernelBuilder b("capellini_wf_mrhs" + std::to_string(k), kNumParams);

  const int tid = b.R("tid");
  const int m = b.R("m");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int stride = b.R("stride");  // column stride in bytes (m * 8)
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int vecaddr = b.R("vecaddr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  std::vector<int> f_sum(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    f_sum[static_cast<std::size_t>(r)] = b.F("sum" + std::to_string(r));
  }
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(m, kParamM);
  b.SetLt(pred, tid, m);
  b.ExitIfZero(pred);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);
  b.MulI(stride, m, 8);

  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  for (int r = 0; r < k; ++r) b.FMovI(f_sum[static_cast<std::size_t>(r)], 0.0);

  sim::Label outer = b.NewLabel();
  sim::Label inner = b.NewLabel();
  sim::Label after_inner = b.NewLabel();
  sim::Label next_pass = b.NewLabel();

  b.Bind(outer);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);

  b.Bind(inner);  // while get_value[col]: one flag guards all k columns
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);
  b.Ld4(g, gvaddr);
  b.Brz(g, after_inner, after_inner);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);  // the structure/value walk is shared by all k systems
  b.ShlI(vecaddr, col, 3);
  b.Add(vecaddr, vecaddr, rx);
  for (int r = 0; r < k; ++r) {
    b.Ld8F(f_x, vecaddr);
    b.FFma(f_sum[static_cast<std::size_t>(r)], f_val, f_x);
    if (r + 1 < k) b.Add(vecaddr, vecaddr, stride);
  }
  b.AddI(j, j, 1);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.Jmp(inner);

  b.Bind(after_inner);
  b.SetEq(pred, col, tid);
  b.Brz(pred, next_pass, next_pass);

  // Publish all k components, then the shared flag.
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(vecaddr, tid, 3);
  for (int r = 0; r < k; ++r) {
    b.Add(addr, vecaddr, rb);
    b.Ld8F(f_b, addr);
    b.FSub(f_b, f_b, f_sum[static_cast<std::size_t>(r)]);
    b.FDiv(f_b, f_b, f_diag);
    b.Add(addr, vecaddr, rx);
    b.St8F(addr, f_b);
    if (r + 1 < k) b.Add(vecaddr, vecaddr, stride);
  }
  b.Fence();
  b.MovI(one, 1);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);
  b.Exit();

  b.BeginSpin();
  b.Bind(next_pass);
  b.Jmp(outer);
  b.EndSpin();
  return b.Build();
}

sim::Kernel BuildSyncFreeWarpMrhsKernel(int k) {
  CAPELLINI_CHECK_MSG(k >= 1 && k <= 6, "mrhs supports 1..6 right-hand sides");
  using sim::Special;
  sim::KernelBuilder b("syncfree_warp_mrhs" + std::to_string(k), kNumParams);

  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int i = b.R("i");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int stride = b.R("stride");
  const int m = b.R("m");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int vecaddr = b.R("vecaddr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  std::vector<int> f_sum(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    f_sum[static_cast<std::size_t>(r)] = b.F("sum" + std::to_string(r));
  }
  const int f_t = b.F("t");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");

  b.S2R(tid, Special::kGlobalTid);
  b.AndI(lane, tid, 31);
  b.ShrI(i, tid, 5);

  b.LdParam(m, kParamM);
  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);
  b.MulI(stride, m, 8);

  b.ShlI(addr, i, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  for (int r = 0; r < k; ++r) b.FMovI(f_sum[static_cast<std::size_t>(r)], 0.0);
  b.Add(j, j, lane);

  sim::Label elem_loop = b.NewLabel();
  sim::Label reduce = b.NewLabel();
  sim::Label spin = b.NewLabel();
  sim::Label got = b.NewLabel();
  sim::Label fin = b.NewLabel();

  b.Bind(elem_loop);
  b.AddI(pred, end, -1);
  b.SetLt(pred, j, pred);
  b.Brz(pred, reduce, reduce);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);

  b.BeginSpin();
  b.Bind(spin);
  b.Ld4(g, gvaddr);
  b.Brnz(g, got, got);
  b.Jmp(spin);
  b.EndSpin();

  b.Bind(got);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.ShlI(vecaddr, col, 3);
  b.Add(vecaddr, vecaddr, rx);
  for (int r = 0; r < k; ++r) {
    b.Ld8F(f_x, vecaddr);
    b.FFma(f_sum[static_cast<std::size_t>(r)], f_val, f_x);
    if (r + 1 < k) b.Add(vecaddr, vecaddr, stride);
  }
  b.AddI(j, j, 32);
  b.Jmp(elem_loop);

  b.Bind(reduce);  // k shuffle trees
  for (int r = 0; r < k; ++r) {
    for (int delta = 16; delta >= 1; delta /= 2) {
      b.ShflDownF(f_t, f_sum[static_cast<std::size_t>(r)], delta);
      b.FAdd(f_sum[static_cast<std::size_t>(r)],
             f_sum[static_cast<std::size_t>(r)], f_t);
    }
  }

  b.SetNeI(pred, lane, 0);
  b.Brnz(pred, fin, fin);
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(vecaddr, i, 3);
  for (int r = 0; r < k; ++r) {
    b.Add(addr, vecaddr, rb);
    b.Ld8F(f_x, addr);
    b.FSub(f_x, f_x, f_sum[static_cast<std::size_t>(r)]);
    b.FDiv(f_x, f_x, f_diag);
    b.Add(addr, vecaddr, rx);
    b.St8F(addr, f_x);
    if (r + 1 < k) b.Add(vecaddr, vecaddr, stride);
  }
  b.Fence();
  b.MovI(one, 1);
  b.ShlI(addr, i, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);

  b.Bind(fin);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
