#include "kernels/analyze.h"

#include <algorithm>
#include <utility>

#include "kernels/common.h"
#include "matrix/convert.h"
#include "matrix/csc.h"
#include "sim/machine.h"
#include "sim/memory.h"
#include "support/timer.h"

namespace capellini::kernels {

sim::Kernel BuildInDegreeKernel() {
  using sim::Special;
  sim::KernelBuilder b("analyze_indegree", kNumParams);

  const int tid = b.R("tid");
  const int nnz = b.R("nnz");
  const int ri = b.R("ri");
  const int counts = b.R("counts");
  const int row = b.R("row");
  const int addr = b.R("addr");
  const int pred = b.R("pred");
  const int one = b.R("one");
  const int old = b.R("old");

  // One thread per nonzero: counts[row_idx[t]] += 1 — Liu et al.'s
  // sptrsv_syncfree_analyser, verbatim.
  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(nnz, kParamM);
  b.SetLt(pred, tid, nnz);
  b.ExitIfZero(pred);

  b.LdParam(ri, kParamColIdx);
  b.LdParam(counts, kParamGetValue);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, ri);
  b.Ld4(row, addr);
  b.MovI(one, 1);
  b.ShlI(addr, row, 2);
  b.Add(addr, addr, counts);
  b.AtomAddI4(old, addr, one);
  b.Exit();
  return b.Build();
}

sim::Kernel BuildLevelPropagateKernel() {
  using sim::Special;
  sim::KernelBuilder b("analyze_levels", kNumParams);

  const int tid = b.R("tid");
  const int m = b.R("m");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int done = b.R("done");
  const int counts = b.R("counts");
  const int lvl = b.R("lvl");
  const int j = b.R("j");
  const int dep_end = b.R("dep_end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int doneaddr = b.R("doneaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int cand = b.R("cand");
  const int maxl = b.R("maxl");
  const int one = b.R("one");

  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(m, kParamM);
  b.SetLt(pred, tid, m);
  b.ExitIfZero(pred);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(done, kParamGetValue);
  b.LdParam(counts, kParamAux0);
  b.LdParam(lvl, kParamAux1);

  // dep_end = row_ptr[i] + (counts[i] - 1): past-the-last strictly-lower
  // entry — the in-degree kernel's product is this thread's termination
  // bound (the diagonal itself is never drained).
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, counts);
  b.Ld4(dep_end, addr);
  b.AddI(dep_end, dep_end, -1);
  b.Add(dep_end, dep_end, j);
  b.MovI(maxl, -1);  // level = 1 + max(dep levels); no deps -> level 0

  sim::Label outer = b.NewLabel();
  sim::Label inner = b.NewLabel();
  sim::Label no_update = b.NewLabel();
  sim::Label after_inner = b.NewLabel();
  sim::Label next_pass = b.NewLabel();

  // The Writing-First drain, with published LEVELS in place of solution
  // components: consume every already-published dependency in CSR order,
  // folding max(level); publish-and-exit the moment the last one lands. Any
  // counter-style bounded spin here would reintroduce the Challenge-1
  // intra-warp deadlock — a lane parked at reconvergence can hold the very
  // level a sibling lane spins on.
  b.Bind(outer);
  b.Bind(inner);  // while j < dep_end && done[col_idx[j]]
  b.SetLt(pred, j, dep_end);
  b.Brz(pred, after_inner, after_inner);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(doneaddr, col, 2);
  b.Add(doneaddr, doneaddr, done);
  b.Ld4(g, doneaddr);
  b.Brz(g, after_inner, after_inner);
  b.ShlI(addr, col, 2);
  b.Add(addr, addr, lvl);
  b.Ld4(cand, addr);
  b.SetLt(pred, maxl, cand);
  b.Brz(pred, no_update, no_update);
  b.Mov(maxl, cand);
  b.Bind(no_update);
  b.AddI(j, j, 1);
  b.Jmp(inner);

  b.Bind(after_inner);  // all dependencies drained?
  b.SetEq(pred, j, dep_end);
  b.Brz(pred, next_pass, next_pass);

  // Write first: level[i] = maxl + 1, fence, flag, exit.
  b.AddI(maxl, maxl, 1);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, lvl);
  b.St4(addr, maxl);
  b.Fence();
  b.MovI(one, 1);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, done);
  b.MarkPublish();
  b.St4(addr, one);
  b.Exit();

  // Only the failed-pass backedge busy-waits, as in Algorithm 5.
  b.BeginSpin();
  b.Bind(next_pass);
  b.Jmp(outer);
  b.EndSpin();
  return b.Build();
}

Expected<DeviceAnalysisResult> AnalyzeOnDevice(
    const Csr& lower, const sim::DeviceConfig& config,
    const DeviceAnalysisOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument(
        "on-device analysis needs a lower-triangular matrix with a full "
        "diagonal");
  }
  const std::int64_t m = lower.rows();
  if (m == 0) return InvalidArgument("empty system");
  const std::int64_t nnz = lower.nnz();

  DeviceAnalysisResult result;
  Timer host_timer;

  // The in-degree kernel reads rows off the CSC row_idx array (one counter
  // bump per nonzero, no row search); the structure transpose runs on the
  // host, as in the SyncFree solve path.
  const Csc csc = CsrToCsc(lower);
  result.host_ms += host_timer.ElapsedMs();

  sim::DeviceMemory memory;
  sim::Machine machine(config, &memory);
  machine.set_trace_sink(options.trace_sink);
  machine.set_fault_injector(options.fault_injector);
  const int threads_per_block =
      std::min(options.threads_per_block, config.max_warps_per_sm * 32);

  const auto rows_u = static_cast<std::uint64_t>(m);
  const auto nnz_u = static_cast<std::uint64_t>(nnz);
  const sim::DevicePtr dev_row_ptr = memory.AllocArray<Idx>(rows_u + 1);
  const sim::DevicePtr dev_col_idx = memory.AllocArray<Idx>(nnz_u);
  const sim::DevicePtr dev_csc_row_idx = memory.AllocArray<Idx>(nnz_u);
  const sim::DevicePtr dev_counts =
      memory.AllocArray<std::int32_t>(rows_u);
  const sim::DevicePtr dev_done = memory.AllocArray<std::int32_t>(rows_u);
  const sim::DevicePtr dev_level = memory.AllocArray<std::int32_t>(rows_u);
  memory.CopyToDevice(dev_row_ptr, lower.row_ptr());
  memory.CopyToDevice(dev_col_idx, lower.col_idx());
  memory.CopyToDevice(dev_csc_row_idx, csc.row_idx());
  memory.Fill(dev_counts, rows_u * sizeof(std::int32_t), 0);
  memory.Fill(dev_done, rows_u * sizeof(std::int32_t), 0);
  memory.Fill(dev_level, rows_u * sizeof(std::int32_t), 0);

  static const sim::Kernel indegree_kernel = BuildInDegreeKernel();
  static const sim::Kernel propagate_kernel = BuildLevelPropagateKernel();

  std::vector<std::int64_t> params(kNumParams, 0);
  params[kParamM] = nnz;
  params[kParamColIdx] = static_cast<std::int64_t>(dev_csc_row_idx);
  params[kParamGetValue] = static_cast<std::int64_t>(dev_counts);
  auto degree_stats = machine.Launch(
      indegree_kernel,
      {.num_threads = nnz, .threads_per_block = threads_per_block}, params);
  if (!degree_stats.ok()) return degree_stats.status();
  result.stats = *degree_stats;

  params.assign(kNumParams, 0);
  params[kParamM] = m;
  params[kParamRowPtr] = static_cast<std::int64_t>(dev_row_ptr);
  params[kParamColIdx] = static_cast<std::int64_t>(dev_col_idx);
  params[kParamGetValue] = static_cast<std::int64_t>(dev_done);
  params[kParamAux0] = static_cast<std::int64_t>(dev_counts);
  params[kParamAux1] = static_cast<std::int64_t>(dev_level);
  auto level_stats = machine.Launch(
      propagate_kernel,
      {.num_threads = m, .threads_per_block = threads_per_block}, params);
  if (!level_stats.ok()) return level_stats.status();
  result.stats += *level_stats;

  std::vector<std::int32_t> level_of(static_cast<std::size_t>(m));
  memory.CopyFromDevice(std::span<std::int32_t>(level_of), dev_level);

  host_timer.Reset();
  result.levels = BuildLevelSetsFromLevelOf(std::move(level_of));
  result.host_ms += host_timer.ElapsedMs();
  result.exec_ms = config.CyclesToMs(result.stats.cycles);
  return result;
}

}  // namespace capellini::kernels
