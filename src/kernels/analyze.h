// On-device level-set analysis — preprocessing as a measurable kernel.
//
// The host `ComputeLevelSets` runs under the registry lock and is paid in
// full on every cold registration; this port makes the cost visible in
// simulated cycles and lets the analysis be traced and fault-injected like
// any solve. Two kernels, after Liu et al.'s Benchmark_SpTRSM analyser:
//
//   1. in-degree build: one thread per nonzero atomicAdds into its row's
//      counter through the CSC row_idx array (counts[i] ends up as row i's
//      nnz; strictly-lower in-degree is counts[i] - 1);
//   2. level propagation: one thread per row drains its dependencies in CSR
//      order with the Writing-First structure (publish level + flag, then
//      exit; the only busy-wait is the failed-pass backedge), terminating
//      once counts[i] - 1 dependencies have been drained. Deadlock-free for
//      intra-warp dependencies by the same construction as Algorithm 5.
//
// The level fixpoint is unique, so the read-back level_of — and the
// LevelSets assembled from it via BuildLevelSetsFromLevelOf — are
// bit-identical to host ComputeLevelSets (bench_analysis gates this fatally
// on the whole gen corpus).
#pragma once

#include "graph/levels.h"
#include "matrix/csr.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/kernel.h"
#include "support/status.h"

namespace capellini::trace {
class TraceSink;
}

namespace capellini::sim {
class FaultInjector;
}

namespace capellini::kernels {

struct DeviceAnalysisOptions {
  int threads_per_block = 256;
  /// Trace/fault seams, exactly as SolveOptions. Not owned.
  trace::TraceSink* trace_sink = nullptr;
  sim::FaultInjector* fault_injector = nullptr;
};

struct DeviceAnalysisResult {
  /// Bit-identical to ComputeLevelSets(lower).
  LevelSets levels;
  /// Both launches (in-degree + propagation) combined.
  sim::LaunchStats stats;
  /// Simulated device time for both kernels.
  double exec_ms = 0.0;
  /// Host wall-clock milliseconds spent around the launches (CSC structure
  /// build for the in-degree kernel, counting-sort assembly of the
  /// read-back levels).
  double host_ms = 0.0;
};

/// Runs the two-kernel analyser on a simulated `config` device. Fails with
/// kDeadlock if fault injection (dropped level publishes) starves the
/// propagation kernel — the same failure mode as a faulted solve.
Expected<DeviceAnalysisResult> AnalyzeOnDevice(
    const Csr& lower, const sim::DeviceConfig& config,
    const DeviceAnalysisOptions& options = {});

// Kernel factories (cached by AnalyzeOnDevice; exposed for kernel tests).
// In-degree: kParamM = nnz, kParamColIdx = CSC row_idx,
// kParamGetValue = i32 counters (zero-initialized).
sim::Kernel BuildInDegreeKernel();
// Propagation: kParamM = rows, kParamRowPtr/kParamColIdx = CSR structure,
// kParamGetValue = i32 published flags (zeroed), kParamAux0 = counters from
// the in-degree kernel, kParamAux1 = i32 level output.
sim::Kernel BuildLevelPropagateKernel();

}  // namespace capellini::kernels
