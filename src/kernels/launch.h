// Host-side solve drivers: set up device buffers, run per-algorithm
// preprocessing (measured in real host milliseconds, as in the paper's
// Table 1), launch the kernel(s) on the simulated device, and read back the
// solution together with the modeled performance counters.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "support/status.h"

namespace capellini::trace {
class TraceSink;
}

namespace capellini::sim {
class FaultInjector;
class Machine;
class DeviceMemory;
}

namespace capellini::kernels {

/// The SpTRSV implementations that run on the simulated device.
enum class DeviceAlgorithm {
  kSerialRow,              // Algorithm 1, one device thread (reference)
  kLevelSet,               // Algorithm 2, one launch per level
  kSyncFreeCsc,            // Liu et al. [20] — the paper's SyncFree baseline
  kSyncFreeWarpCsr,        // Algorithm 3 as printed (CSR, warp per row)
  kCusparseProxy,          // black-box cuSPARSE stand-in (see DESIGN.md)
  kCapelliniNaive,         // deadlocking strawman (Challenge 1)
  kCapelliniTwoPhase,      // Algorithm 4
  kCapelliniWritingFirst,  // Algorithm 5 — the paper's CapelliniSpTRSV
  kHybrid,                 // §4.4 warp/thread fusion
};

/// Short display name ("SyncFree", "Capellini", ...), as used in the paper's
/// tables.
const char* DeviceAlgorithmName(DeviceAlgorithm algorithm);

struct SolveOptions {
  int threads_per_block = 256;
  /// Hybrid only: rows with at least this many nonzeros go warp-level.
  Idx hybrid_row_length_threshold = 16;
  /// Execution-trace observer attached to the simulated machine for the
  /// solve's launches (see trace/sink.h). Not owned; nullptr = tracing off
  /// with zero overhead.
  trace::TraceSink* trace_sink = nullptr;
  /// Fault injector attached to the simulated machine (see sim/fault.h).
  /// Not owned; nullptr = injection off with zero overhead.
  sim::FaultInjector* fault_injector = nullptr;
};

struct DeviceSolveResult {
  std::vector<Val> x;
  sim::LaunchStats stats;
  /// Host preprocessing time (level-set build, CSC conversion, ...), measured
  /// wall-clock milliseconds — Capellini's is ~0 by design.
  double preprocessing_ms = 0.0;
  /// Simulated kernel execution time.
  double exec_ms = 0.0;
  /// 2*nnz / exec time — the paper's throughput metric.
  double gflops = 0.0;
  /// Modeled DRAM read+write bandwidth over the execution (Figure 7).
  double bandwidth_gbs = 0.0;
};

/// Solves lower * x = b with the chosen algorithm on a simulated `config`
/// device. `lower` must satisfy IsLowerTriangularWithDiagonal().
/// Fails with StatusCode::kDeadlock if the kernel deadlocks (the naive
/// thread-level kernel does, on matrices with intra-warp dependencies).
Expected<DeviceSolveResult> SolveOnDevice(DeviceAlgorithm algorithm,
                                          const Csr& lower,
                                          std::span<const Val> b,
                                          const sim::DeviceConfig& config,
                                          const SolveOptions& options = {});

/// All device algorithms, for parameterized tests.
std::vector<DeviceAlgorithm> AllDeviceAlgorithms();

// --- Partitioned launches (multi-device fleet, src/fleet) ------------------

/// One remote x-component delivered to a device: at `cycle` (this device's
/// within-launch clock) the value and its get_value flag land together, so
/// local rows spin on the flag exactly as they would for an on-device
/// producer.
struct RangeArrival {
  Idx row = 0;                // global row index, outside the local range
  Val value = 0.0;            // x[row]
  std::uint64_t cycle = 0;    // arrival cycle
};

struct RangeSolveResult {
  /// Full-length solution image read back from the device; only entries in
  /// [row_begin, row_end) were computed here (the rest are zeros/arrivals).
  std::vector<Val> x;
  sim::LaunchStats stats;
  /// Simulated kernel execution time (includes launch overhead).
  double exec_ms = 0.0;
  /// Per LOCAL row (index row - row_begin): within-launch cycle at which the
  /// row's flag publish executed, launch overhead excluded. UINT64_MAX when
  /// the publish never landed (dropped by fault injection) — consumers of
  /// that row would spin forever, so the fleet fails dependents fast.
  std::vector<std::uint64_t> publish_cycles;
};

/// Solves the global rows [row_begin, row_end) of lower * x = b on the given
/// machine, with remote dependencies delivered as scheduled arrivals. Only
/// the Capellini thread-per-row algorithms (kCapelliniTwoPhase,
/// kCapelliniWritingFirst) are supported. The machine's memory is Reset()
/// and re-uploaded; trace/fault seams come from `options` as usual. With
/// row_begin = 0, row_end = rows and no arrivals, the computed values are
/// bit-identical to SolveOnDevice (same per-row drain order).
Expected<RangeSolveResult> SolveRangeOnDevice(
    DeviceAlgorithm algorithm, const Csr& lower, std::span<const Val> b,
    Idx row_begin, Idx row_end, std::span<const RangeArrival> arrivals,
    sim::Machine& machine, sim::DeviceMemory& memory,
    const SolveOptions& options = {});

// --- Multiple right-hand sides (SpTRSM) ------------------------------------

enum class MrhsAlgorithm {
  kCapelliniMrhs,  // thread-level Writing-First, k systems per pass
  kSyncFreeMrhs,   // warp-level counterpart
};

const char* MrhsAlgorithmName(MrhsAlgorithm algorithm);

struct MrhsSolveResult {
  /// Column-major n x k solution.
  std::vector<Val> x;
  sim::LaunchStats stats;
  double preprocessing_ms = 0.0;
  double exec_ms = 0.0;
  /// 2 * nnz * k / time.
  double gflops = 0.0;
  double bandwidth_gbs = 0.0;
};

/// Solves lower * X = B for k right-hand sides in one launch. `b` is
/// column-major n x k; k must be in [1, 6].
Expected<MrhsSolveResult> SolveMrhsOnDevice(MrhsAlgorithm algorithm,
                                            const Csr& lower,
                                            std::span<const Val> b, int k,
                                            const sim::DeviceConfig& config,
                                            const SolveOptions& options = {});

}  // namespace capellini::kernels
