// Algorithm 4: Two-Phase CapelliniSpTRSV. One thread per component, no
// preprocessing, CSR order.
//
// Phase 1 handles the elements whose producers live in EARLIER warps
// (col < warp_begin): plain busy-waiting is safe there because the producer
// warp was dispatched earlier and makes progress independently.
//
// Phase 2 handles the intra-warp dependencies with a BOUNDED for-loop of
// WARP_SIZE iterations: each pass consumes every element whose producer has
// published, and at least one lane of the warp publishes per pass (rows only
// depend on earlier rows), so 32 passes always suffice — this is the paper's
// deadlock-avoidance design (§4.1).
#include "kernels/common.h"

namespace capellini::kernels {
namespace {

// `range` = the fleet's partitioned launch: local thread t becomes global row
// kParamAux0 + t, kParamM carries the partition's global row_end, and
// warp_begin is the warp's first GLOBAL row (row_begin + local warp base).
// Phase 1's col < warp_begin test then covers both earlier same-device warps
// (dispatched earlier, make progress independently) and remote rows
// (col < row_begin, published as delayed external arrivals) — busy-waiting
// stays safe for both. range=false emits exactly the pre-fleet instruction
// stream.
sim::Kernel BuildTwoPhaseImpl(bool range) {
  using sim::Special;
  sim::KernelBuilder b(range ? "capellini_twophase_range"
                             : "capellini_twophase",
                       kNumParams);

  const int tid = b.R("tid");
  const int m = b.R("m");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int warp_begin = b.R("warp_begin");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int k = b.R("k");
  const int addr = b.R("addr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  const int f_sum = b.F("sum");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  if (range) {
    b.AndI(warp_begin, tid, ~std::int64_t{31});  // local warp base
    b.LdParam(addr, kParamAux0);                 // partition row_begin
    b.Add(tid, tid, addr);                       // tid is GLOBAL from here
    b.Add(warp_begin, warp_begin, addr);
  }
  b.LdParam(m, kParamM);  // range: global row_end
  b.SetLt(pred, tid, m);
  b.ExitIfZero(pred);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);

  if (!range) b.AndI(warp_begin, tid, ~std::int64_t{31});  // line 4
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);  // line 5

  sim::Label phase1 = b.NewLabel();
  sim::Label phase2 = b.NewLabel();
  sim::Label p1_spin = b.NewLabel();
  sim::Label p1_got = b.NewLabel();
  sim::Label p2_loop = b.NewLabel();
  sim::Label p2_inner = b.NewLabel();
  sim::Label p2_after_inner = b.NewLabel();
  sim::Label p2_next = b.NewLabel();
  sim::Label exhausted = b.NewLabel();

  // ---- Phase 1 (lines 6-13): elements with producers outside the warp ----
  b.Bind(phase1);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.SetLt(pred, col, warp_begin);
  b.Brz(pred, phase2, phase2);  // line 12-13: break on intra-warp territory

  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);
  b.BeginSpin();
  b.Bind(p1_spin);  // lines 9-10: safe busy-wait (producer in earlier warp)
  b.Ld4(g, gvaddr);
  b.Brnz(g, p1_got, p1_got);
  b.Jmp(p1_spin);
  b.EndSpin();

  b.Bind(p1_got);  // line 11
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FFma(f_sum, f_val, f_x);
  b.AddI(j, j, 1);
  b.Jmp(phase1);

  // ---- Phase 2 (lines 14-25): bounded loop over intra-warp dependencies ---
  b.Bind(phase2);
  b.MovI(k, 0);
  b.Bind(p2_loop);  // for k = 0 .. WARP_SIZE-1 (line 14)
  b.SetLtI(pred, k, 32);
  b.Brz(pred, exhausted, exhausted);

  b.Bind(p2_inner);  // lines 15-18: drain every published element
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);
  b.Ld4(g, gvaddr);
  b.Brz(g, p2_after_inner, p2_after_inner);
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FFma(f_sum, f_val, f_x);
  b.AddI(j, j, 1);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.Jmp(p2_inner);

  b.Bind(p2_after_inner);  // line 19: diagonal reached?
  b.SetEq(pred, col, tid);
  b.Brz(pred, p2_next, p2_next);

  // Lines 20-25: publish the component and terminate the lane.
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, rx);
  b.St8F(addr, f_b);
  b.Fence();  // line 22
  b.MovI(one, 1);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);  // line 23
  b.Exit();

  // A pass that consumed nothing loops straight back here: that backedge is
  // the two-phase kernel's intra-warp busy-wait.
  b.BeginSpin();
  b.Bind(p2_next);
  b.AddI(k, k, 1);
  b.Jmp(p2_loop);
  b.EndSpin();

  // A correct input never reaches this point (each pass publishes at least
  // one component); lanes land here only on malformed systems, and tests
  // assert the solution so the failure is visible.
  b.Bind(exhausted);
  b.Exit();
  return b.Build();
}

}  // namespace

sim::Kernel BuildCapelliniTwoPhaseKernel() {
  return BuildTwoPhaseImpl(/*range=*/false);
}

sim::Kernel BuildCapelliniTwoPhaseRangeKernel() {
  return BuildTwoPhaseImpl(/*range=*/true);
}

}  // namespace capellini::kernels
