// The NAIVE thread-level SpTRSV: one thread per component with an unbounded
// busy-wait on every dependency. This is the strawman of the paper's
// Challenge 1 (§3.3): when two dependent rows land in the same warp, the
// consumer lane spins while the producer lane is parked at the reconvergence
// point — a guaranteed deadlock under lock-step SIMT execution. The simulator
// detects it via the no-progress watchdog; tests and the ablation bench
// demonstrate it. Correct (and fast) thread-level designs are Algorithms 4
// and 5 in the sibling files.
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildCapelliniNaiveKernel() {
  using sim::Special;
  sim::KernelBuilder b("capellini_naive", kNumParams);

  const int tid = b.R("tid");
  const int m = b.R("m");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  const int f_sum = b.F("sum");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  b.LdParam(m, kParamM);
  b.SetLt(pred, tid, m);
  b.ExitIfZero(pred);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);

  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);

  sim::Label loop = b.NewLabel();
  sim::Label finish = b.NewLabel();
  sim::Label spin = b.NewLabel();
  sim::Label got = b.NewLabel();

  b.Bind(loop);
  b.AddI(pred, end, -1);
  b.SetLt(pred, j, pred);
  b.Brz(pred, finish, finish);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);

  b.BeginSpin();
  b.Bind(spin);  // unbounded wait — deadlocks on intra-warp dependencies
  b.Ld4(g, gvaddr);
  b.Brnz(g, got, got);
  b.Jmp(spin);
  b.EndSpin();

  b.Bind(got);
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FFma(f_sum, f_val, f_x);
  b.AddI(j, j, 1);
  b.Jmp(loop);

  b.Bind(finish);
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, tid, 3);
  b.Add(addr, addr, rx);
  b.St8F(addr, f_b);
  b.Fence();
  b.MovI(one, 1);
  b.ShlI(addr, tid, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
