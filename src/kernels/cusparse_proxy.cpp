// Proxy for the closed-source cuSPARSE SpTRSV (csrsv2) baseline.
//
// cuSPARSE is a black box; the paper (§2.5) infers from its short analysis
// phase that version 8.0 uses a synchronization-free style algorithm at warp
// granularity. Our proxy follows that inference: it is the warp-level
// sync-free kernel, but warps process rows in LEVEL-SORTED order produced by
// the csrsv2_analysis-equivalent host pass (kParamAux0 = order array). The
// sorted order shortens busy-waits (producers run strictly earlier), giving
// the modest edge over plain SyncFree that Table 4 reports, while keeping
// warp granularity — so it collapses on high-parallel-granularity matrices
// exactly like SyncFree. See DESIGN.md §2 for the substitution rationale.
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildCusparseProxyKernel() {
  using sim::Special;
  sim::KernelBuilder b("cusparse_proxy", kNumParams);

  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int w = b.R("w");
  const int i = b.R("i");
  const int rp = b.R("rp");
  const int ci = b.R("ci");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int gv = b.R("gv");
  const int order = b.R("order");
  const int j = b.R("j");
  const int end = b.R("end");
  const int col = b.R("col");
  const int addr = b.R("addr");
  const int gvaddr = b.R("gvaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int one = b.R("one");
  const int f_sum = b.F("sum");
  const int f_t = b.F("t");
  const int f_val = b.F("val");
  const int f_x = b.F("x");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");

  b.S2R(tid, Special::kGlobalTid);
  b.AndI(lane, tid, 31);
  b.ShrI(w, tid, 5);

  b.LdParam(rp, kParamRowPtr);
  b.LdParam(ci, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(gv, kParamGetValue);
  b.LdParam(order, kParamAux0);

  // i = order[w]: warp w solves the w-th row in level order.
  b.ShlI(addr, w, 2);
  b.Add(addr, addr, order);
  b.Ld4(i, addr);

  b.ShlI(addr, i, 2);
  b.Add(addr, addr, rp);
  b.Ld4(j, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(end, addr);
  b.FMovI(f_sum, 0.0);
  b.Add(j, j, lane);

  sim::Label elem_loop = b.NewLabel();
  sim::Label reduce = b.NewLabel();
  sim::Label spin = b.NewLabel();
  sim::Label got = b.NewLabel();
  sim::Label fin = b.NewLabel();

  b.Bind(elem_loop);
  b.AddI(pred, end, -1);
  b.SetLt(pred, j, pred);
  b.Brz(pred, reduce, reduce);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ci);
  b.Ld4(col, addr);
  b.ShlI(gvaddr, col, 2);
  b.Add(gvaddr, gvaddr, gv);

  b.BeginSpin();
  b.Bind(spin);  // short in practice: producers are earlier in level order
  b.Ld4(g, gvaddr);
  b.Brnz(g, got, got);
  b.Jmp(spin);
  b.EndSpin();

  b.Bind(got);
  b.ShlI(addr, col, 3);
  b.Add(addr, addr, rx);
  b.Ld8F(f_x, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FFma(f_sum, f_val, f_x);
  b.AddI(j, j, 32);
  b.Jmp(elem_loop);

  b.Bind(reduce);
  for (int delta = 16; delta >= 1; delta /= 2) {
    b.ShflDownF(f_t, f_sum, delta);
    b.FAdd(f_sum, f_sum, f_t);
  }

  b.SetNeI(pred, lane, 0);
  b.Brnz(pred, fin, fin);
  b.AddI(pred, end, -1);
  b.ShlI(addr, pred, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.FSub(f_b, f_b, f_sum);
  b.FDiv(f_b, f_b, f_diag);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rx);
  b.St8F(addr, f_b);
  b.Fence();
  b.MovI(one, 1);
  b.ShlI(addr, i, 2);
  b.Add(addr, addr, gv);
  b.MarkPublish();
  b.St4(addr, one);

  b.Bind(fin);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
