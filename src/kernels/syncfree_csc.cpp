// The CSC formulation of the warp-level synchronization-free SpTRSV
// (Liu, Li, Hogg, Duff, Vinter — EuroPar'16), the paper's "SyncFree"
// baseline [20]. One warp per component; the warp busy-waits on an in-degree
// counter, solves its component, then SCATTERS val * x_i into the dependent
// rows' left_sum with atomics and decrements their counters.
//
// Param slot reuse: kParamRowPtr = CSC col_ptr, kParamColIdx = CSC row_idx,
// kParamGetValue = i32 dependency counters (host-initialized to in-degrees),
// kParamAux0 = f64 left_sum accumulators (zero-initialized).
#include "kernels/common.h"

namespace capellini::kernels {

sim::Kernel BuildSyncFreeCscKernel() {
  using sim::Special;
  sim::KernelBuilder b("syncfree_csc", kNumParams);

  const int tid = b.R("tid");
  const int lane = b.R("lane");
  const int i = b.R("i");
  const int cp = b.R("cp");
  const int ri = b.R("ri");
  const int va = b.R("va");
  const int rb = b.R("rb");
  const int rx = b.R("rx");
  const int dep = b.R("dep");
  const int lsum = b.R("lsum");
  const int j = b.R("j");
  const int cbegin = b.R("cbegin");
  const int cend = b.R("cend");
  const int row = b.R("row");
  const int addr = b.R("addr");
  const int depaddr = b.R("depaddr");
  const int pred = b.R("pred");
  const int g = b.R("g");
  const int minus1 = b.R("minus1");
  const int f_xi = b.F("xi");
  const int f_diag = b.F("diag");
  const int f_b = b.F("b");
  const int f_ls = b.F("ls");
  const int f_val = b.F("val");
  const int f_add = b.F("add");
  const int f_old = b.F("old");

  b.S2R(tid, Special::kGlobalTid);
  b.AndI(lane, tid, 31);
  b.ShrI(i, tid, 5);  // one warp per component

  b.LdParam(cp, kParamRowPtr);
  b.LdParam(ri, kParamColIdx);
  b.LdParam(va, kParamVal);
  b.LdParam(rb, kParamB);
  b.LdParam(rx, kParamX);
  b.LdParam(dep, kParamGetValue);
  b.LdParam(lsum, kParamAux0);

  b.ShlI(addr, i, 2);
  b.Add(addr, addr, cp);
  b.Ld4(cbegin, addr);
  b.AddI(addr, addr, 4);
  b.Ld4(cend, addr);

  sim::Label spin = b.NewLabel();
  sim::Label ready = b.NewLabel();
  sim::Label store_done = b.NewLabel();
  sim::Label scatter_loop = b.NewLabel();
  sim::Label fin = b.NewLabel();

  // Busy-wait until every dependency has scattered its contribution.
  b.ShlI(depaddr, i, 2);
  b.Add(depaddr, depaddr, dep);
  b.BeginSpin();
  b.Bind(spin);
  b.Ld4(g, depaddr);
  b.Brz(g, ready, ready);
  b.Jmp(spin);
  b.EndSpin();

  b.Bind(ready);
  // xi = (b[i] - left_sum[i]) / L(i,i); every lane computes it (uniform
  // loads coalesce to single transactions) so the scatter needs no
  // broadcast.
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rb);
  b.Ld8F(f_b, addr);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, lsum);
  b.Ld8F(f_ls, addr);
  b.ShlI(addr, cbegin, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_diag, addr);  // diagonal is the first entry of column i
  b.FSub(f_xi, f_b, f_ls);
  b.FDiv(f_xi, f_xi, f_diag);

  b.SetNeI(pred, lane, 0);
  b.Brnz(pred, store_done, store_done);
  b.ShlI(addr, i, 3);
  b.Add(addr, addr, rx);
  b.MarkPublish();
  b.St8F(addr, f_xi);  // publish the component
  b.Bind(store_done);

  // Scatter phase: lanes stride the strictly-lower part of column i.
  b.MovI(minus1, -1);
  b.AddI(j, cbegin, 1);
  b.Add(j, j, lane);
  b.Bind(scatter_loop);
  b.SetLt(pred, j, cend);
  b.Brz(pred, fin, fin);
  b.ShlI(addr, j, 2);
  b.Add(addr, addr, ri);
  b.Ld4(row, addr);
  b.ShlI(addr, j, 3);
  b.Add(addr, addr, va);
  b.Ld8F(f_val, addr);
  b.FMul(f_add, f_val, f_xi);
  b.ShlI(addr, row, 3);
  b.Add(addr, addr, lsum);
  b.AtomAddF8(f_old, addr, f_add);  // left_sum[row] += val * xi
  b.Fence();                        // contribution before counter decrement
  b.ShlI(addr, row, 2);
  b.Add(addr, addr, dep);
  b.AtomAddI4(g, addr, minus1);  // one dependency resolved
  b.AddI(j, j, 32);
  b.Jmp(scatter_loop);

  b.Bind(fin);
  b.Exit();
  return b.Build();
}

}  // namespace capellini::kernels
