// IncrementalAnalyzer: apply a DeltaBatch to an analyzed factor without
// re-running full analysis (DESIGN.md §4h).
//
// Value-only batches copy the new numbers into the CSR and reuse the whole
// Analysis untouched — level structure, histograms and the Figure-6
// recommendation are functions of sparsity alone. Structural batches patch
// the level sets incrementally: dependencies in a lower-triangular factor
// only point from lower to higher row indices, so re-leveling an edited row
// can only shift rows in its forward cone (transitive consumers). A min-
// ordered worklist seeded with the edited rows pops rows in ascending order
// and recomputes level(i) = 1 + max(level(j)) over strictly-lower columns;
// because every dependency of a popped row is either untouched or already
// finalized (its index is smaller), each cone row is recomputed exactly
// once. Rows outside the cone keep their levels, and level_ptr/order are
// rebuilt with the same O(n) counting sort full analysis uses — so the
// patched Analysis is bit-identical to Analyze() of the mutated matrix
// (update_test checks this against the from-scratch oracle).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/analysis.h"
#include "matrix/csr.h"
#include "support/status.h"
#include "update/delta.h"

namespace capellini::update {

/// Transpose adjacency of the strictly-lower triangle: consumers[j] lists
/// the rows i > j whose row i holds a nonzero in column j — i.e. the rows
/// whose level can shift when row j's level shifts. ComputeLevelSets never
/// needs this (it sweeps every row anyway); the incremental path does, so
/// the registry builds it once per handle on the first structural update
/// (O(nnz)) and PATCHES it per delta afterwards — that one-time build is the
/// amortized cost bench_update reports.
class ConsumerGraph {
 public:
  static ConsumerGraph Build(const Csr& lower);

  /// Mirrors a batch's structural deltas (inserts add a consumer, erases
  /// remove one; value updates are no-ops). Call with the same batch that
  /// mutated the matrix, before propagating levels.
  void ApplyStructural(const DeltaBatch& batch);

  std::span<const Idx> Consumers(Idx col) const { return consumers_[static_cast<std::size_t>(col)]; }
  Idx rows() const { return static_cast<Idx>(consumers_.size()); }

 private:
  // consumers_[j] kept sorted ascending so patching is a binary search.
  std::vector<std::vector<Idx>> consumers_;
};

/// Result of one incremental apply: the mutated factor, an Analysis valid
/// for it, and the cost counters the serve layer reports.
struct UpdateResult {
  Csr matrix;
  Analysis analysis;
  bool value_only = false;
  /// Rows whose level was recomputed (the forward-cone size; 0 for
  /// value-only batches). The incremental win is this over total rows.
  Idx rows_releveled = 0;
  Idx total_rows = 0;
  /// Host milliseconds spent applying the batch + patching the analysis —
  /// the number bench_update compares against full re-analysis.
  double update_ms = 0.0;
  /// The re-analysis portion of update_ms alone: forward-cone re-leveling +
  /// level_ptr/order rebuild + stats refresh. 0.0 for value-only batches
  /// (the analysis is reused untouched). This is what each registry epoch
  /// records as its analysis_ms.
  double analysis_ms = 0.0;
};

/// Stateless apart from reusable scratch buffers; one instance per registry,
/// called under the registry's update lock.
class IncrementalAnalyzer {
 public:
  /// Applies `batch` to (`lower`, `analysis`). Returns the mutated factor
  /// with its patched analysis, or kInvalidArgument (from ApplyToMatrix
  /// validation) with the inputs untouched.
  ///
  /// `consumers` carries the handle's transpose adjacency across updates:
  /// structural batches patch and use it (building it first — charged to
  /// this call's update_ms — if it is empty/mismatched). Pass nullptr to
  /// have a throwaway graph built internally.
  Expected<UpdateResult> Apply(const Csr& lower, const Analysis& analysis,
                               const DeltaBatch& batch,
                               ConsumerGraph* consumers = nullptr);

 private:
  // Scratch reused across calls (sized to the largest factor seen).
  std::vector<Idx> heap_;
  std::vector<bool> queued_;
};

}  // namespace capellini::update
