// Streaming-factor deltas: the mutation API for registered triangular
// factors (DESIGN.md §4h).
//
// A DeltaBatch is an ordered log of edits against one lower-triangular CSR
// factor: value-only updates (new numeric value, same sparsity) and
// structural updates (insert / erase a strictly-lower nonzero). Batches are
// validated and applied atomically — either every delta is legal against the
// target matrix and a fully mutated copy comes back, or the batch is
// rejected with a Status and the factor is untouched. The diagonal can
// change value but never appear or disappear: SpTRSV needs a full nonzero
// diagonal, so inserts/erases are restricted to the strictly-lower triangle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.h"
#include "support/status.h"

namespace capellini::update {

enum class DeltaKind : std::uint8_t {
  kValue,   // overwrite an existing nonzero's value (diagonal allowed)
  kInsert,  // add a strictly-lower nonzero that is currently absent
  kErase,   // remove a strictly-lower nonzero that is currently present
};

const char* DeltaKindName(DeltaKind kind);

struct Delta {
  DeltaKind kind = DeltaKind::kValue;
  Idx row = 0;
  Idx col = 0;
  Val value = 0;  // ignored for kErase
};

/// An ordered edit log against one factor. Building a batch never touches a
/// matrix; all validation happens in ApplyToMatrix against a concrete Csr.
class DeltaBatch {
 public:
  void UpdateValue(Idx row, Idx col, Val value) {
    deltas_.push_back({DeltaKind::kValue, row, col, value});
  }
  void Insert(Idx row, Idx col, Val value) {
    deltas_.push_back({DeltaKind::kInsert, row, col, value});
  }
  void Erase(Idx row, Idx col) {
    deltas_.push_back({DeltaKind::kErase, row, col, Val{0}});
  }

  const std::vector<Delta>& deltas() const { return deltas_; }
  std::size_t size() const { return deltas_.size(); }
  bool empty() const { return deltas_.empty(); }

  /// True when no delta changes the sparsity pattern — the fast path that
  /// reuses the whole analysis untouched.
  bool value_only() const;
  std::size_t structural_count() const;

  /// Bytes this batch occupies in the registry's delta log (the accounting
  /// the byte budget charges per ApplyDelta).
  std::size_t ByteSize() const { return deltas_.size() * sizeof(Delta); }

 private:
  std::vector<Delta> deltas_;
};

/// Validates `batch` against `lower` and returns the mutated matrix.
/// Rules (checked per delta, in batch order, against the evolving pattern):
///  * coordinates in range and on or below the diagonal;
///  * kValue targets a present nonzero; a diagonal overwrite must be nonzero;
///  * kInsert targets a strictly-lower position that is currently absent;
///  * kErase targets a strictly-lower position that is currently present.
/// Later deltas see earlier ones (insert-then-update is legal; double-insert
/// is not). On any violation returns kInvalidArgument naming the delta.
Expected<Csr> ApplyToMatrix(const Csr& lower, const DeltaBatch& batch);

/// Draws a deterministic batch of `num_deltas` edits against `lower`.
/// With `structural` false every delta is a value overwrite of an existing
/// nonzero (new value uniform in [0.5, 1.5], so diagonals stay nonzero);
/// with `structural` true roughly half are inserts of absent strictly-lower
/// positions and half erases of present ones (falling back to the other kind
/// when a row has nothing to erase / nowhere to insert). Coordinates are
/// distinct within the batch. Shared by replay update events, update_test
/// and bench_update so all three agree on what "the update at seed s" means.
DeltaBatch MakeRandomBatch(const Csr& lower, int num_deltas, bool structural,
                           std::uint64_t seed);

}  // namespace capellini::update
