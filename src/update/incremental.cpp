#include "update/incremental.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/select.h"
#include "support/timer.h"

namespace capellini::update {

ConsumerGraph ConsumerGraph::Build(const Csr& lower) {
  ConsumerGraph graph;
  const Idx n = lower.rows();
  graph.consumers_.assign(static_cast<std::size_t>(n), {});
  std::vector<Idx> counts(static_cast<std::size_t>(n), 0);
  for (Idx i = 0; i < n; ++i) {
    const auto cols = lower.RowCols(i);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      ++counts[static_cast<std::size_t>(cols[j])];
    }
  }
  for (Idx j = 0; j < n; ++j) {
    graph.consumers_[static_cast<std::size_t>(j)].reserve(
        static_cast<std::size_t>(counts[static_cast<std::size_t>(j)]));
  }
  // Rows ascend, so each consumer list comes out sorted.
  for (Idx i = 0; i < n; ++i) {
    const auto cols = lower.RowCols(i);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      graph.consumers_[static_cast<std::size_t>(cols[j])].push_back(i);
    }
  }
  return graph;
}

void ConsumerGraph::ApplyStructural(const DeltaBatch& batch) {
  for (const Delta& d : batch.deltas()) {
    if (d.kind == DeltaKind::kValue) continue;
    std::vector<Idx>& list = consumers_[static_cast<std::size_t>(d.col)];
    auto it = std::lower_bound(list.begin(), list.end(), d.row);
    if (d.kind == DeltaKind::kInsert) {
      list.insert(it, d.row);
    } else if (it != list.end() && *it == d.row) {
      list.erase(it);
    }
  }
}

Expected<UpdateResult> IncrementalAnalyzer::Apply(const Csr& lower,
                                                  const Analysis& analysis,
                                                  const DeltaBatch& batch,
                                                  ConsumerGraph* consumers) {
  Timer timer;
  Expected<Csr> mutated = ApplyToMatrix(lower, batch);
  if (!mutated.ok()) return mutated.status();

  UpdateResult result;
  result.matrix = std::move(mutated).value();
  result.total_rows = lower.rows();

  if (batch.value_only()) {
    // Sparsity unchanged: levels, histograms and the recommendation are all
    // functions of structure alone — reuse the whole analysis.
    result.value_only = true;
    result.analysis = analysis;
    result.update_ms = timer.ElapsedMs();
    return result;
  }

  const Idx n = result.matrix.rows();
  ConsumerGraph local;
  if (consumers == nullptr || consumers->rows() != n) {
    // First structural update on this factor (or a caller without a cached
    // graph): pay the one-time O(nnz) transpose build here.
    local = ConsumerGraph::Build(lower);
    consumers = &local;
  }
  consumers->ApplyStructural(batch);

  Timer analysis_timer;
  LevelSets levels;
  levels.level_of = analysis.levels.level_of;

  // Min-ordered worklist seeded with the structurally edited rows. Pops come
  // out ascending (every push targets a consumer, i.e. a larger row), so by
  // the time a row is recomputed all of its dependencies are final — the
  // same invariant that lets ComputeLevelSets get away with one ascending
  // sweep. `queued_` is "ever enqueued": a row can only be pushed from a
  // smaller row, which is processed before the row is popped, so each cone
  // row is recomputed exactly once.
  heap_.clear();
  queued_.assign(static_cast<std::size_t>(n), false);
  const auto push = [&](Idx row) {
    if (queued_[static_cast<std::size_t>(row)]) return;
    queued_[static_cast<std::size_t>(row)] = true;
    heap_.push_back(row);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Idx>());
  };
  for (const Delta& d : batch.deltas()) {
    if (d.kind != DeltaKind::kValue) push(d.row);
  }

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Idx>());
    const Idx i = heap_.back();
    heap_.pop_back();
    ++result.rows_releveled;

    Idx level = 0;
    const auto cols = result.matrix.RowCols(i);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      level = std::max(level,
                       levels.level_of[static_cast<std::size_t>(cols[j])] + 1);
    }
    if (level == levels.level_of[static_cast<std::size_t>(i)]) continue;
    levels.level_of[static_cast<std::size_t>(i)] = level;
    for (const Idx k : consumers->Consumers(i)) push(k);
  }

  // Rebuild level_ptr/order with the shared counting sort (ties in ascending
  // row order) so the patched analysis is indistinguishable from the
  // from-scratch oracle, then derive the cheap stats tail the same way
  // AssembleAnalysis does.
  result.analysis = AssembleAnalysis(result.matrix, analysis.stats.name,
                                     BuildLevelSetsFromLevelOf(
                                         std::move(levels.level_of)));
  result.analysis_ms = analysis_timer.ElapsedMs();
  result.update_ms = timer.ElapsedMs();
  return result;
}

}  // namespace capellini::update
