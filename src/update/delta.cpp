#include "update/delta.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "support/rng.h"

namespace capellini::update {

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kValue:
      return "value";
    case DeltaKind::kInsert:
      return "insert";
    case DeltaKind::kErase:
      return "erase";
  }
  return "?";
}

bool DeltaBatch::value_only() const { return structural_count() == 0; }

std::size_t DeltaBatch::structural_count() const {
  std::size_t count = 0;
  for (const Delta& d : deltas_) {
    if (d.kind != DeltaKind::kValue) ++count;
  }
  return count;
}

namespace {

std::string DeltaLabel(std::size_t index, const Delta& d) {
  return "delta #" + std::to_string(index) + " (" + DeltaKindName(d.kind) +
         " at (" + std::to_string(d.row) + "," + std::to_string(d.col) + "))";
}

}  // namespace

Expected<Csr> ApplyToMatrix(const Csr& lower, const DeltaBatch& batch) {
  const Idx n = lower.rows();

  // Bucket deltas by row (batch order preserved within a row; deltas on
  // different rows are independent, so per-row replay keeps the batch's
  // "later deltas see earlier ones" semantics).
  std::map<Idx, std::vector<std::size_t>> by_row;
  const std::vector<Delta>& deltas = batch.deltas();
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Delta& d = deltas[i];
    if (d.row < 0 || d.row >= n || d.col < 0 || d.col > d.row) {
      return InvalidArgument(DeltaLabel(i, d) +
                             ": coordinates must satisfy 0 <= col <= row < " +
                             std::to_string(n));
    }
    if (d.kind != DeltaKind::kValue && d.col == d.row) {
      return InvalidArgument(DeltaLabel(i, d) +
                             ": the diagonal cannot be inserted or erased "
                             "(SpTRSV needs a full nonzero diagonal)");
    }
    by_row[d.row].push_back(i);
  }

  // Replay each touched row's edits against a working (col, value) list.
  std::map<Idx, std::vector<std::pair<Idx, Val>>> new_rows;
  for (const auto& [row, indices] : by_row) {
    const auto cols = lower.RowCols(row);
    const auto vals = lower.RowVals(row);
    std::vector<std::pair<Idx, Val>> entries;
    entries.reserve(cols.size() + indices.size());
    for (std::size_t j = 0; j < cols.size(); ++j) {
      entries.emplace_back(cols[j], vals[j]);
    }
    for (const std::size_t i : indices) {
      const Delta& d = deltas[i];
      auto it = std::lower_bound(
          entries.begin(), entries.end(), d.col,
          [](const std::pair<Idx, Val>& e, Idx col) { return e.first < col; });
      const bool present = it != entries.end() && it->first == d.col;
      switch (d.kind) {
        case DeltaKind::kValue:
          if (!present) {
            return InvalidArgument(DeltaLabel(i, d) +
                                   ": no such nonzero (use insert to change "
                                   "the sparsity pattern)");
          }
          if (d.col == d.row && d.value == Val{0}) {
            return InvalidArgument(DeltaLabel(i, d) +
                                   ": diagonal values must stay nonzero");
          }
          it->second = d.value;
          break;
        case DeltaKind::kInsert:
          if (present) {
            return InvalidArgument(DeltaLabel(i, d) +
                                   ": position already holds a nonzero (use a "
                                   "value update)");
          }
          entries.insert(it, {d.col, d.value});
          break;
        case DeltaKind::kErase:
          if (!present) {
            return InvalidArgument(DeltaLabel(i, d) + ": no such nonzero");
          }
          entries.erase(it);
          break;
      }
    }
    new_rows.emplace(row, std::move(entries));
  }

  // Rebuild the CSR arrays; untouched rows copy through unchanged.
  std::vector<Idx> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (Idx i = 0; i < n; ++i) {
    const auto it = new_rows.find(i);
    const Idx len = it != new_rows.end() ? static_cast<Idx>(it->second.size())
                                         : lower.RowLen(i);
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] + len;
  }
  const std::size_t nnz = static_cast<std::size_t>(row_ptr.back());
  std::vector<Idx> col_idx(nnz);
  std::vector<Val> val(nnz);
  for (Idx i = 0; i < n; ++i) {
    std::size_t dst = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    const auto it = new_rows.find(i);
    if (it != new_rows.end()) {
      for (const auto& [col, v] : it->second) {
        col_idx[dst] = col;
        val[dst] = v;
        ++dst;
      }
    } else {
      const auto cols = lower.RowCols(i);
      const auto vals = lower.RowVals(i);
      for (std::size_t j = 0; j < cols.size(); ++j, ++dst) {
        col_idx[dst] = cols[j];
        val[dst] = vals[j];
      }
    }
  }
  return Csr(n, lower.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(val));
}

namespace {

// Row containing flat nonzero index `flat` (binary search over row_ptr).
Idx RowOfNonzero(const Csr& m, Idx flat) {
  const auto rp = m.row_ptr();
  auto it = std::upper_bound(rp.begin(), rp.end(), flat);
  return static_cast<Idx>(it - rp.begin()) - 1;
}

bool HasNonzero(const Csr& m, Idx row, Idx col) {
  const auto cols = m.RowCols(row);
  return std::binary_search(cols.begin(), cols.end(), col);
}

std::uint64_t CoordKey(Idx row, Idx col) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint32_t>(col);
}

}  // namespace

DeltaBatch MakeRandomBatch(const Csr& lower, int num_deltas, bool structural,
                           std::uint64_t seed) {
  DeltaBatch batch;
  const Idx n = lower.rows();
  const Idx nnz = static_cast<Idx>(lower.nnz());
  if (n == 0 || nnz == 0 || num_deltas <= 0) return batch;

  Rng rng(seed ^ 0x5eedde17aba7c8ull);
  std::unordered_set<std::uint64_t> claimed;  // distinct coordinates per batch
  constexpr int kAttempts = 64;

  const auto try_value = [&]() {
    for (int a = 0; a < kAttempts; ++a) {
      const Idx flat = static_cast<Idx>(
          rng.NextBounded(static_cast<std::uint64_t>(nnz)));
      const Idx row = RowOfNonzero(lower, flat);
      const Idx col = lower.col_idx()[static_cast<std::size_t>(flat)];
      if (!claimed.insert(CoordKey(row, col)).second) continue;
      // [0.5, 1.5] keeps diagonal overwrites away from zero.
      batch.UpdateValue(row, col, static_cast<Val>(rng.NextDouble(0.5, 1.5)));
      return true;
    }
    return false;
  };
  const auto try_erase = [&]() {
    for (int a = 0; a < kAttempts; ++a) {
      const Idx flat = static_cast<Idx>(
          rng.NextBounded(static_cast<std::uint64_t>(nnz)));
      const Idx row = RowOfNonzero(lower, flat);
      const Idx col = lower.col_idx()[static_cast<std::size_t>(flat)];
      if (col == row) continue;  // never erase the diagonal
      if (!claimed.insert(CoordKey(row, col)).second) continue;
      batch.Erase(row, col);
      return true;
    }
    return false;
  };
  const auto try_insert = [&]() {
    if (n < 2) return false;
    for (int a = 0; a < kAttempts; ++a) {
      const Idx row = static_cast<Idx>(
          1 + rng.NextBounded(static_cast<std::uint64_t>(n - 1)));
      const Idx col =
          static_cast<Idx>(rng.NextBounded(static_cast<std::uint64_t>(row)));
      if (HasNonzero(lower, row, col)) continue;
      if (!claimed.insert(CoordKey(row, col)).second) continue;
      batch.Insert(row, col, static_cast<Val>(rng.NextDouble(0.5, 1.5)));
      return true;
    }
    return false;
  };

  for (int i = 0; i < num_deltas; ++i) {
    if (!structural) {
      if (!try_value()) break;
      continue;
    }
    const bool want_insert = rng.NextBool(0.5);
    const bool placed = want_insert ? (try_insert() || try_erase())
                                    : (try_erase() || try_insert());
    if (!placed && !try_value()) break;  // degenerate factor: nothing left
  }
  return batch;
}

}  // namespace capellini::update
