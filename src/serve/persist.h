// On-disk persistence of analyzed level sets + cost-model seeds.
//
// Analysis is a pure function of the factor's STRUCTURE (row_ptr/col_idx);
// values never enter the level sweep. The cache therefore keys each file on
// a structure-only fingerprint and stores just the per-row level assignment
// (level_ptr/order rebuild deterministically via BuildLevelSetsFromLevelOf,
// and stats/histograms/recommendation via AssembleAnalysis), so a restarted
// service rehydrates a bit-identical Analysis through Solver::SeedAnalysis
// without running a single host Analyze() — the cold-start cost the ISSUE
// targets. The cost-model seed rides along, so learned solve-cost estimates
// survive restarts too.
//
// File layout (little-endian, host byte order — the cache is a local
// restart accelerator, not an interchange format):
//   magic  "CAPANL1\0"             8 bytes
//   fingerprint                    u64  StructureFingerprint(matrix)
//   rows                           i64
//   cost_seed_ms                   f64
//   level_of[rows]                 i32 each
//   checksum                       u64  FNV-1a over everything above
//
// Failure contract: a missing file is kNotFound (expected cold-start); any
// structural problem — bad magic, short file, checksum mismatch, or a
// fingerprint that no longer matches the matrix (stale file from a renamed
// or regenerated factor) — is kDataLoss and the caller re-analyzes (and
// overwrites the bad file on the next Store).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/levels.h"
#include "matrix/csr.h"
#include "support/status.h"

namespace capellini::serve {

/// FNV-1a over rows/cols/row_ptr/col_idx only. Two factors with identical
/// structure and different values hash the same — intentionally, since they
/// have identical analyses.
std::uint64_t StructureFingerprint(const Csr& lower);

struct PersistedAnalysis {
  std::vector<Idx> level_of;
  double cost_seed_ms = 0.0;
};

class AnalysisCache {
 public:
  /// `dir` is created on the first Store if absent.
  explicit AnalysisCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Cache file for `name` (sanitized: non-alphanumerics become '_', so
  /// tenant-supplied names cannot escape the directory). One file per name;
  /// the fingerprint INSIDE the file detects staleness.
  std::string PathFor(const std::string& name) const;

  /// Writes name's analysis atomically (tmp file + rename), overwriting any
  /// previous — including stale — file.
  Status Store(const std::string& name, const Csr& lower,
               const LevelSets& levels, double cost_seed_ms) const;

  /// kNotFound: no file for `name` (cold start). kDataLoss: the file exists
  /// but is corrupt, truncated, or fingerprint-stale for `lower`.
  Expected<PersistedAnalysis> Load(const std::string& name,
                                   const Csr& lower) const;

 private:
  std::string dir_;
};

}  // namespace capellini::serve
