// Request traces for the solve service: generate a zipf-distributed workload
// over a matrix corpus, persist it as JSON, and replay it through a
// SolveService while verifying every solution.
//
// Zipf popularity is the serving-realistic shape: a few hot factors take
// most of the solve traffic (they batch well and stay cache-resident), a
// long tail of cold ones churns the LRU. The trace is fully deterministic —
// bench_serve's determinism gate replays the same trace through the service
// and through a serial one-shot loop and checksums the solutions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/proxies.h"
#include "serve/service.h"
#include "support/status.h"

namespace capellini::serve {

enum class TraceEventKind {
  kSolve,   // submit one solve against the matrix
  kUpdate,  // apply one DeltaBatch to the matrix (streaming factors)
};

struct TraceRequest {
  TraceEventKind kind = TraceEventKind::kSolve;
  /// Index into the corpus / handle list the trace is replayed against.
  int matrix = 0;
  /// kSolve: seed for the manufactured right-hand side (b = L * x_true).
  /// kUpdate: seed for update::MakeRandomBatch against the handle's current
  /// matrix — the batch is a pure function of (matrix at apply time, seed),
  /// so a replay and its serial baseline mutate identically.
  std::uint64_t seed = 0;
  /// Per-request deadline in wall-clock ms from submission (0 = none;
  /// kSolve only).
  double deadline_ms = 0.0;
  /// kUpdate only: batch size and kind.
  int update_deltas = 0;
  bool structural = false;
};

struct RequestTrace {
  std::vector<TraceRequest> requests;
};

/// Draws `num_requests` requests whose matrix popularity follows a zipf law
/// with exponent `s` over `num_matrices` ranks (rank order is shuffled by
/// `seed` so matrix 0 is not always the hot one).
RequestTrace GenerateZipfTrace(int num_requests, int num_matrices, double s,
                               std::uint64_t seed);

/// Stamps every request with a deterministic uniform-random deadline in
/// [min_ms, max_ms] — the mixed-deadline workload the EDF scheduler and the
/// bench_serve overload sweep exercise.
void AssignDeadlines(RequestTrace& trace, double min_ms, double max_ms,
                     std::uint64_t seed);

/// Interleaves update events into `trace`: after each solve request, with
/// probability `update_fraction`, an update event targeting the SAME matrix
/// is inserted (hot factors get updated in proportion to their traffic —
/// the worst case for snapshot churn). Each update carries
/// `deltas_per_update` deltas and is structural with probability
/// `structural_fraction`. Deterministic in `seed`.
void InterleaveUpdates(RequestTrace& trace, double update_fraction,
                       int deltas_per_update, double structural_fraction,
                       std::uint64_t seed);

/// {"requests": [{"matrix": 3, "seed": 17}, ...]}; update events carry
/// "update_deltas" (and "structural") instead of "deadline_ms":
/// {"matrix": 2, "seed": 9, "update_deltas": 8, "structural": 1}.
/// Both directions round-trip (replay_test covers mixed traces).
Status WriteTraceJson(const RequestTrace& trace, const std::string& path);
Expected<RequestTrace> ReadTraceJson(const std::string& path);

struct ReplayReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;   // future resolved with OK status
  std::size_t rejected = 0;    // admission-control rejections
  std::size_t expired = 0;     // kDeadlineExceeded ServeResults
  std::size_t failed = 0;      // other non-OK ServeResults
  std::size_t wrong = 0;       // solution off the reference by > 1e-8
  // Update events (kUpdate): applied epoch swaps vs refused/failed applies
  // (evicted handle, over-budget entry). Solve counters above never include
  // update events.
  std::size_t updates = 0;
  std::size_t updates_rejected = 0;
  std::uint64_t rows_releveled = 0;  // summed over applied updates
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  /// FNV-1a over every completed solution in submission order — the
  /// determinism-mode fingerprint.
  std::uint64_t solution_checksum = 0;
};

struct ReplayOptions {
  /// Load the whole trace before the workers start (needs
  /// ServiceOptions::start_paused and max_queue >= trace size). Maximizes
  /// coalescing; the wall clock covers only the drain.
  bool preload = false;
  /// Verify each solution against the serially solved reference.
  bool verify = true;
  /// Pace submissions at this offered rate against live workers (0 = submit
  /// as fast as possible). Mutually exclusive with preload — pacing models
  /// an open-loop arrival process, which is how the overload sweep drives
  /// the service past capacity.
  double pace_requests_per_sec = 0.0;
};

/// Replays `trace` through `service`: request i targets handles[matrix % n].
/// Right-hand sides are manufactured per request from the trace seed.
/// Rejected submissions are counted, not retried.
Expected<ReplayReport> ReplayTrace(SolveService& service,
                                   const std::vector<MatrixHandle>& handles,
                                   const RequestTrace& trace,
                                   const ReplayOptions& options = {});

/// FNV-1a helper shared with bench_serve's one-shot baseline.
std::uint64_t HashBytes(std::uint64_t hash, const void* data,
                        std::size_t size);
inline constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

}  // namespace capellini::serve
