#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/table.h"

namespace capellini::serve {
namespace {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void AppendLatencyJson(std::ostringstream& out, const char* key,
                       const LatencySummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"count\": %zu, \"mean_ms\": %.6f, \"p50_ms\": %.6f, "
                "\"p90_ms\": %.6f, \"p99_ms\": %.6f, \"max_ms\": %.6f}",
                key, s.count, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms,
                s.max_ms);
  out << buf;
}

}  // namespace

LatencySummary Summarize(std::vector<double> samples_ms) {
  LatencySummary summary;
  if (samples_ms.empty()) return summary;
  std::sort(samples_ms.begin(), samples_ms.end());
  summary.count = samples_ms.size();
  double sum = 0.0;
  for (const double v : samples_ms) sum += v;
  summary.mean_ms = sum / static_cast<double>(samples_ms.size());
  summary.p50_ms = PercentileSorted(samples_ms, 50.0);
  summary.p90_ms = PercentileSorted(samples_ms, 90.0);
  summary.p99_ms = PercentileSorted(samples_ms, 99.0);
  summary.max_ms = samples_ms.back();
  return summary;
}

std::size_t ServiceStats::DeadlineBucketIndex(double deadline_budget_ms) {
  for (std::size_t i = 0; i + 1 < kDeadlineBucketUpperMs.size(); ++i) {
    if (deadline_budget_ms <= kDeadlineBucketUpperMs[i]) return i;
  }
  return kDeadlineBucketUpperMs.size() - 1;
}

void ServiceStats::RecordRequest(const RequestRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerHandle& ph = per_handle_[record.handle];
  if (ph.name.empty()) ph.name = record.name;
  switch (record.outcome) {
    case Outcome::kOk:
      ++totals_.requests;
      ++ph.requests;
      break;
    case Outcome::kFailed:
      ++totals_.failures;
      ++ph.failures;
      switch (record.code) {
        case StatusCode::kDeadlock:
          ++totals_.failures_deadlock;
          break;
        case StatusCode::kDataLoss:
          ++totals_.failures_verify;
          break;
        default:
          ++totals_.failures_other;
          break;
      }
      break;
    case Outcome::kExpired:
      ++totals_.deadline_misses;
      ++ph.deadline_misses;
      break;
  }
  if (record.batch_size >= 2) ++ph.batched_requests;
  // Queue wait is real for every terminal outcome; a solve latency only
  // exists when a launch actually ran.
  ph.queue_wait_ms.push_back(record.queue_wait_ms);
  queue_wait_ms_.push_back(record.queue_wait_ms);
  if (record.outcome != Outcome::kExpired) {
    ph.solve_ms.push_back(record.solve_ms);
    solve_ms_.push_back(record.solve_ms);
  }
  if (record.deadline_budget_ms >= 0.0) {
    DeadlineBucket& bucket =
        deadline_buckets_[DeadlineBucketIndex(record.deadline_budget_ms)];
    ++bucket.total;
    if (record.outcome == Outcome::kExpired) ++bucket.missed;
  }
  if (record.outcome == Outcome::kOk && record.est_cost_ms > 0.0 &&
      record.solve_ms > 0.0) {
    cost_error_ratio_sum_ +=
        std::abs(record.est_cost_ms - record.solve_ms) / record.solve_ms;
    ++cost_error_samples_;
  }
}

void ServiceStats::RecordBatch(int batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.batches;
  const auto k = static_cast<std::size_t>(batch_size);
  if (batch_occupancy_.size() < k) batch_occupancy_.resize(k, 0);
  ++batch_occupancy_[k - 1];
}

void ServiceStats::RecordRejection() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.rejections;
}

void ServiceStats::RecordReorder() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.reorders;
}

void ServiceStats::RecordBreakerOpen() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.breaker_opens;
}

void ServiceStats::RecordBreakerProbe() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.breaker_probes;
}

void ServiceStats::RecordBreakerProbeFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.breaker_probe_failures;
}

void ServiceStats::RecordBreakerShortCircuit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.breaker_short_circuits;
}

void ServiceStats::RecordUpdate(const UpdateReport& report,
                                const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerHandle& ph = per_handle_[report.handle];
  if (ph.name.empty()) ph.name = name;
  if (report.value_only) {
    ++totals_.updates_value;
    ++ph.updates_value;
  } else {
    ++totals_.updates_structural;
    ++ph.updates_structural;
  }
  totals_.update_rows_releveled +=
      static_cast<std::uint64_t>(report.rows_releveled);
  totals_.update_delta_bytes += report.delta_bytes;
  totals_.update_analysis_ms += report.analysis_ms;
  ph.update_rows_releveled += static_cast<std::uint64_t>(report.rows_releveled);
  ph.delta_log_bytes = report.delta_log_bytes;
  ph.update_analysis_ms += report.analysis_ms;
}

void ServiceStats::RecordUpdateRejection() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.update_rejections;
}

std::vector<ServiceStats::DeadlineBucket> ServiceStats::DeadlineBuckets()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DeadlineBucket> buckets(deadline_buckets_.begin(),
                                      deadline_buckets_.end());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i].upper_ms = kDeadlineBucketUpperMs[i];
  }
  return buckets;
}

double ServiceStats::MeanCostErrorRatio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cost_error_samples_ == 0
             ? 0.0
             : cost_error_ratio_sum_ /
                   static_cast<double>(cost_error_samples_);
}

ServiceStats::Totals ServiceStats::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

std::vector<std::uint64_t> ServiceStats::BatchOccupancy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batch_occupancy_;
}

std::string ServiceStats::ToTable(const RegistrySnapshot* registry) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;

  const LatencySummary wait = Summarize(queue_wait_ms_);
  const LatencySummary solve = Summarize(solve_ms_);
  TextTable global({"Requests", "Failures", "Rejected", "Deadline", "Batches",
                    "Reorders", "Wait p50/p99 ms", "Solve p50/p99 ms"});
  global.SetTitle("service totals");
  global.AddRow({std::to_string(totals_.requests),
                 std::to_string(totals_.failures),
                 std::to_string(totals_.rejections),
                 std::to_string(totals_.deadline_misses),
                 std::to_string(totals_.batches),
                 std::to_string(totals_.reorders),
                 TextTable::Num(wait.p50_ms, 3) + " / " +
                     TextTable::Num(wait.p99_ms, 3),
                 TextTable::Num(solve.p50_ms, 3) + " / " +
                     TextTable::Num(solve.p99_ms, 3)});
  out << global.ToString();

  if (totals_.failures > 0) {
    char line[112];
    std::snprintf(line, sizeof line,
                  "failure reasons: deadlock=%llu verify=%llu other=%llu\n",
                  static_cast<unsigned long long>(totals_.failures_deadlock),
                  static_cast<unsigned long long>(totals_.failures_verify),
                  static_cast<unsigned long long>(totals_.failures_other));
    out << line;
  }
  if (totals_.breaker_opens + totals_.breaker_probes +
          totals_.breaker_short_circuits >
      0) {
    char line[144];
    std::snprintf(
        line, sizeof line,
        "circuit breaker: opens=%llu probes=%llu probe_failures=%llu "
        "short_circuits=%llu\n",
        static_cast<unsigned long long>(totals_.breaker_opens),
        static_cast<unsigned long long>(totals_.breaker_probes),
        static_cast<unsigned long long>(totals_.breaker_probe_failures),
        static_cast<unsigned long long>(totals_.breaker_short_circuits));
    out << line;
  }

  if (totals_.updates_value + totals_.updates_structural +
          totals_.update_rejections >
      0) {
    char line[160];
    std::snprintf(
        line, sizeof line,
        "streaming updates: value_only=%llu structural=%llu rejected=%llu "
        "rows_releveled=%llu delta_bytes=%llu relevel_ms=%.3f\n",
        static_cast<unsigned long long>(totals_.updates_value),
        static_cast<unsigned long long>(totals_.updates_structural),
        static_cast<unsigned long long>(totals_.update_rejections),
        static_cast<unsigned long long>(totals_.update_rows_releveled),
        static_cast<unsigned long long>(totals_.update_delta_bytes),
        totals_.update_analysis_ms);
    out << line;
    std::snprintf(
        line, sizeof line,
        "invalidation causes: value_only(ewma reseed)=%llu "
        "structural(ewma reseed + cone relevel)=%llu\n",
        static_cast<unsigned long long>(totals_.updates_value),
        static_cast<unsigned long long>(totals_.updates_structural));
    out << line;
  }

  if (cost_error_samples_ > 0) {
    char line[96];
    std::snprintf(line, sizeof line,
                  "cost model: mean |est-actual|/actual = %.3f over %llu "
                  "solves\n",
                  cost_error_ratio_sum_ /
                      static_cast<double>(cost_error_samples_),
                  static_cast<unsigned long long>(cost_error_samples_));
    out << line;
  }
  bool any_bucket = false;
  for (const DeadlineBucket& bucket : deadline_buckets_) {
    if (bucket.total != 0) any_bucket = true;
  }
  if (any_bucket) {
    out << "deadline-budget buckets (miss rate):\n";
    for (std::size_t i = 0; i < deadline_buckets_.size(); ++i) {
      const DeadlineBucket& bucket = deadline_buckets_[i];
      if (bucket.total == 0) continue;
      char line[96];
      if (kDeadlineBucketUpperMs[i] > 0.0) {
        std::snprintf(line, sizeof line, "  <= %6.1f ms: %llu/%llu (%.1f%%)\n",
                      kDeadlineBucketUpperMs[i],
                      static_cast<unsigned long long>(bucket.missed),
                      static_cast<unsigned long long>(bucket.total),
                      100.0 * static_cast<double>(bucket.missed) /
                          static_cast<double>(bucket.total));
      } else {
        std::snprintf(line, sizeof line, "  >  100.0 ms: %llu/%llu (%.1f%%)\n",
                      static_cast<unsigned long long>(bucket.missed),
                      static_cast<unsigned long long>(bucket.total),
                      100.0 * static_cast<double>(bucket.missed) /
                          static_cast<double>(bucket.total));
      }
      out << line;
    }
  }

  if (!batch_occupancy_.empty()) {
    out << "batch occupancy (k requests per launch):\n";
    for (std::size_t k = 0; k < batch_occupancy_.size(); ++k) {
      if (batch_occupancy_[k] == 0) continue;
      out << "  k=" << (k + 1) << ": " << batch_occupancy_[k] << " launch"
          << (batch_occupancy_[k] == 1 ? "" : "es") << "\n";
    }
  }

  if (!per_handle_.empty()) {
    TextTable table({"Handle", "Matrix", "Requests", "Failures", "Batched",
                     "Upd v/s", "Releveled", "Relevel ms", "Log bytes",
                     "Wait p50 ms", "Solve p50 ms"});
    table.SetTitle("per-handle");
    for (const auto& [handle, ph] : per_handle_) {
      table.AddRow({std::to_string(handle), ph.name,
                    std::to_string(ph.requests), std::to_string(ph.failures),
                    std::to_string(ph.batched_requests),
                    std::to_string(ph.updates_value) + "/" +
                        std::to_string(ph.updates_structural),
                    std::to_string(ph.update_rows_releveled),
                    TextTable::Num(ph.update_analysis_ms, 3),
                    std::to_string(ph.delta_log_bytes),
                    TextTable::Num(Summarize(ph.queue_wait_ms).p50_ms, 3),
                    TextTable::Num(Summarize(ph.solve_ms).p50_ms, 3)});
    }
    out << table.ToString();
  }

  if (registry != nullptr) {
    TextTable cache({"Registered", "Resident", "Bytes", "Hits", "Misses",
                     "Evictions", "Updates", "Anl warm/cold", "Anl device"});
    cache.SetTitle("registry cache");
    cache.AddRow({std::to_string(registry->registrations),
                  std::to_string(registry->resident_entries),
                  std::to_string(registry->resident_bytes),
                  std::to_string(registry->hits),
                  std::to_string(registry->misses),
                  std::to_string(registry->evictions),
                  std::to_string(registry->updates),
                  std::to_string(registry->analysis_cache_hits) + "/" +
                      std::to_string(registry->analysis_cache_misses),
                  std::to_string(registry->device_analyses)});
    out << cache.ToString();
  }
  return out.str();
}

std::string ServiceStats::ToJson(const RegistrySnapshot* registry) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n";
  out << "  \"requests\": " << totals_.requests << ",\n";
  out << "  \"failures\": " << totals_.failures << ",\n";
  out << "  \"rejections\": " << totals_.rejections << ",\n";
  out << "  \"deadline_misses\": " << totals_.deadline_misses << ",\n";
  out << "  \"batches\": " << totals_.batches << ",\n";
  out << "  \"reorders\": " << totals_.reorders << ",\n";
  out << "  \"failures_deadlock\": " << totals_.failures_deadlock << ",\n";
  out << "  \"failures_verify\": " << totals_.failures_verify << ",\n";
  out << "  \"failures_other\": " << totals_.failures_other << ",\n";
  out << "  \"breaker_opens\": " << totals_.breaker_opens << ",\n";
  out << "  \"breaker_probes\": " << totals_.breaker_probes << ",\n";
  out << "  \"breaker_probe_failures\": " << totals_.breaker_probe_failures
      << ",\n";
  out << "  \"breaker_short_circuits\": " << totals_.breaker_short_circuits
      << ",\n";
  out << "  \"updates_value\": " << totals_.updates_value << ",\n";
  out << "  \"updates_structural\": " << totals_.updates_structural << ",\n";
  out << "  \"update_rejections\": " << totals_.update_rejections << ",\n";
  out << "  \"update_rows_releveled\": " << totals_.update_rows_releveled
      << ",\n";
  out << "  \"update_delta_bytes\": " << totals_.update_delta_bytes << ",\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", totals_.update_analysis_ms);
    out << "  \"update_analysis_ms\": " << buf << ",\n";
  }
  out << "  \"invalidation_causes\": {\"value_only\": " << totals_.updates_value
      << ", \"structural\": " << totals_.updates_structural << "},\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f",
                  cost_error_samples_ == 0
                      ? 0.0
                      : cost_error_ratio_sum_ /
                            static_cast<double>(cost_error_samples_));
    out << "  \"cost_error_ratio\": " << buf << ",\n";
  }
  out << "  \"deadline_buckets\": [";
  for (std::size_t i = 0; i < deadline_buckets_.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%s{\"upper_ms\": %.1f, \"total\": %llu, \"missed\": %llu}",
                  i == 0 ? "" : ", ", kDeadlineBucketUpperMs[i],
                  static_cast<unsigned long long>(deadline_buckets_[i].total),
                  static_cast<unsigned long long>(deadline_buckets_[i].missed));
    out << buf;
  }
  out << "],\n";
  out << "  \"batch_occupancy\": [";
  for (std::size_t k = 0; k < batch_occupancy_.size(); ++k) {
    out << (k == 0 ? "" : ", ") << batch_occupancy_[k];
  }
  out << "],\n  ";
  AppendLatencyJson(out, "queue_wait", Summarize(queue_wait_ms_));
  out << ",\n  ";
  AppendLatencyJson(out, "solve", Summarize(solve_ms_));
  if (registry != nullptr) {
    out << ",\n  \"registry\": {\"registrations\": " << registry->registrations
        << ", \"resident_entries\": " << registry->resident_entries
        << ", \"resident_bytes\": " << registry->resident_bytes
        << ", \"hits\": " << registry->hits
        << ", \"misses\": " << registry->misses
        << ", \"evictions\": " << registry->evictions
        << ", \"updates\": " << registry->updates
        << ", \"analysis_cache_hits\": " << registry->analysis_cache_hits
        << ", \"analysis_cache_misses\": " << registry->analysis_cache_misses
        << ", \"device_analyses\": " << registry->device_analyses << "}";
  }
  out << ",\n  \"per_handle\": [\n";
  std::size_t i = 0;
  for (const auto& [handle, ph] : per_handle_) {
    out << "    {\"handle\": " << handle << ", \"name\": \"" << ph.name
        << "\", \"requests\": " << ph.requests
        << ", \"failures\": " << ph.failures
        << ", \"batched_requests\": " << ph.batched_requests
        << ", \"updates_value\": " << ph.updates_value
        << ", \"updates_structural\": " << ph.updates_structural
        << ", \"rows_releveled\": " << ph.update_rows_releveled
        << ", \"update_analysis_ms\": " << ph.update_analysis_ms
        << ", \"delta_log_bytes\": " << ph.delta_log_bytes << "}"
        << (++i < per_handle_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace capellini::serve
