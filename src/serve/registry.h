// MatrixRegistry: the analyzed-matrix cache behind the solve service.
//
// A caller registers a lower-triangular factor ONCE and gets back a stable
// handle; the registry owns the Solver and memoizes its structural analysis
// (levels, parallel granularity, the Figure-6 SelectAlgorithm verdict), so
// the analyze/solve split that vendor libraries expose (cusparse_analysis /
// cusparse_solve) falls out for free: every subsequent solve on the handle
// is a cache hit.
//
// Resource model:
//  * A configurable byte budget bounds resident matrices; registration past
//    the budget evicts least-recently-used entries (LRU order is updated by
//    Acquire).
//  * Entries are handed out as shared_ptr. Eviction only drops the
//    registry's reference — in-flight solves on an evicted matrix keep it
//    alive and complete normally; the memory is reclaimed when the last
//    solve finishes.
//  * All registry operations take one short-lived mutex for the map/LRU
//    bookkeeping only. Solves never hold it, so concurrent solves on
//    different (or the same) matrices never serialize through the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solver.h"
#include "matrix/csr.h"
#include "serve/persist.h"
#include "support/status.h"
#include "update/delta.h"
#include "update/incremental.h"

namespace capellini::serve {

/// Stable identifier for a registered matrix. Never reused, so a handle held
/// across an eviction + re-registration cleanly reports NotFound instead of
/// silently binding to the new entry.
using MatrixHandle = std::uint64_t;
inline constexpr MatrixHandle kInvalidHandle = 0;

struct RegistryOptions {
  /// Upper bound on resident bytes (matrix arrays + analysis arrays).
  /// 0 = unlimited. A single matrix larger than the whole budget is
  /// rejected with kResourceExhausted rather than thrashing the cache.
  std::size_t byte_budget = 0;
  /// Directory for persisted analyses (serve/persist.h). Empty = no
  /// persistence. When set, cold registrations Store their level sets +
  /// cost seed after analyzing, and later registrations of the same name
  /// rehydrate through Solver::SeedAnalysis without a host Analyze() —
  /// stale or corrupted files (kDataLoss) fall back to a cold analysis and
  /// are overwritten.
  std::string analysis_cache_dir;
  /// Run cold analyses on the simulated device (kernels::AnalyzeOnDevice,
  /// on the SolverOptions device) instead of the host sweep. Bit-identical
  /// level sets by construction; analysis_ms then reports simulated device
  /// time + host assembly. Falls back to the host sweep if the device
  /// analysis fails (e.g. fault injection starves it).
  bool analyze_on_device = false;
};

/// Point-in-time registry counters (see ServiceStats for the service-level
/// view; these are the cache-side numbers).
struct RegistrySnapshot {
  std::uint64_t registrations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t hits = 0;       // Acquire on a resident handle
  std::uint64_t misses = 0;     // Acquire on an unknown/evicted handle
  std::uint64_t updates = 0;    // successful ApplyDelta epoch swaps
  /// Warm registrations rehydrated from the analysis cache (zero host
  /// Analyze() calls).
  std::uint64_t analysis_cache_hits = 0;
  /// Cold registrations with a cache configured: no usable file (missing,
  /// corrupt, or fingerprint-stale) — a full analysis ran and was Stored.
  std::uint64_t analysis_cache_misses = 0;
  /// Cold analyses that ran as AnalyzeOnDevice kernels.
  std::uint64_t device_analyses = 0;
  std::size_t resident_entries = 0;
  std::size_t resident_bytes = 0;  // includes per-handle delta-log bytes
};

/// What one ApplyDelta did — the numbers ServiceStats accumulates per handle
/// and bench_update reports (rows re-leveled / total is the incremental win).
struct UpdateReport {
  MatrixHandle handle = kInvalidHandle;
  std::string name;
  std::uint64_t epoch = 0;  // entry version after the swap
  bool value_only = false;
  Idx rows_releveled = 0;  // forward-cone size (0 for value-only)
  Idx total_rows = 0;
  std::size_t delta_bytes = 0;      // this batch's delta-log bytes
  std::size_t delta_log_bytes = 0;  // cumulative log bytes now charged
  double update_ms = 0.0;           // apply + incremental re-analysis cost
  /// Incremental re-leveling portion of update_ms (0 for value-only
  /// batches, which reuse the analysis untouched). This is also what the
  /// new epoch's Entry::analysis_ms reports — per-epoch re-analysis cost,
  /// not the original registration's.
  double analysis_ms = 0.0;
};

class MatrixRegistry {
 public:
  /// Per-handle solve-cost model for the scheduler's admission control:
  /// seeded at registration from the analysis (Solver::CostHintMs) and
  /// refined online by an EWMA over observed solve milliseconds. Entries are
  /// shared as shared_ptr<const Entry> across service workers, so the mutable
  /// state is lock-free atomics and every method is const.
  class CostModel {
   public:
    /// Current per-solve estimate in ms: the analytic seed until the first
    /// observation, the EWMA afterwards.
    double EstimateMs() const {
      return samples_.load(std::memory_order_acquire) == 0
                 ? seed_ms_
                 : ewma_ms_.load(std::memory_order_relaxed);
    }
    std::uint64_t samples() const {
      return samples_.load(std::memory_order_acquire);
    }
    /// Folds one observed solve time in. The first sample replaces the
    /// analytic seed outright; later samples blend with weight kAlpha.
    void Observe(double solve_ms) const;

   private:
    friend class MatrixRegistry;
    static constexpr double kAlpha = 0.25;
    double seed_ms_ = 0.0;  // written once at registration
    mutable std::atomic<double> ewma_ms_{0.0};
    mutable std::atomic<std::uint64_t> samples_{0};
  };

  /// One registered matrix: the Solver (whose analysis() is memoized and
  /// safe under concurrent readers) plus cache bookkeeping.
  struct Entry {
    MatrixHandle handle = kInvalidHandle;
    std::string name;
    Solver solver;
    std::size_t bytes = 0;
    /// Milliseconds spent producing THIS epoch's analysis: the cold
    /// registration's host Analyze() (or device exec + host assembly when
    /// analyze_on_device is set, or ~0 on a cache rehydrate), and after an
    /// ApplyDelta the incremental re-level time of that epoch alone.
    double analysis_ms = 0.0;
    /// Scheduler cost model (analysis-seeded, EWMA-corrected).
    CostModel cost;
    /// Version counter: 0 at registration, bumped by every ApplyDelta. An
    /// in-flight solve pinned its EntryRef at admission and finishes on its
    /// epoch's matrix while the slot already points at epoch + 1 — the same
    /// shared_ptr liveness trick that lets solves survive LRU eviction.
    std::uint64_t epoch = 0;
    /// Cumulative bytes of applied DeltaBatches; charged to the byte budget
    /// on top of the matrix + level arrays.
    std::size_t delta_log_bytes = 0;
    /// Strictly-lower transpose adjacency for incremental re-leveling:
    /// built on the first structural update, then moved (not copied) to the
    /// successor entry of each epoch. Update-path-only state — guarded by
    /// the registry's update mutex, never read by solves.
    mutable std::unique_ptr<update::ConsumerGraph> consumers;

    Entry(MatrixHandle h, std::string n, Csr lower, SolverOptions options)
        : handle(h), name(std::move(n)),
          solver(std::move(lower), std::move(options)) {}
  };
  using EntryRef = std::shared_ptr<const Entry>;

  explicit MatrixRegistry(RegistryOptions options = {});

  /// Validates, analyzes and caches `lower`. Returns the new handle, or
  ///  * kInvalidArgument if the matrix is not lower-triangular with diagonal
  ///    (a Status, not an abort: served paths must not bring the process
  ///    down on bad tenant input);
  ///  * kResourceExhausted if the matrix alone exceeds the byte budget.
  Expected<MatrixHandle> Register(Csr lower, std::string name,
                                  SolverOptions options = {});

  /// Looks up a handle and marks it most-recently-used. NotFound if the
  /// handle was never registered or has been evicted.
  Expected<EntryRef> Acquire(MatrixHandle handle);

  /// Looks up a handle WITHOUT promoting it in the LRU or counting a cache
  /// hit. Admission control peeks first and only Promote()s requests it
  /// actually admits, so a spammy rejected tenant can neither refresh its
  /// own entry nor inflate the hit counters. Unknown/evicted handles still
  /// count as misses (a miss is terminal either way).
  Expected<EntryRef> Peek(MatrixHandle handle) const;

  /// Marks an admitted handle most-recently-used and counts the cache hit.
  /// No-op if the handle is gone — the caller already pinned an EntryRef, so
  /// a concurrent eviction is harmless.
  void Promote(MatrixHandle handle);

  /// Side-effect-free lookup: no LRU promotion, no hit/miss counting.
  /// Returns nullptr if the handle is gone. For bookkeeping observers — the
  /// fleet's placement-ledger reconciliation reads cost models through this
  /// so accounting passes never pollute the cache statistics.
  EntryRef TryPeek(MatrixHandle handle) const;

  /// Applies a DeltaBatch to a registered factor in place (DESIGN.md §4h):
  /// validates + mutates the matrix, patches the analysis incrementally
  /// (value-only batches reuse it untouched; structural batches re-level
  /// only the edited rows' forward cone), and swaps an epoch-bumped
  /// replacement Entry into the slot. In-flight solves keep the pre-update
  /// snapshot alive through their EntryRef and are never blocked: the
  /// expensive patch runs under a dedicated update mutex with the registry
  /// mutex released. The learned EWMA cost state is invalidated (re-seeded
  /// from the patched analysis) since it measured the previous epoch.
  /// Errors: kNotFound (unknown/evicted handle — also when evicted during
  /// the patch), kInvalidArgument (batch fails validation; factor
  /// untouched), kResourceExhausted (updated entry alone exceeds the byte
  /// budget; the old epoch stays resident).
  Expected<UpdateReport> ApplyDelta(MatrixHandle handle,
                                    const update::DeltaBatch& batch);

  /// Drops a handle explicitly (idempotent; returns false if absent).
  bool Evict(MatrixHandle handle);

  bool Contains(MatrixHandle handle) const;
  RegistrySnapshot Snapshot() const;
  const RegistryOptions& options() const { return options_; }

 private:
  /// Approximate resident footprint of an entry: CSR arrays + the memoized
  /// level-set arrays (the two allocations that dominate).
  static std::size_t FootprintBytes(const Entry& entry);
  void EvictLruUntilFitsLocked(std::size_t incoming_bytes);
  /// The cold/warm/on-device analysis decision tree of Register; runs
  /// outside the registry mutex. Fills entry->analysis_ms and the cost seed.
  void AnalyzeEntry(Entry& entry);

  RegistryOptions options_;
  /// Engaged when options_.analysis_cache_dir is set.
  std::unique_ptr<AnalysisCache> cache_;
  mutable std::mutex mutex_;
  /// Serializes ApplyDelta calls (and the analyzer scratch they share)
  /// without blocking lookups/solves. Ordering: update_mutex_ may take
  /// mutex_, never the reverse.
  std::mutex update_mutex_;
  update::IncrementalAnalyzer analyzer_;
  MatrixHandle next_handle_ = 1;
  // LRU list front = most recent; map values hold the list iterator for O(1)
  // splice on Acquire.
  std::list<MatrixHandle> lru_;
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::list<MatrixHandle>::iterator lru_it;
  };
  std::unordered_map<MatrixHandle, Slot> entries_;
  std::size_t resident_bytes_ = 0;
  mutable RegistrySnapshot stats_;  // Peek is const but counts misses
};

}  // namespace capellini::serve
