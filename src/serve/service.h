// SolveService: an async, batching solve front-end over the MatrixRegistry.
//
// Request path:
//   Submit(handle, b, opts) -> Expected<std::future<ServeResult>>
//     * admission control: a bounded FIFO queue; when full, Submit returns
//       kResourceExhausted immediately (backpressure, never an abort);
//     * workers (support/thread_pool) pop the queue; the COALESCING step
//       scans the queue in FIFO order and groups up to `max_batch` requests
//       that target the same handle with the same effective algorithm into
//       ONE SolveMrhsOnDevice launch — the structure walk is paid once for
//       the whole group (Liu et al.'s mrhs result, applied as a scheduler
//       policy). Algorithms without an mrhs form fall back to per-request
//       Solver::Solve;
//     * per-request deadlines are checked at dequeue time — an expired
//       request completes with kDeadlineExceeded without burning a launch;
//     * simulator watchdog trips (the naive kernel's deadlock) surface as
//       the kDeadlock Status inside the future, exactly like the library
//       path. Nothing on a served path aborts the process.
//
// Determinism contract: with DeterministicOptions() (workers=1, max_batch=1)
// the service is a plain FIFO executor — every request runs the identical
// Solver::Solve call the one-shot path would, in submission order, so the
// returned SolveResults are byte-identical to a serial loop. serve_test and
// bench_serve's CI gate both checksum this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/solver.h"
#include "serve/registry.h"
#include "serve/stats.h"

namespace capellini {
class ThreadPool;  // support/thread_pool.h
}

namespace capellini::serve {

struct ServiceOptions {
  /// Worker threads draining the queue.
  int workers = 2;
  /// Coalescing cap: up to this many same-handle requests per launch.
  /// Clamped to [1, 6] (the mrhs kernel's accumulator-register limit).
  int max_batch = 4;
  /// Admission bound; Submit rejects with kResourceExhausted when the queue
  /// holds this many pending requests.
  std::size_t max_queue = 256;
  /// Default per-request deadline in wall-clock ms from submission
  /// (0 = none). Requests can override per submission.
  double default_deadline_ms = 0.0;
  /// If true the workers do not start draining until Start() — tests and
  /// benches use this to load the queue first so coalescing is
  /// deterministic and maximal.
  bool start_paused = false;
};

struct RequestOptions {
  /// Algorithm override; nullopt = the handle's memoized recommendation.
  std::optional<Algorithm> algorithm;
  /// Per-request deadline ms (overrides ServiceOptions::default_deadline_ms;
  /// < 0 means "no deadline even if the service has a default").
  std::optional<double> deadline_ms;
};

/// What the future resolves to. `status` carries solve-time errors
/// (deadline, deadlock, ...); admission errors are returned by Submit
/// directly and never produce a future.
struct ServeResult {
  Status status;
  SolveResult solve;
  Algorithm algorithm = Algorithm::kCapellini;
  /// Requests coalesced into the launch that served this one (1 = solo).
  int batch_size = 1;
  double queue_wait_ms = 0.0;
};

class SolveService {
 public:
  /// `registry` must outlive the service.
  SolveService(MatrixRegistry* registry, ServiceOptions options = {});
  /// Drains every accepted request (accepted work always completes), then
  /// joins the workers.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueues a solve of `handle`'s matrix against `b`. Fails fast with
  ///  * kNotFound          — unknown/evicted handle,
  ///  * kInvalidArgument   — b has the wrong length,
  ///  * kResourceExhausted — queue full,
  ///  * kFailedPrecondition — service already shut down.
  Expected<std::future<ServeResult>> Submit(MatrixHandle handle,
                                            std::vector<Val> b,
                                            RequestOptions options = {});

  /// Releases workers when constructed with start_paused (no-op otherwise).
  void Start();

  /// Blocks until every accepted request has completed and stops the
  /// workers. Subsequent Submits fail with kFailedPrecondition. Idempotent.
  void Shutdown();

  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }
  MatrixRegistry* registry() const { return registry_; }

  /// workers=1, max_batch=1: byte-reproduces the serial one-shot path.
  static ServiceOptions DeterministicOptions();

 private:
  using Clock = std::chrono::steady_clock;
  struct Request {
    MatrixHandle handle = kInvalidHandle;
    MatrixRegistry::EntryRef entry;  // pinned at admission
    std::vector<Val> b;
    Algorithm algorithm = Algorithm::kCapellini;
    Clock::time_point enqueue_time;
    Clock::time_point deadline;  // time_point::max() = none
    std::promise<ServeResult> promise;
  };

  void WorkerLoop();
  /// Pops the next group: the front request plus up to max_batch-1 more
  /// queued requests with the same handle + algorithm (scanning the whole
  /// queue, not just the front — zipf traffic interleaves handles).
  std::vector<Request> PopGroupLocked();
  void ServeGroup(std::vector<Request> group);
  void ServeBatched(std::vector<Request>& group,
                    const MatrixRegistry::Entry& entry);

  MatrixRegistry* registry_;
  ServiceOptions options_;
  ServiceStats stats_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool shutdown_ = false;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> worker_done_;
};

}  // namespace capellini::serve
