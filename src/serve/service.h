// SolveService: an async, batching solve front-end over the MatrixRegistry.
//
// Request path:
//   Submit(handle, b, opts) -> Expected<std::future<ServeResult>>
//     * admission control runs BEFORE the registry's LRU is touched (a
//       rejected tenant must not refresh its entry or count cache hits):
//       a bounded queue (count bound `max_queue`, plus an optional
//       estimated-cost bound `max_queue_cost_ms` fed by the per-handle cost
//       model) refuses with kResourceExhausted and a computed retry-after
//       hint — backpressure, never an abort;
//     * the queue is earliest-deadline-first under QueuePolicy::kEdf (the
//       default): requests are kept sorted by (deadline, arrival seq), so a
//       deadline-free workload degenerates to exact FIFO and
//       DeterministicOptions() keeps byte-identical results. kFifo preserves
//       strict arrival order for A/B comparison (bench_serve's overload
//       sweep);
//     * workers (support/thread_pool) pop the queue; the COALESCING step
//       scans the queue in scheduling order and groups up to `max_batch`
//       deadline-compatible requests (same handle + algorithm, deadlines
//       within `coalesce_window_ms` of the group leader's) into ONE
//       SolveMrhsOnDevice launch — the structure walk is paid once for
//       the whole group (Liu et al.'s mrhs result, applied as a scheduler
//       policy). Algorithms without an mrhs form fall back to per-request
//       Solver::Solve;
//     * per-request deadlines are checked at dequeue time — an expired
//       request completes with kDeadlineExceeded without burning a launch;
//     * every terminal outcome hits ServiceStats exactly once: ok/failed/
//       expired through RecordRequest, admission refusals (queue full, cost
//       bound, shutdown) through RecordRejection;
//     * observed solve times feed back into the registry entry's EWMA cost
//       model, so admission estimates track the workload;
//     * simulator watchdog trips (the naive kernel's deadlock) surface as
//       the kDeadlock Status inside the future, exactly like the library
//       path. Nothing on a served path aborts the process.
//
// Determinism contract: with DeterministicOptions() (workers=1, max_batch=1,
// no deadlines, cost admission off) the service is a plain FIFO executor —
// every request runs the identical Solver::Solve call the one-shot path
// would, in submission order, so the returned SolveResults are byte-identical
// to a serial loop. serve_test and bench_serve's CI gate both checksum this,
// under both queue policies.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/solver.h"
#include "serve/registry.h"
#include "serve/stats.h"

namespace capellini {
class ThreadPool;  // support/thread_pool.h
}

namespace capellini::serve {

enum class QueuePolicy {
  /// Strict arrival order (the PR-3 behavior, kept for A/B sweeps).
  kFifo,
  /// Earliest deadline first, stable on arrival order for ties. Deadline-free
  /// requests sort last (deadline = +inf) in arrival order.
  kEdf,
};

/// What an open circuit breaker does with requests for its handle.
enum class BreakerMode {
  /// Complete immediately with kResourceExhausted ("circuit breaker open"):
  /// no launch is burned on a handle that keeps failing.
  kFastFail,
  /// Route around the device: serve with the host serial solver, which is
  /// immune to the device-side faults that opened the breaker.
  kHostFallback,
};

struct ServiceOptions {
  /// Worker threads draining the queue.
  int workers = 2;
  /// Coalescing cap: up to this many same-handle requests per launch.
  /// Clamped to [1, 6] (the mrhs kernel's accumulator-register limit).
  int max_batch = 4;
  /// Count-based admission bound; Submit rejects with kResourceExhausted
  /// when the queue holds this many pending requests.
  std::size_t max_queue = 256;
  /// Cost-based admission bound: reject when the estimated cost of the
  /// queued work (per-handle cost model: analysis-seeded, EWMA over observed
  /// solve ms) plus the incoming request exceeds this many milliseconds.
  /// 0 = disabled. An empty queue always admits one request, so a single
  /// expensive matrix can never be starved out.
  double max_queue_cost_ms = 0.0;
  /// Default per-request deadline in wall-clock ms from submission
  /// (0 = none). Requests can override per submission.
  double default_deadline_ms = 0.0;
  /// Queue ordering policy. kEdf with no deadlines is exactly kFifo.
  QueuePolicy policy = QueuePolicy::kEdf;
  /// Coalescing deadline-compatibility window: a queued request joins a
  /// group only if its deadline is within this many ms of the group
  /// leader's. 0 = unlimited (pure same-key coalescing).
  double coalesce_window_ms = 0.0;
  /// If true the workers do not start draining until Start() — tests and
  /// benches use this to load the queue first so coalescing is
  /// deterministic and maximal.
  bool start_paused = false;
  /// Self-healing solves (core/verify.h): verify every solution and escalate
  /// through the retry ladder (Solver::SolveReliable) on deadlock, NaN/Inf
  /// or a bad residual. Coalesced launches verify each coalesced solution
  /// and re-run only the failing requests through the ladder. Off by
  /// default — DeterministicOptions' byte-identity contract needs the plain
  /// Solve call.
  bool reliable = false;
  /// Residual bound for verification when `reliable` is on.
  double residual_bound = 1e-8;
  /// Cost-aware retry ladder (reliable mode only): a handle whose estimated
  /// solve cost (per-handle cost model: analysis-seeded, EWMA-updated) is AT
  /// OR ABOVE this many milliseconds skips the fast retry rungs — re-running
  /// a big matrix through kCapelliniTwoPhase just to watch it fail again is
  /// the most expensive way to reach the safe rung — and escalates straight
  /// to {kLevelSet, kSerialCpu}. Cheaper handles keep the full default
  /// ladder, whose fast rungs usually recover them in one cheap retry.
  /// 0 = one ladder (DefaultRetryLadder) for every handle.
  double ladder_cost_threshold_ms = 0.0;
  /// Circuit breaker: this many CONSECUTIVE device failures (kDeadlock or
  /// kDataLoss) on one handle open its breaker. 0 = breaker disabled.
  int breaker_threshold = 0;
  /// While open, this many dequeued requests are deflected (per
  /// breaker_mode) before one half-open probe is let through; the probe's
  /// outcome closes the breaker or re-opens it. Counted in requests, not
  /// wall clock, so tests and replays are deterministic.
  int breaker_cooldown = 4;
  BreakerMode breaker_mode = BreakerMode::kFastFail;
  /// Sliding-window breaker: track the last `breaker_window` reported device
  /// outcomes per handle and open when the window is FULL and its failure
  /// fraction reaches `breaker_rate`. Catches intermittent faults (e.g. a
  /// 1-in-3 dropped publish) that never produce `breaker_threshold`
  /// consecutive failures. 0 = window mode off. Both modes may be enabled
  /// at once; either trip opens the breaker. Opening (and a successful
  /// half-open probe) clears the window, so each open needs fresh evidence.
  int breaker_window = 0;
  /// Failure fraction that opens a full window. Clamped to (0, 1].
  double breaker_rate = 0.5;
  /// Observer for terminal DEVICE-PATH outcomes, called once per served
  /// request with (handle, terminal status code) — exactly the signals the
  /// breaker sees: breaker-deflected and host-fallback serves are excluded,
  /// since a host solve says nothing about the device. The fleet's sharded
  /// facade feeds each device's per-device health tracker through this.
  /// Called from worker threads; must be thread-safe and must not call back
  /// into the service.
  std::function<void(MatrixHandle, StatusCode)> outcome_listener;
};

struct RequestOptions {
  /// Algorithm override; nullopt = the handle's memoized recommendation.
  std::optional<Algorithm> algorithm;
  /// Per-request deadline ms (overrides ServiceOptions::default_deadline_ms;
  /// < 0 means "no deadline even if the service has a default").
  std::optional<double> deadline_ms;
};

/// What the future resolves to. `status` carries solve-time errors
/// (deadline, deadlock, ...); admission errors are returned by Submit
/// directly and never produce a future.
struct ServeResult {
  Status status;
  SolveResult solve;
  Algorithm algorithm = Algorithm::kCapellini;
  /// Requests coalesced into the launch that served this one (1 = solo).
  int batch_size = 1;
  /// Wait from submission to the (single) dequeue timestamp of the group
  /// that served this request — solo and batched paths measure from the
  /// same stamp.
  double queue_wait_ms = 0.0;
  /// Monotone index of the dequeue (launch group) that served this request;
  /// tests assert scheduling order through it.
  std::uint64_t dequeue_seq = 0;
  /// The scheduler's cost estimate for this request at admission (ms).
  double est_cost_ms = 0.0;
  /// Reliable mode only (ServiceOptions::reliable): did the returned
  /// solution pass verification, what was its relative residual, and how
  /// many solve attempts (the original plus retries) it took. With reliable
  /// off, `verified` stays false and `residual` 0 — nothing was checked.
  bool verified = false;
  double residual = 0.0;
  int attempts = 1;
};

class SolveService {
 public:
  /// `registry` must outlive the service.
  SolveService(MatrixRegistry* registry, ServiceOptions options = {});
  /// Drains every accepted request (accepted work always completes), then
  /// joins the workers.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueues a solve of `handle`'s matrix against `b`. Fails fast with
  ///  * kNotFound          — unknown/evicted handle,
  ///  * kInvalidArgument   — b has the wrong length,
  ///  * kResourceExhausted — queue full or estimated queued cost over
  ///                         budget; the message carries a retry-after hint,
  ///  * kFailedPrecondition — service already shut down.
  /// Only admitted requests promote the handle in the registry LRU.
  Expected<std::future<ServeResult>> Submit(MatrixHandle handle,
                                            std::vector<Val> b,
                                            RequestOptions options = {});

  /// Applies a streaming update to a registered factor (see
  /// MatrixRegistry::ApplyDelta for semantics: epoch-bumped snapshot swap,
  /// in-flight solves finish on the pre-update epoch). The service layer
  /// adds accounting: every call records exactly one of RecordUpdate /
  /// RecordUpdateRejection in stats(). Fails with kFailedPrecondition after
  /// Shutdown (counted as a rejection), otherwise forwards the registry's
  /// status.
  Expected<UpdateReport> ApplyDelta(MatrixHandle handle,
                                    const update::DeltaBatch& batch);

  /// Releases workers when constructed with start_paused (no-op otherwise).
  void Start();

  /// Blocks until every accepted request has completed and stops the
  /// workers. Subsequent Submits fail with kFailedPrecondition. Idempotent.
  void Shutdown();

  /// Estimated milliseconds of solve work currently queued (the cost-based
  /// admission ledger).
  double QueuedCostMs() const;

  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }
  MatrixRegistry* registry() const { return registry_; }

  /// workers=1, max_batch=1: byte-reproduces the serial one-shot path.
  static ServiceOptions DeterministicOptions();

 private:
  using Clock = std::chrono::steady_clock;
  struct Request {
    MatrixHandle handle = kInvalidHandle;
    MatrixRegistry::EntryRef entry;  // pinned at admission
    std::vector<Val> b;
    Algorithm algorithm = Algorithm::kCapellini;
    Clock::time_point enqueue_time;
    Clock::time_point deadline;  // time_point::max() = none
    double deadline_budget_ms = -1.0;  // < 0 = none (stats bucketing)
    double est_cost_ms = 0.0;          // admission ledger entry
    std::uint64_t seq = 0;             // arrival order (EDF tie-break)
    std::uint64_t dequeue_seq = 0;     // stamped by PopGroupLocked
    std::promise<ServeResult> promise;
  };

  /// Per-handle circuit breaker: closed -> (threshold consecutive device
  /// failures) -> open -> (cooldown deflections) -> half-open probe ->
  /// closed on success / open on failure. All transitions happen at serve
  /// time under breaker_mutex_, driven by request counts — deterministic
  /// under DeterministicOptions.
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    int open_skips = 0;
    /// Last `breaker_window` outcomes (true = failure), oldest first. Only
    /// maintained when window mode is on.
    std::deque<bool> window;
  };
  enum class BreakerDecision { kAllow, kProbe, kShortCircuit, kFallback };

  void WorkerLoop();
  /// Inserts in scheduling order (kEdf: sorted by (deadline, seq); kFifo:
  /// tail). Returns true if the request landed ahead of queued work.
  bool EnqueueLocked(Request request);
  /// Pops the next group: the front request plus up to max_batch-1 more
  /// queued deadline-compatible requests with the same handle + algorithm
  /// (scanning the whole queue, not just the front — zipf traffic
  /// interleaves handles). Stamps dequeue_seq and releases the popped
  /// requests' cost from the admission ledger.
  std::vector<Request> PopGroupLocked();
  void ServeGroup(std::vector<Request> group);
  void ServeBatched(std::vector<Request>& group,
                    const MatrixRegistry::Entry& entry,
                    Clock::time_point dequeue_time);
  /// One request through Solve or SolveReliable (per options_.reliable).
  /// `report_breaker` is false on breaker-fallback serves: a host solve says
  /// nothing about the device path's health.
  void ServeSolo(Request& request, const MatrixRegistry::Entry& entry,
                 Clock::time_point dequeue_time, bool report_breaker);
  /// Records stats + breaker outcome and resolves the promise — every
  /// non-expired terminal outcome funnels through here exactly once.
  void FinishRequest(Request& request, const MatrixRegistry::Entry& entry,
                     ServeResult result, int batch_size, bool report_breaker);
  BreakerDecision BreakerAdmit(MatrixHandle handle);
  void BreakerReport(MatrixHandle handle, StatusCode code);
  /// The retry ladder for this entry under ladder_cost_threshold_ms (empty =
  /// ReliableOptions' default). serve_test asserts the choice both ways.
  std::vector<Algorithm> RetryLadderFor(
      const MatrixRegistry::Entry& entry) const;

  MatrixRegistry* registry_;
  ServiceOptions options_;
  ServiceStats stats_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  double queued_cost_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_dequeue_seq_ = 0;
  bool paused_ = false;
  bool shutdown_ = false;

  // Breaker state is per handle and outlives entry eviction (a re-registered
  // handle id is new, so stale state cannot leak onto a different matrix).
  mutable std::mutex breaker_mutex_;
  std::map<MatrixHandle, Breaker> breakers_;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> worker_done_;
};

}  // namespace capellini::serve
