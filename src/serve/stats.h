// ServiceStats: per-handle and global observability for the solve service.
//
// Workers record one event per request (queue wait, solve latency, batch
// size, outcome) plus registry-level cache events; the accumulated counters
// render as a fixed-width table for operators and as JSON for CI artifacts.
// Percentiles are computed at dump time from retained samples — the service
// is a measurement harness, not a prod telemetry pipeline, so exact
// percentiles beat streaming sketches here.
//
// Accounting invariant: every submitted request hits the stats EXACTLY once
// with its terminal outcome — RecordRequest (ok / failed / expired) for
// requests that entered the queue, RecordRejection for admission refusals
// (queue full, cost bound, shutdown). serve_test asserts
//   requests + failures + deadline_misses + rejections == submitted.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/registry.h"
#include "support/status.h"

namespace capellini::serve {

/// Exact percentiles over recorded samples (empty summary = all zeros).
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};
LatencySummary Summarize(std::vector<double> samples_ms);

class ServiceStats {
 public:
  enum class Outcome {
    kOk,       // solved, future carries the solution
    kFailed,   // solve-time error (deadlock, kernel failure, ...)
    kExpired,  // deadline passed before a launch was burned
  };

  /// One terminal request outcome.
  struct RequestRecord {
    MatrixHandle handle = kInvalidHandle;
    std::string name;
    Outcome outcome = Outcome::kOk;
    /// Terminal status code; splits kFailed by reason (kDeadlock = watchdog,
    /// kDataLoss = failed verification, anything else = other).
    StatusCode code = StatusCode::kOk;
    /// Requests coalesced into the launch that served this one (1 = solo).
    int batch_size = 1;
    double queue_wait_ms = 0.0;
    double solve_ms = 0.0;  // ignored for kExpired (no launch happened)
    /// Deadline budget granted at submission; < 0 = no deadline. Drives the
    /// per-deadline-bucket miss rates.
    double deadline_budget_ms = -1.0;
    /// Scheduler cost estimate at admission (0 = none recorded). Compared
    /// against the observed solve_ms for the cost-model error metric.
    double est_cost_ms = 0.0;
  };
  void RecordRequest(const RequestRecord& record);

  /// One device launch that coalesced `batch_size` requests.
  void RecordBatch(int batch_size);
  /// One admission refusal (queue full, cost bound exceeded, shutdown).
  void RecordRejection();
  /// One EDF enqueue that landed ahead of at least one already-queued
  /// request (always zero under QueuePolicy::kFifo or deadline-free load).
  void RecordReorder();

  /// Circuit-breaker lifecycle events (see SolveService): a handle's breaker
  /// opened (or re-opened after a failed probe), a half-open probe ran, a
  /// request was deflected from the device path while open (fast-failed or
  /// host-served, per BreakerMode).
  void RecordBreakerOpen();
  void RecordBreakerProbe();
  /// A half-open probe came back with a device failure (the breaker
  /// re-opened). breaker_probes - breaker_probe_failures = successful
  /// re-admissions — the number the fleet's degraded-mode view wants.
  void RecordBreakerProbeFailure();
  void RecordBreakerShortCircuit();

  /// One streaming update (ApplyDelta) outcome. Same exactly-once contract
  /// as request accounting: every SolveService::ApplyDelta call records
  /// exactly one of RecordUpdate / RecordUpdateRejection, so
  ///   updates_value + updates_structural + update_rejections == calls
  /// (update_test pins this next to the PR-4 request invariant). A
  /// successful update invalidates the handle's learned cost state; the
  /// value/structural split IS the invalidation-cause split (value-only =
  /// EWMA reseed, structural = EWMA reseed + cone re-level).
  void RecordUpdate(const UpdateReport& report, const std::string& name);
  void RecordUpdateRejection();

  /// Counter snapshot used by tests and the JSON dump.
  struct Totals {
    std::uint64_t requests = 0;   // completed OK
    std::uint64_t failures = 0;   // completed with non-OK Status (not rejects
                                  // and not deadline misses)
    std::uint64_t rejections = 0; // refused at admission (queue full, cost
                                  // bound, shutdown)
    std::uint64_t deadline_misses = 0;  // expired before service
    std::uint64_t batches = 0;    // device launches (one per coalesced group)
    std::uint64_t reorders = 0;   // EDF insertions ahead of queued work
    // Failure-reason split; failures == failures_deadlock + failures_verify
    // + failures_other (serve_test pins this alongside the exactly-once
    // invariant).
    std::uint64_t failures_deadlock = 0;  // kDeadlock (watchdog tripped)
    std::uint64_t failures_verify = 0;    // kDataLoss (failed verification)
    std::uint64_t failures_other = 0;     // any other non-OK terminal code
    // Circuit-breaker lifecycle.
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_probes = 0;
    std::uint64_t breaker_probe_failures = 0;
    std::uint64_t breaker_short_circuits = 0;
    // Streaming updates (ApplyDelta), split by invalidation cause:
    // value-only updates reseed the EWMA cost state, structural updates
    // additionally re-leveled a cone of rows. One record per call:
    // updates_value + updates_structural + update_rejections == calls.
    std::uint64_t updates_value = 0;
    std::uint64_t updates_structural = 0;
    std::uint64_t update_rejections = 0;
    std::uint64_t update_rows_releveled = 0;  // summed cone sizes
    std::uint64_t update_delta_bytes = 0;     // summed batch log bytes
    /// Summed per-epoch incremental re-analysis time (UpdateReport::
    /// analysis_ms) — actual cone re-level + rebuild cost, NOT the original
    /// registration's full-analysis time. 0 contribution from value-only
    /// epochs, which reuse the analysis untouched.
    double update_analysis_ms = 0.0;
  };
  Totals totals() const;

  /// batch-occupancy histogram: index k-1 counts launches that coalesced
  /// exactly k requests.
  std::vector<std::uint64_t> BatchOccupancy() const;

  /// Deadline-budget bucket: all requests submitted with a deadline budget
  /// <= upper_ms (and above the previous bucket's bound), plus how many of
  /// them expired. Bucket bounds are kDeadlineBucketUpperMs; the last bucket
  /// is open-ended. Deadline-free requests are not bucketed.
  struct DeadlineBucket {
    double upper_ms = 0.0;
    std::uint64_t total = 0;
    std::uint64_t missed = 0;
  };
  static constexpr std::array<double, 4> kDeadlineBucketUpperMs = {
      5.0, 20.0, 100.0, 0.0};  // 0.0 = +inf sentinel for the last bucket
  std::vector<DeadlineBucket> DeadlineBuckets() const;

  /// Mean |estimated - actual| / actual over completed-OK requests that
  /// carried a cost estimate — the cost model's online error. 0 when no
  /// request carried one.
  double MeanCostErrorRatio() const;

  /// Renders global + per-handle tables; `registry` adds the cache columns.
  std::string ToTable(const RegistrySnapshot* registry = nullptr) const;
  std::string ToJson(const RegistrySnapshot* registry = nullptr) const;

 private:
  struct PerHandle {
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t batched_requests = 0;  // served in a batch of >= 2
    // Streaming-update counters (see RecordUpdate).
    std::uint64_t updates_value = 0;
    std::uint64_t updates_structural = 0;
    std::uint64_t update_rows_releveled = 0;
    std::uint64_t delta_log_bytes = 0;  // cumulative log, from the last report
    double update_analysis_ms = 0.0;    // summed per-epoch re-analysis time
    std::vector<double> queue_wait_ms;
    std::vector<double> solve_ms;
  };

  static std::size_t DeadlineBucketIndex(double deadline_budget_ms);

  mutable std::mutex mutex_;
  Totals totals_;
  std::vector<std::uint64_t> batch_occupancy_;  // index k-1 = batches of k
  std::map<MatrixHandle, PerHandle> per_handle_;
  std::vector<double> queue_wait_ms_;
  std::vector<double> solve_ms_;
  std::array<DeadlineBucket, kDeadlineBucketUpperMs.size()> deadline_buckets_{};
  double cost_error_ratio_sum_ = 0.0;
  std::uint64_t cost_error_samples_ = 0;
};

}  // namespace capellini::serve
