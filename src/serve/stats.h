// ServiceStats: per-handle and global observability for the solve service.
//
// Workers record one event per request (queue wait, solve latency, batch
// size, outcome) plus registry-level cache events; the accumulated counters
// render as a fixed-width table for operators and as JSON for CI artifacts.
// Percentiles are computed at dump time from retained samples — the service
// is a measurement harness, not a prod telemetry pipeline, so exact
// percentiles beat streaming sketches here.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/registry.h"

namespace capellini::serve {

/// Exact percentiles over recorded samples (empty summary = all zeros).
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};
LatencySummary Summarize(std::vector<double> samples_ms);

class ServiceStats {
 public:
  /// One completed (or failed) request. batch_size >= 1 is the number of
  /// requests coalesced into the launch that served this one.
  void RecordRequest(MatrixHandle handle, const std::string& name,
                     bool ok, int batch_size, double queue_wait_ms,
                     double solve_ms);
  /// One device launch that coalesced `batch_size` requests.
  void RecordBatch(int batch_size);
  void RecordRejection();
  void RecordDeadlineMiss(MatrixHandle handle, const std::string& name);

  /// Counter snapshot used by tests and the JSON dump.
  struct Totals {
    std::uint64_t requests = 0;   // completed OK
    std::uint64_t failures = 0;   // completed with non-OK Status (not rejects)
    std::uint64_t rejections = 0; // refused at admission (queue full, ...)
    std::uint64_t deadline_misses = 0;
    std::uint64_t batches = 0;    // device launches (one per coalesced group)
  };
  Totals totals() const;

  /// batch-occupancy histogram: index k-1 counts launches that coalesced
  /// exactly k requests.
  std::vector<std::uint64_t> BatchOccupancy() const;

  /// Renders global + per-handle tables; `registry` adds the cache columns.
  std::string ToTable(const RegistrySnapshot* registry = nullptr) const;
  std::string ToJson(const RegistrySnapshot* registry = nullptr) const;

 private:
  struct PerHandle {
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t batched_requests = 0;  // served in a batch of >= 2
    std::vector<double> queue_wait_ms;
    std::vector<double> solve_ms;
  };

  mutable std::mutex mutex_;
  Totals totals_;
  std::vector<std::uint64_t> batch_occupancy_;  // index k-1 = batches of k
  std::map<MatrixHandle, PerHandle> per_handle_;
  std::vector<double> queue_wait_ms_;
  std::vector<double> solve_ms_;
};

}  // namespace capellini::serve
