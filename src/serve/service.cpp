#include "serve/service.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/verify.h"
#include "kernels/launch.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace capellini::serve {
namespace {

/// Algorithms with a k-right-hand-side kernel (kernels/mrhs.cpp). Everything
/// else is served per-request.
bool HasMrhsForm(Algorithm algorithm) {
  return algorithm == Algorithm::kCapellini ||
         algorithm == Algorithm::kSyncFreeCsr;
}

kernels::MrhsAlgorithm ToMrhsAlgorithm(Algorithm algorithm) {
  return algorithm == Algorithm::kCapellini
             ? kernels::MrhsAlgorithm::kCapelliniMrhs
             : kernels::MrhsAlgorithm::kSyncFreeMrhs;
}

double ElapsedMs(std::chrono::steady_clock::time_point begin,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

std::string RetryAfterHint(double retry_ms) {
  char buf[48];
  std::snprintf(buf, sizeof buf, " — retry after ~%.1f ms",
                std::max(0.0, retry_ms));
  return buf;
}

}  // namespace

ServiceOptions SolveService::DeterministicOptions() {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  return options;
}

SolveService::SolveService(MatrixRegistry* registry, ServiceOptions options)
    : registry_(registry), options_(options) {
  CAPELLINI_CHECK_MSG(registry_ != nullptr, "service needs a registry");
  options_.workers = std::max(1, options_.workers);
  options_.max_batch = std::clamp(options_.max_batch, 1, 6);
  paused_ = options_.start_paused;
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  worker_done_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_done_.push_back(pool_->Submit([this] { WorkerLoop(); }));
  }
}

SolveService::~SolveService() { Shutdown(); }

void SolveService::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

Expected<UpdateReport> SolveService::ApplyDelta(
    MatrixHandle handle, const update::DeltaBatch& batch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      stats_.RecordUpdateRejection();
      return FailedPrecondition("service is shut down");
    }
  }
  // The registry swap does not touch the service queue: requests admitted
  // before this point pinned their EntryRef and finish on the old epoch.
  Expected<UpdateReport> report = registry_->ApplyDelta(handle, batch);
  if (!report.ok()) {
    stats_.RecordUpdateRejection();
    return report.status();
  }
  stats_.RecordUpdate(*report, report->name);
  return report;
}

void SolveService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && worker_done_.empty()) return;
    shutdown_ = true;
    paused_ = false;  // accepted work still drains
  }
  cv_.notify_all();
  for (std::future<void>& done : worker_done_) done.get();
  worker_done_.clear();
  pool_.reset();
}

double SolveService::QueuedCostMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_cost_ms_;
}

Expected<std::future<ServeResult>> SolveService::Submit(
    MatrixHandle handle, std::vector<Val> b, RequestOptions options) {
  // Peek, not Acquire: LRU promotion and cache-hit accounting must only
  // happen for admitted requests — a rejected spammer must not be able to
  // refresh its entry and evict well-behaved residents.
  auto peeked = registry_->Peek(handle);
  if (!peeked.ok()) return peeked.status();
  const MatrixRegistry::EntryRef& entry = *peeked;
  if (b.size() != static_cast<std::size_t>(entry->solver.matrix().rows())) {
    return InvalidArgument(
        "b has " + std::to_string(b.size()) + " entries, matrix '" +
        entry->name + "' has " +
        std::to_string(entry->solver.matrix().rows()) + " rows");
  }

  Request request;
  request.handle = handle;
  request.entry = entry;
  request.b = std::move(b);
  // Memoized analysis makes the default a cache hit, never a re-analysis.
  request.algorithm = options.algorithm.has_value()
                          ? *options.algorithm
                          : entry->solver.Recommend();
  request.enqueue_time = Clock::now();
  const double deadline_ms = options.deadline_ms.has_value()
                                 ? *options.deadline_ms
                                 : options_.default_deadline_ms;
  request.deadline =
      deadline_ms > 0.0
          ? request.enqueue_time +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms))
          : Clock::time_point::max();
  request.deadline_budget_ms = deadline_ms > 0.0 ? deadline_ms : -1.0;
  request.est_cost_ms = entry->cost.EstimateMs();
  std::future<ServeResult> future = request.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      stats_.RecordRejection();
      return FailedPrecondition("service is shut down");
    }
    if (queue_.size() >= options_.max_queue) {
      stats_.RecordRejection();
      // Hint: time until one slot frees at the current drain rate.
      const double per_slot_ms =
          queued_cost_ms_ / static_cast<double>(queue_.size()) /
          static_cast<double>(options_.workers);
      return ResourceExhausted(
          "queue full (" + std::to_string(options_.max_queue) +
          " pending requests)" + RetryAfterHint(per_slot_ms));
    }
    if (options_.max_queue_cost_ms > 0.0 && !queue_.empty() &&
        queued_cost_ms_ + request.est_cost_ms > options_.max_queue_cost_ms) {
      stats_.RecordRejection();
      // Hint: time until enough queued work drains that this request fits.
      const double excess =
          queued_cost_ms_ + request.est_cost_ms - options_.max_queue_cost_ms;
      char ledger[96];
      std::snprintf(ledger, sizeof ledger,
                    "estimated queued cost %.3f ms + %.3f ms exceeds budget "
                    "%.3f ms",
                    queued_cost_ms_, request.est_cost_ms,
                    options_.max_queue_cost_ms);
      return ResourceExhausted(
          ledger +
          RetryAfterHint(excess / static_cast<double>(options_.workers)));
    }
    request.seq = next_seq_++;
    queued_cost_ms_ += request.est_cost_ms;
    if (EnqueueLocked(std::move(request))) stats_.RecordReorder();
  }
  registry_->Promote(handle);
  cv_.notify_one();
  return future;
}

bool SolveService::EnqueueLocked(Request request) {
  if (options_.policy == QueuePolicy::kFifo || queue_.empty() ||
      queue_.back().deadline <= request.deadline) {
    queue_.push_back(std::move(request));
    return false;
  }
  // EDF: stable insert before the first strictly-later deadline. Ties keep
  // arrival order, so a deadline-free workload is served in exact FIFO
  // order — the determinism-mode contract.
  auto it = std::upper_bound(
      queue_.begin(), queue_.end(), request.deadline,
      [](const Clock::time_point& deadline, const Request& queued) {
        return deadline < queued.deadline;
      });
  queue_.insert(it, std::move(request));
  return true;
}

std::vector<SolveService::Request> SolveService::PopGroupLocked() {
  std::vector<Request> group;
  group.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Copy the match keys: push_back below may reallocate the vector.
  const MatrixHandle handle = group.front().handle;
  const Algorithm algorithm = group.front().algorithm;
  const Clock::time_point leader_deadline = group.front().deadline;
  if (options_.max_batch > 1 && HasMrhsForm(algorithm)) {
    for (auto it = queue_.begin();
         it != queue_.end() &&
         group.size() < static_cast<std::size_t>(options_.max_batch);) {
      const bool key_match =
          it->handle == handle && it->algorithm == algorithm;
      // Deadline compatibility: joining the leader's launch must not pull a
      // far-future request ahead of tighter work elsewhere in the queue.
      const bool deadline_compatible =
          options_.coalesce_window_ms <= 0.0 ||
          std::chrono::duration<double, std::milli>(it->deadline -
                                                    leader_deadline)
                  .count() <= options_.coalesce_window_ms;
      if (key_match && deadline_compatible) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const std::uint64_t dequeue_seq = next_dequeue_seq_++;
  for (Request& request : group) {
    request.dequeue_seq = dequeue_seq;
    queued_cost_ms_ -= request.est_cost_ms;
  }
  // Sweep float drift so a long-lived ledger cannot wedge admission.
  queued_cost_ms_ = queue_.empty() ? 0.0 : std::max(0.0, queued_cost_ms_);
  return group;
}

void SolveService::WorkerLoop() {
  for (;;) {
    std::vector<Request> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return (!paused_ && !queue_.empty()) || (shutdown_ && queue_.empty());
      });
      if (queue_.empty()) return;  // shutdown with a drained queue
      group = PopGroupLocked();
    }
    ServeGroup(std::move(group));
  }
}

void SolveService::ServeGroup(std::vector<Request> group) {
  // The ONE dequeue timestamp for this group: solo, batched, and expired
  // paths all measure queue_wait_ms from it, so the three agree.
  const Clock::time_point dequeue_time = Clock::now();

  // Expired requests complete with a clean Status without burning a launch.
  std::vector<Request> live;
  live.reserve(group.size());
  for (Request& request : group) {
    if (dequeue_time > request.deadline) {
      ServeResult result;
      result.status = DeadlineExceeded(
          "request expired after " +
          std::to_string(ElapsedMs(request.enqueue_time, dequeue_time)) +
          " ms in queue");
      result.algorithm = request.algorithm;
      result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
      result.dequeue_seq = request.dequeue_seq;
      result.est_cost_ms = request.est_cost_ms;
      stats_.RecordRequest(
          {.handle = request.handle,
           .name = request.entry->name,
           .outcome = ServiceStats::Outcome::kExpired,
           .code = StatusCode::kDeadlineExceeded,
           .batch_size = 1,
           .queue_wait_ms = result.queue_wait_ms,
           .solve_ms = 0.0,
           .deadline_budget_ms = request.deadline_budget_ms,
           .est_cost_ms = request.est_cost_ms});
      request.promise.set_value(std::move(result));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  const MatrixRegistry::Entry& entry = *live.front().entry;

  // Circuit breaker: one decision per dequeued group (it is one handle).
  switch (BreakerAdmit(live.front().handle)) {
    case BreakerDecision::kShortCircuit:
      // Open, fast-fail mode: complete without burning a launch.
      for (Request& request : live) {
        ServeResult result;
        result.status = ResourceExhausted("circuit breaker open for '" +
                                          entry.name + "' — failing fast");
        result.algorithm = request.algorithm;
        result.batch_size = 1;
        result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
        result.dequeue_seq = request.dequeue_seq;
        result.est_cost_ms = request.est_cost_ms;
        stats_.RecordBreakerShortCircuit();
        FinishRequest(request, entry, std::move(result), 1,
                      /*report_breaker=*/false);
      }
      return;
    case BreakerDecision::kFallback:
      // Open, host-fallback mode: the serial CPU solver is immune to the
      // device faults that opened the breaker. Its outcome says nothing
      // about device health, so it does not feed the breaker.
      for (Request& request : live) {
        stats_.RecordBreakerShortCircuit();
        stats_.RecordBatch(1);
        request.algorithm = Algorithm::kSerialCpu;
        ServeSolo(request, entry, dequeue_time, /*report_breaker=*/false);
      }
      return;
    case BreakerDecision::kProbe:
      stats_.RecordBreakerProbe();
      break;  // run the full path; the outcome closes or re-opens
    case BreakerDecision::kAllow:
      break;
  }

  if (live.size() >= 2) {
    stats_.RecordBatch(static_cast<int>(live.size()));
    ServeBatched(live, entry, dequeue_time);
    return;
  }
  stats_.RecordBatch(1);
  ServeSolo(live.front(), entry, dequeue_time, /*report_breaker=*/true);
}

void SolveService::ServeSolo(Request& request,
                             const MatrixRegistry::Entry& entry,
                             Clock::time_point dequeue_time,
                             bool report_breaker) {
  ServeResult result;
  result.algorithm = request.algorithm;
  result.batch_size = 1;
  result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
  result.dequeue_seq = request.dequeue_seq;
  result.est_cost_ms = request.est_cost_ms;

  if (options_.reliable) {
    ReliableOptions reliable_options;
    reliable_options.verify.residual_bound = options_.residual_bound;
    reliable_options.ladder = RetryLadderFor(entry);
    auto reliable =
        entry.solver.SolveReliable(request.algorithm, request.b,
                                   reliable_options);
    if (reliable.ok()) {
      result.attempts = static_cast<int>(reliable->attempts.size());
      result.residual = reliable->attempts.back().residual;
      result.verified = reliable->verified;
      result.algorithm = reliable->final_algorithm;
      if (reliable->verified) {
        result.solve = std::move(reliable->solve);
        entry.cost.Observe(result.solve.solve_ms);
      } else {
        result.status = DataLoss("no rung of the retry ladder verified '" +
                                 entry.name + "'");
      }
    } else {
      result.status = reliable.status();
    }
  } else {
    // The exact Solver::Solve call the one-shot path makes — this identity
    // is the determinism-mode contract.
    auto solved = entry.solver.Solve(request.algorithm, request.b);
    if (solved.ok()) {
      result.solve = std::move(*solved);
      entry.cost.Observe(result.solve.solve_ms);
    } else {
      result.status = solved.status();
    }
  }
  FinishRequest(request, entry, std::move(result), 1, report_breaker);
}

void SolveService::FinishRequest(Request& request,
                                 const MatrixRegistry::Entry& entry,
                                 ServeResult result, int batch_size,
                                 bool report_breaker) {
  const StatusCode code = result.status.code();
  stats_.RecordRequest(
      {.handle = request.handle,
       .name = entry.name,
       .outcome = result.status.ok() ? ServiceStats::Outcome::kOk
                                     : ServiceStats::Outcome::kFailed,
       .code = code,
       .batch_size = batch_size,
       .queue_wait_ms = result.queue_wait_ms,
       .solve_ms = result.solve.solve_ms,
       .deadline_budget_ms = request.deadline_budget_ms,
       .est_cost_ms = request.est_cost_ms});
  if (report_breaker) {
    BreakerReport(request.handle, code);
    // Same gating as the breaker: host-fallback serves say nothing about the
    // device path, so external health observers never see them either.
    if (options_.outcome_listener) options_.outcome_listener(request.handle, code);
  }
  request.promise.set_value(std::move(result));
}

SolveService::BreakerDecision SolveService::BreakerAdmit(MatrixHandle handle) {
  if (options_.breaker_threshold <= 0 && options_.breaker_window <= 0) {
    return BreakerDecision::kAllow;
  }
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  Breaker& breaker = breakers_[handle];
  switch (breaker.state) {
    case Breaker::State::kClosed:
      return BreakerDecision::kAllow;
    case Breaker::State::kOpen:
      if (breaker.open_skips >= options_.breaker_cooldown) {
        breaker.state = Breaker::State::kHalfOpen;
        return BreakerDecision::kProbe;
      }
      ++breaker.open_skips;
      break;
    case Breaker::State::kHalfOpen:
      // A probe is in flight; keep deflecting until it reports.
      break;
  }
  return options_.breaker_mode == BreakerMode::kFastFail
             ? BreakerDecision::kShortCircuit
             : BreakerDecision::kFallback;
}

void SolveService::BreakerReport(MatrixHandle handle, StatusCode code) {
  if (options_.breaker_threshold <= 0 && options_.breaker_window <= 0) return;
  // Only device-health signals move the breaker: the watchdog (kDeadlock)
  // and failed verification (kDataLoss). Everything else — including a
  // plain OK — is evidence the device path works.
  const bool failure =
      code == StatusCode::kDeadlock || code == StatusCode::kDataLoss;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  Breaker& breaker = breakers_[handle];
  switch (breaker.state) {
    case Breaker::State::kClosed: {
      bool trip = false;
      if (options_.breaker_threshold > 0) {
        if (!failure) {
          breaker.consecutive_failures = 0;
        } else if (++breaker.consecutive_failures >=
                   options_.breaker_threshold) {
          trip = true;
        }
      }
      if (options_.breaker_window > 0) {
        const auto window =
            static_cast<std::size_t>(options_.breaker_window);
        breaker.window.push_back(failure);
        while (breaker.window.size() > window) breaker.window.pop_front();
        if (breaker.window.size() == window) {
          // Open on failure RATE: intermittent faults (say 1 in 3 solves
          // deadlocks) never run up a consecutive streak but still poison
          // the handle. A partial window never trips — W requests of
          // evidence first.
          const auto failures = static_cast<double>(
              std::count(breaker.window.begin(), breaker.window.end(), true));
          const double rate =
              std::clamp(options_.breaker_rate,
                         std::numeric_limits<double>::min(), 1.0);
          if (failures >= rate * static_cast<double>(window)) trip = true;
        }
      }
      if (trip) {
        breaker.state = Breaker::State::kOpen;
        breaker.open_skips = 0;
        breaker.consecutive_failures = 0;
        breaker.window.clear();  // each open needs fresh evidence
        stats_.RecordBreakerOpen();
      }
      break;
    }
    case Breaker::State::kHalfOpen:
      if (failure) {
        breaker.state = Breaker::State::kOpen;
        breaker.open_skips = 0;
        stats_.RecordBreakerProbeFailure();
        stats_.RecordBreakerOpen();  // re-opened by a failed probe
      } else {
        breaker.state = Breaker::State::kClosed;
        breaker.consecutive_failures = 0;
        breaker.window.clear();
      }
      break;
    case Breaker::State::kOpen:
      break;  // stale report from a launch that began before the open
  }
}

void SolveService::ServeBatched(std::vector<Request>& group,
                                const MatrixRegistry::Entry& entry,
                                Clock::time_point dequeue_time) {
  // `dequeue_time` is ServeGroup's single stamp: re-stamping here would fold
  // deadline filtering and B-assembly time into queue_wait_ms and disagree
  // with the solo path.
  const auto n = static_cast<std::size_t>(entry.solver.matrix().rows());
  const int k = static_cast<int>(group.size());

  // Column-major n x k B: column r is request r's right-hand side.
  std::vector<Val> b(n * static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    std::copy(group[static_cast<std::size_t>(r)].b.begin(),
              group[static_cast<std::size_t>(r)].b.end(),
              b.begin() + static_cast<std::size_t>(r) * n);
  }

  const SolverOptions& solver_options = entry.solver.options();
  auto solved = kernels::SolveMrhsOnDevice(
      ToMrhsAlgorithm(group.front().algorithm), entry.solver.matrix(), b, k,
      solver_options.device, solver_options.kernel_options);
  // One launch, one cost observation: the point of coalescing is that k
  // systems cost one structure walk, and the admission model prices the
  // launch, not the request count.
  if (solved.ok()) entry.cost.Observe(solved->exec_ms);

  for (int r = 0; r < k; ++r) {
    Request& request = group[static_cast<std::size_t>(r)];
    ServeResult result;
    result.algorithm = request.algorithm;
    result.batch_size = k;
    result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
    result.dequeue_seq = request.dequeue_seq;
    result.est_cost_ms = request.est_cost_ms;
    bool needs_rescue = !solved.ok();
    if (solved.ok()) {
      result.solve.x.assign(
          solved->x.begin() + static_cast<std::size_t>(r) * n,
          solved->x.begin() + static_cast<std::size_t>(r + 1) * n);
      // Launch-level metrics are shared by the whole group: the point of
      // coalescing is that k systems cost one structure walk.
      result.solve.solve_ms = solved->exec_ms;
      result.solve.preprocessing_ms = solved->preprocessing_ms;
      result.solve.gflops = solved->gflops;
      result.solve.bandwidth_gbs = solved->bandwidth_gbs;
      result.solve.device_stats = solved->stats;
      if (options_.reliable) {
        // Per-column verification: a fault can corrupt one column of the
        // shared launch while the other k-1 are fine.
        VerifyOptions verify_options;
        verify_options.residual_bound = options_.residual_bound;
        const Verification check = VerifySolution(
            entry.solver.matrix(), request.b, result.solve.x, verify_options);
        result.residual = check.residual;
        result.verified = check.passed;
        needs_rescue = !check.passed;
      }
    } else {
      result.status = solved.status();
    }
    if (needs_rescue && options_.reliable) {
      // Rescue the column solo through the full retry ladder; the shared
      // launch (whether failed outright or merely unverified) counts as one
      // spent attempt.
      ReliableOptions reliable_options;
      reliable_options.verify.residual_bound = options_.residual_bound;
      reliable_options.ladder = RetryLadderFor(entry);
      auto rescued = entry.solver.SolveReliable(request.algorithm, request.b,
                                                reliable_options);
      if (rescued.ok()) {
        result.attempts = 1 + static_cast<int>(rescued->attempts.size());
        result.residual = rescued->attempts.back().residual;
        result.verified = rescued->verified;
        result.algorithm = rescued->final_algorithm;
        if (rescued->verified) {
          result.status = Status::Ok();
          result.solve = std::move(rescued->solve);
        } else {
          result.status = DataLoss("no rung of the retry ladder verified '" +
                                   entry.name + "'");
        }
      } else {
        result.status = rescued.status();
      }
    }
    FinishRequest(request, entry, std::move(result), k,
                  /*report_breaker=*/true);
  }
}

std::vector<Algorithm> SolveService::RetryLadderFor(
    const MatrixRegistry::Entry& entry) const {
  if (options_.ladder_cost_threshold_ms <= 0.0) return {};  // default ladder
  if (entry.cost.EstimateMs() >= options_.ladder_cost_threshold_ms) {
    // Expensive handle: re-running it through the fast device rung just to
    // watch it fail again costs more than going straight to the rungs that
    // structurally terminate (per-level launches, then the fault-immune
    // host solver).
    return {Algorithm::kLevelSet, Algorithm::kSerialCpu};
  }
  return DefaultRetryLadder();
}

}  // namespace capellini::serve
