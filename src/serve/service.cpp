#include "serve/service.h"

#include <algorithm>

#include "kernels/launch.h"
#include "support/thread_pool.h"

namespace capellini::serve {
namespace {

/// Algorithms with a k-right-hand-side kernel (kernels/mrhs.cpp). Everything
/// else is served per-request.
bool HasMrhsForm(Algorithm algorithm) {
  return algorithm == Algorithm::kCapellini ||
         algorithm == Algorithm::kSyncFreeCsr;
}

kernels::MrhsAlgorithm ToMrhsAlgorithm(Algorithm algorithm) {
  return algorithm == Algorithm::kCapellini
             ? kernels::MrhsAlgorithm::kCapelliniMrhs
             : kernels::MrhsAlgorithm::kSyncFreeMrhs;
}

double ElapsedMs(std::chrono::steady_clock::time_point begin,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace

ServiceOptions SolveService::DeterministicOptions() {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  return options;
}

SolveService::SolveService(MatrixRegistry* registry, ServiceOptions options)
    : registry_(registry), options_(options) {
  CAPELLINI_CHECK_MSG(registry_ != nullptr, "service needs a registry");
  options_.workers = std::max(1, options_.workers);
  options_.max_batch = std::clamp(options_.max_batch, 1, 6);
  paused_ = options_.start_paused;
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  worker_done_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_done_.push_back(pool_->Submit([this] { WorkerLoop(); }));
  }
}

SolveService::~SolveService() { Shutdown(); }

void SolveService::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SolveService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && worker_done_.empty()) return;
    shutdown_ = true;
    paused_ = false;  // accepted work still drains
  }
  cv_.notify_all();
  for (std::future<void>& done : worker_done_) done.get();
  worker_done_.clear();
  pool_.reset();
}

Expected<std::future<ServeResult>> SolveService::Submit(
    MatrixHandle handle, std::vector<Val> b, RequestOptions options) {
  auto acquired = registry_->Acquire(handle);
  if (!acquired.ok()) return acquired.status();
  const MatrixRegistry::EntryRef& entry = *acquired;
  if (b.size() != static_cast<std::size_t>(entry->solver.matrix().rows())) {
    return InvalidArgument(
        "b has " + std::to_string(b.size()) + " entries, matrix '" +
        entry->name + "' has " +
        std::to_string(entry->solver.matrix().rows()) + " rows");
  }

  Request request;
  request.handle = handle;
  request.entry = entry;
  request.b = std::move(b);
  // Memoized analysis makes the default a cache hit, never a re-analysis.
  request.algorithm = options.algorithm.has_value()
                          ? *options.algorithm
                          : entry->solver.Recommend();
  request.enqueue_time = Clock::now();
  const double deadline_ms = options.deadline_ms.has_value()
                                 ? *options.deadline_ms
                                 : options_.default_deadline_ms;
  request.deadline =
      deadline_ms > 0.0
          ? request.enqueue_time +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms))
          : Clock::time_point::max();
  std::future<ServeResult> future = request.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return FailedPrecondition("service is shut down");
    }
    if (queue_.size() >= options_.max_queue) {
      stats_.RecordRejection();
      return ResourceExhausted(
          "queue full (" + std::to_string(options_.max_queue) +
          " pending requests) — retry with backoff");
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

std::vector<SolveService::Request> SolveService::PopGroupLocked() {
  std::vector<Request> group;
  group.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Copy the match keys: push_back below may reallocate the vector.
  const MatrixHandle handle = group.front().handle;
  const Algorithm algorithm = group.front().algorithm;
  if (options_.max_batch > 1 && HasMrhsForm(algorithm)) {
    for (auto it = queue_.begin();
         it != queue_.end() &&
         group.size() < static_cast<std::size_t>(options_.max_batch);) {
      if (it->handle == handle && it->algorithm == algorithm) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return group;
}

void SolveService::WorkerLoop() {
  for (;;) {
    std::vector<Request> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return (!paused_ && !queue_.empty()) || (shutdown_ && queue_.empty());
      });
      if (queue_.empty()) return;  // shutdown with a drained queue
      group = PopGroupLocked();
    }
    ServeGroup(std::move(group));
  }
}

void SolveService::ServeGroup(std::vector<Request> group) {
  const Clock::time_point dequeue_time = Clock::now();

  // Expired requests complete with a clean Status without burning a launch.
  std::vector<Request> live;
  live.reserve(group.size());
  for (Request& request : group) {
    if (dequeue_time > request.deadline) {
      stats_.RecordDeadlineMiss(request.handle, request.entry->name);
      ServeResult result;
      result.status = DeadlineExceeded(
          "request expired after " +
          std::to_string(ElapsedMs(request.enqueue_time, dequeue_time)) +
          " ms in queue");
      result.algorithm = request.algorithm;
      result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
      request.promise.set_value(std::move(result));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  const MatrixRegistry::Entry& entry = *live.front().entry;
  if (live.size() >= 2) {
    stats_.RecordBatch(static_cast<int>(live.size()));
    ServeBatched(live, entry);
    return;
  }

  // Solo request: the exact Solver::Solve call the one-shot path makes —
  // this identity is the determinism-mode contract.
  Request& request = live.front();
  ServeResult result;
  result.algorithm = request.algorithm;
  result.batch_size = 1;
  result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
  stats_.RecordBatch(1);
  auto solved = entry.solver.Solve(request.algorithm, request.b);
  if (solved.ok()) {
    result.solve = std::move(*solved);
  } else {
    result.status = solved.status();
  }
  stats_.RecordRequest(request.handle, entry.name, result.status.ok(), 1,
                       result.queue_wait_ms, result.solve.solve_ms);
  request.promise.set_value(std::move(result));
}

void SolveService::ServeBatched(std::vector<Request>& group,
                                const MatrixRegistry::Entry& entry) {
  const Clock::time_point dequeue_time = Clock::now();
  const auto n = static_cast<std::size_t>(entry.solver.matrix().rows());
  const int k = static_cast<int>(group.size());

  // Column-major n x k B: column r is request r's right-hand side.
  std::vector<Val> b(n * static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    std::copy(group[static_cast<std::size_t>(r)].b.begin(),
              group[static_cast<std::size_t>(r)].b.end(),
              b.begin() + static_cast<std::size_t>(r) * n);
  }

  const SolverOptions& solver_options = entry.solver.options();
  auto solved = kernels::SolveMrhsOnDevice(
      ToMrhsAlgorithm(group.front().algorithm), entry.solver.matrix(), b, k,
      solver_options.device, solver_options.kernel_options);

  for (int r = 0; r < k; ++r) {
    Request& request = group[static_cast<std::size_t>(r)];
    ServeResult result;
    result.algorithm = request.algorithm;
    result.batch_size = k;
    result.queue_wait_ms = ElapsedMs(request.enqueue_time, dequeue_time);
    if (solved.ok()) {
      result.solve.x.assign(
          solved->x.begin() + static_cast<std::size_t>(r) * n,
          solved->x.begin() + static_cast<std::size_t>(r + 1) * n);
      // Launch-level metrics are shared by the whole group: the point of
      // coalescing is that k systems cost one structure walk.
      result.solve.solve_ms = solved->exec_ms;
      result.solve.preprocessing_ms = solved->preprocessing_ms;
      result.solve.gflops = solved->gflops;
      result.solve.bandwidth_gbs = solved->bandwidth_gbs;
      result.solve.device_stats = solved->stats;
    } else {
      result.status = solved.status();
    }
    stats_.RecordRequest(request.handle, entry.name, result.status.ok(), k,
                         result.queue_wait_ms, result.solve.solve_ms);
    request.promise.set_value(std::move(result));
  }
}

}  // namespace capellini::serve
