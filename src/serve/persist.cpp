#include "serve/persist.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>

namespace capellini::serve {
namespace {

constexpr char kMagic[8] = {'C', 'A', 'P', 'A', 'N', 'L', '1', '\0'};
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
}

void Append(std::vector<unsigned char>& buf, const void* data,
            std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + bytes);
}

}  // namespace

std::uint64_t StructureFingerprint(const Csr& lower) {
  std::uint64_t hash = kFnvOffset;
  const std::int64_t dims[2] = {lower.rows(), lower.cols()};
  FnvMix(hash, dims, sizeof(dims));
  FnvMix(hash, lower.row_ptr().data(), lower.row_ptr().size() * sizeof(Idx));
  FnvMix(hash, lower.col_idx().data(), lower.col_idx().size() * sizeof(Idx));
  return hash;
}

std::string AnalysisCache::PathFor(const std::string& name) const {
  std::string file;
  file.reserve(name.size());
  for (char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    file.push_back(safe ? c : '_');
  }
  if (file.empty()) file = "unnamed";
  return dir_ + "/" + file + ".capan";
}

Status AnalysisCache::Store(const std::string& name, const Csr& lower,
                            const LevelSets& levels,
                            double cost_seed_ms) const {
  if (levels.level_of.size() != static_cast<std::size_t>(lower.rows())) {
    return InvalidArgument("level_of does not describe the matrix");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return IoError("cannot create analysis cache dir '" + dir_ +
                   "': " + ec.message());
  }

  std::vector<unsigned char> buf;
  const std::uint64_t fingerprint = StructureFingerprint(lower);
  const std::int64_t rows = lower.rows();
  Append(buf, kMagic, sizeof(kMagic));
  Append(buf, &fingerprint, sizeof(fingerprint));
  Append(buf, &rows, sizeof(rows));
  Append(buf, &cost_seed_ms, sizeof(cost_seed_ms));
  Append(buf, levels.level_of.data(), levels.level_of.size() * sizeof(Idx));
  std::uint64_t checksum = kFnvOffset;
  FnvMix(checksum, buf.data(), buf.size());
  Append(buf, &checksum, sizeof(checksum));

  const std::string path = PathFor(name);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != buf.size() || !closed_ok) {
    std::remove(tmp.c_str());
    return IoError("short write to '" + tmp + "'");
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return IoError("cannot rename '" + tmp + "' to '" + path +
                   "': " + ec.message());
  }
  return Status::Ok();
}

Expected<PersistedAnalysis> AnalysisCache::Load(const std::string& name,
                                                const Csr& lower) const {
  const std::string path = PathFor(name);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("no analysis cache file at '" + path + "'");
  }
  std::vector<unsigned char> buf;
  unsigned char chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  std::fclose(f);

  constexpr std::size_t kHeaderBytes =
      sizeof(kMagic) + sizeof(std::uint64_t) + sizeof(std::int64_t) +
      sizeof(double);
  if (buf.size() < kHeaderBytes + sizeof(std::uint64_t)) {
    return DataLoss("analysis cache file '" + path + "' is truncated");
  }
  std::uint64_t checksum = kFnvOffset;
  FnvMix(checksum, buf.data(), buf.size() - sizeof(std::uint64_t));
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, buf.data() + buf.size() - sizeof(checksum),
              sizeof(checksum));
  if (checksum != stored_checksum) {
    return DataLoss("analysis cache file '" + path +
                    "' fails its checksum (corrupted)");
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLoss("analysis cache file '" + path + "' has a bad magic");
  }

  std::size_t off = sizeof(kMagic);
  std::uint64_t fingerprint = 0;
  std::memcpy(&fingerprint, buf.data() + off, sizeof(fingerprint));
  off += sizeof(fingerprint);
  std::int64_t rows = 0;
  std::memcpy(&rows, buf.data() + off, sizeof(rows));
  off += sizeof(rows);
  PersistedAnalysis persisted;
  std::memcpy(&persisted.cost_seed_ms, buf.data() + off,
              sizeof(persisted.cost_seed_ms));
  off += sizeof(persisted.cost_seed_ms);

  if (fingerprint != StructureFingerprint(lower)) {
    return DataLoss("analysis cache file '" + path +
                    "' is stale: structure fingerprint mismatch");
  }
  if (rows != lower.rows()) {
    return DataLoss("analysis cache file '" + path + "' is stale: row count " +
                    std::to_string(rows) + " != " +
                    std::to_string(lower.rows()));
  }
  const std::size_t level_bytes =
      static_cast<std::size_t>(rows) * sizeof(Idx);
  if (buf.size() != off + level_bytes + sizeof(std::uint64_t)) {
    return DataLoss("analysis cache file '" + path +
                    "' has the wrong payload size");
  }
  persisted.level_of.resize(static_cast<std::size_t>(rows));
  std::memcpy(persisted.level_of.data(), buf.data() + off, level_bytes);
  return persisted;
}

}  // namespace capellini::serve
