#include "serve/registry.h"

#include "core/analysis.h"
#include "kernels/analyze.h"
#include "support/timer.h"

namespace capellini::serve {

MatrixRegistry::MatrixRegistry(RegistryOptions options)
    : options_(std::move(options)) {
  if (!options_.analysis_cache_dir.empty()) {
    cache_ = std::make_unique<AnalysisCache>(options_.analysis_cache_dir);
  }
}

void MatrixRegistry::CostModel::Observe(double solve_ms) const {
  // Benign race: two first observers can both see n == 0 and store; either
  // sample is an equally good replacement for the analytic seed.
  const std::uint64_t n = samples_.fetch_add(1, std::memory_order_acq_rel);
  if (n == 0) {
    ewma_ms_.store(solve_ms, std::memory_order_release);
    return;
  }
  double current = ewma_ms_.load(std::memory_order_relaxed);
  double next = current + kAlpha * (solve_ms - current);
  while (!ewma_ms_.compare_exchange_weak(current, next,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    next = current + kAlpha * (solve_ms - current);
  }
}

std::size_t MatrixRegistry::FootprintBytes(const Entry& entry) {
  const Csr& m = entry.solver.matrix();
  std::size_t bytes = 0;
  bytes += m.row_ptr().size() * sizeof(Idx);
  bytes += m.col_idx().size() * sizeof(Idx);
  bytes += m.val().size() * sizeof(Val);
  const LevelSets& levels = entry.solver.Levels();
  bytes += levels.level_of.size() * sizeof(Idx);
  bytes += levels.level_ptr.size() * sizeof(Idx);
  bytes += levels.order.size() * sizeof(Idx);
  return bytes;
}

Expected<MatrixHandle> MatrixRegistry::Register(Csr lower, std::string name,
                                                SolverOptions options) {
  // Validate with a Status (the Solver constructor CHECK-aborts, which is
  // fine for library misuse but not for a multi-tenant service input).
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("Register needs a lower-triangular matrix with a "
                           "full diagonal (see ExtractLowerTriangular)");
  }

  // Build + analyze outside the lock: analysis is the expensive part and
  // must not serialize concurrent registrations of other matrices.
  MatrixHandle handle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handle = next_handle_++;
  }
  auto entry = std::make_shared<Entry>(handle, std::move(name),
                                       std::move(lower), std::move(options));
  AnalyzeEntry(*entry);
  entry->bytes = FootprintBytes(*entry);

  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.byte_budget != 0 && entry->bytes > options_.byte_budget) {
    return ResourceExhausted(
        "matrix '" + entry->name + "' needs " + std::to_string(entry->bytes) +
        " bytes, more than the whole registry budget of " +
        std::to_string(options_.byte_budget));
  }
  EvictLruUntilFitsLocked(entry->bytes);
  lru_.push_front(handle);
  resident_bytes_ += entry->bytes;
  entries_.emplace(handle, Slot{std::move(entry), lru_.begin()});
  ++stats_.registrations;
  return handle;
}

void MatrixRegistry::AnalyzeEntry(Entry& entry) {
  Timer timer;
  if (cache_ != nullptr) {
    auto persisted = cache_->Load(entry.name, entry.solver.matrix());
    if (persisted.ok()) {
      // Warm path: rebuild level_ptr/order from the persisted level_of (the
      // same counting sort every producer shares), derive the cheap stats
      // tail, and seed — zero host Analyze() level sweeps.
      entry.solver.SeedAnalysis(AssembleAnalysis(
          entry.solver.matrix(), entry.name,
          BuildLevelSetsFromLevelOf(std::move(persisted->level_of))));
      entry.analysis_ms = timer.ElapsedMs();
      entry.cost.seed_ms_ = persisted->cost_seed_ms;
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.analysis_cache_hits;
      return;
    }
    // kNotFound (cold start) or kDataLoss (stale/corrupt — Store below
    // overwrites the bad file): run a full analysis.
  }

  bool on_device = false;
  if (options_.analyze_on_device) {
    auto device = kernels::AnalyzeOnDevice(entry.solver.matrix(),
                                           entry.solver.options().device);
    if (device.ok()) {
      entry.analysis_ms = device->exec_ms + device->host_ms;
      entry.solver.SeedAnalysis(AssembleAnalysis(entry.solver.matrix(),
                                                 entry.name,
                                                 std::move(device->levels)));
      on_device = true;
    }
    // On failure (a faulted device starving the propagation kernel) fall
    // back to the host sweep below rather than failing the registration.
  }
  if (!on_device) {
    entry.solver.analysis();  // memoize eagerly; hits from now on
    entry.analysis_ms = timer.ElapsedMs();
  }
  entry.cost.seed_ms_ = entry.solver.CostHintMs();
  if (cache_ != nullptr) {
    // Best-effort: a failed Store only costs the next restart a re-analysis.
    (void)cache_->Store(entry.name, entry.solver.matrix(),
                        entry.solver.Levels(), entry.cost.seed_ms_);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_ != nullptr) ++stats_.analysis_cache_misses;
  if (on_device) ++stats_.device_analyses;
}

void MatrixRegistry::EvictLruUntilFitsLocked(std::size_t incoming_bytes) {
  if (options_.byte_budget == 0) return;
  while (!lru_.empty() &&
         resident_bytes_ + incoming_bytes > options_.byte_budget) {
    const MatrixHandle victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.entry->bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Expected<MatrixRegistry::EntryRef> MatrixRegistry::Acquire(
    MatrixHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    ++stats_.misses;
    return NotFound("handle " + std::to_string(handle) +
                    " is not registered (evicted or never registered)");
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
  return EntryRef(it->second.entry);
}

Expected<MatrixRegistry::EntryRef> MatrixRegistry::Peek(
    MatrixHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    ++stats_.misses;
    return NotFound("handle " + std::to_string(handle) +
                    " is not registered (evicted or never registered)");
  }
  return EntryRef(it->second.entry);
}

MatrixRegistry::EntryRef MatrixRegistry::TryPeek(MatrixHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) return nullptr;
  return EntryRef(it->second.entry);
}

void MatrixRegistry::Promote(MatrixHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) return;
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
}

Expected<UpdateReport> MatrixRegistry::ApplyDelta(
    MatrixHandle handle, const update::DeltaBatch& batch) {
  std::lock_guard<std::mutex> update_lock(update_mutex_);

  std::shared_ptr<Entry> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(handle);
    if (it == entries_.end()) {
      ++stats_.misses;
      return NotFound("handle " + std::to_string(handle) +
                      " is not registered (evicted or never registered)");
    }
    old = it->second.entry;
  }

  // Patch outside the registry mutex: lookups and solves proceed while we
  // rebuild. The handle's consumer graph is built lazily on the first
  // structural update (the one-time transpose cost) and patched afterwards.
  Timer timer;
  update::ConsumerGraph* graph = nullptr;
  if (!batch.value_only()) {
    if (old->consumers == nullptr) {
      old->consumers = std::make_unique<update::ConsumerGraph>(
          update::ConsumerGraph::Build(old->solver.matrix()));
    }
    graph = old->consumers.get();
  }
  Expected<update::UpdateResult> applied =
      analyzer_.Apply(old->solver.matrix(), old->solver.analysis(), batch,
                      graph);
  if (!applied.ok()) return applied.status();  // graph untouched on rejection
  update::UpdateResult result = std::move(applied).value();

  auto entry = std::make_shared<Entry>(handle, old->name,
                                       std::move(result.matrix),
                                       old->solver.options());
  entry->solver.SeedAnalysis(std::move(result.analysis));
  // Each epoch reports ITS OWN analysis cost — the incremental re-level time
  // of this update (0 for value-only), not the original registration's
  // full-sweep time copied forward.
  entry->analysis_ms = result.analysis_ms;
  entry->epoch = old->epoch + 1;
  entry->delta_log_bytes = old->delta_log_bytes + batch.ByteSize();
  entry->consumers = std::move(old->consumers);  // graph follows the epoch
  entry->bytes = FootprintBytes(*entry) + entry->delta_log_bytes;
  // The EWMA measured the previous epoch's solves; re-seed from the patched
  // analysis so admission control prices the new structure, not stale
  // observations.
  entry->cost.seed_ms_ = entry->solver.CostHintMs();

  UpdateReport report;
  report.handle = handle;
  report.name = entry->name;
  report.epoch = entry->epoch;
  report.value_only = result.value_only;
  report.rows_releveled = result.rows_releveled;
  report.total_rows = result.total_rows;
  report.delta_bytes = batch.ByteSize();
  report.delta_log_bytes = entry->delta_log_bytes;
  report.update_ms = timer.ElapsedMs();
  report.analysis_ms = result.analysis_ms;

  if (cache_ != nullptr && !result.value_only) {
    // Keep the persisted file tracking the live structure so a restart warms
    // from the post-update levels instead of tripping the stale-fingerprint
    // path. Value-only batches leave the structure (and the file) valid.
    (void)cache_->Store(entry->name, entry->solver.matrix(),
                        entry->solver.Levels(), entry->solver.CostHintMs());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    // Evicted while we were patching: nothing to swap into. The graph left
    // with `entry`, which dies here.
    ++stats_.misses;
    return NotFound("handle " + std::to_string(handle) +
                    " was evicted during the update");
  }
  if (options_.byte_budget != 0 && entry->bytes > options_.byte_budget) {
    // Keep the old epoch. The patched graph (which no longer matches it)
    // moved into `entry` and dies with it; the next structural update
    // rebuilds from scratch.
    return ResourceExhausted(
        "matrix '" + entry->name + "' needs " + std::to_string(entry->bytes) +
        " bytes after the update, more than the whole registry budget of " +
        std::to_string(options_.byte_budget));
  }
  resident_bytes_ -= it->second.entry->bytes;
  resident_bytes_ += entry->bytes;
  it->second.entry = std::move(entry);  // in-flight EntryRefs keep the old
                                        // epoch alive until they finish
  // An update is a use: promote, then make room under the budget (the
  // promoted entry is at the LRU front, so eviction only takes others).
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
  EvictLruUntilFitsLocked(0);
  ++stats_.updates;
  return report;
}

bool MatrixRegistry::Evict(MatrixHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) return false;
  resident_bytes_ -= it->second.entry->bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++stats_.evictions;
  return true;
}

bool MatrixRegistry::Contains(MatrixHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(handle) != entries_.end();
}

RegistrySnapshot MatrixRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot = stats_;
  snapshot.resident_entries = entries_.size();
  snapshot.resident_bytes = resident_bytes_;
  return snapshot;
}

}  // namespace capellini::serve
