#include "serve/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "matrix/triangular.h"
#include "support/rng.h"
#include "update/delta.h"

namespace capellini::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace

std::uint64_t HashBytes(std::uint64_t hash, const void* data,
                        std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

RequestTrace GenerateZipfTrace(int num_requests, int num_matrices, double s,
                               std::uint64_t seed) {
  CAPELLINI_CHECK_MSG(num_requests >= 0 && num_matrices >= 1,
                      "trace needs at least one matrix");
  Rng rng(seed);

  // CDF over ranks 1..M with P(rank r) ~ 1 / r^s.
  std::vector<double> cdf(static_cast<std::size_t>(num_matrices));
  double total = 0.0;
  for (int r = 0; r < num_matrices; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[static_cast<std::size_t>(r)] = total;
  }
  for (double& v : cdf) v /= total;

  // Shuffle which matrix gets which popularity rank (Fisher-Yates).
  std::vector<int> rank_to_matrix(static_cast<std::size_t>(num_matrices));
  for (int i = 0; i < num_matrices; ++i) {
    rank_to_matrix[static_cast<std::size_t>(i)] = i;
  }
  for (int i = num_matrices - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.NextBounded(static_cast<std::uint64_t>(i + 1)));
    std::swap(rank_to_matrix[static_cast<std::size_t>(i)], rank_to_matrix[j]);
  }

  RequestTrace trace;
  trace.requests.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto rank = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
    TraceRequest request;
    request.matrix = rank_to_matrix[rank];
    request.seed = rng.Next() | 1u;
    trace.requests.push_back(request);
  }
  return trace;
}

void AssignDeadlines(RequestTrace& trace, double min_ms, double max_ms,
                     std::uint64_t seed) {
  CAPELLINI_CHECK_MSG(min_ms > 0.0 && max_ms >= min_ms,
                      "deadlines need 0 < min_ms <= max_ms");
  Rng rng(seed);
  for (TraceRequest& request : trace.requests) {
    if (request.kind != TraceEventKind::kSolve) continue;
    request.deadline_ms = rng.NextDouble(min_ms, max_ms);
  }
}

void InterleaveUpdates(RequestTrace& trace, double update_fraction,
                       int deltas_per_update, double structural_fraction,
                       std::uint64_t seed) {
  if (update_fraction <= 0.0 || deltas_per_update <= 0) return;
  Rng rng(seed ^ 0x5747ea3u);
  std::vector<TraceRequest> mixed;
  mixed.reserve(trace.requests.size());
  for (const TraceRequest& request : trace.requests) {
    mixed.push_back(request);
    if (request.kind != TraceEventKind::kSolve) continue;
    if (!rng.NextBool(update_fraction)) continue;
    TraceRequest update;
    update.kind = TraceEventKind::kUpdate;
    update.matrix = request.matrix;  // updates track traffic popularity
    update.seed = rng.Next() | 1u;
    update.update_deltas = deltas_per_update;
    update.structural = rng.NextBool(structural_fraction);
    mixed.push_back(update);
  }
  trace.requests = std::move(mixed);
}

Status WriteTraceJson(const RequestTrace& trace, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return IoError("cannot write " + path);
  std::fprintf(file, "{\"requests\": [\n");
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& r = trace.requests[i];
    const char* tail = i + 1 < trace.requests.size() ? "," : "";
    if (r.kind == TraceEventKind::kUpdate) {
      std::fprintf(file,
                   "  {\"matrix\": %d, \"seed\": %llu, \"update_deltas\": %d, "
                   "\"structural\": %d}%s\n",
                   r.matrix, static_cast<unsigned long long>(r.seed),
                   r.update_deltas, r.structural ? 1 : 0, tail);
    } else if (r.deadline_ms > 0.0) {
      std::fprintf(file,
                   "  {\"matrix\": %d, \"seed\": %llu, \"deadline_ms\": "
                   "%.6f}%s\n",
                   r.matrix, static_cast<unsigned long long>(r.seed),
                   r.deadline_ms, tail);
    } else {
      std::fprintf(file, "  {\"matrix\": %d, \"seed\": %llu}%s\n", r.matrix,
                   static_cast<unsigned long long>(r.seed), tail);
    }
  }
  std::fprintf(file, "]}\n");
  std::fclose(file);
  return Status::Ok();
}

Expected<RequestTrace> ReadTraceJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return IoError("cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);

  // Minimal scanner for the writer's schema: every "matrix" key must be
  // followed by a "seed" key. Tolerates whitespace/ordering the writer emits
  // but is not a general JSON parser (we have no JSON dependency).
  RequestTrace trace;
  std::size_t pos = 0;
  const std::string matrix_key = "\"matrix\"";
  const std::string seed_key = "\"seed\"";
  while ((pos = text.find(matrix_key, pos)) != std::string::npos) {
    pos += matrix_key.size();
    TraceRequest request;
    if (std::sscanf(text.c_str() + pos, " : %d", &request.matrix) != 1) {
      return IoError(path + ": malformed \"matrix\" value");
    }
    const std::size_t seed_pos = text.find(seed_key, pos);
    if (seed_pos == std::string::npos) {
      return IoError(path + ": \"matrix\" without a following \"seed\"");
    }
    unsigned long long seed = 0;
    if (std::sscanf(text.c_str() + seed_pos + seed_key.size(), " : %llu",
                    &seed) != 1) {
      return IoError(path + ": malformed \"seed\" value");
    }
    request.seed = seed;
    if (request.matrix < 0) {
      return IoError(path + ": negative matrix index");
    }
    pos = seed_pos + seed_key.size();
    // Optional keys belonging to THIS record (i.e. before the next
    // "matrix"): "deadline_ms" on solves, "update_deltas"/"structural" on
    // update events.
    const std::string deadline_key = "\"deadline_ms\"";
    const std::string deltas_key = "\"update_deltas\"";
    const std::string structural_key = "\"structural\"";
    const std::size_t next_matrix = text.find(matrix_key, pos);
    const auto in_record = [&](std::size_t key_pos) {
      return key_pos != std::string::npos &&
             (next_matrix == std::string::npos || key_pos < next_matrix);
    };
    const std::size_t deadline_pos = text.find(deadline_key, pos);
    if (in_record(deadline_pos)) {
      double deadline_ms = 0.0;
      if (std::sscanf(text.c_str() + deadline_pos + deadline_key.size(),
                      " : %lf", &deadline_ms) != 1) {
        return IoError(path + ": malformed \"deadline_ms\" value");
      }
      request.deadline_ms = deadline_ms;
      pos = deadline_pos + deadline_key.size();
    }
    const std::size_t deltas_pos = text.find(deltas_key, pos);
    if (in_record(deltas_pos)) {
      request.kind = TraceEventKind::kUpdate;
      if (std::sscanf(text.c_str() + deltas_pos + deltas_key.size(), " : %d",
                      &request.update_deltas) != 1 ||
          request.update_deltas <= 0) {
        return IoError(path + ": malformed \"update_deltas\" value");
      }
      pos = deltas_pos + deltas_key.size();
      const std::size_t structural_pos = text.find(structural_key, pos);
      if (in_record(structural_pos)) {
        int structural = 0;
        if (std::sscanf(text.c_str() + structural_pos + structural_key.size(),
                        " : %d", &structural) != 1) {
          return IoError(path + ": malformed \"structural\" value");
        }
        request.structural = structural != 0;
        pos = structural_pos + structural_key.size();
      }
    }
    trace.requests.push_back(request);
  }
  return trace;
}

Expected<ReplayReport> ReplayTrace(SolveService& service,
                                   const std::vector<MatrixHandle>& handles,
                                   const RequestTrace& trace,
                                   const ReplayOptions& options) {
  if (handles.empty()) return InvalidArgument("no handles to replay against");

  struct Pending {
    std::future<ServeResult> future;
    std::vector<Val> x_true;
  };

  ReplayReport report;
  std::vector<Pending> pending;
  pending.reserve(trace.requests.size());

  // Queue-full and evicted-handle submissions are both counted as
  // rejections: under a byte budget a cold factor can be LRU-evicted while
  // its trace requests are still in flight, and a serving client would
  // re-register and retry — the replay just records the drop.
  const auto is_rejection = [](const Status& status) {
    return status.code() == StatusCode::kResourceExhausted ||
           status.code() == StatusCode::kNotFound;
  };

  const Clock::time_point submit_begin = Clock::now();
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& request = trace.requests[i];
    if (options.pace_requests_per_sec > 0.0) {
      // Open-loop arrivals: request i is offered at i / rate regardless of
      // how the service is keeping up — exactly the overload regime the
      // admission control is for.
      std::this_thread::sleep_until(
          submit_begin + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 static_cast<double>(i) /
                                 options.pace_requests_per_sec)));
    }
    const MatrixHandle handle =
        handles[static_cast<std::size_t>(request.matrix) % handles.size()];
    // Peek: manufacturing the right-hand side (or drawing the delta batch)
    // is client-side work and must not touch the LRU — only admitted
    // operations promote.
    auto entry = service.registry()->Peek(handle);
    if (!entry.ok()) {
      if (is_rejection(entry.status())) {
        if (request.kind == TraceEventKind::kUpdate) {
          ++report.updates_rejected;
        } else {
          ++report.submitted;
          ++report.rejected;
        }
        continue;
      }
      return entry.status();
    }
    if (request.kind == TraceEventKind::kUpdate) {
      // Apply inline: solves admitted before this point pinned the old
      // epoch and stay verifiable against the x_true they were built from;
      // solves submitted after see the mutated matrix. No barrier needed —
      // that is the snapshot contract under test.
      const update::DeltaBatch batch = update::MakeRandomBatch(
          (*entry)->solver.matrix(), request.update_deltas, request.structural,
          request.seed);
      auto applied = service.ApplyDelta(handle, batch);
      if (!applied.ok()) {
        if (is_rejection(applied.status())) {
          ++report.updates_rejected;
          continue;
        }
        return applied.status();
      }
      ++report.updates;
      report.rows_releveled +=
          static_cast<std::uint64_t>(applied->rows_releveled);
      continue;
    }
    const ReferenceProblem problem =
        MakeReferenceProblem((*entry)->solver.matrix(), request.seed);
    ++report.submitted;
    RequestOptions request_options;
    if (request.deadline_ms > 0.0) {
      request_options.deadline_ms = request.deadline_ms;
    }
    auto submitted = service.Submit(handle, problem.b, request_options);
    if (!submitted.ok()) {
      if (is_rejection(submitted.status())) {
        ++report.rejected;
        continue;
      }
      return submitted.status();
    }
    pending.push_back(Pending{std::move(*submitted),
                              options.verify ? problem.x_true
                                             : std::vector<Val>{}});
  }

  // With preload the queue was filled while the workers were paused; the
  // measured wall clock is the drain alone (the batching-limited regime).
  const Clock::time_point drain_begin =
      options.preload ? Clock::now() : submit_begin;
  if (options.preload) service.Start();

  std::uint64_t checksum = kFnvSeed;
  for (Pending& p : pending) {
    ServeResult result = p.future.get();
    if (!result.status.ok()) {
      if (result.status.code() == StatusCode::kDeadlineExceeded) {
        ++report.expired;
      } else {
        ++report.failed;
      }
      continue;
    }
    ++report.completed;
    checksum = HashBytes(checksum, result.solve.x.data(),
                         result.solve.x.size() * sizeof(Val));
    if (options.verify &&
        MaxRelativeError(result.solve.x, p.x_true) > 1e-8) {
      ++report.wrong;
    }
  }
  const Clock::time_point end = Clock::now();
  report.wall_ms = ElapsedMs(drain_begin, end);
  report.solution_checksum = checksum;
  const double seconds = report.wall_ms / 1e3;
  if (seconds > 0.0) {
    report.requests_per_sec =
        static_cast<double>(report.completed) / seconds;
  }
  return report;
}

}  // namespace capellini::serve
