#include "fleet/partition.h"

#include <algorithm>
#include <cmath>

namespace capellini::fleet {

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguousNnz:
      return "contiguous-nnz";
    case PartitionStrategy::kLevelAware:
      return "level-aware";
  }
  return "unknown";
}

int Partition::DeviceOf(Idx row) const {
  // First cut strictly greater than row, minus one: skips empty blocks and
  // lands on the unique owner.
  const auto it = std::upper_bound(cuts.begin() + 1, cuts.end(), row);
  return static_cast<int>(it - cuts.begin()) - 1;
}

namespace {

/// cross[c] = number of strictly-lower nonzeros (r, col) with col < c <= r —
/// the messages a cut at row c would put on the wire. Built with a
/// difference array in O(nnz + m).
std::vector<std::int64_t> CrossAtCut(const Csr& lower) {
  const Idx m = lower.rows();
  std::vector<std::int64_t> diff(static_cast<std::size_t>(m) + 2, 0);
  for (Idx r = 0; r < m; ++r) {
    const Idx begin = lower.row_ptr()[static_cast<std::size_t>(r)];
    const Idx end = lower.row_ptr()[static_cast<std::size_t>(r) + 1];
    for (Idx j = begin; j < end; ++j) {
      const Idx col = lower.col_idx()[static_cast<std::size_t>(j)];
      if (col >= r) continue;  // diagonal / upper: not a dependency
      // The edge crosses every cut c in (col, r].
      ++diff[static_cast<std::size_t>(col) + 1];
      --diff[static_cast<std::size_t>(r) + 1];
    }
  }
  std::vector<std::int64_t> cross(static_cast<std::size_t>(m) + 1, 0);
  std::int64_t running = 0;
  for (Idx c = 0; c <= m; ++c) {
    running += diff[static_cast<std::size_t>(c)];
    cross[static_cast<std::size_t>(c)] = running;
  }
  return cross;
}

}  // namespace

Expected<Partition> PartitionRows(const Csr& lower, int num_devices,
                                  PartitionStrategy strategy,
                                  const LevelSets* levels,
                                  std::span<const double> row_weights) {
  if (num_devices < 1) return InvalidArgument("num_devices must be >= 1");
  const Idx m = lower.rows();
  if (!row_weights.empty() &&
      row_weights.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("row_weights must have one entry per row");
  }

  // Cumulative weight; weight defaults to 1 + nnz so empty rows still carry
  // launch cost and the quantiles are strictly increasing where rows exist.
  std::vector<double> prefix(static_cast<std::size_t>(m) + 1, 0.0);
  for (Idx r = 0; r < m; ++r) {
    const double w =
        row_weights.empty()
            ? 1.0 + static_cast<double>(lower.RowLen(r))
            : std::max(0.0, row_weights[static_cast<std::size_t>(r)]);
    prefix[static_cast<std::size_t>(r) + 1] =
        prefix[static_cast<std::size_t>(r)] + w;
  }
  const double total = prefix[static_cast<std::size_t>(m)];

  Partition partition;
  partition.cuts.assign(static_cast<std::size_t>(num_devices) + 1, 0);
  partition.cuts[static_cast<std::size_t>(num_devices)] = m;

  // Balanced baseline: cut d at the first row whose cumulative weight reaches
  // the d/K quantile (monotone by construction).
  for (int d = 1; d < num_devices; ++d) {
    const double target =
        total * static_cast<double>(d) / static_cast<double>(num_devices);
    const auto it =
        std::lower_bound(prefix.begin(), prefix.end(), target);
    Idx cut = static_cast<Idx>(it - prefix.begin());
    cut = std::clamp(cut, partition.cuts[static_cast<std::size_t>(d) - 1], m);
    partition.cuts[static_cast<std::size_t>(d)] = cut;
  }

  if (strategy == PartitionStrategy::kLevelAware && m > 0) {
    LevelSets computed;
    if (levels == nullptr) {
      computed = ComputeLevelSets(lower);
      levels = &computed;
    }
    const std::vector<std::int64_t> cross = CrossAtCut(lower);
    // Slide each balanced cut inside a window to the position with the fewest
    // boundary messages; ties prefer level boundaries, then proximity to the
    // balanced spot (so balance degrades as little as possible).
    const Idx window = std::max<Idx>(
        32, m / std::max(1, 8 * num_devices));
    for (int d = 1; d < num_devices; ++d) {
      const Idx balanced = partition.cuts[static_cast<std::size_t>(d)];
      const Idx lo = std::max(partition.cuts[static_cast<std::size_t>(d) - 1],
                              balanced - window);
      const Idx hi = std::min(m, balanced + window);
      Idx best = balanced;
      std::int64_t best_cross = cross[static_cast<std::size_t>(balanced)];
      bool best_on_level = false;
      Idx best_dist = 0;
      for (Idx c = lo; c <= hi; ++c) {
        const std::int64_t cost = cross[static_cast<std::size_t>(c)];
        const bool on_level =
            c == 0 || c == m ||
            levels->level_of[static_cast<std::size_t>(c) - 1] <
                levels->level_of[static_cast<std::size_t>(c)];
        const Idx dist = c > balanced ? c - balanced : balanced - c;
        const bool better =
            cost < best_cross ||
            (cost == best_cross &&
             ((on_level && !best_on_level) ||
              (on_level == best_on_level && dist < best_dist)));
        if (better) {
          best = c;
          best_cross = cost;
          best_on_level = on_level;
          best_dist = dist;
        }
      }
      partition.cuts[static_cast<std::size_t>(d)] = best;
    }
    // Sliding is per-cut; restore monotonicity where neighbouring windows
    // overlapped.
    for (int d = 1; d <= num_devices; ++d) {
      partition.cuts[static_cast<std::size_t>(d)] =
          std::max(partition.cuts[static_cast<std::size_t>(d)],
                   partition.cuts[static_cast<std::size_t>(d) - 1]);
    }
  }
  return partition;
}

std::int64_t CountCrossEdges(const Csr& lower, const Partition& partition) {
  std::int64_t crossing = 0;
  const Idx m = lower.rows();
  for (int d = 0; d < partition.num_devices(); ++d) {
    const Idx begin = partition.RowBegin(d);
    for (Idx r = begin; r < partition.RowEnd(d); ++r) {
      const Idx row_begin = lower.row_ptr()[static_cast<std::size_t>(r)];
      const Idx row_end = lower.row_ptr()[static_cast<std::size_t>(r) + 1];
      for (Idx j = row_begin; j < row_end; ++j) {
        const Idx col = lower.col_idx()[static_cast<std::size_t>(j)];
        if (col < begin) ++crossing;  // contiguous: remote iff before my block
      }
    }
  }
  (void)m;
  return crossing;
}

}  // namespace capellini::fleet
