// Fleet-level counters: per-device execution + communication attribution,
// merged into one makespan view (critical-path device, aggregate comm
// volume). Plain data — filled by FleetSolver, serialized by bench_fleet.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/types.h"
#include "sim/counters.h"
#include "support/status.h"

namespace capellini::fleet {

struct DeviceStats {
  Idx row_begin = 0;
  Idx row_end = 0;
  std::int64_t nnz = 0;

  /// Per-device launch outcome. The fleet finishes every independent device
  /// even when one fails (fault-injection tests kill exactly one partition
  /// and assert the rest run clean); dependents of a failed device fail fast
  /// with kDeadlock instead of simulating the infinite spin.
  Status status;

  sim::LaunchStats launch;      // the device's kernel counters
  std::uint64_t cycles = 0;     // launch cycles incl. launch overhead
  double exec_ms = 0.0;
  /// HOST wall-clock milliseconds spent simulating this device's launch —
  /// the interpreter-speed side of the ledger (exec_ms is simulated time).
  /// bench_fleet derives host_ns_per_sim_cycle from this per device. Not
  /// covered by determinism checksums: wall clock is never deterministic.
  double host_ms = 0.0;
  /// Estimated share of Solver::CostHintMs() for this block (nnz-weighted) —
  /// what the partitioner balanced against.
  double est_cost_ms = 0.0;

  // Boundary traffic attribution.
  std::uint64_t in_messages = 0;    // remote rows this device waited on
  std::uint64_t out_messages = 0;   // rows it published to later devices
  std::uint64_t comm_bytes_in = 0;
  /// Sum over inbound messages of (arrival - publish): total wire+queue time
  /// charged by the comm model.
  std::uint64_t comm_delay_cycles = 0;
  /// Cycle of the last inbound arrival — until then the device's boundary
  /// rows were spinning on remote flags.
  std::uint64_t last_arrival_cycle = 0;
  /// min(cycles, last_arrival_cycle): upper bound on the stretch of the
  /// launch that was (partly) remote-bound.
  std::uint64_t boundary_stall_cycles = 0;
};

struct FleetStats {
  std::vector<DeviceStats> devices;

  std::int64_t cross_edges = 0;      // partition boundary size (messages)
  std::uint64_t total_messages = 0;  // == cross_edges when all devices ran
  std::uint64_t total_comm_bytes = 0;

  /// All devices start at fleet cycle 0; the makespan is the slowest
  /// device's launch (its spin-waits already include remote arrival time).
  std::uint64_t makespan_cycles = 0;
  int critical_device = -1;  // argmax cycles
  double exec_ms = 0.0;      // makespan in simulated milliseconds
};

}  // namespace capellini::fleet
