// Fleet-level counters: per-device execution + communication attribution,
// merged into one makespan view (critical-path device, aggregate comm
// volume). Plain data — filled by FleetSolver, serialized by bench_fleet.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/types.h"
#include "sim/counters.h"
#include "support/status.h"

namespace capellini::fleet {

struct DeviceStats {
  Idx row_begin = 0;
  Idx row_end = 0;
  std::int64_t nnz = 0;

  /// Per-device launch outcome. The fleet finishes every independent device
  /// even when one fails (fault-injection tests kill exactly one partition
  /// and assert the rest run clean); dependents of a failed device fail fast
  /// with kDeadlock instead of simulating the infinite spin.
  Status status;

  sim::LaunchStats launch;      // the device's kernel counters
  std::uint64_t cycles = 0;     // launch cycles incl. launch overhead
  double exec_ms = 0.0;
  /// HOST wall-clock milliseconds spent simulating this device's launch —
  /// the interpreter-speed side of the ledger (exec_ms is simulated time).
  /// bench_fleet derives host_ns_per_sim_cycle from this per device. Not
  /// covered by determinism checksums: wall clock is never deterministic.
  double host_ms = 0.0;
  /// Estimated share of Solver::CostHintMs() for this block (nnz-weighted) —
  /// what the partitioner balanced against.
  double est_cost_ms = 0.0;

  // Boundary traffic attribution.
  std::uint64_t in_messages = 0;    // remote rows this device waited on
  std::uint64_t out_messages = 0;   // rows it published to later devices
  std::uint64_t comm_bytes_in = 0;
  /// Sum over inbound messages of (arrival - publish): total wire+queue time
  /// charged by the comm model.
  std::uint64_t comm_delay_cycles = 0;
  /// Cycle of the last inbound arrival — until then the device's boundary
  /// rows were spinning on remote flags.
  std::uint64_t last_arrival_cycle = 0;
  /// min(cycles, last_arrival_cycle): upper bound on the stretch of the
  /// launch that was (partly) remote-bound.
  std::uint64_t boundary_stall_cycles = 0;

  // Failover attribution (recovery-enabled solves only; see FailoverRecord).
  /// This partition's first-pass attempt failed (or failed verification) and
  /// the recovery ladder re-executed it.
  bool failed_over = false;
  /// Ladder rungs tried for this partition (0 when failed_over is false).
  int recovery_attempts = 0;
  /// Executor that produced the accepted range: a device index, or
  /// kHostExecutor for the serial host rung. Meaningful only when
  /// failed_over is true.
  int recovered_on = -1;
};

/// Executor id for the fault-immune host serial rung in failover records.
inline constexpr int kHostExecutor = -1;

/// One partition's trip through the fleet recovery ladder, in the order the
/// rungs ran. Recovery decisions are pure functions of (fault stream,
/// outcome history), so bench_fleet_faults serializes these records and
/// gates byte-identical failover paths across same-seed replays.
struct FailoverRecord {
  int device = -1;  // the partition's original owner
  /// True when the partition never launched because an upstream partition
  /// failed or dropped a publish — the owner itself is presumed healthy and
  /// is retried first with the recovered arrivals.
  bool upstream_induced = false;
  /// Executors tried, in order (device index or kHostExecutor). The last
  /// entry is the one that produced the accepted range when `verified`.
  std::vector<int> attempts;
  int recovered_on = -1;  // last attempt's executor (valid when verified)
  bool verified = false;  // VerifyRange passed on the accepted range
  Idx rows = 0;           // partition size re-executed
  /// Range residual of the accepted attempt (+inf if nothing verified).
  double residual = 0.0;
};

struct FleetStats {
  std::vector<DeviceStats> devices;

  std::int64_t cross_edges = 0;      // partition boundary size (messages)
  std::uint64_t total_messages = 0;  // == cross_edges when all devices ran
  std::uint64_t total_comm_bytes = 0;

  /// All devices start at fleet cycle 0; the makespan is the slowest
  /// SUCCESSFUL device's launch (its spin-waits already include remote
  /// arrival time). Failed launches are excluded: the watchdog returns an
  /// error instead of a cycle count, so a killed partition must not win the
  /// argmax with a synthesized total. critical_device is -1 when no device
  /// completed. Recovery re-executions are accounted in the failover
  /// records, not the makespan — it models the fault-free parallel phase.
  std::uint64_t makespan_cycles = 0;
  int critical_device = -1;  // argmax cycles over OK devices
  double exec_ms = 0.0;      // makespan in simulated milliseconds

  // Recovery ledger (empty/zero on zero-fault runs — byte-identity with
  // recovery disabled is gated by bench_fleet_faults).
  std::vector<FailoverRecord> failovers;
  std::uint64_t rows_reexecuted = 0;     // summed over failover attempts
  std::uint64_t host_rung_recoveries = 0;
  std::uint64_t device_rung_recoveries = 0;
};

}  // namespace capellini::fleet
