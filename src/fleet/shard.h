// Sharded serving: K per-device (MatrixRegistry, SolveService) pairs behind
// one facade, for the fleet's "millions of users" scaling axis.
//
// Placement is cost-aware and sticky: a matrix is registered on the device
// with the least outstanding work — the live queued-cost ledger
// (SolveService::QueuedCostMs) plus the cost of everything already placed
// there — and every solve on its handle routes to that device (matrix data
// lives in one device's registry budget; moving it would re-pay analysis).
// Each device keeps its own byte budget, LRU, EDF queue, breaker map and
// stats, so one noisy tenant saturates one shard, not the fleet.
//
// The placed-cost ledger is RECONCILED against each registry on every
// placement decision: per-handle entries are re-read from the live
// CostModel::EstimateMs() (so observed-EWMA corrections and post-update
// re-seeds replace the stale analytic hints) and entries whose handle was
// LRU-evicted are dropped. Without this the ledger only ever grows and
// long-lived fleets drift to stale placement.
//
// Degraded-mode serving (DESIGN.md §4j): with ShardOptions::health enabled,
// a DeviceHealthTracker watches every device's terminal device-path outcomes
// (through serve's outcome_listener seam — the same signals the per-handle
// breaker sees). A quarantined device stops receiving placements and its
// existing handles FAIL OVER: deflected submits lazily re-register the
// matrix on the designated survivor (lowest-indexed healthy device) and
// serve there, with the survivor registration cached per (device, handle)
// and the cost ledger charged on the survivor. Half-open probes periodically
// let one submit through to the quarantined device; a success reinstates it
// and traffic routes home again. All transitions are request-count driven,
// so a replayed trace takes the identical degraded path (bench_fleet_faults
// gates K-1 serving determinism and the PR-4 exactly-once accounting).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/health.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "update/delta.h"

namespace capellini::fleet {

struct ShardOptions {
  int num_devices = 1;
  /// Per-device registry byte budget (0 = unlimited). The fleet-wide budget
  /// is num_devices * device_byte_budget.
  std::size_t device_byte_budget = 0;
  /// Applied to every device's SolveService.
  serve::ServiceOptions service;
  /// Device health / quarantine (disabled by default: both modes 0).
  HealthOptions health;
};

/// A registry handle plus the device that owns it.
struct ShardedHandle {
  int device = -1;
  serve::MatrixHandle handle = serve::kInvalidHandle;
  bool valid() const {
    return device >= 0 && handle != serve::kInvalidHandle;
  }
};

/// Degraded-mode counters: the tracker's lifecycle numbers plus the shard
/// facade's failover accounting. Failovers are NOT part of the per-device
/// request invariant — a failed-over request is accounted exactly once, on
/// the device that served it.
struct ShardHealthStats {
  HealthSnapshot health;
  /// Submits rerouted from a quarantined owner to a survivor.
  std::uint64_t failover_submits = 0;
  /// Lazy re-registrations performed for failover (first deflected submit
  /// per (device, handle), plus re-registration after an LRU eviction).
  std::uint64_t failover_registrations = 0;
};

class ShardedSolveService {
 public:
  explicit ShardedSolveService(const ShardOptions& options);

  int num_devices() const { return options_.num_devices; }
  const ShardOptions& options() const { return options_; }

  /// Registers on the least-loaded device (queued cost + placed cost hints;
  /// ties go to the lowest device index — deterministic for replays).
  /// Quarantined/probing devices are skipped unless no healthy device
  /// remains (then placement falls back to all devices).
  Expected<ShardedHandle> Register(Csr lower, std::string name,
                                   SolverOptions solver_options = {});

  /// Routes to the handle's device. Admission errors are that device's.
  /// With health tracking on, a quarantined owner's requests fail over to
  /// the survivor (see the header comment); probe admissions go to the
  /// owner. Fails with kResourceExhausted when every device is quarantined.
  Expected<std::future<serve::ServeResult>> Submit(
      const ShardedHandle& handle, std::vector<Val> b,
      serve::RequestOptions options = {});

  /// Streams a factor update (src/update) to the owning device's registry —
  /// MatrixRegistry::ApplyDelta semantics (epoch swap, snapshot isolation
  /// for in-flight solves) — and refreshes that device's placement-ledger
  /// entry from the post-update cost model, so a structurally heavier or
  /// lighter epoch immediately re-prices the device for future placements.
  /// Registry updates are host-side, so a quarantined owner still applies
  /// them (its failover copy, if any, is dropped: the survivor would serve a
  /// stale epoch).
  Expected<serve::UpdateReport> ApplyDelta(const ShardedHandle& handle,
                                           const update::DeltaBatch& batch);

  /// Start()/Shutdown() fan out to every device service.
  void Start();
  void Shutdown();

  double QueuedCostMs(int device) const;
  /// Sum of the per-handle placed costs on the device — the static half of
  /// the placement score, reconciled on every placement decision.
  double PlacedCostMs(int device) const;

  /// Point-in-time degraded-mode view (health states + failover counters).
  ShardHealthStats health_stats() const;
  const DeviceHealthTracker& health() const { return health_; }

  serve::MatrixRegistry& registry(int device) {
    return *registries_[static_cast<std::size_t>(device)];
  }
  serve::SolveService& service(int device) {
    return *services_[static_cast<std::size_t>(device)];
  }
  const serve::ServiceStats& stats(int device) const {
    return services_[static_cast<std::size_t>(device)]->stats();
  }

 private:
  /// Re-reads device `d`'s ledger from the live registry: evicted handles
  /// are dropped, surviving ones re-priced from CostModel::EstimateMs().
  /// Caller holds mutex_ (TryPeek takes the registry's own mutex; ordering
  /// is always ledger -> registry, never the reverse).
  void ReconcileLedgerLocked(int device);
  /// The failover target for a deflected submit: a resident survivor copy of
  /// (owner, handle), re-registering it if missing, LRU-evicted, or stranded
  /// on a device that is no longer the survivor (the superseded copy is
  /// evicted and its ledger entry dropped). Survivor = lowest-indexed
  /// healthy device (deterministic for replays). Takes mutex_ itself and
  /// holds it across the check-register-insert sequence, so two concurrent
  /// deflected submits for one key cannot both miss the cache and
  /// double-register on the survivor.
  Expected<ShardedHandle> FailoverTarget(const ShardedHandle& handle);

  ShardOptions options_;
  // Declared BEFORE services_ (so destroyed AFTER them): each service's
  // destructor joins workers that may still fire outcome_listener, which
  // reports into health_. health_ and mutex_ must outlive those threads.
  DeviceHealthTracker health_;
  mutable std::mutex mutex_;  // placement ledger + failover map
  std::vector<std::unique_ptr<serve::MatrixRegistry>> registries_;
  std::vector<std::unique_ptr<serve::SolveService>> services_;
  /// Per device: handle -> last reconciled per-solve cost estimate (ms).
  std::vector<std::unordered_map<serve::MatrixHandle, double>> placed_;
  /// (owner device, owner handle) -> cached survivor registration.
  struct FailoverKeyHash {
    std::size_t operator()(const std::pair<int, serve::MatrixHandle>& k) const {
      return std::hash<serve::MatrixHandle>()(k.second) * 31 +
             static_cast<std::size_t>(k.first);
    }
  };
  std::unordered_map<std::pair<int, serve::MatrixHandle>, ShardedHandle,
                     FailoverKeyHash>
      failover_;
  std::uint64_t failover_submits_ = 0;
  std::uint64_t failover_registrations_ = 0;
};

}  // namespace capellini::fleet
