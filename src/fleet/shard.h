// Sharded serving: K per-device (MatrixRegistry, SolveService) pairs behind
// one facade, for the fleet's "millions of users" scaling axis.
//
// Placement is cost-aware and sticky: a matrix is registered on the device
// with the least outstanding work — the live queued-cost ledger
// (SolveService::QueuedCostMs) plus the cost of everything already placed
// there — and every solve on its handle routes to that device (matrix data
// lives in one device's registry budget; moving it would re-pay analysis).
// Each device keeps its own byte budget, LRU, EDF queue, breaker map and
// stats, so one noisy tenant saturates one shard, not the fleet.
//
// The placed-cost ledger is RECONCILED against each registry on every
// placement decision: per-handle entries are re-read from the live
// CostModel::EstimateMs() (so observed-EWMA corrections and post-update
// re-seeds replace the stale analytic hints) and entries whose handle was
// LRU-evicted are dropped. Without this the ledger only ever grows and
// long-lived fleets drift to stale placement.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/registry.h"
#include "serve/service.h"
#include "update/delta.h"

namespace capellini::fleet {

struct ShardOptions {
  int num_devices = 1;
  /// Per-device registry byte budget (0 = unlimited). The fleet-wide budget
  /// is num_devices * device_byte_budget.
  std::size_t device_byte_budget = 0;
  /// Applied to every device's SolveService.
  serve::ServiceOptions service;
};

/// A registry handle plus the device that owns it.
struct ShardedHandle {
  int device = -1;
  serve::MatrixHandle handle = serve::kInvalidHandle;
  bool valid() const {
    return device >= 0 && handle != serve::kInvalidHandle;
  }
};

class ShardedSolveService {
 public:
  explicit ShardedSolveService(const ShardOptions& options);

  int num_devices() const { return options_.num_devices; }
  const ShardOptions& options() const { return options_; }

  /// Registers on the least-loaded device (queued cost + placed cost hints;
  /// ties go to the lowest device index — deterministic for replays).
  Expected<ShardedHandle> Register(Csr lower, std::string name,
                                   SolverOptions solver_options = {});

  /// Routes to the handle's device. Admission errors are that device's.
  Expected<std::future<serve::ServeResult>> Submit(
      const ShardedHandle& handle, std::vector<Val> b,
      serve::RequestOptions options = {});

  /// Streams a factor update (src/update) to the owning device's registry —
  /// MatrixRegistry::ApplyDelta semantics (epoch swap, snapshot isolation
  /// for in-flight solves) — and refreshes that device's placement-ledger
  /// entry from the post-update cost model, so a structurally heavier or
  /// lighter epoch immediately re-prices the device for future placements.
  Expected<serve::UpdateReport> ApplyDelta(const ShardedHandle& handle,
                                           const update::DeltaBatch& batch);

  /// Start()/Shutdown() fan out to every device service.
  void Start();
  void Shutdown();

  double QueuedCostMs(int device) const;
  /// Sum of the per-handle placed costs on the device — the static half of
  /// the placement score, reconciled on every placement decision.
  double PlacedCostMs(int device) const;

  serve::MatrixRegistry& registry(int device) {
    return *registries_[static_cast<std::size_t>(device)];
  }
  serve::SolveService& service(int device) {
    return *services_[static_cast<std::size_t>(device)];
  }
  const serve::ServiceStats& stats(int device) const {
    return services_[static_cast<std::size_t>(device)]->stats();
  }

 private:
  /// Re-reads device `d`'s ledger from the live registry: evicted handles
  /// are dropped, surviving ones re-priced from CostModel::EstimateMs().
  /// Caller holds mutex_ (TryPeek takes the registry's own mutex; ordering
  /// is always ledger -> registry, never the reverse).
  void ReconcileLedgerLocked(int device);

  ShardOptions options_;
  std::vector<std::unique_ptr<serve::MatrixRegistry>> registries_;
  std::vector<std::unique_ptr<serve::SolveService>> services_;
  mutable std::mutex mutex_;  // placement ledger only
  /// Per device: handle -> last reconciled per-solve cost estimate (ms).
  std::vector<std::unordered_map<serve::MatrixHandle, double>> placed_;
};

}  // namespace capellini::fleet
