#include "fleet/health.h"

#include <algorithm>
#include <limits>

namespace capellini::fleet {

const char* DeviceStateName(DeviceState state) {
  switch (state) {
    case DeviceState::kHealthy: return "healthy";
    case DeviceState::kQuarantined: return "quarantined";
    case DeviceState::kProbing: return "probing";
  }
  return "?";
}

DeviceHealthTracker::DeviceHealthTracker(int num_devices, HealthOptions options)
    : options_(options) {
  devices_.resize(static_cast<std::size_t>(std::max(1, num_devices)));
}

DeviceHealthTracker::Admit DeviceHealthTracker::AdmitFor(int device) {
  if (!options_.enabled()) return Admit::kAllow;
  std::lock_guard<std::mutex> lock(mutex_);
  PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  switch (dev.state) {
    case DeviceState::kHealthy:
      return Admit::kAllow;
    case DeviceState::kQuarantined:
      if (dev.quarantine_skips >= options_.probe_cooldown) {
        dev.state = DeviceState::kProbing;
        dev.probe_deflections = 0;
        ++counters_.probes;
        return Admit::kProbe;
      }
      ++dev.quarantine_skips;
      break;
    case DeviceState::kProbing:
      // One probe in flight; keep deflecting until it reports. Some serve
      // paths terminate a request without an outcome report (expired
      // deadline, per-handle breaker deflection), so a probe can be lost —
      // after probe_timeout deflections declare it dead and fall back to
      // quarantine so a fresh probe can be issued after the cooldown.
      if (options_.probe_timeout > 0 &&
          ++dev.probe_deflections >= options_.probe_timeout) {
        dev.state = DeviceState::kQuarantined;
        dev.quarantine_skips = 0;
        ++counters_.probe_aborts;
      }
      break;
  }
  ++counters_.deflections;
  return Admit::kDeflect;
}

void DeviceHealthTracker::Report(int device, bool failure) {
  if (!options_.enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  switch (dev.state) {
    case DeviceState::kHealthy: {
      bool trip = false;
      if (options_.threshold > 0) {
        if (!failure) {
          dev.consecutive_failures = 0;
        } else if (++dev.consecutive_failures >= options_.threshold) {
          trip = true;
        }
      }
      if (options_.window > 0) {
        const auto window = static_cast<std::size_t>(options_.window);
        dev.window.push_back(failure);
        if (dev.window.size() > window) {
          dev.window.erase(dev.window.begin());
        }
        if (dev.window.size() == window) {
          const auto failures = static_cast<double>(
              std::count(dev.window.begin(), dev.window.end(), true));
          const double rate = std::clamp(
              options_.rate, std::numeric_limits<double>::min(), 1.0);
          if (failures >= rate * static_cast<double>(window)) trip = true;
        }
      }
      if (trip) {
        dev.state = DeviceState::kQuarantined;
        dev.quarantine_skips = 0;
        dev.consecutive_failures = 0;
        dev.window.clear();
        ++counters_.quarantines;
      }
      break;
    }
    case DeviceState::kProbing:
      if (failure) {
        dev.state = DeviceState::kQuarantined;
        dev.quarantine_skips = 0;
        ++counters_.probe_failures;
        ++counters_.quarantines;  // re-quarantined by the failed probe
      } else {
        dev.state = DeviceState::kHealthy;
        dev.consecutive_failures = 0;
        dev.window.clear();
        ++counters_.reinstatements;
      }
      break;
    case DeviceState::kQuarantined:
      break;  // stale report from a solve admitted before the quarantine
  }
}

void DeviceHealthTracker::AbortProbe(int device) {
  if (!options_.enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  if (dev.state != DeviceState::kProbing) return;
  dev.state = DeviceState::kQuarantined;
  dev.quarantine_skips = 0;
  ++counters_.probe_aborts;
}

DeviceState DeviceHealthTracker::state(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return devices_[static_cast<std::size_t>(device)].state;
}

HealthSnapshot DeviceHealthTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthSnapshot snap = counters_;
  snap.states.reserve(devices_.size());
  for (const PerDevice& dev : devices_) snap.states.push_back(dev.state);
  return snap;
}

}  // namespace capellini::fleet
