// Inter-device communication model for the fleet.
//
// Every cross-partition dependency edge becomes one message: the producer
// device publishes (x value + get_value flag, ~12 bytes) and the consumer
// device sees both land `latency + bytes/bandwidth` cycles later, serialized
// per directed link — the structural costs Xie et al. (arXiv 2012.06959)
// identify as what a multi-GPU SpTRSV must pay. Messages are modeled as
// sim::ExternalStore arrivals on the consumer, so consumer rows spin on the
// flag exactly as they would for an on-device producer; communication
// overlaps compute for free because independent local rows keep issuing
// while boundary rows wait.
#pragma once

#include <cstdint>
#include <vector>

namespace capellini::fleet {

struct CommConfig {
  /// Fixed per-message cost (link traversal; PCIe/NVLink-scale next to a
  /// ~1GHz device clock).
  std::uint64_t latency_cycles = 500;
  /// Per directed link; a message occupies the link for bytes/bandwidth
  /// cycles (serialization).
  double bandwidth_bytes_per_cycle = 8.0;
  /// 8B x-value + 4B flag per boundary row.
  std::uint64_t bytes_per_message = 12;
};

/// Per-link serialization + latency. NOT thread-safe per link by design: the
/// fleet guarantees all messages into one destination device are delivered
/// by that device's single task, in (source device, global row) order —
/// which is also what makes arrival cycles deterministic for any host
/// thread count. Counters are read after the tasks join.
class CommModel {
 public:
  CommModel(const CommConfig& config, int num_devices);

  const CommConfig& config() const { return config_; }

  /// Arrival cycle at `dst` of a message published on `src` at
  /// `publish_cycle`: depart = max(link busy, publish), arrive = depart +
  /// bytes/bandwidth + latency. Advances the (src, dst) link.
  std::uint64_t Deliver(int src, int dst, std::uint64_t publish_cycle);

  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

 private:
  struct Link {
    std::uint64_t busy_until = 0;
    std::uint64_t messages = 0;
  };
  Link& LinkAt(int src, int dst) {
    return links_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_devices_) +
                  static_cast<std::size_t>(dst)];
  }

  CommConfig config_;
  int num_devices_;
  std::vector<Link> links_;
};

}  // namespace capellini::fleet
