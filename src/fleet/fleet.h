// Multi-device sharded solving: K independent simulated GPUs solving one
// triangular system, partitioned by contiguous row blocks.
//
// Execution model: every device starts at fleet cycle 0 and launches a
// range variant of a Capellini thread-per-row kernel over its block. Local
// dependencies resolve exactly as on one device; a dependency on an earlier
// device's row arrives as a delayed external store (value + flag) at the
// cycle the comm model charges, and the consumer row spins on the flag just
// as it would for an on-device producer. Because the partition is
// contiguous, dependencies only flow from lower-numbered to higher-numbered
// devices, so the host drives device d after its producers d' < d — with
// the PR-2 thread pool, overlapping independent devices.
//
// Determinism contract (gated by bench_fleet): the Capellini kernels drain
// left_sum in strict CSR order, so computed values are timing-independent —
// the fleet solution is byte-identical to the single-device solve for K=1
// and byte-identical across host thread counts for any K.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "fleet/comm.h"
#include "fleet/partition.h"
#include "fleet/stats.h"
#include "kernels/launch.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "sim/memory.h"

namespace capellini::fleet {

/// Fleet-level self-healing (DESIGN.md §4j). When enabled, a failed
/// partition — deadlocked, starved by a dropped publish, or completing with
/// a bad range residual — is re-executed through a bounded ladder instead of
/// failing the whole solve:
///
///   1. the owner itself, when the failure was upstream-induced (the
///      partition never launched; with the recovered upstream publishes it
///      is expected to succeed),
///   2. a designated survivor — the lowest-indexed device whose own
///      first-pass partition succeeded — via the same SolveRangeOnDevice
///      path, replaying the checkpointed upstream boundary publishes
///      through the ExternalStore seam,
///   3. the fault-immune host serial rung over just the failed rows.
///
/// Partitions recover in device-index order, so a downstream partition that
/// failed only because its producer died re-executes against the recovered
/// publishes as if the producer had succeeded — upstream completed work is
/// never redone. Every accepted range passes VerifyRange and the stitched
/// solution passes a final VerifySolution. Determinism: the ladder order,
/// survivor choice and injector event streams are pure functions of the
/// (seeded) fault stream and the outcome history, so same seed => identical
/// failover path; zero-fault runs never enter recovery and stay
/// byte-identical to a recovery-disabled solve.
struct FleetRecoveryOptions {
  bool enabled = false;
  /// Residual bound for the per-range and final stitched checks.
  VerifyOptions verify;
  /// When recovery is on, every partition's range is verified even if its
  /// launch reported OK — a bit-flipped store completes "successfully" with
  /// a corrupted value only the residual catches. Off limits recovery to
  /// launch failures (cheaper, but silent corruption escapes).
  bool verify_partitions = true;
};

struct FleetConfig {
  int num_devices = 1;
  /// Per-device simulated GPU (all devices identical).
  sim::DeviceConfig device = sim::PascalGtx1080();
  CommConfig comm;
  PartitionStrategy strategy = PartitionStrategy::kLevelAware;
  /// kCapelliniWritingFirst or kCapelliniTwoPhase (the thread-per-row
  /// kernels with range variants).
  kernels::DeviceAlgorithm algorithm =
      kernels::DeviceAlgorithm::kCapelliniWritingFirst;
  int threads_per_block = 256;
  /// Host threads driving the devices; 0 = one per device. Any value gives
  /// byte-identical solutions (see the determinism contract above).
  int host_threads = 0;
  FleetRecoveryOptions recovery;
};

/// Owns the K machines and their memories plus the per-device trace/fault
/// seams (same contract as the single-machine setters: not owned, nullptr =
/// off). A fleet is reusable across solves.
class DeviceFleet {
 public:
  explicit DeviceFleet(const FleetConfig& config);

  const FleetConfig& config() const { return config_; }
  int num_devices() const { return config_.num_devices; }

  sim::Machine& machine(int device) {
    return *machines_[static_cast<std::size_t>(device)];
  }
  sim::DeviceMemory& memory(int device) {
    return *memories_[static_cast<std::size_t>(device)];
  }

  void set_trace_sink(int device, trace::TraceSink* sink) {
    sinks_[static_cast<std::size_t>(device)] = sink;
  }
  trace::TraceSink* trace_sink(int device) const {
    return sinks_[static_cast<std::size_t>(device)];
  }
  /// The injector's tid offset is set to the device's row_begin during a
  /// fleet solve, so FaultPlan row scopes are written in GLOBAL row
  /// coordinates no matter which device owns the rows.
  void set_fault_injector(int device, sim::FaultInjector* faults) {
    injectors_[static_cast<std::size_t>(device)] = faults;
  }
  sim::FaultInjector* fault_injector(int device) const {
    return injectors_[static_cast<std::size_t>(device)];
  }

 private:
  FleetConfig config_;
  std::vector<std::unique_ptr<sim::DeviceMemory>> memories_;
  std::vector<std::unique_ptr<sim::Machine>> machines_;
  std::vector<trace::TraceSink*> sinks_;
  std::vector<sim::FaultInjector*> injectors_;
};

struct FleetResult {
  /// Assembled solution; rows of a failed device are zero (and `status`
  /// carries the failure). With recovery enabled, recovered partitions are
  /// stitched in and `status` is OK when every range verified.
  std::vector<Val> x;
  /// First failing device's status, or OK. Per-device outcomes are in
  /// stats.devices[d].status — independent devices finish clean even when
  /// one partition is killed. A recovered solve reports OK here; the
  /// original per-device failures stay visible in stats.devices[d].status
  /// and the failover ledger.
  Status status;
  Partition partition;
  FleetStats stats;
  /// Final stitched-solution check (recovery-enabled solves that entered
  /// the recovery path only; default-constructed otherwise).
  Verification verification;
};

/// Drives a DeviceFleet over a Solver's system. The Solver supplies the
/// matrix, the memoized level sets (level-aware cuts) and CostHintMs (the
/// balance weights and per-device cost attribution).
class FleetSolver {
 public:
  explicit FleetSolver(DeviceFleet* fleet) : fleet_(fleet) {}

  Expected<FleetResult> Solve(const Solver& solver,
                              std::span<const Val> b) const;

 private:
  DeviceFleet* fleet_;  // not owned
};

}  // namespace capellini::fleet
