// Row partitioning for the multi-device fleet (src/fleet).
//
// Devices own CONTIGUOUS global row blocks. Contiguity is what keeps the
// sync-free scheme safe across devices: a row only depends on earlier rows,
// so every cross-partition dependency flows from a lower-numbered device to a
// higher-numbered one — the fleet schedules devices in index order and never
// needs a cycle-breaking protocol (Xie et al., arXiv 2012.06959, make the
// same structural choice for multi-GPU SpTRSV).
//
// Two strategies:
//  * kContiguousNnz — cuts at cumulative-weight quantiles (weight defaults
//    to per-row cost estimates; nnz-proportional), the balance baseline.
//  * kLevelAware    — starts from the balanced cuts, then slides each cut
//    within a window to minimize the number of cross-partition nonzeros
//    (boundary messages), preferring level-set boundaries on ties: a cut at
//    a level boundary means the consumer side starts an entire level after
//    the producer side, the cheapest synchronization shape.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/levels.h"
#include "matrix/csr.h"
#include "support/status.h"

namespace capellini::fleet {

enum class PartitionStrategy {
  kContiguousNnz = 0,
  kLevelAware,
};

const char* PartitionStrategyName(PartitionStrategy strategy);

/// K contiguous row blocks: device d owns global rows [cuts[d], cuts[d+1]).
/// cuts.size() == K + 1, cuts[0] == 0, cuts[K] == rows; empty blocks are
/// legal (K > rows leaves trailing devices with nothing to do).
struct Partition {
  std::vector<Idx> cuts;

  int num_devices() const { return static_cast<int>(cuts.size()) - 1; }
  Idx RowBegin(int device) const {
    return cuts[static_cast<std::size_t>(device)];
  }
  Idx RowEnd(int device) const {
    return cuts[static_cast<std::size_t>(device) + 1];
  }
  Idx RowCount(int device) const { return RowEnd(device) - RowBegin(device); }
  /// Device owning `row` (rows must be in [0, cuts.back())). With empty
  /// blocks the owner is the unique device whose range contains the row.
  int DeviceOf(Idx row) const;
};

/// Splits lower's rows into `num_devices` contiguous blocks. `row_weights`
/// (optional, size = rows) balances the cuts — the fleet passes per-row
/// shares of Solver::CostHintMs(); empty falls back to 1 + row nnz. The
/// level-aware strategy needs `levels` (pass Solver::Levels()); when null it
/// recomputes them.
Expected<Partition> PartitionRows(const Csr& lower, int num_devices,
                                  PartitionStrategy strategy,
                                  const LevelSets* levels = nullptr,
                                  std::span<const double> row_weights = {});

/// Number of strictly-lower nonzeros (r, c) whose producer c and consumer r
/// land on different devices — exactly the messages the comm model charges.
/// With one row per device every dependency crosses, so the count equals
/// DependencyDag::num_edges() (the partitioner test's identity).
std::int64_t CountCrossEdges(const Csr& lower, const Partition& partition);

}  // namespace capellini::fleet
