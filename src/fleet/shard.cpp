#include "fleet/shard.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace capellini::fleet {

ShardedSolveService::ShardedSolveService(const ShardOptions& options)
    : options_(options) {
  options_.num_devices = std::max(1, options_.num_devices);
  const int k = options_.num_devices;
  serve::RegistryOptions registry_options;
  registry_options.byte_budget = options_.device_byte_budget;
  registries_.reserve(static_cast<std::size_t>(k));
  services_.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    registries_.push_back(
        std::make_unique<serve::MatrixRegistry>(registry_options));
    services_.push_back(std::make_unique<serve::SolveService>(
        registries_.back().get(), options_.service));
  }
  placed_.resize(static_cast<std::size_t>(k));
}

void ShardedSolveService::ReconcileLedgerLocked(int device) {
  auto& ledger = placed_[static_cast<std::size_t>(device)];
  auto& registry = *registries_[static_cast<std::size_t>(device)];
  for (auto it = ledger.begin(); it != ledger.end();) {
    const serve::MatrixRegistry::EntryRef entry = registry.TryPeek(it->first);
    if (entry == nullptr) {
      it = ledger.erase(it);  // LRU-evicted: its cost left the device
    } else {
      it->second = entry->cost.EstimateMs();
      ++it;
    }
  }
}

Expected<ShardedHandle> ShardedSolveService::Register(
    Csr lower, std::string name, SolverOptions solver_options) {
  // Choose under the ledger lock so concurrent registrations don't all read
  // the same scores and pile onto one device. Reconciling first means the
  // score prices each device by what is RESIDENT there NOW (observed EWMA
  // corrections included), not by the sum of every hint ever placed.
  int best = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    double best_score = std::numeric_limits<double>::infinity();
    for (int d = 0; d < options_.num_devices; ++d) {
      ReconcileLedgerLocked(d);
      double placed = 0.0;
      for (const auto& [handle, cost] : placed_[static_cast<std::size_t>(d)]) {
        placed += cost;
      }
      const double score =
          services_[static_cast<std::size_t>(d)]->QueuedCostMs() + placed;
      if (score < best_score) {  // strict '<': ties go to the lowest index
        best_score = score;
        best = d;
      }
    }
  }
  auto handle_or = registries_[static_cast<std::size_t>(best)]->Register(
      std::move(lower), std::move(name), std::move(solver_options));
  if (!handle_or.ok()) return handle_or.status();
  // TryPeek: the ledger read must not promote the entry, count a cache hit,
  // or (if the entry somehow vanished already) count a miss. The entry is
  // fresh, so the estimate is the analytic seed.
  const serve::MatrixRegistry::EntryRef entry =
      registries_[static_cast<std::size_t>(best)]->TryPeek(*handle_or);
  if (entry != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    placed_[static_cast<std::size_t>(best)][*handle_or] =
        entry->cost.EstimateMs();
  }
  return ShardedHandle{best, *handle_or};
}

Expected<std::future<serve::ServeResult>> ShardedSolveService::Submit(
    const ShardedHandle& handle, std::vector<Val> b,
    serve::RequestOptions options) {
  if (handle.device < 0 || handle.device >= options_.num_devices) {
    return InvalidArgument("sharded handle names device " +
                           std::to_string(handle.device) + " of a " +
                           std::to_string(options_.num_devices) +
                           "-device fleet");
  }
  return services_[static_cast<std::size_t>(handle.device)]->Submit(
      handle.handle, std::move(b), options);
}

Expected<serve::UpdateReport> ShardedSolveService::ApplyDelta(
    const ShardedHandle& handle, const update::DeltaBatch& batch) {
  if (handle.device < 0 || handle.device >= options_.num_devices) {
    return InvalidArgument("sharded handle names device " +
                           std::to_string(handle.device) + " of a " +
                           std::to_string(options_.num_devices) +
                           "-device fleet");
  }
  auto& registry = *registries_[static_cast<std::size_t>(handle.device)];
  auto report = registry.ApplyDelta(handle.handle, batch);
  if (!report.ok()) return report.status();
  // The new epoch re-seeded its cost model from the patched analysis —
  // refresh the ledger so the next placement prices this device's new load.
  const serve::MatrixRegistry::EntryRef entry =
      registry.TryPeek(handle.handle);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& ledger = placed_[static_cast<std::size_t>(handle.device)];
  if (entry == nullptr) {
    ledger.erase(handle.handle);  // evicted while budgeting the new epoch
  } else {
    ledger[handle.handle] = entry->cost.EstimateMs();
  }
  return report;
}

void ShardedSolveService::Start() {
  for (auto& service : services_) service->Start();
}

void ShardedSolveService::Shutdown() {
  for (auto& service : services_) service->Shutdown();
}

double ShardedSolveService::QueuedCostMs(int device) const {
  return services_[static_cast<std::size_t>(device)]->QueuedCostMs();
}

double ShardedSolveService::PlacedCostMs(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double placed = 0.0;
  for (const auto& [handle, cost] : placed_[static_cast<std::size_t>(device)]) {
    placed += cost;
  }
  return placed;
}

}  // namespace capellini::fleet
