#include "fleet/shard.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace capellini::fleet {

ShardedSolveService::ShardedSolveService(const ShardOptions& options)
    : options_(options) {
  options_.num_devices = std::max(1, options_.num_devices);
  const int k = options_.num_devices;
  serve::RegistryOptions registry_options;
  registry_options.byte_budget = options_.device_byte_budget;
  registries_.reserve(static_cast<std::size_t>(k));
  services_.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    registries_.push_back(
        std::make_unique<serve::MatrixRegistry>(registry_options));
    services_.push_back(std::make_unique<serve::SolveService>(
        registries_.back().get(), options_.service));
  }
  placed_cost_ms_.assign(static_cast<std::size_t>(k), 0.0);
}

Expected<ShardedHandle> ShardedSolveService::Register(
    Csr lower, std::string name, SolverOptions solver_options) {
  // Choose under the ledger lock so concurrent registrations don't all read
  // the same scores and pile onto one device.
  int best = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    double best_score = std::numeric_limits<double>::infinity();
    for (int d = 0; d < options_.num_devices; ++d) {
      const double score =
          services_[static_cast<std::size_t>(d)]->QueuedCostMs() +
          placed_cost_ms_[static_cast<std::size_t>(d)];
      if (score < best_score) {  // strict '<': ties go to the lowest index
        best_score = score;
        best = d;
      }
    }
  }
  auto handle_or = registries_[static_cast<std::size_t>(best)]->Register(
      std::move(lower), std::move(name), std::move(solver_options));
  if (!handle_or.ok()) return handle_or.status();
  // Peek (not Acquire): the ledger read must not promote the entry or count
  // a cache hit. The entry is fresh, so the estimate is the analytic seed.
  auto entry_or = registries_[static_cast<std::size_t>(best)]->Peek(*handle_or);
  if (entry_or.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    placed_cost_ms_[static_cast<std::size_t>(best)] +=
        (*entry_or)->cost.EstimateMs();
  }
  return ShardedHandle{best, *handle_or};
}

Expected<std::future<serve::ServeResult>> ShardedSolveService::Submit(
    const ShardedHandle& handle, std::vector<Val> b,
    serve::RequestOptions options) {
  if (handle.device < 0 || handle.device >= options_.num_devices) {
    return InvalidArgument("sharded handle names device " +
                           std::to_string(handle.device) + " of a " +
                           std::to_string(options_.num_devices) +
                           "-device fleet");
  }
  return services_[static_cast<std::size_t>(handle.device)]->Submit(
      handle.handle, std::move(b), options);
}

void ShardedSolveService::Start() {
  for (auto& service : services_) service->Start();
}

void ShardedSolveService::Shutdown() {
  for (auto& service : services_) service->Shutdown();
}

double ShardedSolveService::QueuedCostMs(int device) const {
  return services_[static_cast<std::size_t>(device)]->QueuedCostMs();
}

double ShardedSolveService::PlacedCostMs(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return placed_cost_ms_[static_cast<std::size_t>(device)];
}

}  // namespace capellini::fleet
