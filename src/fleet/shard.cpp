#include "fleet/shard.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace capellini::fleet {

ShardedSolveService::ShardedSolveService(const ShardOptions& options)
    : options_(options),
      health_(std::max(1, options.num_devices), options.health) {
  options_.num_devices = std::max(1, options_.num_devices);
  const int k = options_.num_devices;
  serve::RegistryOptions registry_options;
  registry_options.byte_budget = options_.device_byte_budget;
  registries_.reserve(static_cast<std::size_t>(k));
  services_.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    registries_.push_back(
        std::make_unique<serve::MatrixRegistry>(registry_options));
    serve::ServiceOptions service_options = options_.service;
    if (options_.health.enabled()) {
      // Feed the device's terminal device-path outcomes to the tracker —
      // exactly the breaker's signal set (host-fallback serves excluded).
      service_options.outcome_listener = [this, d](serve::MatrixHandle,
                                                   StatusCode code) {
        health_.Report(d, code == StatusCode::kDeadlock ||
                              code == StatusCode::kDataLoss);
      };
    }
    services_.push_back(std::make_unique<serve::SolveService>(
        registries_.back().get(), service_options));
  }
  placed_.resize(static_cast<std::size_t>(k));
}

void ShardedSolveService::ReconcileLedgerLocked(int device) {
  auto& ledger = placed_[static_cast<std::size_t>(device)];
  auto& registry = *registries_[static_cast<std::size_t>(device)];
  for (auto it = ledger.begin(); it != ledger.end();) {
    const serve::MatrixRegistry::EntryRef entry = registry.TryPeek(it->first);
    if (entry == nullptr) {
      it = ledger.erase(it);  // LRU-evicted: its cost left the device
    } else {
      it->second = entry->cost.EstimateMs();
      ++it;
    }
  }
}

Expected<ShardedHandle> ShardedSolveService::Register(
    Csr lower, std::string name, SolverOptions solver_options) {
  // Choose under the ledger lock so concurrent registrations don't all read
  // the same scores and pile onto one device. Reconciling first means the
  // score prices each device by what is RESIDENT there NOW (observed EWMA
  // corrections included), not by the sum of every hint ever placed.
  // Quarantined devices are skipped — placing fresh matrices on a device
  // that fails every solve only grows the failover map — unless nothing
  // healthy remains (then all devices compete and the health tracker's
  // probes decide recovery).
  int best = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool any_healthy = false;
    for (int d = 0; d < options_.num_devices; ++d) {
      if (health_.state(d) == DeviceState::kHealthy) {
        any_healthy = true;
        break;
      }
    }
    double best_score = std::numeric_limits<double>::infinity();
    for (int d = 0; d < options_.num_devices; ++d) {
      if (any_healthy && health_.state(d) != DeviceState::kHealthy) continue;
      ReconcileLedgerLocked(d);
      double placed = 0.0;
      for (const auto& [handle, cost] : placed_[static_cast<std::size_t>(d)]) {
        placed += cost;
      }
      const double score =
          services_[static_cast<std::size_t>(d)]->QueuedCostMs() + placed;
      if (score < best_score) {  // strict '<': ties go to the lowest index
        best_score = score;
        best = d;
      }
    }
  }
  auto handle_or = registries_[static_cast<std::size_t>(best)]->Register(
      std::move(lower), std::move(name), std::move(solver_options));
  if (!handle_or.ok()) return handle_or.status();
  // TryPeek: the ledger read must not promote the entry, count a cache hit,
  // or (if the entry somehow vanished already) count a miss. The entry is
  // fresh, so the estimate is the analytic seed.
  const serve::MatrixRegistry::EntryRef entry =
      registries_[static_cast<std::size_t>(best)]->TryPeek(*handle_or);
  if (entry != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    placed_[static_cast<std::size_t>(best)][*handle_or] =
        entry->cost.EstimateMs();
  }
  return ShardedHandle{best, *handle_or};
}

Expected<ShardedHandle> ShardedSolveService::FailoverTarget(
    const ShardedHandle& handle) {
  // Survivor: the lowest-indexed healthy device. Lowest-index (not
  // least-loaded) keeps the choice a pure function of the health states, so
  // replayed traffic fails over to the same place.
  int survivor = -1;
  for (int d = 0; d < options_.num_devices; ++d) {
    if (d != handle.device && health_.state(d) == DeviceState::kHealthy) {
      survivor = d;
      break;
    }
  }
  if (survivor < 0) {
    return ResourceExhausted(
        "every fleet device is quarantined; no failover target for device " +
        std::to_string(handle.device));
  }

  const std::pair<int, serve::MatrixHandle> key{handle.device, handle.handle};
  // mutex_ is held across the whole check-register-insert sequence: two
  // concurrent deflected submits for the same key must not both miss the
  // cache and double-register the matrix on the survivor (duplicate budget
  // charge, double-counted failover_registrations_). Lock ordering stays
  // ledger -> registry, the documented direction.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = failover_.find(key);
  if (it != failover_.end()) {
    if (it->second.device == survivor &&
        registries_[static_cast<std::size_t>(survivor)]->Contains(
            it->second.handle)) {
      return it->second;
    }
    // The cached copy is stale: LRU-evicted, or stranded on a device that is
    // no longer the survivor. Drop the superseded registration and its
    // ledger entry so the old device's byte budget and placement score stop
    // charging for it (in-flight solves pinned their EntryRef; Evict only
    // drops the registry's reference).
    registries_[static_cast<std::size_t>(it->second.device)]->Evict(
        it->second.handle);
    placed_[static_cast<std::size_t>(it->second.device)].erase(
        it->second.handle);
    failover_.erase(it);
  }

  // First deflected submit for this handle (or the cached copy was stale):
  // copy the matrix out of the quarantined device's registry — its HOST-side
  // state is intact; only its device path is sick — and register on the
  // survivor. The device-specific seams (fault injector, trace sink) do NOT
  // follow the matrix: they model the OWNER device's hardware, and carrying
  // them over would poison the survivor.
  const serve::MatrixRegistry::EntryRef entry =
      registries_[static_cast<std::size_t>(handle.device)]->TryPeek(
          handle.handle);
  if (entry == nullptr) {
    return NotFound("sharded handle " + std::to_string(handle.handle) +
                    " is gone from quarantined device " +
                    std::to_string(handle.device));
  }
  SolverOptions survivor_options = entry->solver.options();
  survivor_options.kernel_options.fault_injector = nullptr;
  survivor_options.kernel_options.trace_sink = nullptr;
  auto registered = registries_[static_cast<std::size_t>(survivor)]->Register(
      entry->solver.matrix(), entry->name + "@failover",
      std::move(survivor_options));
  if (!registered.ok()) return registered.status();

  const ShardedHandle target{survivor, *registered};
  ++failover_registrations_;
  failover_[key] = target;
  const serve::MatrixRegistry::EntryRef placed_entry =
      registries_[static_cast<std::size_t>(survivor)]->TryPeek(*registered);
  if (placed_entry != nullptr) {
    placed_[static_cast<std::size_t>(survivor)][*registered] =
        placed_entry->cost.EstimateMs();
  }
  return target;
}

Expected<std::future<serve::ServeResult>> ShardedSolveService::Submit(
    const ShardedHandle& handle, std::vector<Val> b,
    serve::RequestOptions options) {
  if (handle.device < 0 || handle.device >= options_.num_devices) {
    return InvalidArgument("sharded handle names device " +
                           std::to_string(handle.device) + " of a " +
                           std::to_string(options_.num_devices) +
                           "-device fleet");
  }
  if (health_.enabled()) {
    switch (health_.AdmitFor(handle.device)) {
      case DeviceHealthTracker::Admit::kAllow:
        break;
      case DeviceHealthTracker::Admit::kProbe: {
        // The probe runs the normal path on the owner; the outcome listener
        // resolves it (reinstate or re-quarantine). If the submit fails
        // admission (queue full, evicted handle, shutdown) no outcome will
        // ever arrive — abort the probe so the device falls back to
        // quarantine instead of sticking in kProbing forever. (Outcomes
        // lost later — an expired deadline, a per-handle breaker deflection
        // — are covered by the tracker's probe_timeout.)
        auto probe = services_[static_cast<std::size_t>(handle.device)]
                         ->Submit(handle.handle, std::move(b), options);
        if (!probe.ok()) health_.AbortProbe(handle.device);
        return probe;
      }
      case DeviceHealthTracker::Admit::kDeflect: {
        auto target = FailoverTarget(handle);
        if (!target.ok()) return target.status();
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++failover_submits_;
        }
        return services_[static_cast<std::size_t>(target->device)]->Submit(
            target->handle, std::move(b), options);
      }
    }
  }
  return services_[static_cast<std::size_t>(handle.device)]->Submit(
      handle.handle, std::move(b), options);
}

Expected<serve::UpdateReport> ShardedSolveService::ApplyDelta(
    const ShardedHandle& handle, const update::DeltaBatch& batch) {
  if (handle.device < 0 || handle.device >= options_.num_devices) {
    return InvalidArgument("sharded handle names device " +
                           std::to_string(handle.device) + " of a " +
                           std::to_string(options_.num_devices) +
                           "-device fleet");
  }
  auto& registry = *registries_[static_cast<std::size_t>(handle.device)];
  auto report = registry.ApplyDelta(handle.handle, batch);
  if (!report.ok()) return report.status();
  // The new epoch re-seeded its cost model from the patched analysis —
  // refresh the ledger so the next placement prices this device's new load.
  const serve::MatrixRegistry::EntryRef entry =
      registry.TryPeek(handle.handle);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& ledger = placed_[static_cast<std::size_t>(handle.device)];
  if (entry == nullptr) {
    ledger.erase(handle.handle);  // evicted while budgeting the new epoch
  } else {
    ledger[handle.handle] = entry->cost.EstimateMs();
  }
  // A failover copy on a survivor is now one epoch stale — drop it (and its
  // ledger entry) so the next deflected submit re-registers the updated
  // factor and the survivor's budget stops charging for the dead epoch.
  // In-flight solves pinned their EntryRef, so eviction cannot hurt them.
  auto failed_over = failover_.find({handle.device, handle.handle});
  if (failed_over != failover_.end()) {
    registries_[static_cast<std::size_t>(failed_over->second.device)]->Evict(
        failed_over->second.handle);
    placed_[static_cast<std::size_t>(failed_over->second.device)].erase(
        failed_over->second.handle);
    failover_.erase(failed_over);
  }
  return report;
}

void ShardedSolveService::Start() {
  for (auto& service : services_) service->Start();
}

void ShardedSolveService::Shutdown() {
  for (auto& service : services_) service->Shutdown();
}

double ShardedSolveService::QueuedCostMs(int device) const {
  return services_[static_cast<std::size_t>(device)]->QueuedCostMs();
}

double ShardedSolveService::PlacedCostMs(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double placed = 0.0;
  for (const auto& [handle, cost] : placed_[static_cast<std::size_t>(device)]) {
    placed += cost;
  }
  return placed;
}

ShardHealthStats ShardedSolveService::health_stats() const {
  ShardHealthStats stats;
  stats.health = health_.snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  stats.failover_submits = failover_submits_;
  stats.failover_registrations = failover_registrations_;
  return stats;
}

}  // namespace capellini::fleet
