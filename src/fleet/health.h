// Per-DEVICE health tracking for the sharded fleet (DESIGN.md §4j).
//
// The serve layer's circuit breaker is per HANDLE: it protects one matrix
// whose solves keep failing. A dying device fails every handle placed on it,
// and the fleet needs to stop routing there wholesale — that is this
// tracker's job. It mirrors the breaker's semantics one level up:
//
//   kHealthy --(threshold consecutive failures, or a full window at
//               >= rate failures)--> kQuarantined
//   kQuarantined --(probe_cooldown deflections)--> kProbing (one submit is
//               let through to the device)
//   kProbing --(probe succeeds)--> kHealthy   (reinstatement)
//           --(probe fails)-----> kQuarantined (fresh cooldown)
//
// Outcomes arrive through serve::ServiceOptions::outcome_listener, so the
// tracker sees exactly the device-path signals the breaker sees (kDeadlock,
// kDataLoss = failure; host-fallback serves excluded). All transitions are
// driven by call counts, never wall clock — replayed traffic takes the
// identical quarantine/probe/reinstate path, which bench_fleet_faults gates.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "support/status.h"

namespace capellini::fleet {

struct HealthOptions {
  /// Consecutive device-path failures that quarantine a device. 0 disables
  /// the consecutive mode.
  int threshold = 0;
  /// Sliding-window mode: quarantine when the last `window` outcomes are all
  /// recorded and at least `rate` of them failed. 0 disables window mode.
  /// Either mode's trip quarantines; both may be enabled.
  int window = 0;
  double rate = 0.5;
  /// Deflected submits while quarantined before one probe is let through.
  /// Counted in requests (deterministic for replays), like the breaker's
  /// cooldown.
  int probe_cooldown = 4;
  /// Deflections observed while a probe is in flight before the probe is
  /// declared lost and the device falls back to kQuarantined (fresh
  /// cooldown). A probe's outcome normally arrives through the outcome
  /// listener, but some serve paths terminate a request without one (expired
  /// deadline, per-handle breaker short-circuit/fallback) — without a
  /// timeout the device would stick in kProbing forever, deflecting
  /// everything and never probing again. Counted in requests, never wall
  /// clock (deterministic for replays). 0 disables the timeout.
  int probe_timeout = 16;

  bool enabled() const { return threshold > 0 || window > 0; }
};

enum class DeviceState { kHealthy, kQuarantined, kProbing };

const char* DeviceStateName(DeviceState state);

/// Aggregate lifecycle counters plus the per-device states — the fleet's
/// degraded-mode dashboard (ShardedSolveService::health_snapshot).
struct HealthSnapshot {
  std::vector<DeviceState> states;
  std::uint64_t quarantines = 0;      // kHealthy/kProbing -> kQuarantined
  std::uint64_t reinstatements = 0;   // successful probes
  std::uint64_t probes = 0;           // submits admitted as probes
  std::uint64_t probe_failures = 0;   // probes that re-quarantined
  /// Probes whose outcome never arrived: aborted synchronously (the probe
  /// submit failed admission) or timed out after probe_timeout deflections.
  /// The device returns to kQuarantined with a fresh cooldown.
  std::uint64_t probe_aborts = 0;
  std::uint64_t deflections = 0;      // submits turned away from the device
  int quarantined_devices() const {
    int n = 0;
    for (const DeviceState s : states) {
      if (s != DeviceState::kHealthy) ++n;
    }
    return n;
  }
};

class DeviceHealthTracker {
 public:
  DeviceHealthTracker(int num_devices, HealthOptions options);

  /// What a submit routed to `device` should do: run there (kAllow), run
  /// there as the quarantine's half-open probe (kProbe), or be routed to a
  /// survivor (kDeflect). Advances the cooldown counter on deflections, so
  /// the decision sequence is a pure function of the call sequence.
  enum class Admit { kAllow, kProbe, kDeflect };
  Admit AdmitFor(int device);

  /// One terminal device-path outcome on `device` (failure = kDeadlock or
  /// kDataLoss, the breaker's failure set). Resolves an in-flight probe.
  void Report(int device, bool failure);

  /// Abandons an in-flight probe whose outcome can never arrive (the probe's
  /// submit failed admission before anything was enqueued): kProbing ->
  /// kQuarantined with a fresh cooldown, counted in probe_aborts. No-op in
  /// any other state.
  void AbortProbe(int device);

  DeviceState state(int device) const;
  HealthSnapshot snapshot() const;
  const HealthOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled(); }

 private:
  struct PerDevice {
    DeviceState state = DeviceState::kHealthy;
    int consecutive_failures = 0;
    int quarantine_skips = 0;
    /// Deflections observed since the in-flight probe was admitted; at
    /// options_.probe_timeout the probe is declared lost (kProbing only).
    int probe_deflections = 0;
    /// Last `window` outcomes (true = failure), oldest first; window mode
    /// only. Cleared on every state change — each quarantine needs fresh
    /// evidence, like the breaker.
    std::vector<bool> window;
  };

  HealthOptions options_;
  mutable std::mutex mutex_;
  std::vector<PerDevice> devices_;
  HealthSnapshot counters_;  // states field unused here; filled in snapshot()
};

}  // namespace capellini::fleet
