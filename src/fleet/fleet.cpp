#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <span>
#include <utility>

#include "sim/fault.h"
#include "support/thread_pool.h"

namespace capellini::fleet {

DeviceFleet::DeviceFleet(const FleetConfig& config) : config_(config) {
  config_.num_devices = std::max(1, config_.num_devices);
  const int k = config_.num_devices;
  memories_.reserve(static_cast<std::size_t>(k));
  machines_.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    memories_.push_back(std::make_unique<sim::DeviceMemory>());
    machines_.push_back(
        std::make_unique<sim::Machine>(config_.device, memories_.back().get()));
  }
  sinks_.assign(static_cast<std::size_t>(k), nullptr);
  injectors_.assign(static_cast<std::size_t>(k), nullptr);
}

namespace {

/// One remote row a device waits on: producer device + global row.
struct Need {
  int src = 0;
  Idx row = 0;
};

/// What a device task leaves behind for its consumers.
struct Outcome {
  Status status;
  std::vector<Val> x;                        // full-length device image
  std::vector<std::uint64_t> publish_cycles; // per local row
  /// The task reached SolveRangeOnDevice (false = it bailed before the
  /// launch: upstream failure or an unpublished remote row). Recovery treats
  /// un-launched failures as upstream-induced and retries the owner first.
  bool launched = false;
};

}  // namespace

Expected<FleetResult> FleetSolver::Solve(const Solver& solver,
                                         std::span<const Val> b) const {
  const Csr& lower = solver.matrix();
  const Idx m = lower.rows();
  if (m == 0) return InvalidArgument("empty system");
  if (b.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("b has the wrong size");
  }
  const FleetConfig& config = fleet_->config();
  if (config.algorithm != kernels::DeviceAlgorithm::kCapelliniTwoPhase &&
      config.algorithm != kernels::DeviceAlgorithm::kCapelliniWritingFirst) {
    return InvalidArgument(
        "fleet solves need a Capellini thread-per-row algorithm");
  }
  const int k = config.num_devices;

  // Balance weights: each row's share of the solver's a-priori cost estimate,
  // proportional to 1 + nnz (the same shape CostHintMs itself integrates).
  const double cost_hint = solver.CostHintMs();
  const double denom =
      static_cast<double>(m) + static_cast<double>(lower.nnz());
  std::vector<double> weights(static_cast<std::size_t>(m));
  for (Idx r = 0; r < m; ++r) {
    weights[static_cast<std::size_t>(r)] =
        cost_hint * (1.0 + static_cast<double>(lower.RowLen(r))) / denom;
  }

  auto partition_or = PartitionRows(lower, k, config.strategy,
                                    &solver.Levels(), weights);
  if (!partition_or.ok()) return partition_or.status();

  FleetResult result;
  result.partition = std::move(*partition_or);
  const Partition& part = result.partition;

  // Cross-partition needs: device d waits on every remote row referenced by
  // its block. Deduplicated per (row, consumer device) — the consumer fetches
  // x_c once, however many local rows read it — and sorted by (src, row),
  // which fixes the per-link delivery order and with it every arrival cycle,
  // independent of host threading.
  std::vector<std::vector<Need>> needs(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    const Idx begin = part.RowBegin(d);
    std::vector<Idx> remote;
    for (Idx r = begin; r < part.RowEnd(d); ++r) {
      const Idx row_begin = lower.row_ptr()[static_cast<std::size_t>(r)];
      const Idx row_end = lower.row_ptr()[static_cast<std::size_t>(r) + 1];
      for (Idx j = row_begin; j < row_end; ++j) {
        const Idx col = lower.col_idx()[static_cast<std::size_t>(j)];
        if (col < begin) remote.push_back(col);
      }
    }
    std::sort(remote.begin(), remote.end());
    remote.erase(std::unique(remote.begin(), remote.end()), remote.end());
    needs[static_cast<std::size_t>(d)].reserve(remote.size());
    for (const Idx row : remote) {
      needs[static_cast<std::size_t>(d)].push_back(
          Need{part.DeviceOf(row), row});
    }
  }

  std::vector<Outcome> outcomes(static_cast<std::size_t>(k));
  std::vector<DeviceStats> dstats(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    // A task that dies before publishing its outcome must read as failed,
    // not as a clean empty device.
    outcomes[static_cast<std::size_t>(d)].status =
        InternalError("device task did not complete");
    dstats[static_cast<std::size_t>(d)].status =
        outcomes[static_cast<std::size_t>(d)].status;
  }
  std::vector<std::promise<void>> done(static_cast<std::size_t>(k));
  std::vector<std::shared_future<void>> done_futures;
  done_futures.reserve(static_cast<std::size_t>(k));
  for (auto& promise : done) done_futures.push_back(promise.get_future().share());

  CommModel comm(config.comm, k);

  // Task d blocks only on producers d' < d; the pool picks tasks up in FIFO
  // order, so started tasks always form a prefix of the submission order and
  // the lowest unfinished task has all producers finished — progress is
  // guaranteed for any pool size >= 1.
  ThreadPool pool(config.host_threads > 0 ? config.host_threads : k);
  std::vector<std::future<void>> tasks;
  tasks.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    tasks.push_back(pool.Submit([&, d] {
      Outcome& out = outcomes[static_cast<std::size_t>(d)];
      DeviceStats& ds = dstats[static_cast<std::size_t>(d)];
      struct DoneSignal {
        std::promise<void>* promise;
        ~DoneSignal() { promise->set_value(); }
      } signal{&done[static_cast<std::size_t>(d)]};

      ds.row_begin = part.RowBegin(d);
      ds.row_end = part.RowEnd(d);
      ds.nnz = lower.row_ptr()[static_cast<std::size_t>(ds.row_end)] -
               lower.row_ptr()[static_cast<std::size_t>(ds.row_begin)];

      const std::vector<Need>& my_needs = needs[static_cast<std::size_t>(d)];
      for (const Need& need : my_needs) {
        done_futures[static_cast<std::size_t>(need.src)].wait();
      }
      for (const Need& need : my_needs) {
        const Outcome& src = outcomes[static_cast<std::size_t>(need.src)];
        if (!src.status.ok()) {
          out.status = DeadlockError(
              "fleet device " + std::to_string(d) + ": upstream device " +
              std::to_string(need.src) + " failed: " + src.status.message());
          ds.status = out.status;
          return;
        }
      }

      std::vector<kernels::RangeArrival> arrivals;
      arrivals.reserve(my_needs.size());
      for (const Need& need : my_needs) {
        const Outcome& src = outcomes[static_cast<std::size_t>(need.src)];
        const std::uint64_t published =
            src.publish_cycles[static_cast<std::size_t>(
                need.row - part.RowBegin(need.src))];
        if (published == UINT64_MAX) {
          // The producer finished but this row's flag never landed (dropped
          // publish). On hardware the consumer would spin forever; fail fast
          // with the same status the watchdog would eventually report.
          out.status = DeadlockError(
              "fleet device " + std::to_string(d) + ": row " +
              std::to_string(need.row) + " was never published by device " +
              std::to_string(need.src) + " (dropped publish?)");
          ds.status = out.status;
          return;
        }
        const std::uint64_t arrival = comm.Deliver(need.src, d, published);
        arrivals.push_back(kernels::RangeArrival{
            need.row, src.x[static_cast<std::size_t>(need.row)], arrival});
        ++ds.in_messages;
        ds.comm_bytes_in += config.comm.bytes_per_message;
        ds.comm_delay_cycles += arrival - published;
        ds.last_arrival_cycle = std::max(ds.last_arrival_cycle, arrival);
      }

      if (ds.row_begin == ds.row_end) {  // empty block (K > rows)
        out.x.assign(static_cast<std::size_t>(m), 0.0);
        out.publish_cycles.clear();
        out.status = Status::Ok();
        ds.status = Status::Ok();
        return;
      }

      kernels::SolveOptions options;
      options.threads_per_block = config.threads_per_block;
      options.trace_sink = fleet_->trace_sink(d);
      options.fault_injector = fleet_->fault_injector(d);
      // Machine hooks see LOCAL tids; plans are written in global rows. The
      // offset is RAII-scoped (like the machine's external-store clear) so a
      // later single-device run on the same injector never inherits it.
      sim::ScopedTidOffset tid_guard(options.fault_injector, ds.row_begin);
      out.launched = true;
      const auto host_begin = std::chrono::steady_clock::now();
      auto range = kernels::SolveRangeOnDevice(
          config.algorithm, lower, b, ds.row_begin, ds.row_end, arrivals,
          fleet_->machine(d), fleet_->memory(d), options);
      ds.host_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - host_begin)
                       .count();
      if (!range.ok()) {
        out.status = range.status();
        ds.status = out.status;
        return;
      }
      out.x = std::move(range->x);
      out.publish_cycles = std::move(range->publish_cycles);
      out.status = Status::Ok();
      ds.launch = range->stats;
      ds.cycles = range->stats.cycles;
      ds.exec_ms = range->exec_ms;
      ds.boundary_stall_cycles = std::min(ds.cycles, ds.last_arrival_cycle);
      ds.status = Status::Ok();
    }));
  }
  for (auto& task : tasks) task.get();

  // Outbound attribution (from the static needs lists — a consumer that
  // failed before delivery still *required* the rows).
  for (int d = 0; d < k; ++d) {
    for (const Need& need : needs[static_cast<std::size_t>(d)]) {
      ++dstats[static_cast<std::size_t>(need.src)].out_messages;
    }
  }

  // First-pass launch outcomes, frozen before recovery mutates anything:
  // makespan attribution keys off these, and survivor designation refines
  // them with per-range verify outcomes (survivor_ok below). A failed launch
  // has no cycle count (the watchdog returns an error instead of stats), so
  // it must not participate in the makespan argmax.
  std::vector<bool> launch_ok(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    launch_ok[static_cast<std::size_t>(d)] =
        outcomes[static_cast<std::size_t>(d)].status.ok();
  }

  // --- Failover (DESIGN.md §4j) --------------------------------------------
  // Runs serially in device-index order, so every recovered partition's
  // consumers see its publishes before their own recovery starts. All
  // decisions are pure functions of (fault stream, outcome history): same
  // seed => identical ladder. Zero-fault solves never take this branch.
  bool recovery_ran = false;
  if (config.recovery.enabled) {
    // The recovered global image. Rows land here as partitions are accepted
    // (first pass or ladder), and arrivals for re-executions read from it.
    std::vector<Val> current(static_cast<std::size_t>(m), 0.0);
    // Separate comm instance: recovery deliveries must not perturb the
    // first-pass per-link serialization state or the fleet traffic totals.
    CommModel recovery_comm(config.comm, k);

    // Survivor eligibility: a completed launch whose OWN range fails
    // verification is demonstrably corrupting hardware — designating it to
    // re-execute someone else's rows would just burn a ladder rung. Checked
    // up front against the first-pass image (every launch_ok partition's own
    // x): a launch_ok device's remote reads all come from launch_ok
    // producers (an upstream failure fails the consumer before launch), so
    // the image is complete wherever this residual looks. A device whose
    // values are wrong only because a corrupt UPSTREAM poisoned its inputs
    // passes this check — its hardware is fine and it stays eligible, even
    // though the sequential scan below will still recover its range against
    // the repaired image.
    std::vector<bool> survivor_ok = launch_ok;
    if (config.recovery.verify_partitions) {
      std::vector<Val> first_pass(static_cast<std::size_t>(m), 0.0);
      for (int d = 0; d < k; ++d) {
        if (!launch_ok[static_cast<std::size_t>(d)]) continue;
        const Idx begin = part.RowBegin(d);
        const Idx end = part.RowEnd(d);
        std::copy(outcomes[static_cast<std::size_t>(d)].x.begin() + begin,
                  outcomes[static_cast<std::size_t>(d)].x.begin() + end,
                  first_pass.begin() + begin);
      }
      for (int d = 0; d < k; ++d) {
        if (!launch_ok[static_cast<std::size_t>(d)]) continue;
        const Idx begin = part.RowBegin(d);
        const Idx end = part.RowEnd(d);
        if (begin == end) continue;
        const Verification check = VerifyRange(lower, b, first_pass, begin,
                                               end, config.recovery.verify);
        if (!check.passed) survivor_ok[static_cast<std::size_t>(d)] = false;
      }
    }

    // Can partition d's device rungs get arrivals at all? False when an
    // upstream publish hole survives (an OK upstream launch whose flag store
    // was dropped): device rungs are impossible then, but the host rung
    // needs no arrivals. Pure check — no comm state is touched, so the
    // per-attempt pricing below starts from a clean ledger.
    auto arrivals_available = [&](int d) -> bool {
      for (const Need& need : needs[static_cast<std::size_t>(d)]) {
        const Outcome& src = outcomes[static_cast<std::size_t>(need.src)];
        if (!src.status.ok()) return false;
        if (src.publish_cycles[static_cast<std::size_t>(
                need.row - part.RowBegin(need.src))] == UINT64_MAX) {
          return false;
        }
      }
      return true;
    };

    // Arrivals for a re-execution of partition d ON `executor`, from the
    // recovered outcomes. Priced on the src -> executor link — the device
    // that actually spins on the flags — not the failed owner's, so a
    // survivor re-execution charges the survivor's ingress. Built per
    // attempt: each rung's executor pays its own delivery.
    auto build_arrivals = [&](int d, int executor,
                              std::vector<kernels::RangeArrival>& arrivals) {
      arrivals.clear();
      for (const Need& need : needs[static_cast<std::size_t>(d)]) {
        const Outcome& src = outcomes[static_cast<std::size_t>(need.src)];
        const std::uint64_t published =
            src.publish_cycles[static_cast<std::size_t>(
                need.row - part.RowBegin(need.src))];
        arrivals.push_back(kernels::RangeArrival{
            need.row, current[static_cast<std::size_t>(need.row)],
            recovery_comm.Deliver(need.src, executor, published)});
      }
    };

    // One ladder rung on `executor`'s machine. The executor's own injector
    // stays attached (a re-execution is still a device launch and still
    // subject to that device's faults) with the offset scoped to the failed
    // range, so global-row fault plans keep their meaning.
    auto attempt_on_device = [&](int executor, Idx begin, Idx end,
                                 std::span<const kernels::RangeArrival> arrivals,
                                 Outcome& out) -> Status {
      kernels::SolveOptions options;
      options.threads_per_block = config.threads_per_block;
      options.trace_sink = fleet_->trace_sink(executor);
      options.fault_injector = fleet_->fault_injector(executor);
      sim::ScopedTidOffset tid_guard(options.fault_injector, begin);
      auto range = kernels::SolveRangeOnDevice(
          config.algorithm, lower, b, begin, end, arrivals,
          fleet_->machine(executor), fleet_->memory(executor), options);
      if (!range.ok()) return range.status();
      for (const std::uint64_t cycle : range->publish_cycles) {
        if (cycle == UINT64_MAX) {
          return DeadlockError(
              "recovery re-execution dropped a publish; escalating");
        }
      }
      out.x = std::move(range->x);
      out.publish_cycles = std::move(range->publish_cycles);
      return Status::Ok();
    };

    for (int d = 0; d < k; ++d) {
      const Idx begin = part.RowBegin(d);
      const Idx end = part.RowEnd(d);
      if (begin == end) continue;  // empty block: nothing to verify or redo
      Outcome& out = outcomes[static_cast<std::size_t>(d)];
      DeviceStats& ds = dstats[static_cast<std::size_t>(d)];

      bool healthy = out.status.ok();
      if (healthy) {
        std::copy(out.x.begin() + begin, out.x.begin() + end,
                  current.begin() + begin);
        if (config.recovery.verify_partitions) {
          const Verification check = VerifyRange(lower, b, current, begin, end,
                                                 config.recovery.verify);
          if (!check.passed) {
            // Completed launch, corrupted values (e.g. a bit-flipped store):
            // the first pass "succeeded" but the range is wrong. Surface the
            // real outcome in the device stats and run the ladder.
            healthy = false;
            out.status = DataLoss("fleet device " + std::to_string(d) +
                                  ": partition failed verification");
            ds.status = out.status;
          }
        }
      }
      if (healthy) continue;

      recovery_ran = true;
      FailoverRecord record;
      record.device = d;
      record.rows = end - begin;
      record.upstream_induced = !out.launched;
      record.residual = std::numeric_limits<double>::infinity();
      ds.failed_over = true;

      const bool have_arrivals = arrivals_available(d);

      // Device rungs: the owner first when it never got to launch (its
      // machine is presumed healthy — the failure came from upstream), then
      // the designated survivor: the lowest-indexed OTHER device whose own
      // first-pass launch succeeded AND verified (survivor_ok).
      std::vector<int> executors;
      if (have_arrivals) {
        if (record.upstream_induced) executors.push_back(d);
        for (int s = 0; s < k; ++s) {
          if (s != d && survivor_ok[static_cast<std::size_t>(s)]) {
            executors.push_back(s);
            break;
          }
        }
      }

      bool accepted = false;
      std::vector<kernels::RangeArrival> arrivals;
      for (const int executor : executors) {
        record.attempts.push_back(executor);
        ++ds.recovery_attempts;
        result.stats.rows_reexecuted += static_cast<std::uint64_t>(record.rows);
        build_arrivals(d, executor, arrivals);
        const Status attempt =
            attempt_on_device(executor, begin, end, arrivals, out);
        if (!attempt.ok()) continue;
        std::copy(out.x.begin() + begin, out.x.begin() + end,
                  current.begin() + begin);
        const Verification check = VerifyRange(lower, b, current, begin, end,
                                               config.recovery.verify);
        if (check.passed) {
          accepted = true;
          record.recovered_on = executor;
          record.residual = check.residual;
          ++result.stats.device_rung_recoveries;
          break;
        }
      }

      if (!accepted) {
        // Host rung: serial substitution over just the failed rows against
        // the recovered image. Immune to device faults by construction; its
        // publishes are checkpointed at cycle 0 for downstream re-executions.
        record.attempts.push_back(kHostExecutor);
        ++ds.recovery_attempts;
        result.stats.rows_reexecuted += static_cast<std::uint64_t>(record.rows);
        const std::span<const Idx> row_ptr = lower.row_ptr();
        const std::span<const Idx> col_idx = lower.col_idx();
        const std::span<const Val> vals = lower.val();
        for (Idx r = begin; r < end; ++r) {
          // Same accumulation order as the device kernels and SolveSerial
          // (left_sum first, then one subtract-and-divide), so a host-rung
          // recovery reproduces the device solution bit for bit.
          Val left_sum = 0.0;
          Val diag = 1.0;
          for (Idx j = row_ptr[static_cast<std::size_t>(r)];
               j < row_ptr[static_cast<std::size_t>(r) + 1]; ++j) {
            const Idx c = col_idx[static_cast<std::size_t>(j)];
            if (c == r) {
              diag = vals[static_cast<std::size_t>(j)];
            } else {
              left_sum += vals[static_cast<std::size_t>(j)] *
                          current[static_cast<std::size_t>(c)];
            }
          }
          current[static_cast<std::size_t>(r)] =
              (b[static_cast<std::size_t>(r)] - left_sum) / diag;
        }
        out.x = current;
        out.publish_cycles.assign(static_cast<std::size_t>(end - begin), 0);
        const Verification check = VerifyRange(lower, b, current, begin, end,
                                               config.recovery.verify);
        if (check.passed) {
          accepted = true;
          record.recovered_on = kHostExecutor;
          record.residual = check.residual;
          ++result.stats.host_rung_recoveries;
        }
      }

      if (accepted) {
        out.status = Status::Ok();
        record.verified = true;
        ds.recovered_on = record.recovered_on;
      }
      result.stats.failovers.push_back(std::move(record));
    }
  }

  result.x.assign(static_cast<std::size_t>(m), 0.0);
  result.stats.devices = std::move(dstats);
  result.stats.cross_edges = CountCrossEdges(lower, part);
  result.stats.total_messages = comm.total_messages();
  result.stats.total_comm_bytes = comm.total_bytes();
  for (int d = 0; d < k; ++d) {
    DeviceStats& ds = result.stats.devices[static_cast<std::size_t>(d)];
    const Outcome& out = outcomes[static_cast<std::size_t>(d)];
    ds.est_cost_ms =
        cost_hint *
        (static_cast<double>(ds.row_end - ds.row_begin) +
         static_cast<double>(ds.nnz)) /
        denom;
    // Stitch from the live outcome: recovered partitions (out.status OK,
    // ds.status still the first-pass failure) contribute their accepted
    // range exactly like clean ones.
    if (out.status.ok() && ds.row_begin < ds.row_end) {
      std::copy(out.x.begin() + ds.row_begin, out.x.begin() + ds.row_end,
                result.x.begin() + ds.row_begin);
    }
    if (!out.status.ok() && result.status.ok()) result.status = out.status;
    // Makespan/argmax over completed first-pass launches only — a killed
    // partition has no real cycle count to contribute.
    if (launch_ok[static_cast<std::size_t>(d)] &&
        (result.stats.critical_device < 0 ||
         ds.cycles > result.stats.makespan_cycles)) {
      result.stats.makespan_cycles = ds.cycles;
      result.stats.critical_device = d;
    }
  }
  result.stats.exec_ms = config.device.CyclesToMs(result.stats.makespan_cycles);

  if (recovery_ran) {
    // Final gate on the stitched solution: recovery only reports OK when the
    // whole system verifies, not just each range in isolation.
    result.verification =
        VerifySolution(lower, b, result.x, config.recovery.verify);
    if (!result.verification.passed && result.status.ok()) {
      result.status =
          DataLoss("fleet recovery: stitched solution failed verification");
    }
  }
  return result;
}

}  // namespace capellini::fleet
