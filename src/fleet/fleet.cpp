#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <utility>

#include "sim/fault.h"
#include "support/thread_pool.h"

namespace capellini::fleet {

DeviceFleet::DeviceFleet(const FleetConfig& config) : config_(config) {
  config_.num_devices = std::max(1, config_.num_devices);
  const int k = config_.num_devices;
  memories_.reserve(static_cast<std::size_t>(k));
  machines_.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    memories_.push_back(std::make_unique<sim::DeviceMemory>());
    machines_.push_back(
        std::make_unique<sim::Machine>(config_.device, memories_.back().get()));
  }
  sinks_.assign(static_cast<std::size_t>(k), nullptr);
  injectors_.assign(static_cast<std::size_t>(k), nullptr);
}

namespace {

/// One remote row a device waits on: producer device + global row.
struct Need {
  int src = 0;
  Idx row = 0;
};

/// What a device task leaves behind for its consumers.
struct Outcome {
  Status status;
  std::vector<Val> x;                        // full-length device image
  std::vector<std::uint64_t> publish_cycles; // per local row
};

}  // namespace

Expected<FleetResult> FleetSolver::Solve(const Solver& solver,
                                         std::span<const Val> b) const {
  const Csr& lower = solver.matrix();
  const Idx m = lower.rows();
  if (m == 0) return InvalidArgument("empty system");
  if (b.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("b has the wrong size");
  }
  const FleetConfig& config = fleet_->config();
  if (config.algorithm != kernels::DeviceAlgorithm::kCapelliniTwoPhase &&
      config.algorithm != kernels::DeviceAlgorithm::kCapelliniWritingFirst) {
    return InvalidArgument(
        "fleet solves need a Capellini thread-per-row algorithm");
  }
  const int k = config.num_devices;

  // Balance weights: each row's share of the solver's a-priori cost estimate,
  // proportional to 1 + nnz (the same shape CostHintMs itself integrates).
  const double cost_hint = solver.CostHintMs();
  const double denom =
      static_cast<double>(m) + static_cast<double>(lower.nnz());
  std::vector<double> weights(static_cast<std::size_t>(m));
  for (Idx r = 0; r < m; ++r) {
    weights[static_cast<std::size_t>(r)] =
        cost_hint * (1.0 + static_cast<double>(lower.RowLen(r))) / denom;
  }

  auto partition_or = PartitionRows(lower, k, config.strategy,
                                    &solver.Levels(), weights);
  if (!partition_or.ok()) return partition_or.status();

  FleetResult result;
  result.partition = std::move(*partition_or);
  const Partition& part = result.partition;

  // Cross-partition needs: device d waits on every remote row referenced by
  // its block. Deduplicated per (row, consumer device) — the consumer fetches
  // x_c once, however many local rows read it — and sorted by (src, row),
  // which fixes the per-link delivery order and with it every arrival cycle,
  // independent of host threading.
  std::vector<std::vector<Need>> needs(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    const Idx begin = part.RowBegin(d);
    std::vector<Idx> remote;
    for (Idx r = begin; r < part.RowEnd(d); ++r) {
      const Idx row_begin = lower.row_ptr()[static_cast<std::size_t>(r)];
      const Idx row_end = lower.row_ptr()[static_cast<std::size_t>(r) + 1];
      for (Idx j = row_begin; j < row_end; ++j) {
        const Idx col = lower.col_idx()[static_cast<std::size_t>(j)];
        if (col < begin) remote.push_back(col);
      }
    }
    std::sort(remote.begin(), remote.end());
    remote.erase(std::unique(remote.begin(), remote.end()), remote.end());
    needs[static_cast<std::size_t>(d)].reserve(remote.size());
    for (const Idx row : remote) {
      needs[static_cast<std::size_t>(d)].push_back(
          Need{part.DeviceOf(row), row});
    }
  }

  std::vector<Outcome> outcomes(static_cast<std::size_t>(k));
  std::vector<DeviceStats> dstats(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    // A task that dies before publishing its outcome must read as failed,
    // not as a clean empty device.
    outcomes[static_cast<std::size_t>(d)].status =
        InternalError("device task did not complete");
    dstats[static_cast<std::size_t>(d)].status =
        outcomes[static_cast<std::size_t>(d)].status;
  }
  std::vector<std::promise<void>> done(static_cast<std::size_t>(k));
  std::vector<std::shared_future<void>> done_futures;
  done_futures.reserve(static_cast<std::size_t>(k));
  for (auto& promise : done) done_futures.push_back(promise.get_future().share());

  CommModel comm(config.comm, k);

  // Task d blocks only on producers d' < d; the pool picks tasks up in FIFO
  // order, so started tasks always form a prefix of the submission order and
  // the lowest unfinished task has all producers finished — progress is
  // guaranteed for any pool size >= 1.
  ThreadPool pool(config.host_threads > 0 ? config.host_threads : k);
  std::vector<std::future<void>> tasks;
  tasks.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    tasks.push_back(pool.Submit([&, d] {
      Outcome& out = outcomes[static_cast<std::size_t>(d)];
      DeviceStats& ds = dstats[static_cast<std::size_t>(d)];
      struct DoneSignal {
        std::promise<void>* promise;
        ~DoneSignal() { promise->set_value(); }
      } signal{&done[static_cast<std::size_t>(d)]};

      ds.row_begin = part.RowBegin(d);
      ds.row_end = part.RowEnd(d);
      ds.nnz = lower.row_ptr()[static_cast<std::size_t>(ds.row_end)] -
               lower.row_ptr()[static_cast<std::size_t>(ds.row_begin)];

      const std::vector<Need>& my_needs = needs[static_cast<std::size_t>(d)];
      for (const Need& need : my_needs) {
        done_futures[static_cast<std::size_t>(need.src)].wait();
      }
      for (const Need& need : my_needs) {
        const Outcome& src = outcomes[static_cast<std::size_t>(need.src)];
        if (!src.status.ok()) {
          out.status = DeadlockError(
              "fleet device " + std::to_string(d) + ": upstream device " +
              std::to_string(need.src) + " failed: " + src.status.message());
          ds.status = out.status;
          return;
        }
      }

      std::vector<kernels::RangeArrival> arrivals;
      arrivals.reserve(my_needs.size());
      for (const Need& need : my_needs) {
        const Outcome& src = outcomes[static_cast<std::size_t>(need.src)];
        const std::uint64_t published =
            src.publish_cycles[static_cast<std::size_t>(
                need.row - part.RowBegin(need.src))];
        if (published == UINT64_MAX) {
          // The producer finished but this row's flag never landed (dropped
          // publish). On hardware the consumer would spin forever; fail fast
          // with the same status the watchdog would eventually report.
          out.status = DeadlockError(
              "fleet device " + std::to_string(d) + ": row " +
              std::to_string(need.row) + " was never published by device " +
              std::to_string(need.src) + " (dropped publish?)");
          ds.status = out.status;
          return;
        }
        const std::uint64_t arrival = comm.Deliver(need.src, d, published);
        arrivals.push_back(kernels::RangeArrival{
            need.row, src.x[static_cast<std::size_t>(need.row)], arrival});
        ++ds.in_messages;
        ds.comm_bytes_in += config.comm.bytes_per_message;
        ds.comm_delay_cycles += arrival - published;
        ds.last_arrival_cycle = std::max(ds.last_arrival_cycle, arrival);
      }

      if (ds.row_begin == ds.row_end) {  // empty block (K > rows)
        out.x.assign(static_cast<std::size_t>(m), 0.0);
        out.publish_cycles.clear();
        out.status = Status::Ok();
        ds.status = Status::Ok();
        return;
      }

      kernels::SolveOptions options;
      options.threads_per_block = config.threads_per_block;
      options.trace_sink = fleet_->trace_sink(d);
      options.fault_injector = fleet_->fault_injector(d);
      if (options.fault_injector != nullptr) {
        // Machine hooks see LOCAL tids; plans are written in global rows.
        options.fault_injector->set_tid_offset(ds.row_begin);
      }
      const auto host_begin = std::chrono::steady_clock::now();
      auto range = kernels::SolveRangeOnDevice(
          config.algorithm, lower, b, ds.row_begin, ds.row_end, arrivals,
          fleet_->machine(d), fleet_->memory(d), options);
      ds.host_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - host_begin)
                       .count();
      if (!range.ok()) {
        out.status = range.status();
        ds.status = out.status;
        return;
      }
      out.x = std::move(range->x);
      out.publish_cycles = std::move(range->publish_cycles);
      out.status = Status::Ok();
      ds.launch = range->stats;
      ds.cycles = range->stats.cycles;
      ds.exec_ms = range->exec_ms;
      ds.boundary_stall_cycles = std::min(ds.cycles, ds.last_arrival_cycle);
      ds.status = Status::Ok();
    }));
  }
  for (auto& task : tasks) task.get();

  // Outbound attribution (from the static needs lists — a consumer that
  // failed before delivery still *required* the rows).
  for (int d = 0; d < k; ++d) {
    for (const Need& need : needs[static_cast<std::size_t>(d)]) {
      ++dstats[static_cast<std::size_t>(need.src)].out_messages;
    }
  }

  result.x.assign(static_cast<std::size_t>(m), 0.0);
  result.stats.devices = std::move(dstats);
  result.stats.cross_edges = CountCrossEdges(lower, part);
  result.stats.total_messages = comm.total_messages();
  result.stats.total_comm_bytes = comm.total_bytes();
  for (int d = 0; d < k; ++d) {
    DeviceStats& ds = result.stats.devices[static_cast<std::size_t>(d)];
    ds.est_cost_ms =
        cost_hint *
        (static_cast<double>(ds.row_end - ds.row_begin) +
         static_cast<double>(ds.nnz)) /
        denom;
    if (ds.status.ok() && ds.row_begin < ds.row_end) {
      const Outcome& out = outcomes[static_cast<std::size_t>(d)];
      std::copy(out.x.begin() + ds.row_begin, out.x.begin() + ds.row_end,
                result.x.begin() + ds.row_begin);
    }
    if (!ds.status.ok() && result.status.ok()) result.status = ds.status;
    if (result.stats.critical_device < 0 ||
        ds.cycles > result.stats.makespan_cycles) {
      result.stats.makespan_cycles = ds.cycles;
      result.stats.critical_device = d;
    }
  }
  result.stats.exec_ms = config.device.CyclesToMs(result.stats.makespan_cycles);
  return result;
}

}  // namespace capellini::fleet
