#include "fleet/comm.h"

#include <algorithm>
#include <cmath>

namespace capellini::fleet {

CommModel::CommModel(const CommConfig& config, int num_devices)
    : config_(config),
      num_devices_(std::max(1, num_devices)),
      links_(static_cast<std::size_t>(num_devices_) *
             static_cast<std::size_t>(num_devices_)) {}

std::uint64_t CommModel::Deliver(int src, int dst,
                                 std::uint64_t publish_cycle) {
  Link& link = LinkAt(src, dst);
  const std::uint64_t depart = std::max(link.busy_until, publish_cycle);
  const double bandwidth = std::max(1e-9, config_.bandwidth_bytes_per_cycle);
  const auto wire = static_cast<std::uint64_t>(std::ceil(
      static_cast<double>(config_.bytes_per_message) / bandwidth));
  link.busy_until = depart + wire;  // next message queues behind this one
  ++link.messages;
  return depart + wire + config_.latency_cycles;
}

std::uint64_t CommModel::total_messages() const {
  std::uint64_t total = 0;
  for (const Link& link : links_) total += link.messages;
  return total;
}

std::uint64_t CommModel::total_bytes() const {
  return total_messages() * config_.bytes_per_message;
}

}  // namespace capellini::fleet
