#include "gen/rmat.h"

#include <algorithm>
#include <cmath>

#include "gen/assemble.h"
#include "support/rng.h"
#include "support/status.h"

namespace capellini {

Csr MakeRmatLower(const RmatOptions& options) {
  CAPELLINI_CHECK(options.nodes > 1);
  CAPELLINI_CHECK(options.edges_per_node > 0.0);
  const double d = 1.0 - options.a - options.b - options.c;
  CAPELLINI_CHECK_MSG(d >= 0.0, "RMAT probabilities exceed 1");

  int scale = 0;
  while ((Idx{1} << scale) < options.nodes) ++scale;

  Rng rng(options.seed);
  const std::int64_t edges = static_cast<std::int64_t>(
      options.edges_per_node * static_cast<double>(options.nodes));

  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(options.nodes));
  for (std::int64_t e = 0; e < edges; ++e) {
    Idx u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double p = rng.NextDouble();
      if (p < options.a) {
        // upper-left quadrant: no bits set
      } else if (p < options.a + options.b) {
        v |= Idx{1} << bit;
      } else if (p < options.a + options.b + options.c) {
        u |= Idx{1} << bit;
      } else {
        u |= Idx{1} << bit;
        v |= Idx{1} << bit;
      }
    }
    if (u >= options.nodes || v >= options.nodes || u == v) continue;
    const Idx row = std::max(u, v);
    const Idx col = std::min(u, v);
    cols[static_cast<std::size_t>(row)].push_back(col);
  }
  // AssembleUnitLower sorts and deduplicates per row.
  return AssembleUnitLower(std::move(cols), options.seed ^ 0x42A7ull);
}

}  // namespace capellini
