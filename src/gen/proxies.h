// Named proxy matrices standing in for the SuiteSparse matrices the paper
// evaluates (we have no network access to the collection; DESIGN.md §2).
//
// Each proxy is generated to match the published structural indicators of
// its namesake — alpha (avg nnz/row), beta (avg components/level) and hence
// delta (parallel granularity, Eq. 1) — at a scale sized for the single-core
// interpreter. Table 6 of the paper lists (delta, alpha, beta) for rajat29,
// bayer01 and circuit5M_dc explicitly; the others are matched to their known
// structure class (FEM band, KKT system, power-law graph, LP basis).
#pragma once

#include <string>
#include <vector>

#include "graph/stats.h"
#include "matrix/csr.h"

namespace capellini {

/// A generated matrix with its name and precomputed indicators.
struct NamedMatrix {
  std::string name;
  Csr matrix;
  MatrixStats stats;
};

enum class ProxyId {
  kRajat29,      // circuit simulation; delta 0.78, alpha 4.89, beta 14636
  kBayer01,      // chemical process; delta 0.87, alpha 3.39, beta 9623
  kCircuit5MDc,  // circuit simulation; delta 0.92, alpha 3.02, beta 12812
  kLp1,          // linear programming; delta ~1.18 (paper's best case)
  kNeos,         // linear programming; high granularity
  kAtmosmodd,    // atmospheric model stencil; moderate granularity
  kNlpkkt160,    // KKT system; low granularity, Table 1 case
  kWikiTalk,     // power-law communication graph; Table 1 case
  kCant,         // FEM cantilever; low granularity, Table 1 case
};

const char* ProxyName(ProxyId id);

/// Builds one proxy (deterministic for a given id).
NamedMatrix MakeProxy(ProxyId id);

/// All proxies in declaration order.
std::vector<NamedMatrix> AllProxies();

}  // namespace capellini
