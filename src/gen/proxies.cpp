#include "gen/proxies.h"

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/rmat.h"
#include "support/status.h"

namespace capellini {
namespace {

NamedMatrix Wrap(const char* name, Csr matrix) {
  NamedMatrix named;
  named.name = name;
  named.stats = ComputeStats(matrix, name);
  named.matrix = std::move(matrix);
  return named;
}

/// Level-structured proxy hitting target (alpha, beta) with L levels.
NamedMatrix LevelProxy(const char* name, Idx levels, Idx beta, double alpha,
                       std::uint64_t seed, double jitter = 0.25) {
  LevelStructuredOptions options;
  options.num_levels = levels;
  options.components_per_level = beta;
  options.avg_nnz_per_row = alpha;
  options.size_jitter = jitter;
  options.seed = seed;
  return Wrap(name, MakeLevelStructured(options));
}

}  // namespace

const char* ProxyName(ProxyId id) {
  switch (id) {
    case ProxyId::kRajat29:
      return "rajat29";
    case ProxyId::kBayer01:
      return "bayer01";
    case ProxyId::kCircuit5MDc:
      return "circuit5M_dc";
    case ProxyId::kLp1:
      return "lp1";
    case ProxyId::kNeos:
      return "neos";
    case ProxyId::kAtmosmodd:
      return "atmosmodd";
    case ProxyId::kNlpkkt160:
      return "nlpkkt160";
    case ProxyId::kWikiTalk:
      return "wiki-Talk";
    case ProxyId::kCant:
      return "cant";
  }
  return "unknown";
}

NamedMatrix MakeProxy(ProxyId id) {
  switch (id) {
    case ProxyId::kRajat29:
      // Paper Table 6: delta 0.78, alpha 4.89, beta 14636.23.
      return LevelProxy("rajat29", /*levels=*/12, /*beta=*/14636,
                        /*alpha=*/4.89, /*seed=*/0xA301);
    case ProxyId::kBayer01:
      // Paper Table 6: delta 0.87, alpha 3.39, beta 9622.50.
      return LevelProxy("bayer01", /*levels=*/14, /*beta=*/9622,
                        /*alpha=*/3.39, /*seed=*/0xA302);
    case ProxyId::kCircuit5MDc:
      // Paper Table 6: delta 0.92, alpha 3.02, beta 12812.06.
      return LevelProxy("circuit5M_dc", /*levels=*/12, /*beta=*/12812,
                        /*alpha=*/3.02, /*seed=*/0xA303);
    case ProxyId::kLp1:
      // The paper's maximum-speedup matrix, delta ~1.18 (Figure 5): very
      // sparse rows and huge levels.
      return LevelProxy("lp1", /*levels=*/12, /*beta=*/7800, /*alpha=*/1.8,
                        /*seed=*/0xA304);
    case ProxyId::kNeos:
      // Max cuSPARSE-speedup matrix on Pascal (Table 5): LP structure,
      // delta ~1.05.
      return LevelProxy("neos", /*levels=*/12, /*beta=*/7200, /*alpha=*/2.2,
                        /*seed=*/0xA305);
    case ProxyId::kAtmosmodd:
      // 3-D stencil: wide levels of a plane-sweep DAG, delta ~0.75.
      return LevelProxy("atmosmodd", /*levels=*/10, /*beta=*/2100,
                        /*alpha=*/3.9, /*seed=*/0xA306);
    case ProxyId::kNlpkkt160:
      // KKT system: dense-ish rows, deeper DAG, low granularity (~0.34).
      return LevelProxy("nlpkkt160", /*levels=*/60, /*beta=*/300,
                        /*alpha=*/14.0, /*seed=*/0xA307);
    case ProxyId::kWikiTalk: {
      // Power-law communication graph (42% of the paper's corpus is graphs).
      RmatOptions options;
      options.nodes = 1 << 15;
      options.edges_per_node = 1.5;  // wiki-Talk's lower factor is ~2.4 nnz/row
      options.seed = 0xA308;
      return Wrap("wiki-Talk", MakeRmatLower(options));
    }
    case ProxyId::kCant: {
      // FEM cantilever: banded, ~32 nnz/row, deep dependency chains.
      return LevelProxy("cant", /*levels=*/500, /*beta=*/24, /*alpha=*/33.0,
                        /*seed=*/0xA309, /*jitter=*/0.1);
    }
  }
  CAPELLINI_CHECK_MSG(false, "unknown proxy id");
  return {};
}

std::vector<NamedMatrix> AllProxies() {
  std::vector<NamedMatrix> proxies;
  for (const ProxyId id :
       {ProxyId::kRajat29, ProxyId::kBayer01, ProxyId::kCircuit5MDc,
        ProxyId::kLp1, ProxyId::kNeos, ProxyId::kAtmosmodd,
        ProxyId::kNlpkkt160, ProxyId::kWikiTalk, ProxyId::kCant}) {
    proxies.push_back(MakeProxy(id));
  }
  return proxies;
}

}  // namespace capellini
