// RMAT-style (recursive-matrix) graph generator, lowered to a triangular
// factor. Produces the power-law structures of the paper's dominant dataset
// slice (42% of the 245 matrices are graph applications): shallow DAGs, a
// couple of nonzeros per row, very large levels — the HIGH parallel
// granularity regime Capellini targets.
#pragma once

#include <cstdint>

#include "matrix/csr.h"

namespace capellini {

struct RmatOptions {
  /// Number of vertices = matrix dimension (rounded up to a power of two
  /// internally for the recursive bisection, then cropped).
  Idx nodes = 1 << 14;
  /// Average edges per node (before deduplication).
  double edges_per_node = 4.0;
  /// RMAT quadrant probabilities; defaults are the Graph500 values.
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 21;
};

/// Generates RMAT edges, maps each edge (u, v) to the strictly-lower entry
/// (max(u,v), min(u,v)), deduplicates, and assembles a unit-lower matrix.
Csr MakeRmatLower(const RmatOptions& options);

}  // namespace capellini
