#include "gen/assemble.h"

#include <algorithm>

#include "support/rng.h"
#include "support/status.h"

namespace capellini {

Csr AssembleUnitLower(std::vector<std::vector<Idx>> strict_cols,
                      std::uint64_t value_seed) {
  const Idx n = static_cast<Idx>(strict_cols.size());

  std::vector<Idx> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (Idx i = 0; i < n; ++i) {
    auto& cols = strict_cols[static_cast<std::size_t>(i)];
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    CAPELLINI_CHECK_MSG(cols.empty() || (cols.front() >= 0 && cols.back() < i),
                        "strict column out of range");
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<Idx>(cols.size()) + 1;
  }

  const std::size_t nnz = static_cast<std::size_t>(row_ptr.back());
  std::vector<Idx> col_idx(nnz);
  std::vector<Val> val(nnz);

  Rng rng(value_seed);
  for (Idx i = 0; i < n; ++i) {
    const auto& cols = strict_cols[static_cast<std::size_t>(i)];
    std::size_t dst = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    const Val scale =
        cols.empty() ? 0.0 : 1.0 / (2.0 * static_cast<Val>(cols.size()));
    for (const Idx c : cols) {
      col_idx[dst] = c;
      val[dst] = rng.NextDouble(-1.0, 1.0) * scale;
      ++dst;
    }
    col_idx[dst] = i;
    val[dst] = 1.0;
  }
  return Csr(n, n, std::move(row_ptr), std::move(col_idx), std::move(val));
}

}  // namespace capellini
