#include "gen/random_lower.h"

#include <algorithm>

#include "gen/assemble.h"
#include "support/rng.h"
#include "support/status.h"

namespace capellini {

Csr MakeRandomLower(const RandomLowerOptions& options) {
  CAPELLINI_CHECK(options.rows > 0);
  CAPELLINI_CHECK(options.avg_strict_nnz_per_row >= 0.0);
  Rng rng(options.seed);

  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(options.rows));
  for (Idx i = 1; i < options.rows; ++i) {
    if (options.empty_row_fraction > 0.0 &&
        rng.NextBool(options.empty_row_fraction)) {
      continue;
    }
    const Idx lo =
        options.window > 0 ? std::max<Idx>(0, i - options.window) : 0;
    const Idx available = i - lo;
    if (available <= 0) continue;
    Idx want = static_cast<Idx>(
        rng.NextPositiveWithMean(options.avg_strict_nnz_per_row));
    want = std::min(want, available);
    auto sample = rng.SampleDistinctSorted(lo, i - 1, want);
    auto& row = cols[static_cast<std::size_t>(i)];
    row.assign(sample.begin(), sample.end());
  }
  return AssembleUnitLower(std::move(cols), options.seed ^ 0x4A11D0ull);
}

}  // namespace capellini
