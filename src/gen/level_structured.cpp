#include "gen/level_structured.h"

#include <algorithm>
#include <numeric>

#include "gen/assemble.h"
#include "support/rng.h"
#include "support/status.h"

namespace capellini {
namespace {

/// Draws level sizes around the mean with optional jitter; each level keeps
/// at least one row so the level count is exact.
std::vector<Idx> DrawLevelSizes(const LevelStructuredOptions& options,
                                Rng& rng) {
  std::vector<Idx> sizes(static_cast<std::size_t>(options.num_levels));
  for (auto& s : sizes) {
    double jitter = 0.0;
    if (options.size_jitter > 0.0) {
      jitter = rng.NextDouble(-options.size_jitter, options.size_jitter);
    }
    const double raw =
        static_cast<double>(options.components_per_level) * (1.0 + jitter);
    s = std::max<Idx>(1, static_cast<Idx>(raw + 0.5));
  }
  return sizes;
}

}  // namespace

Csr MakeLevelStructured(const LevelStructuredOptions& options) {
  CAPELLINI_CHECK(options.num_levels >= 1);
  CAPELLINI_CHECK(options.components_per_level >= 1);
  CAPELLINI_CHECK(options.avg_nnz_per_row >= 1.0);
  Rng rng(options.seed);

  const std::vector<Idx> sizes = DrawLevelSizes(options, rng);
  const Idx n = std::accumulate(sizes.begin(), sizes.end(), Idx{0});

  // Assign a level label to every row index.
  std::vector<Idx> label(static_cast<std::size_t>(n));
  if (!options.interleave) {
    Idx row = 0;
    for (Idx level = 0; level < options.num_levels; ++level) {
      for (Idx k = 0; k < sizes[static_cast<std::size_t>(level)]; ++k) {
        label[static_cast<std::size_t>(row++)] = level;
      }
    }
  } else {
    // Round-robin placement: level ell can be placed once a level ell-1 row
    // exists earlier in the ordering. Maximizes intra-warp dependencies.
    std::vector<Idx> remaining = sizes;
    std::vector<bool> seen(static_cast<std::size_t>(options.num_levels), false);
    Idx placed = 0;
    while (placed < n) {
      bool progress = false;
      for (Idx level = 0; level < options.num_levels && placed < n; ++level) {
        if (remaining[static_cast<std::size_t>(level)] == 0) continue;
        if (level > 0 && !seen[static_cast<std::size_t>(level) - 1]) continue;
        label[static_cast<std::size_t>(placed++)] = level;
        --remaining[static_cast<std::size_t>(level)];
        seen[static_cast<std::size_t>(level)] = true;
        progress = true;
      }
      CAPELLINI_CHECK_MSG(progress, "interleave placement stuck");
    }
  }

  // Rows indexed by level for dependency sampling (row ids ascending within
  // each level because labels were assigned in ascending row order).
  std::vector<std::vector<Idx>> rows_of_level(
      static_cast<std::size_t>(options.num_levels));
  for (Idx i = 0; i < n; ++i) {
    rows_of_level[static_cast<std::size_t>(label[static_cast<std::size_t>(i)])]
        .push_back(i);
  }

  // Strict nonzeros budget: level-0 rows contribute none, so rows in levels
  // >= 1 draw a mean that makes the GLOBAL average hit avg_nnz_per_row.
  const Idx level0_rows = sizes[0];
  const double total_strict =
      static_cast<double>(n) * (options.avg_nnz_per_row - 1.0);
  const double mean_strict =
      n == level0_rows
          ? 0.0
          : total_strict / static_cast<double>(n - level0_rows);

  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(n));
  for (Idx i = 0; i < n; ++i) {
    const Idx level = label[static_cast<std::size_t>(i)];
    if (level == 0) continue;
    auto& row = cols[static_cast<std::size_t>(i)];

    // Pin the level: one dependency on a strictly earlier row of level-1.
    const auto& prev = rows_of_level[static_cast<std::size_t>(level) - 1];
    // All level-(ell-1) rows precede row i in the contiguous layout; in the
    // interleaved layout at least one does (placement invariant). Restrict
    // the sample to those with id < i.
    const auto end_it = std::lower_bound(prev.begin(), prev.end(), i);
    const std::size_t eligible = static_cast<std::size_t>(end_it - prev.begin());
    CAPELLINI_CHECK_MSG(eligible > 0, "no earlier previous-level row");
    row.push_back(prev[rng.NextBounded(eligible)]);

    // Remaining dependencies: any earlier row of a strictly lower level.
    Idx extra = static_cast<Idx>(rng.NextPositiveWithMean(
                    std::max(1.0, mean_strict))) - 1;
    for (Idx k = 0; k < extra; ++k) {
      // Sample an earlier row; accept only if its level is lower (a same-
      // level dependency would change the level). Bounded retries keep this
      // O(1) in practice (most earlier rows have lower levels).
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Idx cand = static_cast<Idx>(rng.NextBounded(static_cast<std::uint64_t>(i)));
        if (label[static_cast<std::size_t>(cand)] < level) {
          row.push_back(cand);
          break;
        }
      }
    }
  }
  return AssembleUnitLower(std::move(cols), options.seed ^ 0x1E7E1ull);
}

}  // namespace capellini
