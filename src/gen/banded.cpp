#include "gen/banded.h"

#include <algorithm>

#include "gen/assemble.h"
#include "support/rng.h"
#include "support/status.h"

namespace capellini {

Csr MakeBanded(const BandedOptions& options) {
  CAPELLINI_CHECK(options.rows > 0);
  CAPELLINI_CHECK(options.bandwidth >= 0);
  Rng rng(options.seed);

  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(options.rows));
  for (Idx i = 0; i < options.rows; ++i) {
    const Idx lo = std::max<Idx>(0, i - options.bandwidth);
    auto& row = cols[static_cast<std::size_t>(i)];
    for (Idx c = lo; c < i; ++c) {
      const bool forced = options.force_chain && c == i - 1;
      if (forced || rng.NextBool(options.fill)) row.push_back(c);
    }
  }
  return AssembleUnitLower(std::move(cols), options.seed ^ 0xBA9DEDull);
}

Csr MakeBidiagonal(Idx rows, std::uint64_t seed) {
  BandedOptions options;
  options.rows = rows;
  options.bandwidth = 1;
  options.fill = 1.0;
  options.force_chain = true;
  options.seed = seed;
  return MakeBanded(options);
}

Csr MakeDiagonal(Idx rows) {
  std::vector<std::vector<Idx>> cols(static_cast<std::size_t>(rows));
  return AssembleUnitLower(std::move(cols), 0);
}

Csr MakeDenseLower(Idx rows, std::uint64_t seed) {
  BandedOptions options;
  options.rows = rows;
  options.bandwidth = rows;
  options.fill = 1.0;
  options.force_chain = true;
  options.seed = seed;
  return MakeBanded(options);
}

}  // namespace capellini
