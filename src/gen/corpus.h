// Corpus builder: the stand-in for the paper's 873-matrix SuiteSparse
// download. Generates a deterministic sweep of level-structured matrices
// covering the (alpha, delta) plane — alpha = avg nnz/row, delta = parallel
// granularity — plus graph (RMAT) and banded outliers for structural
// diversity. The high-granularity slice (delta > 0.7) plays the role of the
// paper's 245 evaluation matrices.
#pragma once

#include <vector>

#include "gen/proxies.h"

namespace capellini {

enum class CorpusTier {
  kQuick,  // sized for CI / single-core interpreter runs
  kFull,   // larger matrices, denser sweep
};

struct CorpusOptions {
  CorpusTier tier = CorpusTier::kQuick;
  std::uint64_t seed = 0xC0FFEE;
  /// Rows per matrix scale with this target (actual rows = levels * beta).
  Idx target_rows = 0;  // 0 = tier default
};

/// Full sweep across granularities (Figure 3's x-axis, roughly 0.1 .. 1.2).
std::vector<NamedMatrix> GranularityCorpus(const CorpusOptions& options = {});

/// The delta > 0.7 slice that CapelliniSpTRSV targets (Tables 4-5,
/// Figures 4, 5, 7, 8). Built from GranularityCorpus plus graph proxies.
std::vector<NamedMatrix> HighGranularityCorpus(const CorpusOptions& options = {});

/// Computes the beta (components per level) that Equation 1 maps to the
/// requested granularity `delta` at a given alpha. Returns 0 when the pair is
/// infeasible (needed beta exceeds `max_beta`) — high granularity is only
/// reachable with small alpha, which is exactly the paper's Figure 6 wedge.
Idx BetaForGranularity(double delta, double alpha, Idx max_beta);

}  // namespace capellini
