// Random lower-triangular generator with controlled average row length and
// dependency locality. Produces the "messy" middle of the granularity range.
#pragma once

#include <cstdint>

#include "matrix/csr.h"

namespace capellini {

struct RandomLowerOptions {
  Idx rows = 4096;
  /// Target average number of strictly-lower nonzeros per row (the assembled
  /// matrix additionally has a unit diagonal). Row lengths are geometric with
  /// this mean, clamped to the available columns.
  double avg_strict_nnz_per_row = 3.0;
  /// Dependencies are drawn from [i - window, i). 0 means the whole prefix.
  /// Narrow windows produce deep chains; wide windows shallow DAGs.
  Idx window = 0;
  /// Probability that a row has no strictly-lower entries at all (these rows
  /// seed level 0 and keep the DAG shallow).
  double empty_row_fraction = 0.0;
  std::uint64_t seed = 7;
};

/// Random unit-lower matrix per the options above.
Csr MakeRandomLower(const RandomLowerOptions& options);

}  // namespace capellini
