// Banded lower-triangular generators: deep dependency chains, many nonzeros
// per row — the LOW parallel-granularity regime where warp-level SpTRSV
// shines (FEM-style matrices like `cant` in the paper's Table 1).
#pragma once

#include <cstdint>

#include "matrix/csr.h"

namespace capellini {

struct BandedOptions {
  Idx rows = 1024;
  /// Band half-width: row i may reference columns [i - bandwidth, i).
  Idx bandwidth = 32;
  /// Probability that each in-band position is a nonzero (1.0 = full band).
  double fill = 1.0;
  /// Force L(i, i-1) so the dependency chain has maximal depth (rows levels).
  bool force_chain = true;
  std::uint64_t seed = 1;
};

/// Unit-lower banded matrix. With force_chain, num_levels == rows.
Csr MakeBanded(const BandedOptions& options);

/// Bidiagonal matrix (band 1): the fully sequential worst case — one
/// component per level, used in tests and the ablation bench.
Csr MakeBidiagonal(Idx rows, std::uint64_t seed = 1);

/// Diagonal-only matrix: every row independent, a single level.
Csr MakeDiagonal(Idx rows);

/// Dense lower triangle (small sizes only; O(rows^2) memory).
Csr MakeDenseLower(Idx rows, std::uint64_t seed = 1);

}  // namespace capellini
