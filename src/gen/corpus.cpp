#include "gen/corpus.h"

#include <algorithm>
#include <cmath>

#include "gen/banded.h"
#include "gen/level_structured.h"
#include "gen/random_lower.h"
#include "gen/rmat.h"
#include "support/rng.h"

namespace capellini {
namespace {

constexpr double kB1 = 0.01;
constexpr double kB2 = 0.01;

NamedMatrix Wrap(std::string name, Csr matrix) {
  NamedMatrix named;
  named.stats = ComputeStats(matrix, name);
  named.name = std::move(name);
  named.matrix = std::move(matrix);
  return named;
}

}  // namespace

Idx BetaForGranularity(double delta, double alpha, Idx max_beta) {
  // Invert Eq. 1: delta = log10(log10(beta) / log10(alpha + b1) + b2).
  const double ratio = std::pow(10.0, delta) - kB2;
  if (ratio <= 0.0) return 0;
  const double log_beta = ratio * std::log10(alpha + kB1);
  if (log_beta <= 0.0) return 0;
  const double beta = std::pow(10.0, log_beta);
  if (beta > static_cast<double>(max_beta)) return 0;
  return std::max<Idx>(1, static_cast<Idx>(beta + 0.5));
}

std::vector<NamedMatrix> GranularityCorpus(const CorpusOptions& options) {
  const bool quick = options.tier == CorpusTier::kQuick;
  const Idx target_rows =
      options.target_rows > 0 ? options.target_rows : (quick ? 16'000 : 90'000);
  const Idx max_beta = quick ? 8'000 : 100'000;
  const Idx max_levels = quick ? 200 : 1'200;

  const std::vector<double> deltas =
      quick ? std::vector<double>{0.25, 0.45, 0.60, 0.72, 0.80,
                                  0.90, 1.00, 1.10, 1.18}
            : std::vector<double>{0.20, 0.30, 0.40, 0.50, 0.60, 0.68, 0.72,
                                  0.76, 0.80, 0.85, 0.90, 0.95, 1.00, 1.05,
                                  1.10, 1.15, 1.20};
  // Level widths, largest first. The sweep derives alpha from (delta, beta),
  // which keeps every matrix in the paper's dataset regime — LARGE levels
  // (their corpus averages 12485 components per level) — instead of
  // admitting degenerate high-delta matrices with tiny levels.
  const std::vector<Idx> beta_targets =
      quick ? std::vector<Idx>{8'000, 2'500, 800, 250}
            : std::vector<Idx>{30'000, 10'000, 3'000, 1'000, 300};

  Rng rng(options.seed);
  std::vector<NamedMatrix> corpus;
  for (const double delta : deltas) {
    const bool high_granularity = delta > 0.68;
    for (const Idx beta : beta_targets) {
      if (beta > max_beta) continue;
      // The paper's high-granularity matrices are big graphs/LPs with huge
      // levels; narrow level widths belong to the low-granularity regime.
      // (Deep high-delta matrices whose rows are ALL device-resident make
      // the thread-level kernel poll far ahead of the frontier — the
      // regime where warp-level still wins, the paper's remaining ~13%.)
      if (high_granularity && beta < (quick ? 4'000 : 8'000)) continue;
      // Invert Eq. 1 for alpha: log10(alpha + b1) = log10(beta) / ratio.
      const double ratio = std::pow(10.0, delta) - kB2;
      if (ratio <= 0.0) continue;
      const double alpha =
          std::pow(10.0, std::log10(static_cast<double>(beta)) / ratio) - kB1;
      // Keep alpha in the collection's realistic range; outside it the
      // (delta, beta) pair does not correspond to any paper matrix.
      if (alpha < 1.5 || alpha > 40.0) continue;

      // High-granularity matrices must be LARGE, as in the paper's dataset
      // (nnz > 100k): one thread per row only saturates a big device when
      // there are >= a hundred thousand rows (a V100 holds 163,840 resident
      // threads). Small matrices would starve the thread-level kernel of
      // occupancy and invert the comparison.
      const Idx row_target = high_granularity ? target_rows * 8 : target_rows;
      // At least 8 levels: a DAG with fewer levels has almost no cross-level
      // waiting, which would make the warp-level baselines look artificially
      // good (real high-beta matrices also have dozens of levels).
      Idx levels = std::max<Idx>(
          8, static_cast<Idx>(static_cast<double>(row_target) /
                              static_cast<double>(beta)));
      // Deep low-granularity DAGs cost roughly quadratically more simulator
      // wall time (long spin waves); shrink their row count — the structural
      // regime they probe does not depend on absolute size.
      if (!high_granularity) {
        if (levels > 64) {
          levels = std::max<Idx>(8, levels / 4);
        } else if (levels > 16) {
          levels = std::max<Idx>(8, levels / 2);
        }
      }
      levels = std::min(levels, max_levels);

      LevelStructuredOptions ls;
      ls.num_levels = levels;
      ls.components_per_level = beta;
      ls.avg_nnz_per_row = alpha;
      ls.size_jitter = 0.3;
      ls.seed = rng.Next();

      char name[96];
      std::snprintf(name, sizeof name, "ls_d%04.0f_b%05d_a%04.1f",
                    delta * 1000, static_cast<int>(beta), alpha);
      corpus.push_back(Wrap(name, MakeLevelStructured(ls)));
    }
  }

  // Structural outliers so the corpus is not purely level-structured.
  {
    RmatOptions rmat;
    rmat.nodes = quick ? (1 << 14) : (1 << 17);
    rmat.edges_per_node = 2.5;
    rmat.seed = rng.Next();
    corpus.push_back(Wrap("rmat_sparse", MakeRmatLower(rmat)));
    rmat.edges_per_node = 6.0;
    rmat.seed = rng.Next();
    corpus.push_back(Wrap("rmat_dense", MakeRmatLower(rmat)));
  }
  {
    BandedOptions banded;
    banded.rows = quick ? 1'000 : 20'000;
    banded.bandwidth = 24;
    banded.fill = 0.9;
    banded.seed = rng.Next();
    corpus.push_back(Wrap("band24", MakeBanded(banded)));
  }
  {
    RandomLowerOptions rl;
    rl.rows = quick ? 128'000 : 256'000;
    rl.avg_strict_nnz_per_row = 2.5;
    rl.window = 0;
    rl.empty_row_fraction = 0.3;
    rl.seed = rng.Next();
    corpus.push_back(Wrap("random_prefix", MakeRandomLower(rl)));
  }
  return corpus;
}

std::vector<NamedMatrix> HighGranularityCorpus(const CorpusOptions& options) {
  std::vector<NamedMatrix> corpus = GranularityCorpus(options);
  std::erase_if(corpus, [](const NamedMatrix& named) {
    return named.stats.parallel_granularity <= 0.7;
  });
  return corpus;
}

}  // namespace capellini
