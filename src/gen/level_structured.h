// Level-structured generator: exact control over the two axes of the paper's
// evaluation — average components per level (beta) and average nonzeros per
// row (alpha) — and therefore over the parallel granularity delta (Eq. 1).
// This is the workhorse behind the granularity sweeps of Figures 3-6.
#pragma once

#include <cstdint>

#include "matrix/csr.h"

namespace capellini {

struct LevelStructuredOptions {
  /// Number of dependency levels (>= 1).
  Idx num_levels = 8;
  /// Average rows per level; total rows = num_levels * components_per_level.
  Idx components_per_level = 1024;
  /// Target average nonzeros per row INCLUDING the diagonal (alpha). Rows in
  /// level 0 have just the diagonal; later rows draw alpha-1 dependencies on
  /// average (at least one from the previous level, pinning their level).
  double avg_nnz_per_row = 4.0;
  /// Randomize level sizes by up to +/- jitter (fraction of the mean).
  double size_jitter = 0.0;
  /// If true, rows of different levels are interleaved in index order (while
  /// preserving lower-triangularity) instead of being laid out level by
  /// level. Interleaving maximizes intra-warp dependencies — the stress case
  /// for the two-phase design (paper §3.3, Challenge 1).
  bool interleave = false;
  std::uint64_t seed = 11;
};

/// Unit-lower matrix with num_levels levels (exactly, when feasible).
Csr MakeLevelStructured(const LevelStructuredOptions& options);

}  // namespace capellini
