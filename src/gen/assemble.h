// Shared assembly helper for the synthetic matrix generators: turns per-row
// strictly-lower column lists into a well-conditioned unit-lower-triangular
// CSR matrix (diagonal 1.0, off-diagonal values scaled so solves stay
// numerically benign — mirrors the paper's dataset rule, §5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace capellini {

/// `strict_cols[i]` lists the strictly-lower column indices of row i (each
/// entry must be < i; duplicates are removed; order need not be sorted).
/// The diagonal entry is appended automatically.
Csr AssembleUnitLower(std::vector<std::vector<Idx>> strict_cols,
                      std::uint64_t value_seed);

}  // namespace capellini
