#include "host/serial.h"

namespace capellini::host {

Status SolveSerial(const Csr& lower, std::span<const Val> b,
                   std::span<Val> x) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("matrix is not lower triangular with diagonal");
  }
  const Idx m = lower.rows();
  if (b.size() != static_cast<std::size_t>(m) ||
      x.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("b/x size mismatch");
  }

  const auto col_idx = lower.col_idx();
  const auto val = lower.val();
  for (Idx i = 0; i < m; ++i) {
    Val left_sum = 0.0;
    const Idx begin = lower.RowBegin(i);
    const Idx end = lower.RowEnd(i);
    for (Idx j = begin; j < end - 1; ++j) {
      left_sum += val[static_cast<std::size_t>(j)] *
                  x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    x[static_cast<std::size_t>(i)] =
        (b[static_cast<std::size_t>(i)] - left_sum) /
        val[static_cast<std::size_t>(end - 1)];
  }
  return Status::Ok();
}

Status SolveSerialMrhs(const Csr& lower, std::span<const Val> b,
                       std::span<Val> x, int k) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("matrix is not lower triangular with diagonal");
  }
  if (k < 1) return InvalidArgument("k must be positive");
  const auto n = static_cast<std::size_t>(lower.rows());
  if (b.size() != n * static_cast<std::size_t>(k) || b.size() != x.size()) {
    return InvalidArgument("B/X must be rows x k column-major");
  }

  const auto col_idx = lower.col_idx();
  const auto val = lower.val();
  // Small fixed upper bound keeps the accumulators in registers; larger k
  // falls back to column-by-column solving.
  constexpr int kMaxFused = 8;
  if (k > kMaxFused) {
    for (int r = 0; r < k; ++r) {
      CAPELLINI_RETURN_IF_ERROR(SolveSerial(
          lower, b.subspan(static_cast<std::size_t>(r) * n, n),
          x.subspan(static_cast<std::size_t>(r) * n, n)));
    }
    return Status::Ok();
  }

  Val sums[kMaxFused];
  for (Idx i = 0; i < lower.rows(); ++i) {
    for (int r = 0; r < k; ++r) sums[r] = 0.0;
    const Idx begin = lower.RowBegin(i);
    const Idx end = lower.RowEnd(i);
    for (Idx j = begin; j < end - 1; ++j) {
      const Val v = val[static_cast<std::size_t>(j)];
      const auto col =
          static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)]);
      for (int r = 0; r < k; ++r) {
        sums[r] += v * x[static_cast<std::size_t>(r) * n + col];
      }
    }
    const Val diag = val[static_cast<std::size_t>(end - 1)];
    for (int r = 0; r < k; ++r) {
      x[static_cast<std::size_t>(r) * n + static_cast<std::size_t>(i)] =
          (b[static_cast<std::size_t>(r) * n + static_cast<std::size_t>(i)] -
           sums[r]) /
          diag;
    }
  }
  return Status::Ok();
}

}  // namespace capellini::host
