// Algorithm 1 on the host CPU — the correctness reference for everything.
#pragma once

#include <span>

#include "matrix/csr.h"
#include "support/status.h"

namespace capellini::host {

/// Solves lower * x = b serially. `lower` must be lower-triangular with a
/// full diagonal; x.size() == b.size() == rows.
Status SolveSerial(const Csr& lower, std::span<const Val> b, std::span<Val> x);

/// Serial SpTRSM: solves lower * X = B for k column-major right-hand sides
/// (b.size() == x.size() == rows * k). The reference for the device MRHS
/// kernels; walks the structure once per row for all k systems.
Status SolveSerialMrhs(const Csr& lower, std::span<const Val> b,
                       std::span<Val> x, int k);

}  // namespace capellini::host
