#include "host/syncfree_cpu.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace capellini::host {

Status SolveSyncFreeCpu(const Csr& lower, std::span<const Val> b,
                        std::span<Val> x, const SyncFreeCpuOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("matrix is not lower triangular with diagonal");
  }
  const Idx m = lower.rows();
  if (b.size() != static_cast<std::size_t>(m) ||
      x.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("b/x size mismatch");
  }

  int workers = options.num_threads;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }

  const auto col_idx = lower.col_idx();
  const auto val = lower.val();

  auto solved = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(m));
  for (Idx i = 0; i < m; ++i) {
    solved[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }

  auto worker = [&](int t) {
    for (Idx i = t; i < m; i += workers) {
      Val left_sum = 0.0;
      const Idx begin = lower.RowBegin(i);
      const Idx end = lower.RowEnd(i);
      for (Idx j = begin; j < end - 1; ++j) {
        const Idx col = col_idx[static_cast<std::size_t>(j)];
        // Busy-wait on the producer's flag. Yield so the schedule also makes
        // progress when workers exceed hardware threads.
        while (solved[static_cast<std::size_t>(col)].load(
                   std::memory_order_acquire) == 0) {
          std::this_thread::yield();
        }
        left_sum +=
            val[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(col)];
      }
      x[static_cast<std::size_t>(i)] =
          (b[static_cast<std::size_t>(i)] - left_sum) /
          val[static_cast<std::size_t>(end - 1)];
      solved[static_cast<std::size_t>(i)].store(1, std::memory_order_release);
    }
  };

  if (workers == 1) {
    worker(0);
    return Status::Ok();
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();
  return Status::Ok();
}

}  // namespace capellini::host
