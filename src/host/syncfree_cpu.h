// Synchronization-free SpTRSV on host threads with C++ atomics — the CPU
// analogue of the paper's flag-based progress scheme. Rows are assigned
// round-robin to workers; each worker solves its rows in ascending order,
// publishing a per-row "solved" flag with release semantics and spinning
// (with yields) on the flags of unsolved dependencies. The static in-order
// schedule makes the spin waits deadlock-free by the same argument as the
// GPU's in-order block dispatch.
#pragma once

#include <span>

#include "matrix/csr.h"
#include "support/status.h"

namespace capellini::host {

struct SyncFreeCpuOptions {
  /// Worker threads. 0 = hardware concurrency.
  int num_threads = 0;
};

Status SolveSyncFreeCpu(const Csr& lower, std::span<const Val> b,
                        std::span<Val> x, const SyncFreeCpuOptions& options = {});

}  // namespace capellini::host
