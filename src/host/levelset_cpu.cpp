#include "host/levelset_cpu.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace capellini::host {
namespace {

/// Solves the rows order[first..last) against the (already complete) x.
void SolveRowRange(const Csr& lower, std::span<const Val> b, std::span<Val> x,
                   std::span<const Idx> rows) {
  const auto col_idx = lower.col_idx();
  const auto val = lower.val();
  for (const Idx i : rows) {
    Val left_sum = 0.0;
    const Idx begin = lower.RowBegin(i);
    const Idx end = lower.RowEnd(i);
    for (Idx j = begin; j < end - 1; ++j) {
      left_sum += val[static_cast<std::size_t>(j)] *
                  x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    x[static_cast<std::size_t>(i)] =
        (b[static_cast<std::size_t>(i)] - left_sum) /
        val[static_cast<std::size_t>(end - 1)];
  }
}

}  // namespace

Status SolveLevelSetCpu(const Csr& lower, std::span<const Val> b,
                        std::span<Val> x, const LevelSets* levels,
                        const LevelSetCpuOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("matrix is not lower triangular with diagonal");
  }
  const Idx m = lower.rows();
  if (b.size() != static_cast<std::size_t>(m) ||
      x.size() != static_cast<std::size_t>(m)) {
    return InvalidArgument("b/x size mismatch");
  }

  LevelSets local;
  if (levels == nullptr) {
    local = ComputeLevelSets(lower);
    levels = &local;
  }

  int workers = options.num_threads;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }

  for (Idx level = 0; level < levels->num_levels(); ++level) {
    const auto rows = levels->LevelRows(level);
    const Idx size = static_cast<Idx>(rows.size());
    if (workers == 1 || size < options.min_parallel_level_size) {
      SolveRowRange(lower, b, x, rows);
      continue;
    }
    // Static split; joining the workers is the inter-level barrier.
    const Idx chunk = (size + workers - 1) / workers;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      const Idx first = std::min<Idx>(size, t * chunk);
      const Idx last = std::min<Idx>(size, first + chunk);
      if (first >= last) break;
      threads.emplace_back([&, first, last] {
        SolveRowRange(lower, b, x,
                      rows.subspan(static_cast<std::size_t>(first),
                                   static_cast<std::size_t>(last - first)));
      });
    }
    for (auto& thread : threads) thread.join();
  }
  return Status::Ok();
}

}  // namespace capellini::host
