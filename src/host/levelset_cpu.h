// Level-set SpTRSV (Algorithm 2) on host threads: levels run one after
// another; rows within a level are split statically across worker threads,
// with a barrier (thread join) between levels.
#pragma once

#include <span>

#include "graph/levels.h"
#include "matrix/csr.h"
#include "support/status.h"

namespace capellini::host {

struct LevelSetCpuOptions {
  /// Worker threads per level. 0 = hardware concurrency.
  int num_threads = 0;
  /// Levels smaller than this are solved inline (thread spawn not worth it).
  Idx min_parallel_level_size = 256;
};

/// Solves lower * x = b with level-set scheduling. Pass precomputed levels to
/// exclude the preprocessing from timing, or nullptr to compute them here.
Status SolveLevelSetCpu(const Csr& lower, std::span<const Val> b,
                        std::span<Val> x, const LevelSets* levels = nullptr,
                        const LevelSetCpuOptions& options = {});

}  // namespace capellini::host
