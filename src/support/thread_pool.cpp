#include "support/thread_pool.h"

#include <algorithm>

namespace capellini {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures any exception into the future; nothing escapes.
    task();
  }
}

}  // namespace capellini
