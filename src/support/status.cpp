#include "support/status.h"

namespace capellini {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kDataLoss:
      return "data_loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "CAPELLINI_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace capellini
