// Tiny command-line flag parser used by the benchmark and example binaries.
//
// Supported syntax:  --name=value   --name value   --flag (bool true)
// Unknown flags are reported as errors so typos don't silently change runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.h"

namespace capellini {

/// Declarative flag set. Register flags with pointers to defaults, then Parse.
class CliFlags {
 public:
  void AddInt(const std::string& name, std::int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv. On "--help", prints usage and returns NotFound("help") so
  /// callers can exit cleanly.
  Status Parse(int argc, char** argv);

  /// Usage text listing all registered flags with their current defaults.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
  };
  Status Assign(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
};

}  // namespace capellini
