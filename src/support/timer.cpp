#include "support/timer.h"

// Header-only; this TU exists so the module shows up in the library and can
// grow non-inline helpers without touching the build.
