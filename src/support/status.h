// Lightweight status / expected-style error handling.
//
// The library does not throw across public API boundaries (see DESIGN.md §6).
// Fallible operations return `Status` or `Expected<T>`; programming errors are
// checked with CAPELLINI_CHECK which aborts with a message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace capellini {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kDeadlock,   // simulator watchdog tripped
  kInternal,
  kIoError,
  kResourceExhausted,  // admission control: queue full / byte budget exceeded
  kDeadlineExceeded,   // request expired before (or while) being served
  kDataLoss,           // solve produced a corrupted / unverifiable solution
};

/// Human-readable name of a StatusCode ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result with an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status DeadlockError(std::string msg) {
  return Status(StatusCode::kDeadlock, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}

/// Value-or-Status. Minimal stand-in for C++23 std::expected.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}        // NOLINT(implicit)
  Expected(Status status) : data_(std::move(status)) {  // NOLINT(implicit)
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Expected<T> constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    check();
    return std::get<T>(data_);
  }
  T& value() & {
    check();
    return std::get<T>(data_);
  }
  T&& value() && {
    check();
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void check() const {
    if (!ok()) {
      std::fprintf(stderr, "Expected<T>::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace internal

/// Abort with a diagnostic if `cond` is false. For programmer errors, not for
/// user-input validation (use Status for the latter).
#define CAPELLINI_CHECK(cond)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::capellini::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                     \
  } while (0)

#define CAPELLINI_CHECK_MSG(cond, msg)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::capellini::internal::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                      \
  } while (0)

/// Propagate a non-OK Status from an expression returning Status.
#define CAPELLINI_RETURN_IF_ERROR(expr)        \
  do {                                         \
    ::capellini::Status status_ = (expr);      \
    if (!status_.ok()) return status_;         \
  } while (0)

}  // namespace capellini
