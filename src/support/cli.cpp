#include "support/cli.h"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace capellini {

void CliFlags::AddInt(const std::string& name, std::int64_t* target,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kInt, target, help};
}
void CliFlags::AddDouble(const std::string& name, double* target,
                         const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, target, help};
}
void CliFlags::AddBool(const std::string& name, bool* target,
                       const std::string& help) {
  flags_[name] = Flag{Kind::kBool, target, help};
}
void CliFlags::AddString(const std::string& name, std::string* target,
                         const std::string& help) {
  flags_[name] = Flag{Kind::kString, target, help};
}

Status CliFlags::Assign(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return NotFound("unknown flag --" + name);
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kInt: {
      std::int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        return InvalidArgument("flag --" + name + " expects an integer, got '" +
                               value + "'");
      }
      *static_cast<std::int64_t*>(flag.target) = v;
      return Status::Ok();
    }
    case Kind::kDouble: {
      try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        *static_cast<double*>(flag.target) = v;
      } catch (...) {
        return InvalidArgument("flag --" + name + " expects a number, got '" +
                               value + "'");
      }
      return Status::Ok();
    }
    case Kind::kBool: {
      bool v = false;
      if (value == "true" || value == "1" || value.empty()) {
        v = true;
      } else if (value == "false" || value == "0") {
        v = false;
      } else {
        return InvalidArgument("flag --" + name + " expects true/false, got '" +
                               value + "'");
      }
      *static_cast<bool*>(flag.target) = v;
      return Status::Ok();
    }
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::Ok();
  }
  return InternalError("unreachable");
}

Status CliFlags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return NotFound("help");
    }
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgument("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return InvalidArgument("flag --" + name + " is missing a value");
      }
    }
    CAPELLINI_RETURN_IF_ERROR(Assign(name, value));
  }
  return Status::Ok();
}

std::string CliFlags::Usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag.kind) {
      case Kind::kInt:
        out << "=<int>      (default " << *static_cast<std::int64_t*>(flag.target)
            << ")";
        break;
      case Kind::kDouble:
        out << "=<num>      (default " << *static_cast<double*>(flag.target)
            << ")";
        break;
      case Kind::kBool:
        out << "[=<bool>]   (default "
            << (*static_cast<bool*>(flag.target) ? "true" : "false") << ")";
        break;
      case Kind::kString:
        out << "=<str>      (default '"
            << *static_cast<std::string*>(flag.target) << "')";
        break;
    }
    out << "  " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace capellini
