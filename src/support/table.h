// Fixed-width ASCII table printer for reproducing the paper's tables.
//
// The benchmark binaries print results in the same row/column layout as the
// paper; this helper keeps the formatting consistent across all of them.
#pragma once

#include <string>
#include <vector>

namespace capellini {

/// Column-aligned text table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Adds one row; the number of cells must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with column separators and a rule under the header.
  std::string ToString() const;

  /// Convenience: formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 2);

  /// Convenience: formats an integer with thousands separators.
  static std::string Int(long long v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace capellini
