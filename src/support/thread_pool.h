// A small fixed-size thread pool for fanning independent work items across
// host cores (the experiment engine's RunMany, the autotune sweep).
//
// Design constraints, in order:
//  * Determinism stays the CALLER's job: tasks run in submission order but
//    finish in any order, so callers that need reproducible output must
//    commit results in submission order (Submit returns a future per task —
//    waiting on them in order is the usual pattern).
//  * Exceptions thrown by a task are captured into its future and rethrown
//    from future::get(), never swallowed and never crossing the worker loop.
//  * A pool with num_threads <= 1 still works (one worker), so callers can
//    pass a user-supplied --threads value straight through.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace capellini {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns the future for its result. Tasks are picked up
  /// in FIFO order; with one worker they also COMPLETE in FIFO order.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard allows
  /// it to return 0 when unknown).
  static int HardwareConcurrency();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace capellini
