// Deterministic, seedable random number generation (xoshiro256** family).
//
// Every generator in the library takes an explicit seed so that corpora,
// matrices and benchmarks are reproducible bit-for-bit across runs and
// platforms (we never use std::random_device or global state).
#pragma once

#include <cstdint>
#include <vector>

namespace capellini {

/// splitmix64 step; used to expand a single seed into a full state.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Geometric-ish positive integer with given mean (at least 1).
  /// Used for drawing row lengths with a controlled average.
  std::int64_t NextPositiveWithMean(double mean);

  /// k distinct values drawn uniformly from [lo, hi], sorted ascending.
  /// Requires hi - lo + 1 >= k.
  std::vector<std::int64_t> SampleDistinctSorted(std::int64_t lo,
                                                 std::int64_t hi,
                                                 std::int64_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace capellini
