// Wall-clock timing for host-side (preprocessing) measurements.
#pragma once

#include <chrono>

namespace capellini {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction / last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed seconds.
  double ElapsedSec() const { return ElapsedMs() / 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace capellini
