#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/status.h"

namespace capellini {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CAPELLINI_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  CAPELLINI_CHECK_MSG(cells.size() == header_.size(),
                      "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << std::string(width[c] + 2, '-') << "+";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string TextTable::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  std::string raw = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace capellini
