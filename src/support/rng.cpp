#include "support/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/status.h"

namespace capellini {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (probability ~0 but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  CAPELLINI_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  CAPELLINI_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::int64_t Rng::NextPositiveWithMean(double mean) {
  if (mean <= 1.0) return 1;
  // Geometric distribution shifted to start at 1 with mean `mean`:
  // success probability p = 1 / mean.
  const double p = 1.0 / mean;
  const double u = NextDouble();
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  const std::int64_t value = 1 + static_cast<std::int64_t>(g);
  return std::max<std::int64_t>(1, value);
}

std::vector<std::int64_t> Rng::SampleDistinctSorted(std::int64_t lo,
                                                    std::int64_t hi,
                                                    std::int64_t k) {
  CAPELLINI_CHECK(k >= 0);
  const std::int64_t span = hi - lo + 1;
  CAPELLINI_CHECK_MSG(span >= k, "not enough distinct values in range");
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k == 0) return out;
  if (k * 2 >= span) {
    // Dense case: Fisher-Yates over the full range, keep first k.
    std::vector<std::int64_t> all(static_cast<std::size_t>(span));
    for (std::int64_t i = 0; i < span; ++i) all[static_cast<std::size_t>(i)] = lo + i;
    for (std::int64_t i = 0; i < k; ++i) {
      const std::int64_t j =
          i + static_cast<std::int64_t>(NextBounded(static_cast<std::uint64_t>(span - i)));
      std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
    }
    out.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    // Sparse case: rejection into a hash set.
    std::unordered_set<std::int64_t> seen;
    seen.reserve(static_cast<std::size_t>(k) * 2);
    while (static_cast<std::int64_t>(seen.size()) < k) {
      seen.insert(NextInt(lo, hi));
    }
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace capellini
