#include "sim/config.h"

#include <vector>

namespace capellini::sim {

DeviceConfig PascalGtx1080() {
  DeviceConfig config;
  config.name = "Pascal";
  config.num_sms = 20;
  config.max_warps_per_sm = 64;
  config.clock_ghz = 1.61;
  config.dram_bandwidth_gbps = 320.0;  // GDDR5X
  config.dram_latency_cycles = 420;
  return config;
}

DeviceConfig VoltaV100() {
  DeviceConfig config;
  config.name = "Volta";
  config.num_sms = 80;
  config.max_warps_per_sm = 64;
  config.clock_ghz = 1.38;
  config.dram_bandwidth_gbps = 900.0;  // HBM2
  config.dram_latency_cycles = 440;
  return config;
}

DeviceConfig TuringRtx2080Ti() {
  DeviceConfig config;
  config.name = "Turing";
  config.num_sms = 68;
  config.max_warps_per_sm = 32;
  config.clock_ghz = 1.545;
  config.dram_bandwidth_gbps = 616.0;  // GDDR6
  config.dram_latency_cycles = 430;
  return config;
}

std::vector<DeviceConfig> PaperPlatforms() {
  return {PascalGtx1080(), VoltaV100(), TuringRtx2080Ti()};
}

DeviceConfig TinyTestDevice() {
  DeviceConfig config;
  config.name = "tiny-test";
  config.num_sms = 2;
  config.max_warps_per_sm = 4;
  config.clock_ghz = 1.0;
  config.dram_bandwidth_gbps = 64.0;
  config.dram_latency_cycles = 20;
  config.launch_overhead_cycles = 100;
  config.max_cycles = 200'000'000ull;
  // Generous default: a single long row can legitimately issue hundreds of
  // thousands of cycles of loads before its first store. Deadlock tests
  // override this with a tight value.
  config.no_progress_cycles = 2'000'000;
  return config;
}

}  // namespace capellini::sim
