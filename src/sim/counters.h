// Performance counters reported by the simulator — the modeled equivalents of
// the nvprof metrics in the paper's §5.3 (instructions executed, stall
// percentage, DRAM read+write bandwidth).
#pragma once

#include <cstdint>

namespace capellini::sim {

struct LaunchStats {
  /// Simulated core cycles for the launch (includes launch overhead).
  std::uint64_t cycles = 0;
  /// Warp-level instructions issued (one per warp per issue, like
  /// nvprof's inst_executed).
  std::uint64_t instructions = 0;
  /// Thread-level instructions (instructions weighted by active lanes —
  /// the gap to 32x instructions is warp underutilization).
  std::uint64_t lane_instructions = 0;
  /// DRAM traffic in bytes (32B-sector granularity) and transactions.
  std::uint64_t dram_bytes = 0;
  std::uint64_t dram_transactions = 0;
  /// Issue-slot accounting for the stall metric: total slots on SMs with
  /// resident work, slots that issued, and slots lost to memory stalls.
  std::uint64_t issue_slots = 0;
  std::uint64_t issue_used = 0;
  std::uint64_t stall_slots = 0;
  /// Number of kernel launches folded into these stats.
  std::uint64_t launches = 0;

  /// Fraction of issue slots lost to dependency stalls, in percent.
  double StallPct() const {
    if (issue_slots == 0) return 0.0;
    return 100.0 * static_cast<double>(stall_slots) /
           static_cast<double>(issue_slots);
  }

  /// Average active lanes per issued instruction (32 = fully utilized warps).
  double AvgActiveLanes() const {
    if (instructions == 0) return 0.0;
    return static_cast<double>(lane_instructions) /
           static_cast<double>(instructions);
  }

  LaunchStats& operator+=(const LaunchStats& other);
};

LaunchStats operator+(LaunchStats a, const LaunchStats& b);

}  // namespace capellini::sim
