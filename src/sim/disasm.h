// Disassembler for device kernels: mnemonics, single-instruction and whole-
// program formatting. Used by debug tooling, the deadlock diagnostics and
// tests (a kernel author can eyeball the emitted program).
#pragma once

#include <string>

#include "sim/isa.h"
#include "sim/kernel.h"

namespace capellini::sim {

/// Mnemonic of an opcode ("ffma", "brnz", ...).
const char* OpName(Op op);

/// One instruction, e.g. "brnz r3 -> 17 (reconv 21)" or "ffma f0, f1, f2".
std::string FormatInstr(const Instr& instr);

/// Whole program with PC labels.
std::string FormatKernel(const Kernel& kernel);

}  // namespace capellini::sim
