// Disassembler for device kernels: mnemonics, single-instruction and whole-
// program formatting. Used by debug tooling, the deadlock diagnostics and
// tests (a kernel author can eyeball the emitted program).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/isa.h"
#include "sim/kernel.h"

namespace capellini::sim {

/// Mnemonic of an opcode ("ffma", "brnz", ...).
const char* OpName(Op op);

/// One instruction, e.g. "brnz r3 -> 17 (reconv 21)" or "ffma f0, f1, f2".
std::string FormatInstr(const Instr& instr);

/// Whole program with PC labels.
std::string FormatKernel(const Kernel& kernel);

/// Per-PC straight-line run lengths: runs[pc] is the number of consecutive
/// batchable (IsStraightLineOp) instructions starting at pc, 0 for
/// non-batchable ops. This is THE definition the interpreter's threaded core
/// fuses batches by (Machine::BuildDecoded consumes it), exposed here so the
/// decoded-trace dump and tests show exactly what the dispatcher executes.
std::vector<std::uint16_t> StraightLineRuns(const std::vector<Instr>& code);

/// Whole program annotated the way the threaded core decodes it: batchable
/// runs bracketed with their fused length, spin regions and publish stores
/// marked. The dump of record for "what does the dispatcher actually do with
/// this kernel".
std::string FormatDecodedKernel(const Kernel& kernel);

}  // namespace capellini::sim
