#include "sim/kernel.h"

#include <cstring>

namespace capellini::sim {
namespace {

bool IsBranch(Op op) { return op == Op::kBrnz || op == Op::kBrz; }

bool ValidIntReg(int r) { return r >= 0 && r < kNumIntRegs; }
bool ValidFltReg(int r) { return r >= 0 && r < kNumFltRegs; }

}  // namespace

Status Kernel::Validate() const {
  if (code.empty()) return InvalidArgument("empty kernel " + name);
  const std::int64_t size = static_cast<std::int64_t>(code.size());
  for (std::int64_t pc = 0; pc < size; ++pc) {
    const Instr& instr = code[static_cast<std::size_t>(pc)];
    if (IsBranch(instr.op) || instr.op == Op::kJmp) {
      if (instr.imm < 0 || instr.imm >= size) {
        return InvalidArgument("branch target out of range in " + name);
      }
      if (IsBranch(instr.op) && (instr.imm2 < 0 || instr.imm2 >= size)) {
        return InvalidArgument("reconvergence PC out of range in " + name);
      }
    }
    if (instr.op == Op::kLdParam &&
        (instr.imm < 0 || instr.imm >= num_params)) {
      return InvalidArgument("param index out of range in " + name);
    }
  }
  for (const auto& [begin, end] : spin_regions) {
    if (begin < 0 || end > size || begin >= end) {
      return InvalidArgument("spin region out of range in " + name);
    }
  }
  for (const std::int32_t pc : publish_pcs) {
    if (pc < 0 || pc >= size) {
      return InvalidArgument("publish PC out of range in " + name);
    }
    const Op op = code[static_cast<std::size_t>(pc)].op;
    if (op != Op::kSt4 && op != Op::kSt8I && op != Op::kSt8F) {
      return InvalidArgument("publish PC is not a store in " + name);
    }
  }
  // Falling off the end of the program is a bug; the last instruction must
  // redirect control or terminate every lane.
  const Op last = code.back().op;
  if (last != Op::kExit && last != Op::kJmp) {
    return InvalidArgument("kernel " + name + " does not end in exit/jmp");
  }
  return Status::Ok();
}

std::uint64_t Kernel::Fingerprint() const {
  // FNV-1a over every field that affects execution or the per-PC decode
  // annotations. Name is deliberately excluded: two kernels differing only
  // in name decode identically.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(code.size()));
  mix(static_cast<std::uint64_t>(num_params));
  for (const Instr& instr : code) {
    mix(static_cast<std::uint64_t>(instr.op));
    mix((static_cast<std::uint64_t>(static_cast<std::uint16_t>(instr.a))
         << 32) |
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(instr.b))
         << 16) |
        static_cast<std::uint64_t>(static_cast<std::uint16_t>(instr.c)));
    mix(static_cast<std::uint64_t>(instr.imm));
    mix(static_cast<std::uint64_t>(instr.imm2));
    std::uint64_t fbits;
    static_assert(sizeof fbits == sizeof instr.fimm);
    std::memcpy(&fbits, &instr.fimm, sizeof fbits);
    mix(fbits);
  }
  mix(static_cast<std::uint64_t>(spin_regions.size()));
  for (const auto& [begin, end] : spin_regions) {
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(begin))
         << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(end)));
  }
  mix(static_cast<std::uint64_t>(publish_pcs.size()));
  for (const std::int32_t pc : publish_pcs) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pc)));
  }
  return h;
}

KernelBuilder::KernelBuilder(std::string name, int num_params)
    : name_(std::move(name)), num_params_(num_params) {
  CAPELLINI_CHECK(num_params_ >= 0);
}

int KernelBuilder::R(const std::string& name) {
  auto it = int_regs_.find(name);
  if (it != int_regs_.end()) return it->second;
  const int idx = static_cast<int>(int_regs_.size());
  CAPELLINI_CHECK_MSG(ValidIntReg(idx), "out of integer registers");
  int_regs_[name] = idx;
  return idx;
}

int KernelBuilder::F(const std::string& name) {
  auto it = flt_regs_.find(name);
  if (it != flt_regs_.end()) return it->second;
  const int idx = static_cast<int>(flt_regs_.size());
  CAPELLINI_CHECK_MSG(ValidFltReg(idx), "out of float registers");
  flt_regs_[name] = idx;
  return idx;
}

Label KernelBuilder::NewLabel() {
  label_pc_.push_back(-1);
  return Label{static_cast<int>(label_pc_.size()) - 1};
}

void KernelBuilder::Bind(Label label) {
  CAPELLINI_CHECK(label.id >= 0 &&
                  label.id < static_cast<int>(label_pc_.size()));
  CAPELLINI_CHECK_MSG(label_pc_[static_cast<std::size_t>(label.id)] == -1,
                      "label bound twice");
  label_pc_[static_cast<std::size_t>(label.id)] = CurrentPc();
}

void KernelBuilder::EmitLabelRef(std::size_t instr_index, bool is_imm2,
                                 Label label) {
  CAPELLINI_CHECK(label.id >= 0 &&
                  label.id < static_cast<int>(label_pc_.size()));
  patches_.push_back(Patch{instr_index, is_imm2, label.id});
}

// Helper macro to keep the emitters compact and uniform.
#define EMIT(op_, a_, b_, c_, imm_, fimm_)                              \
  code_.push_back(Instr{Op::op_, static_cast<std::int16_t>(a_),        \
                        static_cast<std::int16_t>(b_),                 \
                        static_cast<std::int16_t>(c_), (imm_), 0, (fimm_)})

void KernelBuilder::MovI(int rd, std::int64_t imm) { EMIT(kMovI, rd, 0, 0, imm, 0.0); }
void KernelBuilder::Mov(int rd, int ra) { EMIT(kMov, rd, ra, 0, 0, 0.0); }
void KernelBuilder::Add(int rd, int ra, int rb) { EMIT(kAdd, rd, ra, rb, 0, 0.0); }
void KernelBuilder::AddI(int rd, int ra, std::int64_t imm) { EMIT(kAddI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::Sub(int rd, int ra, int rb) { EMIT(kSub, rd, ra, rb, 0, 0.0); }
void KernelBuilder::Mul(int rd, int ra, int rb) { EMIT(kMul, rd, ra, rb, 0, 0.0); }
void KernelBuilder::MulI(int rd, int ra, std::int64_t imm) { EMIT(kMulI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::AndI(int rd, int ra, std::int64_t imm) { EMIT(kAndI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::ShlI(int rd, int ra, std::int64_t imm) { EMIT(kShlI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::ShrI(int rd, int ra, std::int64_t imm) { EMIT(kShrI, rd, ra, 0, imm, 0.0); }

void KernelBuilder::SetLt(int rd, int ra, int rb) { EMIT(kSetLt, rd, ra, rb, 0, 0.0); }
void KernelBuilder::SetLe(int rd, int ra, int rb) { EMIT(kSetLe, rd, ra, rb, 0, 0.0); }
void KernelBuilder::SetEq(int rd, int ra, int rb) { EMIT(kSetEq, rd, ra, rb, 0, 0.0); }
void KernelBuilder::SetNe(int rd, int ra, int rb) { EMIT(kSetNe, rd, ra, rb, 0, 0.0); }
void KernelBuilder::SetGe(int rd, int ra, int rb) { EMIT(kSetGe, rd, ra, rb, 0, 0.0); }
void KernelBuilder::SetGt(int rd, int ra, int rb) { EMIT(kSetGt, rd, ra, rb, 0, 0.0); }
void KernelBuilder::SetLtI(int rd, int ra, std::int64_t imm) { EMIT(kSetLtI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::SetGeI(int rd, int ra, std::int64_t imm) { EMIT(kSetGeI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::SetEqI(int rd, int ra, std::int64_t imm) { EMIT(kSetEqI, rd, ra, 0, imm, 0.0); }
void KernelBuilder::SetNeI(int rd, int ra, std::int64_t imm) { EMIT(kSetNeI, rd, ra, 0, imm, 0.0); }

void KernelBuilder::S2R(int rd, Special special) {
  EMIT(kS2R, rd, static_cast<int>(special), 0, 0, 0.0);
}
void KernelBuilder::LdParam(int rd, int param_index) {
  CAPELLINI_CHECK(param_index >= 0 && param_index < num_params_);
  EMIT(kLdParam, rd, 0, 0, param_index, 0.0);
}

void KernelBuilder::Ld4(int rd, int raddr) { EMIT(kLd4, rd, raddr, 0, 0, 0.0); }
void KernelBuilder::Ld8I(int rd, int raddr) { EMIT(kLd8I, rd, raddr, 0, 0, 0.0); }
void KernelBuilder::Ld8F(int fd, int raddr) { EMIT(kLd8F, fd, raddr, 0, 0, 0.0); }
void KernelBuilder::St4(int raddr, int rs) { EMIT(kSt4, raddr, rs, 0, 0, 0.0); }
void KernelBuilder::St8I(int raddr, int rs) { EMIT(kSt8I, raddr, rs, 0, 0, 0.0); }
void KernelBuilder::St8F(int raddr, int fs) { EMIT(kSt8F, raddr, fs, 0, 0, 0.0); }
void KernelBuilder::AtomAddF8(int fd_old, int raddr, int fs) {
  EMIT(kAtomAddF8, fd_old, raddr, fs, 0, 0.0);
}
void KernelBuilder::AtomAddI4(int rd_old, int raddr, int rs) {
  EMIT(kAtomAddI4, rd_old, raddr, rs, 0, 0.0);
}

void KernelBuilder::FMovI(int fd, double imm) { EMIT(kFMovI, fd, 0, 0, 0, imm); }
void KernelBuilder::FMov(int fd, int fa) { EMIT(kFMov, fd, fa, 0, 0, 0.0); }
void KernelBuilder::FAdd(int fd, int fa, int fb) { EMIT(kFAdd, fd, fa, fb, 0, 0.0); }
void KernelBuilder::FSub(int fd, int fa, int fb) { EMIT(kFSub, fd, fa, fb, 0, 0.0); }
void KernelBuilder::FMul(int fd, int fa, int fb) { EMIT(kFMul, fd, fa, fb, 0, 0.0); }
void KernelBuilder::FDiv(int fd, int fa, int fb) { EMIT(kFDiv, fd, fa, fb, 0, 0.0); }
void KernelBuilder::FFma(int fd, int fa, int fb) { EMIT(kFFma, fd, fa, fb, 0, 0.0); }
void KernelBuilder::ShflDownF(int fd, int fa, int delta) {
  EMIT(kShflDownF, fd, fa, 0, delta, 0.0);
}

void KernelBuilder::Brnz(int pred, Label target, Label reconv) {
  EMIT(kBrnz, pred, 0, 0, 0, 0.0);
  EmitLabelRef(code_.size() - 1, /*is_imm2=*/false, target);
  EmitLabelRef(code_.size() - 1, /*is_imm2=*/true, reconv);
}

void KernelBuilder::Brz(int pred, Label target, Label reconv) {
  EMIT(kBrz, pred, 0, 0, 0, 0.0);
  EmitLabelRef(code_.size() - 1, /*is_imm2=*/false, target);
  EmitLabelRef(code_.size() - 1, /*is_imm2=*/true, reconv);
}

void KernelBuilder::Jmp(Label target) {
  EMIT(kJmp, 0, 0, 0, 0, 0.0);
  EmitLabelRef(code_.size() - 1, /*is_imm2=*/false, target);
}

void KernelBuilder::Fence() { EMIT(kFence, 0, 0, 0, 0, 0.0); }
void KernelBuilder::Exit() { EMIT(kExit, 0, 0, 0, 0, 0.0); }

void KernelBuilder::BeginSpin() {
  CAPELLINI_CHECK_MSG(open_spin_begin_ < 0, "spin regions must not nest");
  open_spin_begin_ = CurrentPc();
}

void KernelBuilder::EndSpin() {
  CAPELLINI_CHECK_MSG(open_spin_begin_ >= 0, "EndSpin without BeginSpin");
  CAPELLINI_CHECK_MSG(CurrentPc() > open_spin_begin_, "empty spin region");
  spin_regions_.emplace_back(open_spin_begin_, CurrentPc());
  open_spin_begin_ = -1;
}

void KernelBuilder::MarkPublish() { publish_pcs_.push_back(CurrentPc()); }

void KernelBuilder::ExitIfZero(int pred) {
  // Guard-exit idiom: the reconvergence point of the branch is the
  // fall-through instruction; lanes that take the branch exit immediately,
  // after which the surviving mask resumes at the fall-through.
  Label lexit = NewLabel();
  Label lcont = NewLabel();
  Brz(pred, lexit, lcont);
  Jmp(lcont);  // fall-through lanes skip the exit island
  Bind(lexit);
  Exit();
  Bind(lcont);
}

#undef EMIT

Kernel KernelBuilder::Build() {
  CAPELLINI_CHECK_MSG(!built_, "Build() called twice");
  built_ = true;
  for (const Patch& patch : patches_) {
    const std::int64_t pc = label_pc_[static_cast<std::size_t>(patch.label)];
    CAPELLINI_CHECK_MSG(pc >= 0, "unbound label in kernel " + name_);
    Instr& instr = code_[patch.instr];
    if (patch.is_imm2) {
      instr.imm2 = pc;
    } else {
      instr.imm = pc;
    }
  }
  CAPELLINI_CHECK_MSG(open_spin_begin_ < 0, "unclosed spin region");
  Kernel kernel;
  kernel.name = name_;
  kernel.code = std::move(code_);
  kernel.num_params = num_params_;
  kernel.spin_regions = std::move(spin_regions_);
  kernel.publish_pcs = std::move(publish_pcs_);
  const Status status = kernel.Validate();
  CAPELLINI_CHECK_MSG(status.ok(), status.ToString());
  return kernel;
}

}  // namespace capellini::sim
