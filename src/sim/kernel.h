// Kernel container and the builder/assembler used to author device kernels.
//
// KernelBuilder provides named registers and labels so that the SpTRSV
// kernels in src/kernels read like the paper's pseudocode. Build() patches
// label references and validates the program.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/isa.h"
#include "support/status.h"

namespace capellini::sim {

/// An assembled device program.
struct Kernel {
  std::string name;
  std::vector<Instr> code;
  int num_params = 0;

  /// Author-declared busy-wait regions, as half-open PC ranges [begin, end).
  /// The tracing layer attributes instructions issued inside them (and the
  /// stalls of their poll loads) to the busy-wait-spin bucket; the first PC
  /// of a region marks one poll iteration.
  std::vector<std::pair<std::int32_t, std::int32_t>> spin_regions;
  /// PCs of stores that make a solution component visible to other threads
  /// (the "write first" publish). Drives the solve-progress timeline.
  std::vector<std::int32_t> publish_pcs;

  /// Structural validation: register indices in range, branch targets and
  /// reconvergence PCs inside the program, program ends in control flow.
  Status Validate() const;

  /// FNV-1a content hash over the code and the spin/publish annotations.
  /// The interpreter's decoded-trace cache keys on (kernel pointer,
  /// fingerprint): a pointer reused for different content — or a kernel
  /// mutated in place — invalidates the cached handler stream, exactly as
  /// the per-launch predecode tables used to be rebuilt.
  std::uint64_t Fingerprint() const;
};

/// Branch/jump target. Obtain with KernelBuilder::NewLabel, place with Bind.
struct Label {
  int id = -1;
};

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name, int num_params);

  /// Named integer register (allocated on first use).
  int R(const std::string& name);
  /// Named double register (allocated on first use).
  int F(const std::string& name);

  Label NewLabel();
  /// Binds `label` to the next emitted instruction.
  void Bind(Label label);

  // --- Integer ALU ---
  void MovI(int rd, std::int64_t imm);
  void Mov(int rd, int ra);
  void Add(int rd, int ra, int rb);
  void AddI(int rd, int ra, std::int64_t imm);
  void Sub(int rd, int ra, int rb);
  void Mul(int rd, int ra, int rb);
  void MulI(int rd, int ra, std::int64_t imm);
  void AndI(int rd, int ra, std::int64_t imm);
  void ShlI(int rd, int ra, std::int64_t imm);
  void ShrI(int rd, int ra, std::int64_t imm);

  // --- Comparisons (0/1 result) ---
  void SetLt(int rd, int ra, int rb);
  void SetLe(int rd, int ra, int rb);
  void SetEq(int rd, int ra, int rb);
  void SetNe(int rd, int ra, int rb);
  void SetGe(int rd, int ra, int rb);
  void SetGt(int rd, int ra, int rb);
  void SetLtI(int rd, int ra, std::int64_t imm);
  void SetGeI(int rd, int ra, std::int64_t imm);
  void SetEqI(int rd, int ra, std::int64_t imm);
  void SetNeI(int rd, int ra, std::int64_t imm);

  // --- Specials & params ---
  void S2R(int rd, Special special);
  void LdParam(int rd, int param_index);

  // --- Memory ---
  void Ld4(int rd, int raddr);
  void Ld8I(int rd, int raddr);
  void Ld8F(int fd, int raddr);
  void St4(int raddr, int rs);
  void St8I(int raddr, int rs);
  void St8F(int raddr, int fs);
  void AtomAddF8(int fd_old, int raddr, int fs);
  void AtomAddI4(int rd_old, int raddr, int rs);

  // --- Floating point ---
  void FMovI(int fd, double imm);
  void FMov(int fd, int fa);
  void FAdd(int fd, int fa, int fb);
  void FSub(int fd, int fa, int fb);
  void FMul(int fd, int fa, int fb);
  void FDiv(int fd, int fa, int fb);
  void FFma(int fd, int fa, int fb);
  void ShflDownF(int fd, int fa, int delta);

  // --- Control flow ---
  /// Branch if R[pred] != 0 to `target`; divergent lanes reconverge at
  /// `reconv`.
  void Brnz(int pred, Label target, Label reconv);
  /// Branch if R[pred] == 0 to `target`; reconvergence at `reconv`.
  void Brz(int pred, Label target, Label reconv);
  void Jmp(Label target);
  void Fence();
  void Exit();

  /// Convenience: if R[pred] is zero, the lane exits (guard clause used to
  /// round thread counts up to full warps).
  void ExitIfZero(int pred);

  // --- Trace annotations (no code emitted; metadata for src/trace) ---
  /// Marks the instructions emitted between BeginSpin and EndSpin as a
  /// busy-wait region. Regions must not nest.
  void BeginSpin();
  void EndSpin();
  /// Marks the NEXT emitted instruction (a store) as the publish of a
  /// solution component.
  void MarkPublish();

  /// Number of instructions emitted so far (== PC of the next instruction).
  int CurrentPc() const { return static_cast<int>(code_.size()); }

  /// Resolves labels and validates. Aborts on malformed programs (kernels are
  /// compiled into the binary; a malformed one is a programming error).
  Kernel Build();

 private:
  struct Patch {
    std::size_t instr;
    bool is_imm2;  // patch imm2 (reconvergence) instead of imm (target)
    int label;
  };

  void EmitLabelRef(std::size_t instr_index, bool is_imm2, Label label);

  std::string name_;
  int num_params_;
  std::vector<Instr> code_;
  std::map<std::string, int> int_regs_;
  std::map<std::string, int> flt_regs_;
  std::vector<std::int64_t> label_pc_;  // -1 while unbound
  std::vector<Patch> patches_;
  std::vector<std::pair<std::int32_t, std::int32_t>> spin_regions_;
  std::vector<std::int32_t> publish_pcs_;
  int open_spin_begin_ = -1;
  bool built_ = false;
};

}  // namespace capellini::sim
