// The SIMT interpreter: executes kernels on the simulated device.
//
// Execution model (the mechanisms the paper's analysis depends on):
//  * Warps of 32 lanes execute in lock step. Divergent branches are
//    serialized with a reconvergence stack (explicit reconvergence PCs from
//    the kernel author). A lane that busy-waits therefore blocks the lanes
//    parked at the reconvergence point — exactly the deadlock of Challenge 1.
//  * Each SM issues `issue_per_cycle` warp-instructions per cycle, round-robin
//    over its ready resident warps. Warps stalled on memory do not issue.
//  * Residency: at most max_warps_per_sm warps per SM. Thread blocks are
//    dispatched IN ORDER as slots free — the invariant the synchronization-
//    free algorithms rely on (a row only waits on earlier rows, which are
//    resident or finished).
//  * Global memory: per warp memory instruction, the distinct 32-byte sectors
//    touched by the active lanes become DRAM transactions; transactions queue
//    on device bandwidth and complete after the configured latency. Loads and
//    atomics stall the warp until completion; stores are fire-and-forget.
//    Values are read/written at issue time (sequentially consistent), so
//    timing and data never race in the simulation.
//  * Watchdogs: a cycle limit plus a no-progress detector (no store, atomic,
//    warp completion or dispatch for N cycles) that converts intra-warp
//    busy-wait deadlocks into a reportable error.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <queue>
#include <span>
#include <tuple>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "sim/kernel.h"
#include "sim/memory.h"
#include "support/status.h"
#include "trace/sink.h"

namespace capellini::sim {

class FaultInjector;  // sim/fault.h

/// Kernel launch geometry.
struct LaunchDims {
  std::int64_t num_threads = 0;     // total threads (rounded up to warps)
  int threads_per_block = 256;      // dispatch granularity
};

/// A write scheduled to land in device memory at a given simulated cycle —
/// the fleet layer's model of a peer device publishing a boundary x-value:
/// the f64 solution component and the i32 get_value flag become visible
/// together once the simulated clock reaches `cycle`, so consumer rows spin
/// on the flag exactly as they would on an on-device producer. An address of
/// 0 skips that half (0 is below the allocation base, never a real address).
struct ExternalStore {
  std::uint64_t cycle = 0;
  std::uint64_t f64_addr = 0;
  double f64_value = 0.0;
  std::uint64_t i32_addr = 0;
  std::int32_t i32_value = 0;
};

class Machine {
 public:
  Machine(DeviceConfig config, DeviceMemory* memory);

  const DeviceConfig& config() const { return config_; }

  /// Attaches an execution-trace observer (nullptr = tracing off, the
  /// default). The sink sees dispatches, warp lifetimes, issues, memory
  /// stalls, publishes and deadlock dumps; it never affects timing — stats
  /// and solutions are identical with and without a sink.
  void set_trace_sink(trace::TraceSink* sink) { trace_ = sink; }

  /// Attaches a fault injector (nullptr = injection off, the default). The
  /// same seam contract as the trace sink: with no injector — or an attached
  /// injector whose rates are all zero — timing, counters and memory contents
  /// are bit-identical to an untouched machine. See sim/fault.h for the
  /// hazards it can inject.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Schedules peer-device writes for the NEXT launch only (cleared when that
  /// launch ends). Stores are applied when the simulated clock first reaches
  /// their cycle; each application counts as forward progress, and the
  /// no-progress watchdog will not trip while arrivals are still pending —
  /// a warp legitimately spinning on a remote flag is not a deadlock.
  void set_external_stores(std::vector<ExternalStore> stores) {
    ext_ = std::move(stores);
  }

  /// Runs `kernel` to completion and returns its counters.
  /// Fails with StatusCode::kDeadlock when the watchdog trips.
  Expected<LaunchStats> Launch(const Kernel& kernel, LaunchDims dims,
                               std::span<const std::int64_t> params);

 private:
  struct Frame {
    std::int32_t reconv_pc;
    std::int32_t other_pc;
    std::uint32_t other_mask;
  };

  struct Warp {
    std::int32_t pc = 0;
    std::uint32_t active = 0;
    std::int64_t base_tid = 0;
    std::int64_t block_id = 0;
    bool alive = false;
    std::vector<Frame> stack;
    // Lane-major register files.
    std::vector<std::int64_t> r;  // 32 * kNumIntRegs
    std::vector<double> f;        // 32 * kNumFltRegs
    // Spin-poll fast path: a converged warp spinning on a poll load re-issues
    // the same per-lane addresses every iteration, so the deduplicated sector
    // list is cached here, keyed by (pc, active mask, addresses). The address
    // comparison makes the cache self-validating; accounting is unchanged —
    // only the O(lanes x sectors) dedup scan is skipped.
    std::int32_t poll_pc = -1;
    std::uint32_t poll_mask = 0;
    std::uint8_t poll_count = 0;
    std::uint8_t poll_num_sectors = 0;
    std::array<std::uint64_t, 32> poll_addresses;
    std::array<std::uint64_t, 32> poll_sectors;
  };

  struct Sm {
    std::vector<int> free_slots;       // indices into warp pool
    std::deque<int> ready;             // warps ready to issue
    int resident = 0;
  };

  // One step of one warp; returns false if the kernel hit an internal error.
  void ExecuteInstruction(int warp_index, int sm_index);

  // Reconvergence bookkeeping (see DESIGN.md / header comment).
  void SyncAtReconv(Warp& warp);
  void UnwindIfEmpty(Warp& warp, int sm_index);

  // Memory transaction accounting result: completion cycle plus the detail
  // the tracing layer attributes stalls with.
  struct MemTxn {
    std::uint64_t ready_at = 0;
    std::uint32_t transactions = 0;
    std::uint32_t misses = 0;
    // Backlog found on the L2/DRAM queues (bandwidth-bound share of the wait).
    std::uint64_t queue_cycles = 0;
  };
  MemTxn AccountMemory(std::span<const std::uint64_t> addresses,
                       std::size_t count, int width_bytes,
                       bool is_atomic = false);
  // The two halves of AccountMemory: the duplicate-sector scan and the
  // queue/latency accounting. Split so the spin-poll fast path can reuse a
  // cached sector list and skip the scan.
  static std::size_t DedupSectors(const std::uint64_t* addresses,
                                  std::size_t count,
                                  std::uint64_t sector_bytes,
                                  std::uint64_t* sectors);
  MemTxn AccountSectors(const std::uint64_t* sectors, std::size_t num_sectors,
                        bool is_atomic);

  // L2 sector tracking (infinite capacity; see DeviceConfig comment).
  bool TouchSector(std::uint64_t sector);

  void FinishWarp(int warp_index, int sm_index);

  std::int64_t& RegI(Warp& warp, int lane, int reg) {
    return warp.r[static_cast<std::size_t>(lane) * kNumIntRegs +
                  static_cast<std::size_t>(reg)];
  }
  double& RegF(Warp& warp, int lane, int reg) {
    return warp.f[static_cast<std::size_t>(lane) * kNumFltRegs +
                  static_cast<std::size_t>(reg)];
  }

  DeviceConfig config_;
  DeviceMemory* memory_;
  // CAPELLINI_TRACE=1 per-instruction stderr dump, read once at construction.
  bool debug_trace_ = false;

  // Per-launch state.
  const Kernel* kernel_ = nullptr;
  // Predecoded copy of the kernel: each instruction fused with its per-PC
  // annotation bits (spin region / spin head / publish), so the issue loop
  // reads one table. Rebuilt at every Launch (O(code size), trivial next to
  // the launch overhead).
  struct DecodedInstr {
    Instr instr;
    std::uint8_t flags = 0;
  };
  std::vector<DecodedInstr> decoded_;
  std::vector<std::int64_t> params_;
  std::int64_t grid_threads_ = 0;
  int threads_per_block_ = 256;

  std::vector<Warp> warp_pool_;
  std::vector<Sm> sms_;
  // (ready_at, warp, sm) entries for memory-stalled warps.
  using WakeEntry = std::tuple<std::uint64_t, int, int>;
  std::priority_queue<WakeEntry, std::vector<WakeEntry>, std::greater<>>
      wake_;

  std::uint64_t cycle_ = 0;
  double dram_busy_until_ = 0.0;
  double l2_busy_until_ = 0.0;
  std::uint64_t last_progress_cycle_ = 0;
  std::int64_t alive_warps_ = 0;
  LaunchStats stats_;
  std::vector<std::uint64_t> l2_sectors_;  // bitmap, one bit per sector
  // Indices of l2_sectors_ words that are nonzero, so a re-launch clears
  // O(touched) words instead of std::fill over the whole bitmap.
  std::vector<std::size_t> l2_touched_words_;

  // Tracing (see trace/sink.h). The per-PC spin/publish annotations the sink
  // consumes live in decoded_[pc].flags.
  trace::TraceSink* trace_ = nullptr;
  int launch_index_ = -1;

  // Fault injection (see sim/fault.h). Null = off; every hook site is one
  // pointer test.
  FaultInjector* faults_ = nullptr;

  // Scheduled peer-device writes (sorted by cycle at Launch; applied by the
  // main loop). ext_next_ is the first not-yet-applied entry.
  std::vector<ExternalStore> ext_;
  std::size_t ext_next_ = 0;
};

}  // namespace capellini::sim
