// The SIMT interpreter: executes kernels on the simulated device.
//
// Execution model (the mechanisms the paper's analysis depends on):
//  * Warps of 32 lanes execute in lock step. Divergent branches are
//    serialized with a reconvergence stack (explicit reconvergence PCs from
//    the kernel author). A lane that busy-waits therefore blocks the lanes
//    parked at the reconvergence point — exactly the deadlock of Challenge 1.
//  * Each SM issues `issue_per_cycle` warp-instructions per cycle, round-robin
//    over its ready resident warps. Warps stalled on memory do not issue.
//  * Residency: at most max_warps_per_sm warps per SM. Thread blocks are
//    dispatched IN ORDER as slots free — the invariant the synchronization-
//    free algorithms rely on (a row only waits on earlier rows, which are
//    resident or finished).
//  * Global memory: per warp memory instruction, the distinct 32-byte sectors
//    touched by the active lanes become DRAM transactions; transactions queue
//    on device bandwidth and complete after the configured latency. Loads and
//    atomics stall the warp until completion; stores are fire-and-forget.
//    Values are read/written at issue time (sequentially consistent), so
//    timing and data never race in the simulation.
//  * Watchdogs: a cycle limit plus a no-progress detector (no store, atomic,
//    warp completion or dispatch for N cycles) that converts intra-warp
//    busy-wait deadlocks into a reportable error.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"
#include "sim/kernel.h"
#include "sim/memory.h"
#include "support/status.h"
#include "trace/sink.h"

namespace capellini::sim {

class FaultInjector;  // sim/fault.h

/// Kernel launch geometry.
struct LaunchDims {
  std::int64_t num_threads = 0;     // total threads (rounded up to warps)
  int threads_per_block = 256;      // dispatch granularity
};

/// A write scheduled to land in device memory at a given simulated cycle —
/// the fleet layer's model of a peer device publishing a boundary x-value:
/// the f64 solution component and the i32 get_value flag become visible
/// together once the simulated clock reaches `cycle`, so consumer rows spin
/// on the flag exactly as they would on an on-device producer. An address of
/// 0 skips that half (0 is below the allocation base, never a real address).
struct ExternalStore {
  std::uint64_t cycle = 0;
  std::uint64_t f64_addr = 0;
  double f64_value = 0.0;
  std::uint64_t i32_addr = 0;
  std::int32_t i32_value = 0;
};

class Machine {
 public:
  Machine(DeviceConfig config, DeviceMemory* memory);

  const DeviceConfig& config() const { return config_; }

  /// Attaches an execution-trace observer (nullptr = tracing off, the
  /// default). The sink sees dispatches, warp lifetimes, issues, memory
  /// stalls, publishes and deadlock dumps; it never affects timing — stats
  /// and solutions are identical with and without a sink.
  void set_trace_sink(trace::TraceSink* sink) { trace_ = sink; }

  /// Attaches a fault injector (nullptr = injection off, the default). The
  /// same seam contract as the trace sink: with no injector — or an attached
  /// injector whose rates are all zero — timing, counters and memory contents
  /// are bit-identical to an untouched machine. See sim/fault.h for the
  /// hazards it can inject.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Schedules peer-device writes for the NEXT launch only (cleared when that
  /// launch ends). Stores are applied when the simulated clock first reaches
  /// their cycle; each application counts as forward progress, and the
  /// no-progress watchdog will not trip while arrivals are still pending —
  /// a warp legitimately spinning on a remote flag is not a deadlock.
  void set_external_stores(std::vector<ExternalStore> stores) {
    ext_ = std::move(stores);
  }

  /// Runs `kernel` to completion and returns its counters.
  /// Fails with StatusCode::kDeadlock when the watchdog trips.
  Expected<LaunchStats> Launch(const Kernel& kernel, LaunchDims dims,
                               std::span<const std::int64_t> params);

  /// Test-only: routes subsequent launches through the legacy scalar core
  /// instead of the threaded dispatcher. The scalar loop survives solely as
  /// the reference oracle interp_equivalence_test and bench_interp's
  /// identity gate compare the threaded core against; no production path
  /// selects it (there is deliberately no public config knob). Process-wide
  /// so the oracle can be flipped around a Solve without plumbing test state
  /// through SolverOptions.
  static void set_scalar_core_for_test(bool scalar);

 private:
  // The threaded core's opcode handlers live in machine.cpp as static
  // members of Interp; they touch the same private state the scalar switch
  // does.
  friend struct Interp;

  struct Frame {
    std::int32_t reconv_pc;
    std::int32_t other_pc;
    std::uint32_t other_mask;
  };

  struct Warp {
    std::int32_t pc = 0;
    std::uint32_t active = 0;
    std::int64_t base_tid = 0;
    std::int64_t block_id = 0;
    bool alive = false;
    // Issue-slot credit for a pre-executed straight-line run (threaded core
    // only). When the dispatcher executes a run of n batchable instructions
    // in one host step it sets skip = n - 1; the next n - 1 times this warp
    // is popped from the ready queue, the slot is charged and skip
    // decremented WITHOUT executing anything, so the simulated issue
    // schedule is cycle-identical to stepping one instruction at a time.
    // The architectural PC during the drain is pc - skip.
    std::uint16_t skip = 0;
    std::vector<Frame> stack;
    // Register-major (SoA) register files: element [reg * 32 + lane]. All 32
    // values of one register are contiguous, so a converged op is a unit-
    // stride 32-wide loop the compiler can vectorize.
    std::vector<std::int64_t> r;  // kNumIntRegs * 32
    std::vector<double> f;        // kNumFltRegs * 32
    // Spin-poll fast path: a converged warp spinning on a poll load re-issues
    // the same per-lane addresses every iteration, so the deduplicated sector
    // list is cached here, keyed by (pc, active mask, addresses). The address
    // comparison makes the cache self-validating; accounting is unchanged —
    // only the O(lanes x sectors) dedup scan is skipped.
    std::int32_t poll_pc = -1;
    std::uint32_t poll_mask = 0;
    std::uint8_t poll_count = 0;
    std::uint8_t poll_num_sectors = 0;
    std::array<std::uint64_t, 32> poll_addresses;
    std::array<std::uint64_t, 32> poll_sectors;
  };

  /// Fixed-capacity FIFO of warp-pool indices — the SM's round-robin issue
  /// queue. A resident warp is in at most one queue (ready or wake) at a
  /// time, so capacity is bounded by max_warps_per_sm; the power-of-two ring
  /// replaces the std::deque that dominated the issue loop's host time.
  class ReadyRing {
   public:
    void Reset(int capacity) {
      std::size_t size = 1;
      while (size < static_cast<std::size_t>(capacity)) size <<= 1;
      if (buffer_.size() != size) buffer_.assign(size, 0);
      mask_ = static_cast<std::uint32_t>(size - 1);
      head_ = 0;
      count_ = 0;
    }
    bool empty() const { return count_ == 0; }
    void push_back(int warp) {
      buffer_[(head_ + count_) & mask_] = warp;
      ++count_;
    }
    int pop_front() {
      const int warp = buffer_[head_];
      head_ = (head_ + 1) & mask_;
      --count_;
      return warp;
    }

   private:
    std::vector<std::int32_t> buffer_;
    std::uint32_t head_ = 0;
    std::uint32_t count_ = 0;
    std::uint32_t mask_ = 0;
  };

  struct Sm {
    std::vector<int> free_slots;       // indices into warp pool
    ReadyRing ready;                   // warps ready to issue
    int resident = 0;
  };

  // One step of one warp on the legacy scalar core (per-step switch over
  // Op). No production path reaches it anymore: trace-attached and
  // CAPELLINI_TRACE=1 runs go through the threaded core with run fusion
  // disabled (per-issue hooks fire at what would have been the fused-run
  // boundaries). The scalar loop is kept only as the equivalence oracle,
  // selected by set_scalar_core_for_test.
  void ExecuteInstruction(int warp_index, int sm_index);

  // One dispatch of one warp on the threaded core: either a fused
  // straight-line run (batchable ops executed across all lanes over the SoA
  // register views, remaining issue slots charged via Warp::skip) or a
  // single step through the instruction's handler pointer.
  void ExecuteThreaded(int warp_index, int sm_index);

  // Reconvergence bookkeeping (see DESIGN.md / header comment).
  void SyncAtReconv(Warp& warp);
  void UnwindIfEmpty(Warp& warp, int sm_index);

  // Memory transaction accounting result: completion cycle plus the detail
  // the tracing layer attributes stalls with.
  struct MemTxn {
    std::uint64_t ready_at = 0;
    std::uint32_t transactions = 0;
    std::uint32_t misses = 0;
    // Backlog found on the L2/DRAM queues (bandwidth-bound share of the wait).
    std::uint64_t queue_cycles = 0;
  };
  MemTxn AccountMemory(std::span<const std::uint64_t> addresses,
                       std::size_t count, int width_bytes,
                       bool is_atomic = false);
  // The two halves of AccountMemory: the duplicate-sector scan and the
  // queue/latency accounting. Split so the spin-poll fast path can reuse a
  // cached sector list and skip the scan. Takes the sector size as a shift
  // (sector_bytes is constrained to a power of two) — the per-lane divide
  // was a measurable share of interpreter time.
  static std::size_t DedupSectors(const std::uint64_t* addresses,
                                  std::size_t count, int sector_shift,
                                  std::uint64_t* sectors);
  MemTxn AccountSectors(const std::uint64_t* sectors, std::size_t num_sectors,
                        bool is_atomic);

  // L2 sector tracking (infinite capacity; see DeviceConfig comment).
  bool TouchSector(std::uint64_t sector);

  void FinishWarp(int warp_index, int sm_index);

  std::int64_t& RegI(Warp& warp, int lane, int reg) {
    return warp.r[static_cast<std::size_t>(reg) * 32 +
                  static_cast<std::size_t>(lane)];
  }
  double& RegF(Warp& warp, int lane, int reg) {
    return warp.f[static_cast<std::size_t>(reg) * 32 +
                  static_cast<std::size_t>(lane)];
  }

  // Read-only launch context threaded through the handler functions (the
  // scalar core reads the same data off the Machine members directly).
  struct ExecCtx {
    const std::int64_t* params;
    std::int64_t grid_threads;
    std::int64_t threads_per_block;
  };
  struct DecodedInstr;
  // Converged-warp handler: executes one batchable op across the lanes of
  // `warp` over the SoA register views. The FULL variant loops all 32 lanes
  // unconditionally; the masked variant iterates the active mask.
  using AluFn = void (*)(Warp& warp, const Instr& instr, const ExecCtx& ctx);
  // Generic single-step handler: executes one instruction (memory, control
  // flow, or a non-fusable ALU step) and returns the next PC. Memory
  // completion lands in `mem` exactly as in the scalar core.
  using StepFn = std::int32_t (*)(Machine& m, Warp& warp,
                                  const DecodedInstr& d, int sm_index,
                                  MemTxn& mem, const ExecCtx& ctx);

  DeviceConfig config_;
  /// log2(config_.sector_bytes), precomputed once: DedupSectors maps a lane
  /// address to its sector with a shift instead of a 64-bit divide.
  int sector_shift_ = 5;
  /// config_.BytesPerCycle() / L2BytesPerCycle(), computed once at
  /// construction: each is an FP divide AccountSectors would otherwise
  /// re-derive per memory transaction (hundreds of millions per solve).
  /// Cached values are the exact same doubles, so timing is unchanged.
  double dram_bytes_per_cycle_ = 1.0;
  double l2_bytes_per_cycle_ = 1.0;
  DeviceMemory* memory_;
  // CAPELLINI_TRACE=1 per-instruction stderr dump, read once at construction.
  bool debug_trace_ = false;

  // Per-launch state.
  const Kernel* kernel_ = nullptr;
  // Predecoded copy of the kernel: each instruction fused with its per-PC
  // annotation bits (spin region / spin head / publish), its straight-line
  // run length, and its handler pointers, so the issue loop reads one table
  // and never switches on Op. Two handler streams per decoded kernel — the
  // full-mask (converged) AluFn and the masked AluFn — cover the two warp
  // shapes a batch can run under; warps with identical control shape share
  // the stream.
  struct DecodedInstr {
    Instr instr;
    std::uint8_t flags = 0;
    // Number of consecutive batchable (IsStraightLineOp) instructions
    // starting at this PC; 0 for non-batchable ops. A run executes in one
    // dispatch on the threaded core.
    std::uint16_t run = 0;
    AluFn alu_full = nullptr;
    AluFn alu_masked = nullptr;
    StepFn step = nullptr;
  };
  // A decoded handler stream, cached across launches and validated by the
  // kernel's content fingerprint (see Kernel::Fingerprint). Invalidation
  // mirrors the old per-launch predecode: content change => rebuild.
  struct DecodedKernel {
    std::uint64_t fingerprint = 0;
    std::vector<DecodedInstr> code;
  };
  // Returns the cached decode for `kernel`, building or rebuilding it if the
  // pointer is new or the fingerprint no longer matches.
  const DecodedKernel* DecodeKernel(const Kernel& kernel);
  static void BuildDecoded(const Kernel& kernel, std::uint64_t fingerprint,
                           DecodedKernel& out);

  std::vector<std::pair<const Kernel*, std::unique_ptr<DecodedKernel>>>
      decode_cache_;
  const DecodedKernel* decoded_ = nullptr;  // decode of the current launch
  std::vector<std::int64_t> params_;
  std::int64_t grid_threads_ = 0;
  int threads_per_block_ = 256;

  std::vector<Warp> warp_pool_;
  std::vector<Sm> sms_;
  // (ready_at, warp, sm) parking for memory-stalled warps. Every load that
  // completes past cycle+1 parks here and is popped exactly once — hundreds
  // of millions of entries per solve — so this is a calendar wheel (one
  // bucket per cycle mod kWakeWheel, O(1) park/wake) instead of a priority
  // queue (O(log stalled) with a cache-missy heap). Entries beyond the
  // wheel horizon overflow into a small heap and re-enter the wheel as the
  // horizon advances. Pop order is identical to the old priority queue:
  // cycle stepping and exact-min fast-forward make drains monotonic in
  // ready_at (each bucket holds exactly one time), and a bucket is sorted
  // by (warp, sm) before delivery — a warp parks at most once, so this
  // reproduces the heap's (ready_at, warp, sm) order bit-for-bit.
  using WakeEntry = std::tuple<std::uint64_t, int, int>;
  static constexpr std::uint64_t kWakeWheel = 4096;  // power of two
  std::vector<std::vector<std::pair<int, int>>> wake_wheel_;  // (warp, sm)
  std::vector<std::uint64_t> wake_wheel_bits_;  // bucket occupancy bitmap
  std::size_t wake_wheel_count_ = 0;
  std::priority_queue<WakeEntry, std::vector<WakeEntry>, std::greater<>>
      wake_far_;

  bool WakePending() const {
    return wake_wheel_count_ != 0 || !wake_far_.empty();
  }
  void WakePush(std::uint64_t ready_at, int warp, int sm) {
    if (ready_at >= cycle_ + kWakeWheel) {
      wake_far_.push(WakeEntry{ready_at, warp, sm});
      return;
    }
    const std::uint64_t b = ready_at & (kWakeWheel - 1);
    wake_wheel_[b].emplace_back(warp, sm);
    wake_wheel_bits_[b >> 6] |= 1ull << (b & 63);
    ++wake_wheel_count_;
  }
  void WakeReset();
  std::uint64_t NextWakeTime() const;

  std::uint64_t cycle_ = 0;
  double dram_busy_until_ = 0.0;
  double l2_busy_until_ = 0.0;
  std::uint64_t last_progress_cycle_ = 0;
  std::int64_t alive_warps_ = 0;
  /// Set by FinishWarp; Launch's issue loop re-attempts block dispatch only
  /// when a slot actually freed (a failed dispatch scan is stateless, so
  /// skipping it never changes the schedule).
  bool sm_slots_freed_ = false;
  /// One bit per SM, set while that SM's ready ring is non-empty. The issue
  /// scan walks set bits in ascending SM order (countr_zero), which visits
  /// exactly the SMs the full sweep would have issued from, in the same
  /// order — spin-heavy phases wake only a handful of warps per cycle, so
  /// this skips the (num_sms - few) guaranteed-stalled SM visits.
  std::vector<std::uint64_t> ready_sm_mask_;
  /// SMs with resident > 0; idle-but-resident SMs charge their issue slots
  /// as stalls in closed form instead of being visited.
  int resident_sm_count_ = 0;

  void MarkSmReady(int sm_index) {
    ready_sm_mask_[static_cast<std::size_t>(sm_index) >> 6] |=
        1ull << (sm_index & 63);
  }
  LaunchStats stats_;
  std::vector<std::uint64_t> l2_sectors_;  // bitmap, one bit per sector
  // Indices of l2_sectors_ words that are nonzero, so a re-launch clears
  // O(touched) words instead of std::fill over the whole bitmap.
  std::vector<std::size_t> l2_touched_words_;

  // Tracing (see trace/sink.h). The per-PC spin/publish annotations the sink
  // consumes live in decoded_->code[pc].flags.
  trace::TraceSink* trace_ = nullptr;
  int launch_index_ = -1;

  // Fault injection (see sim/fault.h). Null = off; every hook site is one
  // pointer test.
  FaultInjector* faults_ = nullptr;

  // Test-only core selector (see set_scalar_core_for_test).
  static std::atomic<bool> scalar_core_for_test_;

  // Scheduled peer-device writes (sorted by cycle at Launch; applied by the
  // main loop). ext_next_ is the first not-yet-applied entry.
  std::vector<ExternalStore> ext_;
  std::size_t ext_next_ = 0;
};

}  // namespace capellini::sim
