// Deterministic fault injection for the simulated GPU.
//
// The paper's sync-free kernels assume every value/flag publish lands and
// every spin-wait eventually observes it. On real GPUs those are
// memory-ordering and forward-progress assumptions, not guarantees. A
// FaultInjector attached to sim::Machine (set_fault_injector, the same seam
// as the TraceSink) injects the hazards the paper waves away:
//
//  * dropped publishes   — a MarkPublish-annotated store vanishes before
//                          reaching memory (bandwidth is still spent). For
//                          the flag-based kernels this starves every
//                          dependent row's spin-wait: the no-progress
//                          watchdog converts it into kDeadlock. For
//                          level-set, the solution silently loses a value.
//  * bit-flipped stores  — an f64 store lands with its low exponent bit
//                          flipped (value halved or doubled): a loud silent
//                          corruption only post-solve verification catches.
//  * stuck warps         — a ready warp is parked for `stuck_cycles` instead
//                          of issuing (scheduling jitter; timing-only).
//  * delayed memory      — a load/atomic completion is pushed
//                          `mem_delay_cycles` further out (timing-only).
//
// Determinism is the contract: every decision is a pure hash of
// (plan.seed, fault kind, per-kind event counter), so the same plan against
// the same workload injects the same faults at the same events — same seed
// => same faults => same recovery path. A null injector, or an attached
// injector whose rates are all zero, leaves timing and results bit-identical
// to an untouched machine (bench_faults gates this with a checksum).
//
// Like trace/sink.h this header sits below the support layer: sim/machine
// includes it, so it depends only on the standard library and
// support/status.h.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "support/status.h"

namespace capellini::sim {

enum class FaultKind {
  kDropPublish = 0,
  kBitFlipStore,
  kStuckWarp,
  kMemDelay,
};
inline constexpr int kNumFaultKinds = 4;

const char* FaultKindName(FaultKind kind);

/// What to inject and how often. Rates are per-opportunity probabilities:
/// per published lane-store, per f64 lane-store, per issued
/// warp-instruction, per stalled load/atomic respectively.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_publish_rate = 0.0;
  double bitflip_store_rate = 0.0;
  double stuck_warp_rate = 0.0;
  double mem_delay_rate = 0.0;
  /// How long a stuck warp is parked before re-entering the ready queue.
  std::uint64_t stuck_cycles = 2000;
  /// Extra cycles added to a delayed memory response.
  std::uint64_t mem_delay_cycles = 600;
  /// Total faults injected across all kinds (0 = unlimited). max_faults = 1
  /// is the property-test's "exactly one dropped flag" scenario.
  std::uint64_t max_faults = 0;
  /// Scope: when a range is set (0 <= begin < end), injection only fires for
  /// events whose global thread id (== row for the thread-per-row kernels,
  /// after the injector's tid offset) falls in [row_begin, row_end), and/or
  /// whose warp id (global tid / 32) falls in [warp_begin, warp_end). Both
  /// set = both must match. Scoping suppresses an injection AFTER the
  /// per-event hash is consumed, so scoped and unscoped plans with the same
  /// seed see the same event stream: a scoped plan injects exactly the
  /// subset of the unscoped plan's faults that lands in range. Fleet tests
  /// use this to kill one device's partition and assert the rest run clean.
  std::int64_t row_begin = -1;
  std::int64_t row_end = -1;
  std::int64_t warp_begin = -1;
  std::int64_t warp_end = -1;

  bool HasRowScope() const { return row_begin >= 0 && row_end > row_begin; }
  bool HasWarpScope() const { return warp_begin >= 0 && warp_end > warp_begin; }

  bool Enabled() const {
    return drop_publish_rate > 0.0 || bitflip_store_rate > 0.0 ||
           stuck_warp_rate > 0.0 || mem_delay_rate > 0.0;
  }
};

/// Faults actually injected, by kind.
struct FaultCounts {
  std::array<std::uint64_t, kNumFaultKinds> injected{};
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : injected) sum += v;
    return sum;
  }
  std::uint64_t operator[](FaultKind kind) const {
    return injected[static_cast<std::size_t>(kind)];
  }
};

/// Attach with Machine::set_fault_injector. The injector may stay attached
/// across launches (a multi-launch level-set solve keeps advancing the same
/// event counters); Reseed restarts the event stream for a fresh run.
/// Counters are atomic so one injector can be observed while a solve runs,
/// but decisions are only deterministic when a single Machine consumes them
/// (the serial solve paths — which is where injection is used).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Replaces the plan and zeroes every counter: the next event stream is
  /// exactly the one a fresh injector with this plan would produce.
  void Reseed(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }
  FaultCounts counts() const;

  /// Added to the tids the Machine hands the hooks before the plan's scope is
  /// checked. A fleet device whose partition starts at global row R attaches
  /// an injector with set_tid_offset(R), so one plan written in global row
  /// coordinates targets the same rows no matter which device owns them.
  void set_tid_offset(std::int64_t offset) { tid_offset_ = offset; }
  std::int64_t tid_offset() const { return tid_offset_; }

  // --- decision hooks (called by sim::Machine) -----------------------------
  // The tid identifies the event's thread for the plan's row/warp scope:
  // per-lane hooks pass the lane's global tid, per-warp hooks the warp's
  // base tid (the scope check covers all 32 lanes). The default -1 is
  // scope-exempt — direct callers (tests) keep the unscoped behaviour.

  /// One publish-annotated lane-store is about to land; true = drop it.
  bool DropPublish(std::int64_t tid = -1) {
    return Decide(FaultKind::kDropPublish, plan_.drop_publish_rate, tid, 1);
  }

  /// One f64 lane-store is about to land; flips `value`'s low exponent bit
  /// (halving or doubling it) and returns true when injecting.
  bool MaybeFlipStoreBit(double& value, std::int64_t tid = -1);

  /// One ready warp is about to issue; nonzero = park it this many cycles.
  std::uint64_t StuckCycles(std::int64_t tid = -1) {
    return Decide(FaultKind::kStuckWarp, plan_.stuck_warp_rate, tid, 32)
               ? plan_.stuck_cycles
               : 0;
  }

  /// One load/atomic stall completed accounting; nonzero = extra delay.
  std::uint64_t ExtraMemDelay(std::int64_t tid = -1) {
    return Decide(FaultKind::kMemDelay, plan_.mem_delay_rate, tid, 32)
               ? plan_.mem_delay_cycles
               : 0;
  }

 private:
  bool Decide(FaultKind kind, double rate, std::int64_t tid, int span);
  bool InScope(std::int64_t tid, int span) const;

  FaultPlan plan_;
  std::int64_t tid_offset_ = 0;
  // Opportunities seen per kind (every call advances one); decisions hash
  // (seed, kind, this counter), so they are independent of wall clock and of
  // the other kinds' traffic.
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> events_{};
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> injected_{};
  std::atomic<std::uint64_t> total_injected_{0};
};

/// RAII guard for FaultInjector::set_tid_offset: installs `offset` for the
/// guarded scope and restores the previous offset on exit — the same
/// discipline Machine::Launch applies to its external-store list. The fleet
/// wraps every per-device (and every recovery re-execution) launch in one of
/// these, so a later single-device run on the same injector never inherits a
/// stale global-row offset.
class ScopedTidOffset {
 public:
  ScopedTidOffset(FaultInjector* injector, std::int64_t offset)
      : injector_(injector),
        saved_(injector != nullptr ? injector->tid_offset() : 0) {
    if (injector_ != nullptr) injector_->set_tid_offset(offset);
  }
  ~ScopedTidOffset() {
    if (injector_ != nullptr) injector_->set_tid_offset(saved_);
  }
  ScopedTidOffset(const ScopedTidOffset&) = delete;
  ScopedTidOffset& operator=(const ScopedTidOffset&) = delete;

 private:
  FaultInjector* injector_;
  std::int64_t saved_;
};

/// {"seed": 7, "drop_publish_rate": 0.001, ...} — the sptrsv_tool
/// --faults=<plan.json> format. Writes every field; the reader accepts any
/// subset and keeps defaults for the rest (same hand-rolled scanner idiom as
/// serve/replay, no JSON dependency).
Status WriteFaultPlanJson(const FaultPlan& plan, const std::string& path);
Expected<FaultPlan> ReadFaultPlanJson(const std::string& path);

/// One line for logs/benches: "seed=7 drop=1e-3 flip=0 ... injected=3".
std::string FaultPlanSummary(const FaultPlan& plan);

}  // namespace capellini::sim
