#include "sim/disasm.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace capellini::sim {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kMovI: return "movi";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kAddI: return "addi";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kMulI: return "muli";
    case Op::kAndI: return "andi";
    case Op::kShlI: return "shli";
    case Op::kShrI: return "shri";
    case Op::kSetLt: return "setlt";
    case Op::kSetLe: return "setle";
    case Op::kSetEq: return "seteq";
    case Op::kSetNe: return "setne";
    case Op::kSetGe: return "setge";
    case Op::kSetGt: return "setgt";
    case Op::kSetLtI: return "setlti";
    case Op::kSetGeI: return "setgei";
    case Op::kSetEqI: return "seteqi";
    case Op::kSetNeI: return "setnei";
    case Op::kS2R: return "s2r";
    case Op::kLdParam: return "ldparam";
    case Op::kLd4: return "ld4";
    case Op::kLd8I: return "ld8i";
    case Op::kLd8F: return "ld8f";
    case Op::kSt4: return "st4";
    case Op::kSt8I: return "st8i";
    case Op::kSt8F: return "st8f";
    case Op::kAtomAddF8: return "atomaddf8";
    case Op::kAtomAddI4: return "atomaddi4";
    case Op::kFMovI: return "fmovi";
    case Op::kFMov: return "fmov";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kFFma: return "ffma";
    case Op::kShflDownF: return "shfl.down";
    case Op::kBrnz: return "brnz";
    case Op::kBrz: return "brz";
    case Op::kJmp: return "jmp";
    case Op::kFence: return "fence";
    case Op::kExit: return "exit";
  }
  return "???";
}

namespace {

const char* SpecialName(Special special) {
  switch (special) {
    case Special::kGlobalTid: return "tid";
    case Special::kLane: return "lane";
    case Special::kWarpId: return "warpid";
    case Special::kBlockId: return "blockid";
    case Special::kThreadInBlock: return "tid.block";
    case Special::kGridThreads: return "gridsize";
  }
  return "???";
}

}  // namespace

std::string FormatInstr(const Instr& instr) {
  char buf[128];
  switch (instr.op) {
    case Op::kNop:
    case Op::kFence:
    case Op::kExit:
      return OpName(instr.op);
    case Op::kMovI:
      std::snprintf(buf, sizeof buf, "movi r%d, %lld", instr.a,
                    static_cast<long long>(instr.imm));
      break;
    case Op::kMov:
      std::snprintf(buf, sizeof buf, "mov r%d, r%d", instr.a, instr.b);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kSetLt:
    case Op::kSetLe:
    case Op::kSetEq:
    case Op::kSetNe:
    case Op::kSetGe:
    case Op::kSetGt:
      std::snprintf(buf, sizeof buf, "%s r%d, r%d, r%d", OpName(instr.op),
                    instr.a, instr.b, instr.c);
      break;
    case Op::kAddI:
    case Op::kMulI:
    case Op::kAndI:
    case Op::kShlI:
    case Op::kShrI:
    case Op::kSetLtI:
    case Op::kSetGeI:
    case Op::kSetEqI:
    case Op::kSetNeI:
      std::snprintf(buf, sizeof buf, "%s r%d, r%d, %lld", OpName(instr.op),
                    instr.a, instr.b, static_cast<long long>(instr.imm));
      break;
    case Op::kS2R:
      std::snprintf(buf, sizeof buf, "s2r r%d, %s", instr.a,
                    SpecialName(static_cast<Special>(instr.b)));
      break;
    case Op::kLdParam:
      std::snprintf(buf, sizeof buf, "ldparam r%d, [%lld]", instr.a,
                    static_cast<long long>(instr.imm));
      break;
    case Op::kLd4:
    case Op::kLd8I:
      std::snprintf(buf, sizeof buf, "%s r%d, [r%d]", OpName(instr.op),
                    instr.a, instr.b);
      break;
    case Op::kLd8F:
      std::snprintf(buf, sizeof buf, "ld8f f%d, [r%d]", instr.a, instr.b);
      break;
    case Op::kSt4:
    case Op::kSt8I:
      std::snprintf(buf, sizeof buf, "%s [r%d], r%d", OpName(instr.op),
                    instr.a, instr.b);
      break;
    case Op::kSt8F:
      std::snprintf(buf, sizeof buf, "st8f [r%d], f%d", instr.a, instr.b);
      break;
    case Op::kAtomAddF8:
      std::snprintf(buf, sizeof buf, "atomaddf8 f%d, [r%d], f%d", instr.a,
                    instr.b, instr.c);
      break;
    case Op::kAtomAddI4:
      std::snprintf(buf, sizeof buf, "atomaddi4 r%d, [r%d], r%d", instr.a,
                    instr.b, instr.c);
      break;
    case Op::kFMovI:
      std::snprintf(buf, sizeof buf, "fmovi f%d, %g", instr.a, instr.fimm);
      break;
    case Op::kFMov:
      std::snprintf(buf, sizeof buf, "fmov f%d, f%d", instr.a, instr.b);
      break;
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFMul:
    case Op::kFDiv:
      std::snprintf(buf, sizeof buf, "%s f%d, f%d, f%d", OpName(instr.op),
                    instr.a, instr.b, instr.c);
      break;
    case Op::kFFma:
      std::snprintf(buf, sizeof buf, "ffma f%d, f%d, f%d", instr.a, instr.b,
                    instr.c);
      break;
    case Op::kShflDownF:
      std::snprintf(buf, sizeof buf, "shfl.down f%d, f%d, %lld", instr.a,
                    instr.b, static_cast<long long>(instr.imm));
      break;
    case Op::kBrnz:
    case Op::kBrz:
      std::snprintf(buf, sizeof buf, "%s r%d -> %lld (reconv %lld)",
                    OpName(instr.op), instr.a,
                    static_cast<long long>(instr.imm),
                    static_cast<long long>(instr.imm2));
      break;
    case Op::kJmp:
      std::snprintf(buf, sizeof buf, "jmp %lld",
                    static_cast<long long>(instr.imm));
      break;
  }
  return buf;
}

std::string FormatKernel(const Kernel& kernel) {
  std::ostringstream out;
  out << "kernel " << kernel.name << " (" << kernel.code.size()
      << " instructions, " << kernel.num_params << " params)\n";
  for (std::size_t pc = 0; pc < kernel.code.size(); ++pc) {
    char head[24];
    std::snprintf(head, sizeof head, "%4zu: ", pc);
    out << head << FormatInstr(kernel.code[pc]) << '\n';
  }
  return out.str();
}

std::vector<std::uint16_t> StraightLineRuns(const std::vector<Instr>& code) {
  std::vector<std::uint16_t> runs(code.size(), 0);
  std::uint32_t run = 0;
  for (std::size_t i = code.size(); i-- > 0;) {
    if (IsStraightLineOp(code[i].op)) {
      run = std::min<std::uint32_t>(run + 1, 0xFFFF);
    } else {
      run = 0;
    }
    runs[i] = static_cast<std::uint16_t>(run);
  }
  return runs;
}

std::string FormatDecodedKernel(const Kernel& kernel) {
  const std::vector<std::uint16_t> runs = StraightLineRuns(kernel.code);
  std::vector<char> in_spin(kernel.code.size(), 0);
  std::vector<char> spin_head(kernel.code.size(), 0);
  std::vector<char> publish(kernel.code.size(), 0);
  for (const auto& [begin, end] : kernel.spin_regions) {
    for (std::int32_t pc = begin; pc < end; ++pc) {
      in_spin[static_cast<std::size_t>(pc)] = 1;
    }
    spin_head[static_cast<std::size_t>(begin)] = 1;
  }
  for (const std::int32_t pc : kernel.publish_pcs) {
    publish[static_cast<std::size_t>(pc)] = 1;
  }

  std::ostringstream out;
  out << "kernel " << kernel.name << " (" << kernel.code.size()
      << " instructions, " << kernel.num_params << " params, decoded)\n";
  std::uint16_t remaining = 0;  // instructions left in the current fused run
  for (std::size_t pc = 0; pc < kernel.code.size(); ++pc) {
    char head[24];
    std::snprintf(head, sizeof head, "%4zu: ", pc);
    out << head;
    if (remaining == 0 && runs[pc] > 0) {
      remaining = runs[pc];
      out << "+--- fused run of " << runs[pc] << "\n" << head;
    }
    out << (remaining > 0 ? "| " : "  ") << FormatInstr(kernel.code[pc]);
    if (spin_head[pc]) out << "  ; spin-head";
    else if (in_spin[pc]) out << "  ; spin";
    if (publish[pc]) out << "  ; publish";
    out << '\n';
    if (remaining > 0) --remaining;
  }
  return out.str();
}

}  // namespace capellini::sim
