// Device configuration for the SIMT simulator, with presets mirroring the
// paper's Table 3 platforms (Pascal GTX 1080, Volta V100, Turing RTX 2080 Ti).
//
// The simulator is not cycle-accurate to any real GPU; it models the
// structural mechanisms the paper's analysis rests on — lock-step warps,
// bounded resident warps per SM, memory latency/bandwidth/coalescing — with
// parameters in the right ballpark for each generation (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace capellini::sim {

struct DeviceConfig {
  std::string name = "generic";

  // Compute resources.
  int num_sms = 20;
  int max_warps_per_sm = 64;  // resident-warp limit (occupancy)
  int warp_size = 32;
  int issue_per_cycle = 1;  // warp instructions issued per SM per cycle

  // Clock & memory system.
  double clock_ghz = 1.6;
  double dram_bandwidth_gbps = 320.0;  // GB/s
  int dram_latency_cycles = 400;
  int sector_bytes = 32;  // coalescing granularity (CUDA L2 sector)
  // L2 model: infinite capacity, sector granularity. First touch of a sector
  // pays DRAM latency + bandwidth; later touches pay the hit latency only.
  // This keeps busy-wait polling from fabricating DRAM traffic (polls hit L2
  // on real GPUs) while compulsory traffic still meters bandwidth.
  int l2_hit_latency_cycles = 120;
  // L2 throughput, as a multiple of DRAM bandwidth (Pascal/Volta/Turing L2s
  // sustain roughly 3-5x their DRAM rate). EVERY transaction — hit or miss —
  // queues on this; busy-wait polling therefore consumes real interconnect
  // throughput, which is the mechanism that throttles warp-level sync-free
  // SpTRSV when thousands of resident warps spin (paper §3.1).
  double l2_bandwidth_multiplier = 4.0;
  // Atomic read-modify-write operations occupy the L2 for this multiple of a
  // plain transaction (L2 atomic units serialize the read+modify+write).
  double atomic_cost_multiplier = 4.0;
  // L2 HITS occupy the L2 for 1/divisor of a full sector: repeated reads of
  // resident lines (busy-wait polls above all) are served from SRAM at
  // request granularity and coalesce in the MSHRs, unlike DRAM sector
  // fetches. 1 would charge hits like misses; large values make hits
  // latency-only.
  double l2_hit_cost_divisor = 8.0;

  /// L2 bytes transferred per core cycle.
  double L2BytesPerCycle() const {
    return BytesPerCycle() * l2_bandwidth_multiplier;
  }

  // Kernel-launch overhead charged per launch (models driver/runtime cost;
  // this is what makes per-level launches in level-set SpTRSV expensive).
  std::uint64_t launch_overhead_cycles = 3000;

  // Watchdogs.
  std::uint64_t max_cycles = 8'000'000'000ull;
  // If no store/atomic/warp-completion happens for this many cycles while
  // warps are alive, the run is declared deadlocked (captures the intra-warp
  // busy-wait deadlock of Challenge 1).
  std::uint64_t no_progress_cycles = 2'000'000;

  /// DRAM bytes transferred per core cycle.
  double BytesPerCycle() const { return dram_bandwidth_gbps / clock_ghz; }

  /// Simulated milliseconds for a cycle count.
  double CyclesToMs(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e6);
  }
};

/// Table 3 "Pascal" platform (GTX 1080).
DeviceConfig PascalGtx1080();
/// Table 3 "Volta" platform (V100).
DeviceConfig VoltaV100();
/// Table 3 "Turing" platform (RTX 2080 Ti).
DeviceConfig TuringRtx2080Ti();

/// All three paper platforms, in Table 3 order.
std::vector<DeviceConfig> PaperPlatforms();

/// A small device for fast unit tests (2 SMs, 4 warps/SM).
DeviceConfig TinyTestDevice();

}  // namespace capellini::sim
