#include "sim/counters.h"

namespace capellini::sim {

LaunchStats& LaunchStats::operator+=(const LaunchStats& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  lane_instructions += other.lane_instructions;
  dram_bytes += other.dram_bytes;
  dram_transactions += other.dram_transactions;
  issue_slots += other.issue_slots;
  issue_used += other.issue_used;
  stall_slots += other.stall_slots;
  launches += other.launches;
  return *this;
}

LaunchStats operator+(LaunchStats a, const LaunchStats& b) {
  a += b;
  return a;
}

}  // namespace capellini::sim
