// Simulated device (global) memory: a flat byte-addressed arena with typed
// accessors and an allocation bump pointer. Host<->device copies are explicit
// like cudaMemcpy; kernels access it through the interpreter only.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/status.h"

namespace capellini::sim {

/// Byte offset into device memory. 0 is a valid address; allocations start at
/// a nonzero offset so that 0 can be used as a null-ish sentinel by kernels.
using DevicePtr = std::uint64_t;

class DeviceMemory {
 public:
  DeviceMemory() { bytes_.resize(kBaseOffset, 0); }

  /// Allocates `size` bytes aligned to `alignment` (power of two).
  DevicePtr Alloc(std::uint64_t size, std::uint64_t alignment = 256);

  /// Typed allocation for n elements of T.
  template <typename T>
  DevicePtr AllocArray(std::uint64_t n) {
    return Alloc(n * sizeof(T), 256);
  }

  std::uint64_t size() const { return bytes_.size(); }

  /// Releases every allocation and rewinds the bump pointer, so one arena can
  /// be reused across independent uploads (the fleet re-uploads a problem per
  /// device launch). Previously handed-out DevicePtrs become invalid.
  void Reset() {
    bytes_.clear();
    bytes_.resize(kBaseOffset, 0);
  }

  /// Host -> device copy.
  template <typename T>
  void CopyToDevice(DevicePtr dst, std::span<const T> src) {
    CheckRange(dst, src.size_bytes());
    std::memcpy(bytes_.data() + dst, src.data(), src.size_bytes());
  }

  /// Device -> host copy.
  template <typename T>
  void CopyFromDevice(std::span<T> dst, DevicePtr src) const {
    CheckRange(src, dst.size_bytes());
    std::memcpy(dst.data(), bytes_.data() + src, dst.size_bytes());
  }

  /// memset on device memory.
  void Fill(DevicePtr dst, std::uint64_t size, std::uint8_t value);

  // Scalar accessors used by the interpreter (bounds-checked).
  std::int32_t LoadI32(DevicePtr addr) const;
  std::int64_t LoadI64(DevicePtr addr) const;
  double LoadF64(DevicePtr addr) const;
  void StoreI32(DevicePtr addr, std::int32_t value);
  void StoreI64(DevicePtr addr, std::int64_t value);
  void StoreF64(DevicePtr addr, double value);

 private:
  static constexpr std::uint64_t kBaseOffset = 256;

  void CheckRange(DevicePtr addr, std::uint64_t size) const {
    CAPELLINI_CHECK_MSG(addr >= kBaseOffset && addr + size <= bytes_.size(),
                        "device memory access out of bounds");
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace capellini::sim
