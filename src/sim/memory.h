// Simulated device (global) memory: a flat byte-addressed arena with typed
// accessors and an allocation bump pointer. Host<->device copies are explicit
// like cudaMemcpy; kernels access it through the interpreter only.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/status.h"

namespace capellini::sim {

/// Byte offset into device memory. 0 is a valid address; allocations start at
/// a nonzero offset so that 0 can be used as a null-ish sentinel by kernels.
using DevicePtr = std::uint64_t;

class DeviceMemory {
 public:
  DeviceMemory() { bytes_.resize(kBaseOffset, 0); }

  /// Allocates `size` bytes aligned to `alignment` (power of two).
  DevicePtr Alloc(std::uint64_t size, std::uint64_t alignment = 256);

  /// Typed allocation for n elements of T.
  template <typename T>
  DevicePtr AllocArray(std::uint64_t n) {
    return Alloc(n * sizeof(T), 256);
  }

  std::uint64_t size() const { return bytes_.size(); }

  /// Releases every allocation and rewinds the bump pointer, so one arena can
  /// be reused across independent uploads (the fleet re-uploads a problem per
  /// device launch). Previously handed-out DevicePtrs become invalid.
  void Reset() {
    bytes_.clear();
    bytes_.resize(kBaseOffset, 0);
  }

  /// Host -> device copy.
  template <typename T>
  void CopyToDevice(DevicePtr dst, std::span<const T> src) {
    CheckRange(dst, src.size_bytes());
    std::memcpy(bytes_.data() + dst, src.data(), src.size_bytes());
  }

  /// Device -> host copy.
  template <typename T>
  void CopyFromDevice(std::span<T> dst, DevicePtr src) const {
    CheckRange(src, dst.size_bytes());
    std::memcpy(dst.data(), bytes_.data() + src, dst.size_bytes());
  }

  /// memset on device memory.
  void Fill(DevicePtr dst, std::uint64_t size, std::uint8_t value);

  // Scalar accessors used by the interpreter (bounds-checked). Defined
  // inline: the interpreter calls these once per active lane per memory
  // instruction — hundreds of millions of times per solve — and the
  // out-of-line call was a measurable share of host time per simulated cycle.
  std::int32_t LoadI32(DevicePtr addr) const {
    CheckRange(addr, 4);
    std::int32_t v;
    std::memcpy(&v, bytes_.data() + addr, 4);
    return v;
  }
  std::int64_t LoadI64(DevicePtr addr) const {
    CheckRange(addr, 8);
    std::int64_t v;
    std::memcpy(&v, bytes_.data() + addr, 8);
    return v;
  }
  double LoadF64(DevicePtr addr) const {
    CheckRange(addr, 8);
    double v;
    std::memcpy(&v, bytes_.data() + addr, 8);
    return v;
  }
  void StoreI32(DevicePtr addr, std::int32_t value) {
    CheckRange(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, 4);
  }
  void StoreI64(DevicePtr addr, std::int64_t value) {
    CheckRange(addr, 8);
    std::memcpy(bytes_.data() + addr, &value, 8);
  }
  void StoreF64(DevicePtr addr, double value) {
    CheckRange(addr, 8);
    std::memcpy(bytes_.data() + addr, &value, 8);
  }

 private:
  static constexpr std::uint64_t kBaseOffset = 256;

  void CheckRange(DevicePtr addr, std::uint64_t size) const {
    CAPELLINI_CHECK_MSG(addr >= kBaseOffset && addr + size <= bytes_.size(),
                        "device memory access out of bounds");
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace capellini::sim
