#include "sim/machine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "sim/disasm.h"
#include "sim/fault.h"

namespace capellini::sim {
namespace {

constexpr std::uint32_t kFullMask = 0xFFFFFFFFu;

int PopCount(std::uint32_t mask) { return std::popcount(mask); }

// Per-PC annotation bits fused into Machine::DecodedInstr::flags (built from
// the kernel's spin_regions / publish_pcs at launch).
constexpr std::uint8_t kPcInSpin = 1;
constexpr std::uint8_t kPcSpinHead = 2;
constexpr std::uint8_t kPcPublish = 4;

// Applies `fn(lane)` to every set lane. The full-mask case — the steady state
// of converged warps, spin-polling warps above all — takes a straight-line
// 0..31 loop instead of the bit-scan, which is the interpreter's hottest
// inner loop.
template <typename Fn>
inline void ForActive(std::uint32_t mask, Fn&& fn) {
  if (mask == kFullMask) {
    for (int lane = 0; lane < 32; ++lane) fn(lane);
    return;
  }
  while (mask) {
    const int lane = std::countr_zero(mask);
    mask &= mask - 1;
    fn(lane);
  }
}

}  // namespace

std::atomic<bool> Machine::scalar_core_for_test_{false};

void Machine::set_scalar_core_for_test(bool scalar) {
  scalar_core_for_test_.store(scalar, std::memory_order_relaxed);
}

Machine::Machine(DeviceConfig config, DeviceMemory* memory)
    : config_(std::move(config)),
      memory_(memory),
      debug_trace_(std::getenv("CAPELLINI_TRACE") != nullptr) {
  CAPELLINI_CHECK(memory_ != nullptr);
  CAPELLINI_CHECK_MSG(config_.warp_size == 32,
                      "the interpreter is specialized for 32-lane warps");
  CAPELLINI_CHECK(config_.num_sms > 0 && config_.max_warps_per_sm > 0);
  CAPELLINI_CHECK_MSG(
      config_.sector_bytes > 0 &&
          (config_.sector_bytes & (config_.sector_bytes - 1)) == 0,
      "sector_bytes must be a power of two");
  sector_shift_ = 0;
  while ((1 << sector_shift_) < config_.sector_bytes) ++sector_shift_;
  wake_wheel_.resize(kWakeWheel);
  wake_wheel_bits_.assign(kWakeWheel / 64, 0);
  dram_bytes_per_cycle_ = config_.BytesPerCycle();
  l2_bytes_per_cycle_ = config_.L2BytesPerCycle();
}

void Machine::WakeReset() {
  if (wake_wheel_count_ != 0) {
    for (std::size_t word = 0; word < wake_wheel_bits_.size(); ++word) {
      std::uint64_t bits = wake_wheel_bits_[word];
      while (bits != 0) {
        wake_wheel_[(word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits))]
            .clear();
        bits &= bits - 1;
      }
      wake_wheel_bits_[word] = 0;
    }
    wake_wheel_count_ = 0;
  }
  wake_far_ = {};
}

std::uint64_t Machine::NextWakeTime() const {
  std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
  if (wake_wheel_count_ != 0) {
    // All wheel times lie in (cycle_, cycle_ + kWakeWheel), so the first
    // occupied bucket at or after residue cycle_+1 (wrapping) is the min.
    const std::uint64_t mask = kWakeWheel - 1;
    const std::uint64_t start = (cycle_ + 1) & mask;
    const std::size_t words = wake_wheel_bits_.size();
    for (std::size_t i = 0; i <= words; ++i) {
      const std::size_t word = ((start >> 6) + i) % words;
      std::uint64_t bits = wake_wheel_bits_[word];
      if (i == 0) bits &= ~0ull << (start & 63);
      if (bits == 0) continue;
      const std::uint64_t b =
          (static_cast<std::uint64_t>(word) << 6) +
          static_cast<std::uint64_t>(std::countr_zero(bits));
      const std::uint64_t delta = (b - cycle_) & mask;
      next = cycle_ + (delta == 0 ? kWakeWheel : delta);
      break;
    }
  }
  if (!wake_far_.empty()) {
    next = std::min(next, std::get<0>(wake_far_.top()));
  }
  return next;
}

bool Machine::TouchSector(std::uint64_t sector) {
  const std::size_t word = static_cast<std::size_t>(sector >> 6);
  const std::uint64_t bit = 1ull << (sector & 63);
  if (word >= l2_sectors_.size()) l2_sectors_.resize(word + 1024, 0);
  const std::uint64_t prev = l2_sectors_[word];
  if (prev == 0) l2_touched_words_.push_back(word);
  l2_sectors_[word] = prev | bit;
  return (prev & bit) != 0;
}

std::size_t Machine::DedupSectors(const std::uint64_t* addresses,
                                  std::size_t count, int sector_shift,
                                  std::uint64_t* sectors) {
  std::size_t num_sectors = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // An access may straddle a sector boundary only if misaligned; all our
    // kernels access naturally aligned 4/8-byte values, so one sector each.
    const std::uint64_t s = addresses[i] >> sector_shift;
    // Consecutive lanes overwhelmingly hit the sector the previous lane
    // appended; checking it first makes the common case O(1) per lane.
    if (num_sectors != 0 && sectors[num_sectors - 1] == s) continue;
    bool seen = false;
    for (std::size_t k = 0; k < num_sectors; ++k) {
      if (sectors[k] == s) {
        seen = true;
        break;
      }
    }
    if (!seen) sectors[num_sectors++] = s;
  }
  return num_sectors;
}

Machine::MemTxn Machine::AccountSectors(const std::uint64_t* sectors,
                                        std::size_t num_sectors,
                                        bool is_atomic) {
  const std::uint64_t sector_bytes =
      static_cast<std::uint64_t>(config_.sector_bytes);
  std::uint64_t misses = 0;
  for (std::size_t k = 0; k < num_sectors; ++k) {
    if (!TouchSector(sectors[k])) ++misses;
  }
  stats_.dram_transactions += num_sectors;
  stats_.dram_bytes += misses * sector_bytes;

  MemTxn txn;
  txn.transactions = static_cast<std::uint32_t>(num_sectors);
  txn.misses = static_cast<std::uint32_t>(misses);
  // Backlog in front of this request = the bandwidth-bound share of its wait;
  // captured before the queues advance. Only sinks consume it, so only pay
  // for it when one is attached.
  if (trace_) {
    const double now = static_cast<double>(cycle_);
    double backlog = std::max(0.0, l2_busy_until_ - now);
    if (misses > 0) backlog += std::max(0.0, dram_busy_until_ - now);
    txn.queue_cycles = static_cast<std::uint64_t>(backlog);
  }

  // Every transaction queues on L2 throughput. Atomics occupy the L2 for a
  // full read-modify-write; hits (typically busy-wait polls of resident
  // lines) cost a fraction of a sector (see DeviceConfig::l2_hit_cost_divisor).
  const std::uint64_t hits = num_sectors - misses;
  double cost_sectors = static_cast<double>(misses) +
                        static_cast<double>(hits) / config_.l2_hit_cost_divisor;
  if (is_atomic) cost_sectors *= config_.atomic_cost_multiplier;
  const double l2_start =
      std::max(l2_busy_until_, static_cast<double>(cycle_));
  l2_busy_until_ = l2_start + cost_sectors *
                                  static_cast<double>(sector_bytes) /
                                  l2_bytes_per_cycle_;
  const std::uint64_t l2_done =
      static_cast<std::uint64_t>(l2_busy_until_) +
      static_cast<std::uint64_t>(config_.l2_hit_latency_cycles);
  if (misses == 0) {
    txn.ready_at = l2_done;
    return txn;
  }

  // Misses additionally queue on DRAM bandwidth and pay DRAM latency.
  const double dram_start =
      std::max(dram_busy_until_, static_cast<double>(cycle_));
  dram_busy_until_ = dram_start +
                     static_cast<double>(misses * sector_bytes) /
                         dram_bytes_per_cycle_;
  const std::uint64_t dram_done =
      static_cast<std::uint64_t>(dram_busy_until_) +
      static_cast<std::uint64_t>(config_.dram_latency_cycles);
  txn.ready_at = std::max(l2_done, dram_done);
  return txn;
}

Machine::MemTxn Machine::AccountMemory(std::span<const std::uint64_t> addresses,
                                       std::size_t count, int width_bytes,
                                       bool is_atomic) {
  (void)width_bytes;
  // Distinct sectors among the active lanes' accesses = transactions.
  std::uint64_t sectors[64];
  const std::size_t num_sectors =
      DedupSectors(addresses.data(), count, sector_shift_, sectors);
  return AccountSectors(sectors, num_sectors, is_atomic);
}

void Machine::SyncAtReconv(Warp& warp) {
  while (!warp.stack.empty() &&
         warp.pc == warp.stack.back().reconv_pc) {
    Frame& top = warp.stack.back();
    if (top.other_pc != top.reconv_pc && top.other_mask != 0) {
      // The other side has not run yet: park the arrived lanes, switch.
      std::swap(warp.active, top.other_mask);
      const std::int32_t pending_pc = top.other_pc;
      top.other_pc = top.reconv_pc;
      warp.pc = pending_pc;
    } else {
      // Both sides arrived (or the other side is empty): merge and pop.
      warp.active |= top.other_mask;
      warp.stack.pop_back();
    }
  }
}

void Machine::UnwindIfEmpty(Warp& warp, int sm_index) {
  while (warp.active == 0 && !warp.stack.empty()) {
    const Frame top = warp.stack.back();
    warp.stack.pop_back();
    warp.active = top.other_mask;
    warp.pc = top.other_pc;
  }
  if (warp.active == 0) {
    (void)sm_index;
    warp.alive = false;
  }
}

void Machine::FinishWarp(int warp_index, int sm_index) {
  Warp& warp = warp_pool_[static_cast<std::size_t>(warp_index)];
  if (trace_) {
    trace_->OnWarpFinish(cycle_, sm_index,
                         warp_index - sm_index * config_.max_warps_per_sm,
                         warp.base_tid);
  }
  warp.alive = false;
  Sm& sm = sms_[static_cast<std::size_t>(sm_index)];
  sm.free_slots.push_back(warp_index);
  --sm.resident;
  if (sm.resident == 0) --resident_sm_count_;
  --alive_warps_;
  sm_slots_freed_ = true;
  last_progress_cycle_ = cycle_;
}

void Machine::ExecuteInstruction(int warp_index, int sm_index) {
  Warp& warp = warp_pool_[static_cast<std::size_t>(warp_index)];
  if (!warp.stack.empty()) SyncAtReconv(warp);
  CAPELLINI_CHECK(warp.active != 0);
  CAPELLINI_CHECK(warp.pc >= 0 &&
                  warp.pc < static_cast<std::int32_t>(decoded_->code.size()));

  const DecodedInstr& decoded = decoded_->code[static_cast<std::size_t>(warp.pc)];
  const Instr& instr = decoded.instr;
  const std::uint8_t pc_flags = decoded.flags;
  // Debug tracing (CAPELLINI_TRACE=1): one line per issued instruction.
  if (debug_trace_) {
    std::fprintf(stderr,
                 "cyc=%llu warp=%d pc=%d op=%d active=%08x stack=%zu\n",
                 static_cast<unsigned long long>(cycle_), warp_index, warp.pc,
                 static_cast<int>(instr.op), warp.active, warp.stack.size());
  }
  ++stats_.instructions;
  stats_.lane_instructions += static_cast<std::uint64_t>(PopCount(warp.active));

  if (trace_) {
    trace::IssueInfo issue;
    issue.cycle = cycle_;
    issue.sm = sm_index;
    issue.warp_slot = warp_index - sm_index * config_.max_warps_per_sm;
    issue.base_tid = warp.base_tid;
    issue.pc = warp.pc;
    issue.active = warp.active;
    issue.divergent = !warp.stack.empty();
    issue.in_spin = (pc_flags & kPcInSpin) != 0;
    issue.spin_head = (pc_flags & kPcSpinHead) != 0;
    trace_->OnIssue(issue);
  }

  std::int32_t next_pc = warp.pc + 1;
  MemTxn mem;  // ready_at == 0 => ready immediately
  bool is_atomic_op = false;

  const std::uint32_t active = warp.active;
  switch (instr.op) {
    case Op::kNop:
      break;
    case Op::kMovI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = instr.imm;
      });
      break;
    case Op::kMov:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = RegI(warp, lane, instr.b);
      });
      break;
    case Op::kAdd:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) + RegI(warp, lane, instr.c);
      });
      break;
    case Op::kAddI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = RegI(warp, lane, instr.b) + instr.imm;
      });
      break;
    case Op::kSub:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) - RegI(warp, lane, instr.c);
      });
      break;
    case Op::kMul:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) * RegI(warp, lane, instr.c);
      });
      break;
    case Op::kMulI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = RegI(warp, lane, instr.b) * instr.imm;
      });
      break;
    case Op::kAndI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = RegI(warp, lane, instr.b) & instr.imm;
      });
      break;
    case Op::kShlI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = RegI(warp, lane, instr.b) << instr.imm;
      });
      break;
    case Op::kShrI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) = RegI(warp, lane, instr.b) >> instr.imm;
      });
      break;
    case Op::kSetLt:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) < RegI(warp, lane, instr.c) ? 1 : 0;
      });
      break;
    case Op::kSetLe:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) <= RegI(warp, lane, instr.c) ? 1 : 0;
      });
      break;
    case Op::kSetEq:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) == RegI(warp, lane, instr.c) ? 1 : 0;
      });
      break;
    case Op::kSetNe:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) != RegI(warp, lane, instr.c) ? 1 : 0;
      });
      break;
    case Op::kSetGe:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) >= RegI(warp, lane, instr.c) ? 1 : 0;
      });
      break;
    case Op::kSetGt:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) > RegI(warp, lane, instr.c) ? 1 : 0;
      });
      break;
    case Op::kSetLtI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) < instr.imm ? 1 : 0;
      });
      break;
    case Op::kSetGeI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) >= instr.imm ? 1 : 0;
      });
      break;
    case Op::kSetEqI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) == instr.imm ? 1 : 0;
      });
      break;
    case Op::kSetNeI:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            RegI(warp, lane, instr.b) != instr.imm ? 1 : 0;
      });
      break;
    case Op::kS2R: {
      const auto special = static_cast<Special>(instr.b);
      ForActive(active, [&](int lane) {
        std::int64_t value = 0;
        switch (special) {
          case Special::kGlobalTid:
            value = warp.base_tid + lane;
            break;
          case Special::kLane:
            value = lane;
            break;
          case Special::kWarpId:
            value = (warp.base_tid + lane) / 32;
            break;
          case Special::kBlockId:
            value = warp.block_id;
            break;
          case Special::kThreadInBlock:
            value = warp.base_tid + lane -
                    warp.block_id * static_cast<std::int64_t>(threads_per_block_);
            break;
          case Special::kGridThreads:
            value = grid_threads_;
            break;
        }
        RegI(warp, lane, instr.a) = value;
      });
      break;
    }
    case Op::kLdParam:
      ForActive(active, [&](int lane) {
        RegI(warp, lane, instr.a) =
            params_[static_cast<std::size_t>(instr.imm)];
      });
      break;
    case Op::kLd4:
    case Op::kLd8I:
    case Op::kLd8F: {
      std::uint64_t addresses[32];
      std::size_t count = 0;
      ForActive(active, [&](int lane) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(RegI(warp, lane, instr.b));
        addresses[count++] = addr;
        if (instr.op == Op::kLd4) {
          RegI(warp, lane, instr.a) = memory_->LoadI32(addr);
        } else if (instr.op == Op::kLd8I) {
          RegI(warp, lane, instr.a) = memory_->LoadI64(addr);
        } else {
          RegF(warp, lane, instr.a) = memory_->LoadF64(addr);
        }
      });
      // Spin-poll fast path: a warp spinning on this load issues the same
      // address set every iteration, so reuse its cached sector list and
      // skip the dedup scan. The accounting (AccountSectors) is identical.
      if ((pc_flags & kPcInSpin) != 0 && warp.poll_pc == warp.pc &&
          warp.poll_mask == active &&
          warp.poll_count == static_cast<std::uint8_t>(count) &&
          std::equal(addresses, addresses + count,
                     warp.poll_addresses.begin())) {
        mem = AccountSectors(warp.poll_sectors.data(), warp.poll_num_sectors,
                             /*is_atomic=*/false);
      } else {
        std::uint64_t sectors[64];
        const std::size_t num_sectors =
            DedupSectors(addresses, count, sector_shift_, sectors);
        mem = AccountSectors(sectors, num_sectors, /*is_atomic=*/false);
        if ((pc_flags & kPcInSpin) != 0) {
          warp.poll_pc = warp.pc;
          warp.poll_mask = active;
          warp.poll_count = static_cast<std::uint8_t>(count);
          warp.poll_num_sectors = static_cast<std::uint8_t>(num_sectors);
          std::copy(addresses, addresses + count,
                    warp.poll_addresses.begin());
          std::copy(sectors, sectors + num_sectors,
                    warp.poll_sectors.begin());
        }
      }
      break;
    }
    case Op::kSt4:
    case Op::kSt8I:
    case Op::kSt8F: {
      std::uint64_t addresses[32];
      std::size_t count = 0;
      ForActive(active, [&](int lane) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(RegI(warp, lane, instr.a));
        addresses[count++] = addr;
        // Dropped publish: the annotated store vanishes before reaching
        // memory. Bandwidth below is still accounted — the transaction
        // happened, the value didn't land — which is how the real hazard
        // manifests (and how the no-progress watchdog later catches it).
        if (faults_ && (pc_flags & kPcPublish) != 0 &&
            faults_->DropPublish(warp.base_tid + lane)) {
          return;
        }
        if (instr.op == Op::kSt4) {
          memory_->StoreI32(addr,
                            static_cast<std::int32_t>(RegI(warp, lane, instr.b)));
        } else if (instr.op == Op::kSt8I) {
          memory_->StoreI64(addr, RegI(warp, lane, instr.b));
        } else {
          double value = RegF(warp, lane, instr.b);
          if (faults_) faults_->MaybeFlipStoreBit(value, warp.base_tid + lane);
          memory_->StoreF64(addr, value);
        }
      });
      // Stores are fire-and-forget: account bandwidth, do not stall.
      (void)AccountMemory(addresses, count, MemoryWidth(instr.op));
      last_progress_cycle_ = cycle_;
      if (trace_ && (pc_flags & kPcPublish) != 0) {
        trace::PublishInfo publish;
        publish.cycle = cycle_;
        publish.sm = sm_index;
        publish.warp_slot = warp_index - sm_index * config_.max_warps_per_sm;
        for (std::size_t i = 0; i < count; ++i) {
          publish.addr = addresses[i];
          trace_->OnPublish(publish);
        }
      }
      break;
    }
    case Op::kAtomAddF8:
    case Op::kAtomAddI4: {
      std::uint64_t addresses[32];
      std::size_t count = 0;
      // Lanes are serialized by hardware on address conflicts; the simulator
      // applies them in lane order, which is one legal serialization.
      ForActive(active, [&](int lane) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(RegI(warp, lane, instr.b));
        addresses[count++] = addr;
        if (instr.op == Op::kAtomAddF8) {
          const double old = memory_->LoadF64(addr);
          RegF(warp, lane, instr.a) = old;
          memory_->StoreF64(addr, old + RegF(warp, lane, instr.c));
        } else {
          const std::int32_t old = memory_->LoadI32(addr);
          RegI(warp, lane, instr.a) = old;
          memory_->StoreI32(
              addr, old + static_cast<std::int32_t>(RegI(warp, lane, instr.c)));
        }
      });
      mem = AccountMemory(addresses, count, MemoryWidth(instr.op),
                          /*is_atomic=*/true);
      is_atomic_op = true;
      last_progress_cycle_ = cycle_;
      if (trace_) {
        trace_->OnAtomic(cycle_, sm_index,
                         warp_index - sm_index * config_.max_warps_per_sm,
                         mem.transactions);
      }
      break;
    }
    case Op::kFMovI:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) = instr.fimm;
      });
      break;
    case Op::kFMov:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) = RegF(warp, lane, instr.b);
      });
      break;
    case Op::kFAdd:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) =
            RegF(warp, lane, instr.b) + RegF(warp, lane, instr.c);
      });
      break;
    case Op::kFSub:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) =
            RegF(warp, lane, instr.b) - RegF(warp, lane, instr.c);
      });
      break;
    case Op::kFMul:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) =
            RegF(warp, lane, instr.b) * RegF(warp, lane, instr.c);
      });
      break;
    case Op::kFDiv:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) =
            RegF(warp, lane, instr.b) / RegF(warp, lane, instr.c);
      });
      break;
    case Op::kFFma:
      ForActive(active, [&](int lane) {
        RegF(warp, lane, instr.a) +=
            RegF(warp, lane, instr.b) * RegF(warp, lane, instr.c);
      });
      break;
    case Op::kShflDownF: {
      // Read the source values of ALL lanes first (lock-step exchange).
      double source[32];
      for (int lane = 0; lane < 32; ++lane) {
        source[lane] = RegF(warp, lane, instr.b);
      }
      ForActive(active, [&](int lane) {
        const int src_lane = lane + static_cast<int>(instr.imm);
        RegF(warp, lane, instr.a) =
            src_lane < 32 ? source[src_lane] : source[lane];
      });
      break;
    }
    case Op::kBrnz:
    case Op::kBrz: {
      std::uint32_t taken = 0;
      ForActive(active, [&](int lane) {
        const bool nz = RegI(warp, lane, instr.a) != 0;
        const bool takes = (instr.op == Op::kBrnz) ? nz : !nz;
        if (takes) taken |= 1u << lane;
      });
      const std::uint32_t fall = active & ~taken;
      if (taken == 0) {
        // all fall through: next_pc already pc + 1
      } else if (fall == 0) {
        next_pc = static_cast<std::int32_t>(instr.imm);
      } else {
        // Divergence: run the fall-through side first; park the taken side.
        const auto reconv = static_cast<std::int32_t>(instr.imm2);
        const auto target = static_cast<std::int32_t>(instr.imm);
        // Merge with an existing frame when a loop re-diverges to the same
        // (reconv, target): keeps the stack O(nesting), not O(iterations).
        if (!warp.stack.empty() &&
            warp.stack.back().reconv_pc == reconv &&
            warp.stack.back().other_pc == target) {
          warp.stack.back().other_mask |= taken;
        } else {
          warp.stack.push_back(Frame{reconv, target, taken});
        }
        warp.active = fall;
      }
      break;
    }
    case Op::kJmp:
      next_pc = static_cast<std::int32_t>(instr.imm);
      break;
    case Op::kFence:
      // Memory is sequentially consistent in the simulator; the fence is a
      // 1-cycle ordering no-op kept for faithful instruction counts.
      break;
    case Op::kExit:
      warp.active = 0;
      break;
  }

  warp.pc = next_pc;
  UnwindIfEmpty(warp, sm_index);
  if (!warp.alive) {
    FinishWarp(warp_index, sm_index);
    return;
  }

  // Delayed memory response: the completion slips further out. Timing-only —
  // the value was already read at issue (sequential consistency holds).
  if (faults_ && mem.ready_at != 0) {
    mem.ready_at += faults_->ExtraMemDelay(warp.base_tid);
  }

  Sm& sm = sms_[static_cast<std::size_t>(sm_index)];
  if (mem.ready_at > cycle_ + 1) {
    if (trace_) {
      trace::MemStallInfo stall;
      stall.cycle = cycle_;
      stall.ready_at = mem.ready_at;
      stall.sm = sm_index;
      stall.warp_slot = warp_index - sm_index * config_.max_warps_per_sm;
      stall.base_tid = warp.base_tid;
      stall.queue_cycles = mem.queue_cycles;
      stall.transactions = mem.transactions;
      stall.dram_misses = mem.misses;
      stall.is_atomic = is_atomic_op;
      stall.in_spin = (pc_flags & kPcInSpin) != 0;
      trace_->OnMemStall(stall);
    }
    WakePush(mem.ready_at, warp_index, sm_index);
  } else {
    sm.ready.push_back(warp_index);
    MarkSmReady(sm_index);
  }
}

// ---------------------------------------------------------------------------
// Threaded-dispatch core.
//
// Each decoded instruction carries handler pointers instead of being switched
// on per step. Batchable (IsStraightLineOp) instructions get two AluFn
// variants — one specialized for a fully converged warp (unconditional 0..31
// loops over the SoA register rows, which GCC/Clang vectorize), one iterating
// the active mask — and the dispatcher executes a whole straight-line run
// through them in one host step. Memory and control-flow ops get a StepFn
// that is a verbatim transcription of the corresponding scalar switch case.
//
// Equivalence argument (gated by tests/interp_equivalence_test): batchable
// ops touch only the issuing warp's registers, so pre-executing a run cannot
// be observed by any other warp or by memory; the saved issue slots are
// re-charged one per pop via Warp::skip, so every warp issues on exactly the
// same cycles, every memory op executes at the same cycle in the same global
// order (same L2/DRAM queue evolution, same values), and the fault hooks
// consume their PRNG streams in the same sequence.
// ---------------------------------------------------------------------------
struct Interp {
  using Warp = Machine::Warp;
  using Ctx = Machine::ExecCtx;
  using DI = Machine::DecodedInstr;
  using MemTxn = Machine::MemTxn;

  // SoA register rows: all 32 lanes of one register, contiguous.
  static std::int64_t* RI(Warp& w, int reg) {
    return w.r.data() + static_cast<std::size_t>(reg) * 32;
  }
  static double* RF(Warp& w, int reg) {
    return w.f.data() + static_cast<std::size_t>(reg) * 32;
  }

  template <bool FULL, typename Fn>
  static inline void Lanes(std::uint32_t mask, Fn&& fn) {
    if constexpr (FULL) {
      for (int lane = 0; lane < 32; ++lane) fn(lane);
    } else {
      while (mask) {
        const int lane = std::countr_zero(mask);
        mask &= mask - 1;
        fn(lane);
      }
    }
  }

  template <Op OP, bool FULL>
  static void Alu(Warp& w, const Instr& in, const Ctx& ctx) {
    (void)ctx;
    const std::uint32_t mask = w.active;
    if constexpr (OP == Op::kNop || OP == Op::kFence) {
      // kFence: memory is sequentially consistent in the simulator; a
      // 1-cycle ordering no-op kept for faithful instruction counts.
      (void)w;
      (void)in;
      (void)mask;
    } else if constexpr (OP == Op::kMovI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = imm; });
    } else if constexpr (OP == Op::kMov) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane]; });
    } else if constexpr (OP == Op::kAdd) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] + c[lane]; });
    } else if constexpr (OP == Op::kAddI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] + imm; });
    } else if constexpr (OP == Op::kSub) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] - c[lane]; });
    } else if constexpr (OP == Op::kMul) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] * c[lane]; });
    } else if constexpr (OP == Op::kMulI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] * imm; });
    } else if constexpr (OP == Op::kAndI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] & imm; });
    } else if constexpr (OP == Op::kShlI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] << imm; });
    } else if constexpr (OP == Op::kShrI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] >> imm; });
    } else if constexpr (OP == Op::kSetLt) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] < c[lane] ? 1 : 0; });
    } else if constexpr (OP == Op::kSetLe) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask,
                  [&](int lane) { a[lane] = b[lane] <= c[lane] ? 1 : 0; });
    } else if constexpr (OP == Op::kSetEq) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask,
                  [&](int lane) { a[lane] = b[lane] == c[lane] ? 1 : 0; });
    } else if constexpr (OP == Op::kSetNe) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask,
                  [&](int lane) { a[lane] = b[lane] != c[lane] ? 1 : 0; });
    } else if constexpr (OP == Op::kSetGe) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask,
                  [&](int lane) { a[lane] = b[lane] >= c[lane] ? 1 : 0; });
    } else if constexpr (OP == Op::kSetGt) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t* c = RI(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] > c[lane] ? 1 : 0; });
    } else if constexpr (OP == Op::kSetLtI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] < imm ? 1 : 0; });
    } else if constexpr (OP == Op::kSetGeI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] >= imm ? 1 : 0; });
    } else if constexpr (OP == Op::kSetEqI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] == imm ? 1 : 0; });
    } else if constexpr (OP == Op::kSetNeI) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t* b = RI(w, in.b);
      const std::int64_t imm = in.imm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] != imm ? 1 : 0; });
    } else if constexpr (OP == Op::kS2R) {
      std::int64_t* a = RI(w, in.a);
      switch (static_cast<Special>(in.b)) {
        case Special::kGlobalTid:
          Lanes<FULL>(mask, [&](int lane) { a[lane] = w.base_tid + lane; });
          break;
        case Special::kLane:
          Lanes<FULL>(mask, [&](int lane) { a[lane] = lane; });
          break;
        case Special::kWarpId:
          Lanes<FULL>(mask,
                      [&](int lane) { a[lane] = (w.base_tid + lane) / 32; });
          break;
        case Special::kBlockId:
          Lanes<FULL>(mask, [&](int lane) { a[lane] = w.block_id; });
          break;
        case Special::kThreadInBlock:
          Lanes<FULL>(mask, [&](int lane) {
            a[lane] =
                w.base_tid + lane - w.block_id * ctx.threads_per_block;
          });
          break;
        case Special::kGridThreads:
          Lanes<FULL>(mask, [&](int lane) { a[lane] = ctx.grid_threads; });
          break;
      }
    } else if constexpr (OP == Op::kLdParam) {
      std::int64_t* a = RI(w, in.a);
      const std::int64_t value = ctx.params[static_cast<std::size_t>(in.imm)];
      Lanes<FULL>(mask, [&](int lane) { a[lane] = value; });
    } else if constexpr (OP == Op::kFMovI) {
      double* a = RF(w, in.a);
      const double imm = in.fimm;
      Lanes<FULL>(mask, [&](int lane) { a[lane] = imm; });
    } else if constexpr (OP == Op::kFMov) {
      double* a = RF(w, in.a);
      const double* b = RF(w, in.b);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane]; });
    } else if constexpr (OP == Op::kFAdd) {
      double* a = RF(w, in.a);
      const double* b = RF(w, in.b);
      const double* c = RF(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] + c[lane]; });
    } else if constexpr (OP == Op::kFSub) {
      double* a = RF(w, in.a);
      const double* b = RF(w, in.b);
      const double* c = RF(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] - c[lane]; });
    } else if constexpr (OP == Op::kFMul) {
      double* a = RF(w, in.a);
      const double* b = RF(w, in.b);
      const double* c = RF(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] * c[lane]; });
    } else if constexpr (OP == Op::kFDiv) {
      double* a = RF(w, in.a);
      const double* b = RF(w, in.b);
      const double* c = RF(w, in.c);
      Lanes<FULL>(mask, [&](int lane) { a[lane] = b[lane] / c[lane]; });
    } else if constexpr (OP == Op::kFFma) {
      double* a = RF(w, in.a);
      const double* b = RF(w, in.b);
      const double* c = RF(w, in.c);
      // Written as x + y*z like the scalar core; with contraction disabled
      // (default -std=c++20 -O3, no -ffast-math) both evaluate the same
      // mul-then-add double rounding.
      Lanes<FULL>(mask, [&](int lane) { a[lane] += b[lane] * c[lane]; });
    } else if constexpr (OP == Op::kShflDownF) {
      // Read the source values of ALL lanes first (lock-step exchange).
      double source[32];
      const double* b = RF(w, in.b);
      for (int lane = 0; lane < 32; ++lane) source[lane] = b[lane];
      double* a = RF(w, in.a);
      const int delta = static_cast<int>(in.imm);
      Lanes<FULL>(mask, [&](int lane) {
        const int src_lane = lane + delta;
        a[lane] = src_lane < 32 ? source[src_lane] : source[lane];
      });
    } else {
      static_assert(OP == Op::kNop, "op is not batchable");
    }
  }

  // Single-step fallback for a batchable op that cannot batch (divergent
  // stack, or a run of length accounted elsewhere): same handlers, one
  // instruction.
  static std::int32_t StepAlu(Machine&, Warp& w, const DI& d, int,
                              MemTxn&, const Ctx& ctx) {
    if (w.active == kFullMask) {
      d.alu_full(w, d.instr, ctx);
    } else {
      d.alu_masked(w, d.instr, ctx);
    }
    return w.pc + 1;
  }

  template <Op OP>
  static std::int32_t StepLoad(Machine& m, Warp& w, const DI& d, int,
                               MemTxn& mem, const Ctx&) {
    const Instr& in = d.instr;
    const std::uint32_t active = w.active;
    std::uint64_t addresses[32];
    std::size_t count = 0;
    const std::int64_t* baddr = RI(w, in.b);
    ForActive(active, [&](int lane) {
      const std::uint64_t addr = static_cast<std::uint64_t>(baddr[lane]);
      addresses[count++] = addr;
      if constexpr (OP == Op::kLd4) {
        RI(w, in.a)[lane] = m.memory_->LoadI32(addr);
      } else if constexpr (OP == Op::kLd8I) {
        RI(w, in.a)[lane] = m.memory_->LoadI64(addr);
      } else {
        RF(w, in.a)[lane] = m.memory_->LoadF64(addr);
      }
    });
    // Spin-poll fast path — same cache, same accounting as the scalar core.
    if ((d.flags & kPcInSpin) != 0 && w.poll_pc == w.pc &&
        w.poll_mask == active &&
        w.poll_count == static_cast<std::uint8_t>(count) &&
        std::equal(addresses, addresses + count, w.poll_addresses.begin())) {
      mem = m.AccountSectors(w.poll_sectors.data(), w.poll_num_sectors,
                             /*is_atomic=*/false);
    } else {
      std::uint64_t sectors[64];
      const std::size_t num_sectors =
          Machine::DedupSectors(addresses, count, m.sector_shift_, sectors);
      mem = m.AccountSectors(sectors, num_sectors, /*is_atomic=*/false);
      if ((d.flags & kPcInSpin) != 0) {
        w.poll_pc = w.pc;
        w.poll_mask = active;
        w.poll_count = static_cast<std::uint8_t>(count);
        w.poll_num_sectors = static_cast<std::uint8_t>(num_sectors);
        std::copy(addresses, addresses + count, w.poll_addresses.begin());
        std::copy(sectors, sectors + num_sectors, w.poll_sectors.begin());
      }
    }
    return w.pc + 1;
  }

  template <Op OP>
  static std::int32_t StepStore(Machine& m, Warp& w, const DI& d,
                                int sm_index, MemTxn&, const Ctx&) {
    const Instr& in = d.instr;
    std::uint64_t addresses[32];
    std::size_t count = 0;
    const std::int64_t* aaddr = RI(w, in.a);
    ForActive(w.active, [&](int lane) {
      const std::uint64_t addr = static_cast<std::uint64_t>(aaddr[lane]);
      addresses[count++] = addr;
      // Dropped publish: see the scalar core — bandwidth is accounted, the
      // value does not land.
      if (m.faults_ && (d.flags & kPcPublish) != 0 &&
          m.faults_->DropPublish(w.base_tid + lane)) {
        return;
      }
      if constexpr (OP == Op::kSt4) {
        m.memory_->StoreI32(addr,
                            static_cast<std::int32_t>(RI(w, in.b)[lane]));
      } else if constexpr (OP == Op::kSt8I) {
        m.memory_->StoreI64(addr, RI(w, in.b)[lane]);
      } else {
        double value = RF(w, in.b)[lane];
        if (m.faults_) m.faults_->MaybeFlipStoreBit(value, w.base_tid + lane);
        m.memory_->StoreF64(addr, value);
      }
    });
    // Stores are fire-and-forget: account bandwidth, do not stall.
    (void)m.AccountMemory(addresses, count, MemoryWidth(OP));
    m.last_progress_cycle_ = m.cycle_;
    if (m.trace_ != nullptr && (d.flags & kPcPublish) != 0) {
      const int warp_index = static_cast<int>(&w - m.warp_pool_.data());
      trace::PublishInfo publish;
      publish.cycle = m.cycle_;
      publish.sm = sm_index;
      publish.warp_slot = warp_index - sm_index * m.config_.max_warps_per_sm;
      for (std::size_t i = 0; i < count; ++i) {
        publish.addr = addresses[i];
        m.trace_->OnPublish(publish);
      }
    }
    return w.pc + 1;
  }

  template <Op OP>
  static std::int32_t StepAtomic(Machine& m, Warp& w, const DI& d,
                                 int sm_index, MemTxn& mem, const Ctx&) {
    const Instr& in = d.instr;
    std::uint64_t addresses[32];
    std::size_t count = 0;
    const std::int64_t* baddr = RI(w, in.b);
    // Lane-order serialization, as in the scalar core.
    ForActive(w.active, [&](int lane) {
      const std::uint64_t addr = static_cast<std::uint64_t>(baddr[lane]);
      addresses[count++] = addr;
      if constexpr (OP == Op::kAtomAddF8) {
        const double old = m.memory_->LoadF64(addr);
        RF(w, in.a)[lane] = old;
        m.memory_->StoreF64(addr, old + RF(w, in.c)[lane]);
      } else {
        const std::int32_t old = m.memory_->LoadI32(addr);
        RI(w, in.a)[lane] = old;
        m.memory_->StoreI32(
            addr, old + static_cast<std::int32_t>(RI(w, in.c)[lane]));
      }
    });
    mem = m.AccountMemory(addresses, count, MemoryWidth(OP),
                          /*is_atomic=*/true);
    m.last_progress_cycle_ = m.cycle_;
    if (m.trace_ != nullptr) {
      const int warp_index = static_cast<int>(&w - m.warp_pool_.data());
      m.trace_->OnAtomic(m.cycle_, sm_index,
                         warp_index - sm_index * m.config_.max_warps_per_sm,
                         mem.transactions);
    }
    return w.pc + 1;
  }

  template <Op OP>
  static std::int32_t StepBranch(Machine&, Warp& w, const DI& d, int,
                                 MemTxn&, const Ctx&) {
    const Instr& in = d.instr;
    const std::uint32_t active = w.active;
    std::uint32_t taken = 0;
    const std::int64_t* pred = RI(w, in.a);
    ForActive(active, [&](int lane) {
      const bool nz = pred[lane] != 0;
      const bool takes = (OP == Op::kBrnz) ? nz : !nz;
      if (takes) taken |= 1u << lane;
    });
    const std::uint32_t fall = active & ~taken;
    if (taken == 0) return w.pc + 1;
    if (fall == 0) return static_cast<std::int32_t>(in.imm);
    // Divergence: run the fall-through side first; park the taken side,
    // merging with an existing frame when a loop re-diverges to the same
    // (reconv, target).
    const auto reconv = static_cast<std::int32_t>(in.imm2);
    const auto target = static_cast<std::int32_t>(in.imm);
    if (!w.stack.empty() && w.stack.back().reconv_pc == reconv &&
        w.stack.back().other_pc == target) {
      w.stack.back().other_mask |= taken;
    } else {
      w.stack.push_back(Machine::Frame{reconv, target, taken});
    }
    w.active = fall;
    return w.pc + 1;
  }

  static std::int32_t StepJmp(Machine&, Warp&, const DI& d, int, MemTxn&,
                              const Ctx&) {
    return static_cast<std::int32_t>(d.instr.imm);
  }

  static std::int32_t StepExit(Machine&, Warp& w, const DI&, int, MemTxn&,
                               const Ctx&) {
    w.active = 0;
    return w.pc + 1;
  }

  // Fills the handler pointers for one decoded instruction.
  static void Assign(Machine::DecodedInstr& d) {
#define CAPELLINI_ALU_HANDLER(OPNAME)            \
  case Op::OPNAME:                               \
    d.alu_full = &Alu<Op::OPNAME, true>;         \
    d.alu_masked = &Alu<Op::OPNAME, false>;      \
    d.step = &StepAlu;                           \
    break;
    switch (d.instr.op) {
      CAPELLINI_ALU_HANDLER(kNop)
      CAPELLINI_ALU_HANDLER(kMovI)
      CAPELLINI_ALU_HANDLER(kMov)
      CAPELLINI_ALU_HANDLER(kAdd)
      CAPELLINI_ALU_HANDLER(kAddI)
      CAPELLINI_ALU_HANDLER(kSub)
      CAPELLINI_ALU_HANDLER(kMul)
      CAPELLINI_ALU_HANDLER(kMulI)
      CAPELLINI_ALU_HANDLER(kAndI)
      CAPELLINI_ALU_HANDLER(kShlI)
      CAPELLINI_ALU_HANDLER(kShrI)
      CAPELLINI_ALU_HANDLER(kSetLt)
      CAPELLINI_ALU_HANDLER(kSetLe)
      CAPELLINI_ALU_HANDLER(kSetEq)
      CAPELLINI_ALU_HANDLER(kSetNe)
      CAPELLINI_ALU_HANDLER(kSetGe)
      CAPELLINI_ALU_HANDLER(kSetGt)
      CAPELLINI_ALU_HANDLER(kSetLtI)
      CAPELLINI_ALU_HANDLER(kSetGeI)
      CAPELLINI_ALU_HANDLER(kSetEqI)
      CAPELLINI_ALU_HANDLER(kSetNeI)
      CAPELLINI_ALU_HANDLER(kS2R)
      CAPELLINI_ALU_HANDLER(kLdParam)
      CAPELLINI_ALU_HANDLER(kFMovI)
      CAPELLINI_ALU_HANDLER(kFMov)
      CAPELLINI_ALU_HANDLER(kFAdd)
      CAPELLINI_ALU_HANDLER(kFSub)
      CAPELLINI_ALU_HANDLER(kFMul)
      CAPELLINI_ALU_HANDLER(kFDiv)
      CAPELLINI_ALU_HANDLER(kFFma)
      CAPELLINI_ALU_HANDLER(kShflDownF)
      CAPELLINI_ALU_HANDLER(kFence)
      case Op::kLd4:
        d.step = &StepLoad<Op::kLd4>;
        break;
      case Op::kLd8I:
        d.step = &StepLoad<Op::kLd8I>;
        break;
      case Op::kLd8F:
        d.step = &StepLoad<Op::kLd8F>;
        break;
      case Op::kSt4:
        d.step = &StepStore<Op::kSt4>;
        break;
      case Op::kSt8I:
        d.step = &StepStore<Op::kSt8I>;
        break;
      case Op::kSt8F:
        d.step = &StepStore<Op::kSt8F>;
        break;
      case Op::kAtomAddF8:
        d.step = &StepAtomic<Op::kAtomAddF8>;
        break;
      case Op::kAtomAddI4:
        d.step = &StepAtomic<Op::kAtomAddI4>;
        break;
      case Op::kBrnz:
        d.step = &StepBranch<Op::kBrnz>;
        break;
      case Op::kBrz:
        d.step = &StepBranch<Op::kBrz>;
        break;
      case Op::kJmp:
        d.step = &StepJmp;
        break;
      case Op::kExit:
        d.step = &StepExit;
        break;
    }
#undef CAPELLINI_ALU_HANDLER
  }
};

void Machine::ExecuteThreaded(int warp_index, int sm_index) {
  Warp& warp = warp_pool_[static_cast<std::size_t>(warp_index)];
  if (!warp.stack.empty()) SyncAtReconv(warp);
  CAPELLINI_CHECK(warp.active != 0);
  CAPELLINI_CHECK(warp.pc >= 0 &&
                  warp.pc < static_cast<std::int32_t>(decoded_->code.size()));

  const DecodedInstr* code = decoded_->code.data();
  const DecodedInstr& head = code[static_cast<std::size_t>(warp.pc)];
  const ExecCtx ctx{params_.data(), grid_threads_, threads_per_block_};

  // Per-issue observers — an attached TraceSink or the CAPELLINI_TRACE=1
  // dump — want a hook on every instruction, so run fusion is disabled while
  // one is attached: each instruction of a run becomes its own dispatch at
  // what would have been the fused-run boundary. Fusion is schedule-neutral
  // by construction (the skip credit charges exactly the slots the unfused
  // issues would have), so disabling it changes neither the cycle count nor
  // any counter — the "a sink never affects timing" contract holds.
  const bool hooked = trace_ != nullptr || debug_trace_;

  if (head.run != 0 && warp.stack.empty() && !hooked) {
    // Fused straight-line run: execute every batchable instruction from
    // here in one dispatch over the SoA register rows (no re-entry into the
    // dispatch loop between them), then charge the n-1 remaining issue
    // slots through Warp::skip. With an empty stack no instruction in the
    // run can touch the reconvergence machinery, memory, or control flow,
    // so nothing outside this warp's register file can observe the batch.
    const int n = head.run;
    stats_.instructions += static_cast<std::uint64_t>(n);
    stats_.lane_instructions += static_cast<std::uint64_t>(n) *
                                static_cast<std::uint64_t>(PopCount(warp.active));
    const DecodedInstr* d = &head;
    if (warp.active == kFullMask) {
      for (int i = 0; i < n; ++i) {
        d[i].alu_full(warp, d[i].instr, ctx);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        d[i].alu_masked(warp, d[i].instr, ctx);
      }
    }
    warp.pc += n;
    warp.skip = static_cast<std::uint16_t>(n - 1);
    sms_[static_cast<std::size_t>(sm_index)].ready.push_back(warp_index);
    MarkSmReady(sm_index);
    return;
  }

  // Debug tracing (CAPELLINI_TRACE=1): same line format as the scalar core.
  if (debug_trace_) {
    std::fprintf(stderr,
                 "cyc=%llu warp=%d pc=%d op=%d active=%08x stack=%zu\n",
                 static_cast<unsigned long long>(cycle_), warp_index, warp.pc,
                 static_cast<int>(head.instr.op), warp.active,
                 warp.stack.size());
  }
  ++stats_.instructions;
  stats_.lane_instructions += static_cast<std::uint64_t>(PopCount(warp.active));

  if (trace_) {
    trace::IssueInfo issue;
    issue.cycle = cycle_;
    issue.sm = sm_index;
    issue.warp_slot = warp_index - sm_index * config_.max_warps_per_sm;
    issue.base_tid = warp.base_tid;
    issue.pc = warp.pc;
    issue.active = warp.active;
    issue.divergent = !warp.stack.empty();
    issue.in_spin = (head.flags & kPcInSpin) != 0;
    issue.spin_head = (head.flags & kPcSpinHead) != 0;
    trace_->OnIssue(issue);
  }

  MemTxn mem;  // ready_at == 0 => ready immediately
  warp.pc = head.step(*this, warp, head, sm_index, mem, ctx);
  UnwindIfEmpty(warp, sm_index);
  if (!warp.alive) {
    FinishWarp(warp_index, sm_index);
    return;
  }

  // Delayed memory response: timing-only, as in the scalar core.
  if (faults_ && mem.ready_at != 0) {
    mem.ready_at += faults_->ExtraMemDelay(warp.base_tid);
  }
  if (mem.ready_at > cycle_ + 1) {
    if (trace_) {
      trace::MemStallInfo stall;
      stall.cycle = cycle_;
      stall.ready_at = mem.ready_at;
      stall.sm = sm_index;
      stall.warp_slot = warp_index - sm_index * config_.max_warps_per_sm;
      stall.base_tid = warp.base_tid;
      stall.queue_cycles = mem.queue_cycles;
      stall.transactions = mem.transactions;
      stall.dram_misses = mem.misses;
      stall.is_atomic = head.instr.op == Op::kAtomAddF8 ||
                        head.instr.op == Op::kAtomAddI4;
      stall.in_spin = (head.flags & kPcInSpin) != 0;
      trace_->OnMemStall(stall);
    }
    WakePush(mem.ready_at, warp_index, sm_index);
  } else {
    sms_[static_cast<std::size_t>(sm_index)].ready.push_back(warp_index);
    MarkSmReady(sm_index);
  }
}

const Machine::DecodedKernel* Machine::DecodeKernel(const Kernel& kernel) {
  const std::uint64_t fingerprint = kernel.Fingerprint();
  for (auto& entry : decode_cache_) {
    if (entry.first != &kernel) continue;
    // Same pointer, changed content (rebuilt or mutated kernel): rebuild the
    // stream, exactly as the old per-launch predecode would have.
    if (entry.second->fingerprint != fingerprint) {
      BuildDecoded(kernel, fingerprint, *entry.second);
    }
    return entry.second.get();
  }
  // Bound the cache: kernels are few (one per algorithm variant), so this
  // trips only for pathological churn; clearing is always safe because
  // decoded_ is re-looked-up at every Launch.
  if (decode_cache_.size() >= 64) decode_cache_.clear();
  decode_cache_.emplace_back(&kernel, std::make_unique<DecodedKernel>());
  BuildDecoded(kernel, fingerprint, *decode_cache_.back().second);
  return decode_cache_.back().second.get();
}

void Machine::BuildDecoded(const Kernel& kernel, std::uint64_t fingerprint,
                           DecodedKernel& out) {
  out.fingerprint = fingerprint;
  const std::size_t n = kernel.code.size();
  out.code.assign(n, DecodedInstr{});
  for (std::size_t pc = 0; pc < n; ++pc) {
    out.code[pc].instr = kernel.code[pc];
    Interp::Assign(out.code[pc]);
  }
  for (const auto& [begin, end] : kernel.spin_regions) {
    for (std::int32_t pc = begin; pc < end; ++pc) {
      out.code[static_cast<std::size_t>(pc)].flags |= kPcInSpin;
    }
    out.code[static_cast<std::size_t>(begin)].flags |= kPcSpinHead;
  }
  for (const std::int32_t pc : kernel.publish_pcs) {
    out.code[static_cast<std::size_t>(pc)].flags |= kPcPublish;
  }
  const std::vector<std::uint16_t> runs = StraightLineRuns(kernel.code);
  for (std::size_t pc = 0; pc < n; ++pc) out.code[pc].run = runs[pc];
}

Expected<LaunchStats> Machine::Launch(const Kernel& kernel, LaunchDims dims,
                                      std::span<const std::int64_t> params) {
  if (dims.num_threads <= 0) {
    return InvalidArgument("launch with no threads");
  }
  if (static_cast<int>(params.size()) != kernel.num_params) {
    return InvalidArgument("kernel " + kernel.name + " expects " +
                           std::to_string(kernel.num_params) + " params, got " +
                           std::to_string(params.size()));
  }
  if (dims.threads_per_block <= 0 || dims.threads_per_block % 32 != 0) {
    return InvalidArgument("threads_per_block must be a positive multiple of 32");
  }
  if (dims.threads_per_block / 32 > config_.max_warps_per_sm) {
    return InvalidArgument(
        "threads_per_block exceeds the SM's resident-warp capacity (" +
        std::to_string(config_.max_warps_per_sm * 32) + " threads)");
  }

  kernel_ = &kernel;
  params_.assign(params.begin(), params.end());
  grid_threads_ = dims.num_threads;
  threads_per_block_ = dims.threads_per_block;
  stats_ = LaunchStats{};
  stats_.launches = 1;
  cycle_ = 0;
  dram_busy_until_ = 0.0;
  l2_busy_until_ = 0.0;
  last_progress_cycle_ = 0;
  alive_warps_ = 0;
  sm_slots_freed_ = false;
  WakeReset();
  // Peer-device arrivals are applied in cycle order; they are consumed by
  // this launch only (cleared on every exit path below).
  std::sort(ext_.begin(), ext_.end(),
            [](const ExternalStore& a, const ExternalStore& b) {
              return a.cycle < b.cycle;
            });
  ext_next_ = 0;
  struct ExtClear {
    Machine* machine;
    ~ExtClear() {
      machine->ext_.clear();
      machine->ext_next_ = 0;
    }
  } ext_clear{this};
  // Lazy bitmap reset: only the words the previous launch touched are
  // nonzero, so re-launch cost is O(touched), not O(address space).
  for (const std::size_t word : l2_touched_words_) l2_sectors_[word] = 0;
  l2_touched_words_.clear();

  // Decoded handler stream: cached across launches, keyed by kernel pointer
  // and validated by content fingerprint (see DecodeKernel).
  decoded_ = DecodeKernel(kernel);

  // Core selection: the threaded dispatcher is the only production core.
  // An attached TraceSink (or the CAPELLINI_TRACE=1 debug dump) disables run
  // fusion inside it so every instruction gets its per-issue hook (see
  // ExecuteThreaded). The legacy scalar switch survives solely as the
  // equivalence oracle behind the test-only hook below
  // (interp_equivalence_test, bench_interp's identity gate).
  const bool use_threaded =
      !scalar_core_for_test_.load(std::memory_order_relaxed);

  ++launch_index_;
  if (trace_) {
    trace::LaunchInfo info;
    info.launch_index = launch_index_;
    info.kernel_name = kernel.name.c_str();
    info.num_threads = dims.num_threads;
    info.threads_per_block = dims.threads_per_block;
    info.params = params_.data();
    info.num_params = static_cast<int>(params_.size());
    trace_->OnLaunchBegin(info);
  }

  const int warps_per_block = dims.threads_per_block / 32;
  const std::int64_t num_blocks =
      (dims.num_threads + dims.threads_per_block - 1) / dims.threads_per_block;

  // Warp pool & SM slots (allocations reused across launches when the device
  // dims are unchanged; the per-SM loop below resets all mutable state).
  const int pool_per_sm = config_.max_warps_per_sm;
  const std::size_t pool_size =
      static_cast<std::size_t>(config_.num_sms) *
      static_cast<std::size_t>(pool_per_sm);
  if (warp_pool_.size() != pool_size) {
    warp_pool_.assign(pool_size, Warp{});
    for (Warp& warp : warp_pool_) {
      warp.r.assign(32 * kNumIntRegs, 0);
      warp.f.assign(32 * kNumFltRegs, 0.0);
    }
  }
  if (sms_.size() != static_cast<std::size_t>(config_.num_sms)) {
    sms_.resize(static_cast<std::size_t>(config_.num_sms));
  }
  for (int s = 0; s < config_.num_sms; ++s) {
    Sm& sm = sms_[static_cast<std::size_t>(s)];
    sm.free_slots.clear();
    for (int k = pool_per_sm - 1; k >= 0; --k) {
      sm.free_slots.push_back(s * pool_per_sm + k);
    }
    sm.ready.Reset(pool_per_sm);
    sm.resident = 0;
  }
  ready_sm_mask_.assign(
      (static_cast<std::size_t>(config_.num_sms) + 63) / 64, 0);
  resident_sm_count_ = 0;

  std::int64_t next_block = 0;
  int dispatch_sm = 0;

  // Assigns queued blocks, in block order, to SMs with enough free slots.
  auto dispatch = [&] {
    int sms_tried = 0;
    while (next_block < num_blocks && sms_tried < config_.num_sms) {
      Sm& sm = sms_[static_cast<std::size_t>(dispatch_sm)];
      if (static_cast<int>(sm.free_slots.size()) < warps_per_block) {
        dispatch_sm = (dispatch_sm + 1) % config_.num_sms;
        ++sms_tried;
        continue;
      }
      const std::int64_t block = next_block++;
      if (trace_) trace_->OnBlockDispatch(cycle_, block, dispatch_sm);
      const std::int64_t block_first_tid =
          block * static_cast<std::int64_t>(dims.threads_per_block);
      for (int w = 0; w < warps_per_block; ++w) {
        const std::int64_t base_tid = block_first_tid + 32ll * w;
        if (base_tid >= dims.num_threads) break;
        const int warp_index = sm.free_slots.back();
        sm.free_slots.pop_back();
        Warp& warp = warp_pool_[static_cast<std::size_t>(warp_index)];
        warp.pc = 0;
        warp.base_tid = base_tid;
        warp.block_id = block;
        warp.stack.clear();
        warp.skip = 0;
        warp.poll_pc = -1;
        const std::int64_t lanes_left = dims.num_threads - base_tid;
        warp.active = lanes_left >= 32
                          ? kFullMask
                          : (1u << lanes_left) - 1u;
        warp.alive = true;
        sm.ready.push_back(warp_index);
        MarkSmReady(dispatch_sm);
        if (sm.resident == 0) ++resident_sm_count_;
        ++sm.resident;
        ++alive_warps_;
        if (trace_) {
          trace_->OnWarpStart(
              cycle_, dispatch_sm,
              warp_index - dispatch_sm * config_.max_warps_per_sm, block,
              base_tid);
        }
      }
      last_progress_cycle_ = cycle_;
      dispatch_sm = (dispatch_sm + 1) % config_.num_sms;
      sms_tried = 0;  // made progress; rescan
    }
  };

  dispatch();

  while (alive_warps_ > 0 || next_block < num_blocks) {
    // Apply peer-device stores whose arrival cycle has been reached. Applied
    // before any warp issues this cycle, so a poll load at cycle >= arrival
    // observes the flag — the same ordering an on-device producer gives. Each
    // application is forward progress: a consumer legitimately spinning on a
    // remote flag is not a deadlock.
    while (ext_next_ < ext_.size() && ext_[ext_next_].cycle <= cycle_) {
      const ExternalStore& store = ext_[ext_next_++];
      if (store.f64_addr != 0) {
        memory_->StoreF64(store.f64_addr, store.f64_value);
      }
      if (store.i32_addr != 0) {
        memory_->StoreI32(store.i32_addr, store.i32_value);
      }
      last_progress_cycle_ = cycle_;
    }
    if (cycle_ > config_.max_cycles) {
      const std::string dump = "kernel " + kernel.name + " exceeded " +
                               std::to_string(config_.max_cycles) + " cycles";
      if (trace_) {
        trace_->OnDeadlock(cycle_, dump);
        trace_->OnLaunchEnd(cycle_ + config_.launch_overhead_cycles);
      }
      return DeadlockError(dump);
    }
    if (ext_next_ >= ext_.size() &&
        cycle_ - last_progress_cycle_ > config_.no_progress_cycles) {
      // Diagnose: where are the surviving warps parked? A busy-wait deadlock
      // shows up as most warps clustered at the spin loop's PCs.
      std::vector<int> pc_histogram(kernel.code.size(), 0);
      int alive = 0;
      for (const Warp& warp : warp_pool_) {
        if (!warp.alive) continue;
        ++alive;
        // Architectural PC: a warp mid-drain of a pre-executed run (threaded
        // core) has advanced pc past instructions whose issue slots are
        // still being charged; skip is 0 on the scalar core.
        ++pc_histogram[static_cast<std::size_t>(warp.pc - warp.skip)];
      }
      std::string hot_pcs;
      int listed = 0;
      for (std::size_t pc = 0; pc < pc_histogram.size(); ++pc) {
        if (pc_histogram[pc] == 0) continue;
        if (listed++ >= 4) break;
        if (!hot_pcs.empty()) hot_pcs += ", ";
        hot_pcs += "pc " + std::to_string(pc) + " x" +
                   std::to_string(pc_histogram[pc]);
      }
      const std::string dump =
          "kernel " + kernel.name +
          " made no forward progress (intra-warp busy-wait deadlock?) at cycle " +
          std::to_string(cycle_) + "; " + std::to_string(alive) +
          " warps alive (" + hot_pcs + ")";
      if (trace_) {
        trace_->OnDeadlock(cycle_, dump);
        trace_->OnLaunchEnd(cycle_ + config_.launch_overhead_cycles);
      }
      return DeadlockError(dump);
    }

    // Far-parked warps whose wake time entered the wheel horizon.
    while (!wake_far_.empty() &&
           std::get<0>(wake_far_.top()) < cycle_ + kWakeWheel) {
      const WakeEntry entry = wake_far_.top();
      wake_far_.pop();
      const std::uint64_t b = std::get<0>(entry) & (kWakeWheel - 1);
      wake_wheel_[b].emplace_back(std::get<1>(entry), std::get<2>(entry));
      wake_wheel_bits_[b >> 6] |= 1ull << (b & 63);
      ++wake_wheel_count_;
    }
    // Wake memory-stalled warps whose loads completed. Exactly one bucket
    // can hold entries at time <= cycle_ (see wake_wheel_ invariants).
    {
      const std::uint64_t b = cycle_ & (kWakeWheel - 1);
      if ((wake_wheel_bits_[b >> 6] >> (b & 63)) & 1ull) {
        std::vector<std::pair<int, int>>& bucket = wake_wheel_[b];
        std::sort(bucket.begin(), bucket.end());
        for (const auto& [warp, sm] : bucket) {
          sms_[static_cast<std::size_t>(sm)].ready.push_back(warp);
          MarkSmReady(sm);
        }
        wake_wheel_count_ -= bucket.size();
        bucket.clear();
        wake_wheel_bits_[b >> 6] &= ~(1ull << (b & 63));
      }
    }

    // Re-attempt block dispatch only after a warp retired: dispatch fails
    // exactly when no SM has enough free slots, and a failed full scan
    // leaves dispatch_sm where it started (it advances num_sms times), so
    // skipping the guaranteed-failing re-scans is schedule-identical. For
    // grids larger than device residency this removes a full SM scan from
    // (nearly) every simulated cycle.
    if (next_block < num_blocks && sm_slots_freed_) {
      sm_slots_freed_ = false;
      dispatch();
    }

    // Issue scan. Every resident SM charges issue_per_cycle slots per cycle
    // whether or not it issues, so the total is closed-form; only SMs with a
    // non-empty ready ring (set bits, walked in ascending SM order — the
    // exact subset and order the full sweep would have issued from) are
    // visited, and stalls fall out as slots minus used.
    const std::uint64_t cycle_slots =
        static_cast<std::uint64_t>(config_.issue_per_cycle) *
        static_cast<std::uint64_t>(resident_sm_count_);
    stats_.issue_slots += cycle_slots;
    std::uint64_t used = 0;
    for (std::size_t word = 0; word < ready_sm_mask_.size(); ++word) {
      std::uint64_t bits = ready_sm_mask_[word];
      while (bits != 0) {
        const int s =
            static_cast<int>(word << 6) + std::countr_zero(bits);
        const std::uint64_t bit = bits & (~bits + 1);
        bits &= bits - 1;
        Sm& sm = sms_[static_cast<std::size_t>(s)];
        for (int k = 0; k < config_.issue_per_cycle; ++k) {
          // Nothing can refill a drained ring mid-loop except this SM's own
          // re-queues (wake/dispatch run before the scan), so empty means
          // the remaining slots of this SM-cycle are all stalls.
          if (sm.ready.empty()) break;
          const int warp_index = sm.ready.pop_front();
          // Stuck warp: parked instead of issuing — scheduling jitter, the
          // slot goes idle. The wake queue brings it back, so the
          // no-progress watchdog never confuses a stuck warp with a
          // deadlock.
          if (faults_) {
            const std::uint64_t stuck = faults_->StuckCycles(
                warp_pool_[static_cast<std::size_t>(warp_index)].base_tid);
            if (stuck != 0) {
              WakePush(cycle_ + stuck, warp_index, s);
              continue;
            }
          }
          Warp& warp = warp_pool_[static_cast<std::size_t>(warp_index)];
          if (warp.skip != 0) {
            // The instruction for this slot was pre-executed as part of a
            // straight-line run; charge the slot and keep the warp in the
            // round-robin, exactly as if it had issued one instruction.
            --warp.skip;
            sm.ready.push_back(warp_index);
          } else if (use_threaded) {
            ExecuteThreaded(warp_index, s);
          } else {
            ExecuteInstruction(warp_index, s);
          }
          ++used;
        }
        if (sm.ready.empty()) ready_sm_mask_[word] &= ~bit;
      }
    }
    stats_.issue_used += used;
    stats_.stall_slots += cycle_slots - used;
    const bool issued_any = used != 0;

    if (issued_any) {
      ++cycle_;
    } else if (WakePending()) {
      // Everything resident is stalled on memory: fast-forward.
      const std::uint64_t next = NextWakeTime();
      const std::uint64_t skip = next > cycle_ ? next - cycle_ : 1;
      const std::uint64_t slots =
          skip * static_cast<std::uint64_t>(config_.issue_per_cycle) *
          static_cast<std::uint64_t>(resident_sm_count_);
      stats_.issue_slots += slots;
      stats_.stall_slots += slots;
      cycle_ += skip;
    } else if (alive_warps_ > 0) {
      return InternalError("live warps with nothing ready and empty wake queue");
    } else {
      // Blocks remain but nothing resident: dispatch next iteration.
      ++cycle_;
    }
  }

  stats_.cycles = cycle_ + config_.launch_overhead_cycles;
  if (trace_) trace_->OnLaunchEnd(stats_.cycles);
  return stats_;
}

}  // namespace capellini::sim
