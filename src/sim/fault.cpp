#include "sim/fault.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace capellini::sim {
namespace {

/// splitmix64 finalizer: a full-avalanche mix so consecutive event indices
/// give independent uniforms.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropPublish:
      return "drop_publish";
    case FaultKind::kBitFlipStore:
      return "bitflip_store";
    case FaultKind::kStuckWarp:
      return "stuck_warp";
    case FaultKind::kMemDelay:
      return "mem_delay";
  }
  return "unknown";
}

void FaultInjector::Reseed(const FaultPlan& plan) {
  plan_ = plan;
  for (auto& e : events_) e.store(0, std::memory_order_relaxed);
  for (auto& i : injected_) i.store(0, std::memory_order_relaxed);
  total_injected_.store(0, std::memory_order_relaxed);
}

FaultCounts FaultInjector::counts() const {
  FaultCounts counts;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    counts.injected[static_cast<std::size_t>(k)] =
        injected_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
  }
  return counts;
}

bool FaultInjector::InScope(std::int64_t tid, int span) const {
  if (tid < 0) return true;  // direct callers are scope-exempt
  const std::int64_t begin = tid + tid_offset_;
  const std::int64_t end = begin + span;
  if (plan_.HasRowScope() &&
      (end <= plan_.row_begin || begin >= plan_.row_end)) {
    return false;
  }
  if (plan_.HasWarpScope()) {
    const std::int64_t warp_lo = begin >> 5;
    const std::int64_t warp_hi = ((end - 1) >> 5) + 1;
    if (warp_hi <= plan_.warp_begin || warp_lo >= plan_.warp_end) return false;
  }
  return true;
}

bool FaultInjector::Decide(FaultKind kind, double rate, std::int64_t tid,
                           int span) {
  if (rate <= 0.0) return false;  // zero-rate kinds consume nothing
  const auto k = static_cast<std::size_t>(kind);
  const std::uint64_t event =
      events_[k].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      Mix(plan_.seed ^ Mix(static_cast<std::uint64_t>(k + 1) ^ (event << 3)));
  if (ToUnit(h) >= rate) return false;
  // Scope is checked AFTER the hash consumed its event, so scoped and
  // unscoped plans share one event/decision stream; out-of-scope hits are
  // suppressed and do not count against max_faults.
  if (!InScope(tid, span)) return false;
  if (plan_.max_faults != 0) {
    // Respect the total cap without overshooting under concurrent callers.
    std::uint64_t current = total_injected_.load(std::memory_order_relaxed);
    do {
      if (current >= plan_.max_faults) return false;
    } while (!total_injected_.compare_exchange_weak(
        current, current + 1, std::memory_order_relaxed));
  } else {
    total_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  injected_[k].fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::MaybeFlipStoreBit(double& value, std::int64_t tid) {
  if (!Decide(FaultKind::kBitFlipStore, plan_.bitflip_store_rate, tid, 1)) {
    return false;
  }
  // Flip the low exponent bit: the value halves or doubles — large enough
  // that the relative-residual check always notices, without manufacturing
  // NaN/Inf (those have their own guard and would make corruption trivially
  // detectable).
  auto bits = std::bit_cast<std::uint64_t>(value);
  bits ^= 1ull << 52;
  value = std::bit_cast<double>(bits);
  return true;
}

Status WriteFaultPlanJson(const FaultPlan& plan, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return IoError("cannot write " + path);
  std::fprintf(file,
               "{\n"
               "  \"seed\": %llu,\n"
               "  \"drop_publish_rate\": %.9g,\n"
               "  \"bitflip_store_rate\": %.9g,\n"
               "  \"stuck_warp_rate\": %.9g,\n"
               "  \"mem_delay_rate\": %.9g,\n"
               "  \"stuck_cycles\": %llu,\n"
               "  \"mem_delay_cycles\": %llu,\n"
               "  \"max_faults\": %llu,\n"
               "  \"row_begin\": %lld,\n"
               "  \"row_end\": %lld,\n"
               "  \"warp_begin\": %lld,\n"
               "  \"warp_end\": %lld\n"
               "}\n",
               static_cast<unsigned long long>(plan.seed),
               plan.drop_publish_rate, plan.bitflip_store_rate,
               plan.stuck_warp_rate, plan.mem_delay_rate,
               static_cast<unsigned long long>(plan.stuck_cycles),
               static_cast<unsigned long long>(plan.mem_delay_cycles),
               static_cast<unsigned long long>(plan.max_faults),
               static_cast<long long>(plan.row_begin),
               static_cast<long long>(plan.row_end),
               static_cast<long long>(plan.warp_begin),
               static_cast<long long>(plan.warp_end));
  std::fclose(file);
  return Status::Ok();
}

Expected<FaultPlan> ReadFaultPlanJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return IoError("cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);

  FaultPlan plan;
  bool any = false;
  // Minimal scanner for the writer's schema (see serve/replay.cpp): each key
  // is optional, unknown keys are ignored, defaults survive.
  auto read_u64 = [&](const char* key, std::uint64_t& out) -> Status {
    const std::size_t pos = text.find("\"" + std::string(key) + "\"");
    if (pos == std::string::npos) return Status::Ok();
    unsigned long long value = 0;
    if (std::sscanf(text.c_str() + pos + std::strlen(key) + 2, " : %llu",
                    &value) != 1) {
      return IoError(path + ": malformed \"" + key + "\" value");
    }
    out = value;
    any = true;
    return Status::Ok();
  };
  auto read_rate = [&](const char* key, double& out) -> Status {
    const std::size_t pos = text.find("\"" + std::string(key) + "\"");
    if (pos == std::string::npos) return Status::Ok();
    double value = 0.0;
    if (std::sscanf(text.c_str() + pos + std::strlen(key) + 2, " : %lf",
                    &value) != 1) {
      return IoError(path + ": malformed \"" + key + "\" value");
    }
    if (value < 0.0 || value > 1.0) {
      return IoError(path + ": \"" + key + "\" must be in [0, 1]");
    }
    out = value;
    any = true;
    return Status::Ok();
  };
  CAPELLINI_RETURN_IF_ERROR(read_u64("seed", plan.seed));
  CAPELLINI_RETURN_IF_ERROR(
      read_rate("drop_publish_rate", plan.drop_publish_rate));
  CAPELLINI_RETURN_IF_ERROR(
      read_rate("bitflip_store_rate", plan.bitflip_store_rate));
  CAPELLINI_RETURN_IF_ERROR(read_rate("stuck_warp_rate", plan.stuck_warp_rate));
  CAPELLINI_RETURN_IF_ERROR(read_rate("mem_delay_rate", plan.mem_delay_rate));
  CAPELLINI_RETURN_IF_ERROR(read_u64("stuck_cycles", plan.stuck_cycles));
  CAPELLINI_RETURN_IF_ERROR(
      read_u64("mem_delay_cycles", plan.mem_delay_cycles));
  CAPELLINI_RETURN_IF_ERROR(read_u64("max_faults", plan.max_faults));
  auto read_i64 = [&](const char* key, std::int64_t& out) -> Status {
    const std::size_t pos = text.find("\"" + std::string(key) + "\"");
    if (pos == std::string::npos) return Status::Ok();
    long long value = 0;
    if (std::sscanf(text.c_str() + pos + std::strlen(key) + 2, " : %lld",
                    &value) != 1) {
      return IoError(path + ": malformed \"" + key + "\" value");
    }
    out = value;
    any = true;
    return Status::Ok();
  };
  CAPELLINI_RETURN_IF_ERROR(read_i64("row_begin", plan.row_begin));
  CAPELLINI_RETURN_IF_ERROR(read_i64("row_end", plan.row_end));
  CAPELLINI_RETURN_IF_ERROR(read_i64("warp_begin", plan.warp_begin));
  CAPELLINI_RETURN_IF_ERROR(read_i64("warp_end", plan.warp_end));
  if (!any) return IoError(path + ": no FaultPlan keys found");
  return plan;
}

std::string FaultPlanSummary(const FaultPlan& plan) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "seed=%llu drop=%g flip=%g stuck=%g delay=%g max=%llu",
                static_cast<unsigned long long>(plan.seed),
                plan.drop_publish_rate, plan.bitflip_store_rate,
                plan.stuck_warp_rate, plan.mem_delay_rate,
                static_cast<unsigned long long>(plan.max_faults));
  std::string out = buf;
  if (plan.HasRowScope()) {
    out += " rows=[" + std::to_string(plan.row_begin) + "," +
           std::to_string(plan.row_end) + ")";
  }
  if (plan.HasWarpScope()) {
    out += " warps=[" + std::to_string(plan.warp_begin) + "," +
           std::to_string(plan.warp_end) + ")";
  }
  return out;
}

}  // namespace capellini::sim
