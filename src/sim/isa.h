// Instruction set of the simulated SIMT device.
//
// A deliberately small register machine: 64-bit integer registers (addresses,
// indices, predicates), double registers (the solve arithmetic), global-memory
// accesses with 4- and 8-byte widths, warp shuffles, and predicated branches
// that carry an EXPLICIT reconvergence PC. All kernels in this repository are
// authored through KernelBuilder, so immediate-post-dominator analysis is
// unnecessary — the author states the reconvergence point (see DESIGN.md §2).
#pragma once

#include <cstdint>

namespace capellini::sim {

inline constexpr int kNumIntRegs = 24;
inline constexpr int kNumFltRegs = 12;

enum class Op : std::uint8_t {
  kNop,
  // Integer ALU.
  kMovI,   // R[a] = imm
  kMov,    // R[a] = R[b]
  kAdd,    // R[a] = R[b] + R[c]
  kAddI,   // R[a] = R[b] + imm
  kSub,    // R[a] = R[b] - R[c]
  kMul,    // R[a] = R[b] * R[c]
  kMulI,   // R[a] = R[b] * imm
  kAndI,   // R[a] = R[b] & imm
  kShlI,   // R[a] = R[b] << imm
  kShrI,   // R[a] = R[b] >> imm (arithmetic)
  // Comparisons produce 0/1.
  kSetLt,   // R[a] = R[b] < R[c]
  kSetLe,   // R[a] = R[b] <= R[c]
  kSetEq,   // R[a] = R[b] == R[c]
  kSetNe,   // R[a] = R[b] != R[c]
  kSetGe,   // R[a] = R[b] >= R[c]
  kSetGt,   // R[a] = R[b] > R[c]
  kSetLtI,  // R[a] = R[b] < imm
  kSetGeI,  // R[a] = R[b] >= imm
  kSetEqI,  // R[a] = R[b] == imm
  kSetNeI,  // R[a] = R[b] != imm
  // Specials & params.
  kS2R,      // R[a] = special(b)  (see Special)
  kLdParam,  // R[a] = params[imm]
  // Global memory (byte addresses in integer registers).
  kLd4,        // R[a] = sign-extended *(i32*)mem[R[b]]
  kLd8I,       // R[a] = *(i64*)mem[R[b]]
  kLd8F,       // F[a] = *(f64*)mem[R[b]]
  kSt4,        // *(i32*)mem[R[a]] = (i32)R[b]
  kSt8I,       // *(i64*)mem[R[a]] = R[b]
  kSt8F,       // *(f64*)mem[R[a]] = F[b]
  kAtomAddF8,  // F[a] = old *(f64*)mem[R[b]]; *(f64*)mem[R[b]] += F[c]
  kAtomAddI4,  // R[a] = old *(i32*)mem[R[b]]; *(i32*)mem[R[b]] += (i32)R[c]
  // Floating point (double).
  kFMovI,      // F[a] = fimm
  kFMov,       // F[a] = F[b]
  kFAdd,       // F[a] = F[b] + F[c]
  kFSub,       // F[a] = F[b] - F[c]
  kFMul,       // F[a] = F[b] * F[c]
  kFDiv,       // F[a] = F[b] / F[c]
  kFFma,       // F[a] = F[a] + F[b] * F[c]
  kShflDownF,  // F[a] = F[b] of lane (lane + imm), own value if out of range
  // Control flow.
  kBrnz,   // if R[a] != 0 goto imm; reconvergence at imm2
  kBrz,    // if R[a] == 0 goto imm; reconvergence at imm2
  kJmp,    // goto imm (uniform within the active mask)
  kFence,  // __threadfence(); ordering is already SC in the simulator, kept
           // for faithful instruction counts
  kExit,   // lane terminates
};

/// Special values readable via kS2R.
enum class Special : std::uint8_t {
  kGlobalTid,      // blockIdx * blockDim + threadIdx
  kLane,           // threadIdx % warp_size
  kWarpId,         // global warp index
  kBlockId,        // blockIdx
  kThreadInBlock,  // threadIdx
  kGridThreads,    // total launched threads
};

/// One decoded instruction. `a`, `b`, `c` are register indices (int or float
/// file depending on the op); imm/imm2/fimm per the op comments above.
struct Instr {
  Op op = Op::kNop;
  std::int16_t a = 0;
  std::int16_t b = 0;
  std::int16_t c = 0;
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;
  double fimm = 0.0;
};

/// True for ops that access global memory (used for transaction accounting).
constexpr bool IsMemoryOp(Op op) {
  switch (op) {
    case Op::kLd4:
    case Op::kLd8I:
    case Op::kLd8F:
    case Op::kSt4:
    case Op::kSt8I:
    case Op::kSt8F:
    case Op::kAtomAddF8:
    case Op::kAtomAddI4:
      return true;
    default:
      return false;
  }
}

/// True for loads/atomics, which stall the issuing warp until completion.
constexpr bool StallsWarp(Op op) {
  switch (op) {
    case Op::kLd4:
    case Op::kLd8I:
    case Op::kLd8F:
    case Op::kAtomAddF8:
    case Op::kAtomAddI4:
      return true;
    default:
      return false;
  }
}

/// True for ops the threaded interpreter core may execute inside a fused
/// straight-line batch: no memory traffic, no control flow, no cross-warp
/// visibility — the architectural effect is confined to the issuing warp's
/// register file, so a run of them commutes with every other warp's issue
/// and can be pre-executed in one dispatch (the simulated issue slots are
/// still charged cycle by cycle; see Machine).
constexpr bool IsStraightLineOp(Op op) {
  switch (op) {
    case Op::kBrnz:
    case Op::kBrz:
    case Op::kJmp:
    case Op::kExit:
      return false;
    default:
      return !IsMemoryOp(op);
  }
}

/// Width in bytes of a memory op's per-lane access.
constexpr int MemoryWidth(Op op) {
  switch (op) {
    case Op::kLd4:
    case Op::kSt4:
    case Op::kAtomAddI4:
      return 4;
    case Op::kLd8I:
    case Op::kLd8F:
    case Op::kSt8I:
    case Op::kSt8F:
    case Op::kAtomAddF8:
      return 8;
    default:
      return 0;
  }
}

}  // namespace capellini::sim
