#include "sim/memory.h"

namespace capellini::sim {

DevicePtr DeviceMemory::Alloc(std::uint64_t size, std::uint64_t alignment) {
  CAPELLINI_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  std::uint64_t offset = bytes_.size();
  offset = (offset + alignment - 1) & ~(alignment - 1);
  bytes_.resize(offset + size, 0);
  return offset;
}

void DeviceMemory::Fill(DevicePtr dst, std::uint64_t size, std::uint8_t value) {
  CheckRange(dst, size);
  std::memset(bytes_.data() + dst, value, size);
}

}  // namespace capellini::sim
