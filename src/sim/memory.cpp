#include "sim/memory.h"

namespace capellini::sim {

DevicePtr DeviceMemory::Alloc(std::uint64_t size, std::uint64_t alignment) {
  CAPELLINI_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  std::uint64_t offset = bytes_.size();
  offset = (offset + alignment - 1) & ~(alignment - 1);
  bytes_.resize(offset + size, 0);
  return offset;
}

void DeviceMemory::Fill(DevicePtr dst, std::uint64_t size, std::uint8_t value) {
  CheckRange(dst, size);
  std::memset(bytes_.data() + dst, value, size);
}

std::int32_t DeviceMemory::LoadI32(DevicePtr addr) const {
  CheckRange(addr, 4);
  std::int32_t v;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

std::int64_t DeviceMemory::LoadI64(DevicePtr addr) const {
  CheckRange(addr, 8);
  std::int64_t v;
  std::memcpy(&v, bytes_.data() + addr, 8);
  return v;
}

double DeviceMemory::LoadF64(DevicePtr addr) const {
  CheckRange(addr, 8);
  double v;
  std::memcpy(&v, bytes_.data() + addr, 8);
  return v;
}

void DeviceMemory::StoreI32(DevicePtr addr, std::int32_t value) {
  CheckRange(addr, 4);
  std::memcpy(bytes_.data() + addr, &value, 4);
}

void DeviceMemory::StoreI64(DevicePtr addr, std::int64_t value) {
  CheckRange(addr, 8);
  std::memcpy(bytes_.data() + addr, &value, 8);
}

void DeviceMemory::StoreF64(DevicePtr addr, double value) {
  CheckRange(addr, 8);
  std::memcpy(bytes_.data() + addr, &value, 8);
}

}  // namespace capellini::sim
