#include "core/select.h"

namespace capellini {

Algorithm SelectAlgorithm(const MatrixStats& stats) {
  if (stats.parallel_granularity > kGranularityCrossover) {
    return Algorithm::kCapellini;
  }
  // Low granularity: rows are long enough to keep a warp busy and levels are
  // small enough to fit residency — warp-level sync-free territory.
  return Algorithm::kSyncFree;
}

}  // namespace capellini
