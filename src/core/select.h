// Algorithm selection rule distilled from the paper's Figure 6 ("optimal
// algorithm distribution"): CapelliniSpTRSV wins when the average number of
// components per level is high AND the average nonzeros per row is low —
// summarized by parallel granularity above ~0.7 (§5.2); the warp-level
// SyncFree wins otherwise.
#pragma once

#include "core/solver.h"
#include "graph/stats.h"

namespace capellini {

/// The granularity crossover the paper reports (Figure 3 peaks then declines
/// past ~0.7; Capellini targets the 245 matrices above it).
inline constexpr double kGranularityCrossover = 0.7;

/// Picks the solve algorithm for a matrix from its structural indicators.
Algorithm SelectAlgorithm(const MatrixStats& stats);

}  // namespace capellini
