// Public facade of the library: analyze a lower-triangular system once, then
// solve it with any of the paper's algorithms — on the simulated GPU or on
// host threads — and get back the solution plus the paper's metrics.
//
// Quickstart:
//   capellini::Solver solver(std::move(lower_triangular_csr));
//   auto result = solver.Solve(capellini::Algorithm::kCapellini, b);
//   if (result.ok()) use(result->x, result->gflops);
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/levels.h"
#include "graph/stats.h"
#include "kernels/launch.h"
#include "matrix/csr.h"
#include "sim/config.h"
#include "support/status.h"

namespace capellini {

struct Analysis;         // core/analysis.h
struct ReliableOptions;  // core/verify.h
struct ReliableResult;   // core/verify.h

/// All solve strategies exposed by the library.
enum class Algorithm {
  // Host (real CPU execution).
  kSerialCpu,
  kLevelSetCpu,
  kSyncFreeCpu,
  // Simulated device (paper algorithms; metrics are modeled).
  kLevelSet,
  kSyncFree,        // Liu et al. CSC baseline [20]
  kSyncFreeCsr,     // Algorithm 3 as printed
  kCusparse,        // black-box proxy
  kCapelliniTwoPhase,
  kCapellini,       // Writing-First (Algorithm 5) — the headline method
  kHybrid,          // §4.4
  kCapelliniNaive,  // deadlocking strawman (§3.3 Challenge 1) — exposed so
                    // reliability tests/benches can trip the watchdog on
                    // demand; never recommended, never in a retry ladder
};

const char* AlgorithmName(Algorithm algorithm);
bool IsDeviceAlgorithm(Algorithm algorithm);

/// Unified solve result. Device metrics are zero for host algorithms
/// (host algorithms report wall-clock solve_ms instead).
struct SolveResult {
  std::vector<Val> x;
  double solve_ms = 0.0;          // simulated (device) or measured (host)
  double preprocessing_ms = 0.0;  // host-measured for both
  double gflops = 0.0;
  double bandwidth_gbs = 0.0;     // device only
  sim::LaunchStats device_stats;  // device only
};

struct SolverOptions {
  sim::DeviceConfig device = sim::PascalGtx1080();
  kernels::SolveOptions kernel_options;
  int host_threads = 0;  // 0 = hardware concurrency
};

/// One-shot solve of an UPPER-triangular system U x = b (the backward-
/// substitution half of direct methods): maps the system onto an equivalent
/// lower-triangular one by index reversal (see matrix/triangular.h), solves
/// with `algorithm`, and un-reverses the solution. `upper` must satisfy
/// IsUpperTriangularWithDiagonal().
Expected<SolveResult> SolveUpperSystem(const Csr& upper,
                                       std::span<const Val> b,
                                       Algorithm algorithm,
                                       const SolverOptions& options = {});

class Solver {
 public:
  /// Takes ownership of the matrix. Aborts if it is not lower-triangular
  /// with a full diagonal (use ExtractLowerTriangular first).
  explicit Solver(Csr lower, SolverOptions options = {});
  ~Solver();

  Solver(Solver&&) = delete;
  Solver& operator=(Solver&&) = delete;

  const Csr& matrix() const { return lower_; }
  const SolverOptions& options() const { return options_; }

  /// Full structural analysis (levels, alpha/beta/delta, row-length
  /// histogram, Figure-6 recommendation). Computed on first use — guarded by
  /// a std::once_flag, so one Solver can be handed to many concurrent
  /// readers (the serve registry does exactly that) and the analysis is
  /// still computed exactly once.
  const Analysis& analysis() const;

  /// True once analysis() has run (i.e. further calls are cache hits).
  bool analyzed() const { return analyzed_.load(std::memory_order_acquire); }

  /// Installs a precomputed analysis instead of running Analyze() on first
  /// use — the streaming-update path (src/update) patches the previous
  /// entry's analysis incrementally and seeds the replacement Solver with
  /// it. The caller vouches that `analysis` describes matrix(). Same
  /// once-flag as analysis(): if analysis already ran this is a no-op, so
  /// seeding can never replace an analysis a reader is holding.
  void SeedAnalysis(Analysis analysis) const;

  /// Structural indicators (levels, alpha/beta/delta). Views into the
  /// memoized analysis(); the level sets are reused by the level-set
  /// algorithms.
  const MatrixStats& Stats() const;
  const LevelSets& Levels() const;

  /// Solves lower * x = b.
  Expected<SolveResult> Solve(Algorithm algorithm,
                              std::span<const Val> b) const;

  /// Self-healing solve (core/verify.h): solves with `algorithm`, verifies
  /// the solution (NaN/Inf guard + relative residual), and on any failure —
  /// bad residual, non-finite values, or a solve-time error like kDeadlock —
  /// escalates through a bounded retry ladder ending at the host serial
  /// solver, recording every attempt. Returns a Status only when no rung
  /// produced a solution at all; an unverifiable final solution comes back
  /// with ReliableResult::verified == false for the caller to map to
  /// kDataLoss.
  Expected<ReliableResult> SolveReliable(Algorithm algorithm,
                                         std::span<const Val> b) const;
  Expected<ReliableResult> SolveReliable(Algorithm algorithm,
                                         std::span<const Val> b,
                                         const ReliableOptions& options) const;

  /// Figure-6 style recommendation: Capellini for high parallel granularity,
  /// SyncFree otherwise (see core/select.h for the rule).
  Algorithm Recommend() const;

  /// Deterministic a-priori estimate of one solve's host cost in
  /// milliseconds, derived from the memoized analysis (rows, nnz, level
  /// count, Eq.-1 parallel granularity). It is a scheduling hint, not a
  /// prediction: the serve layer seeds its per-handle cost model from it and
  /// corrects online from observed solve times.
  double CostHintMs() const;

 private:
  Csr lower_;
  SolverOptions options_;
  mutable std::once_flag analysis_once_;
  mutable std::unique_ptr<const Analysis> analysis_;
  mutable std::atomic<bool> analyzed_{false};
};

}  // namespace capellini
