#include "core/autotune.h"

#include <algorithm>
#include <future>

#include "graph/levels.h"
#include "kernels/analyze.h"
#include "matrix/triangular.h"
#include "support/thread_pool.h"

namespace capellini {

Expected<AutotuneResult> TuneHybridThreshold(const Csr& lower,
                                             const sim::DeviceConfig& config,
                                             const AutotuneOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("autotune needs a lower-triangular system");
  }
  std::vector<Idx> candidates = options.candidates;
  if (candidates.empty()) candidates = {2, 4, 8, 16, 24, 32, 64};

  const ReferenceProblem problem =
      MakeReferenceProblem(lower, options.rhs_seed);

  // Candidate solves are independent (each owns a private machine); fan them
  // across the pool and commit profiles in candidate order so the result is
  // the same for any thread count.
  const int threads =
      std::min<int>(options.threads == 0 ? ThreadPool::HardwareConcurrency()
                                         : std::max(1, options.threads),
                    static_cast<int>(candidates.size()));
  auto run_candidate = [&](Idx threshold) {
    kernels::SolveOptions solve_options;
    solve_options.hybrid_row_length_threshold = threshold;
    return kernels::SolveOnDevice(kernels::DeviceAlgorithm::kHybrid, lower,
                                  problem.b, config, solve_options);
  };
  std::vector<Expected<kernels::DeviceSolveResult>> runs;
  runs.reserve(candidates.size());
  if (threads <= 1) {
    for (const Idx threshold : candidates) {
      runs.push_back(run_candidate(threshold));
    }
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<Expected<kernels::DeviceSolveResult>>> futures;
    futures.reserve(candidates.size());
    for (const Idx threshold : candidates) {
      futures.push_back(
          pool.Submit([&run_candidate, threshold] {
            return run_candidate(threshold);
          }));
    }
    for (auto& future : futures) runs.push_back(future.get());
  }

  AutotuneResult result;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Idx threshold = candidates[i];
    Expected<kernels::DeviceSolveResult>& run = runs[i];
    if (!run.ok()) return run.status();
    if (MaxRelativeError(run->x, problem.x_true) > 1e-8) {
      return InternalError("hybrid solve verification failed at threshold " +
                           std::to_string(threshold));
    }
    result.profile.push_back(
        ThresholdProfile{threshold, run->exec_ms, run->gflops});
    if (run->gflops > result.best_gflops) {
      result.best_gflops = run->gflops;
      result.best_threshold = threshold;
    }
  }

  auto capellini = kernels::SolveOnDevice(
      kernels::DeviceAlgorithm::kCapelliniWritingFirst, lower, problem.b,
      config);
  auto syncfree = kernels::SolveOnDevice(kernels::DeviceAlgorithm::kSyncFreeCsc,
                                         lower, problem.b, config);
  if (capellini.ok()) result.capellini_gflops = capellini->gflops;
  if (syncfree.ok()) result.syncfree_gflops = syncfree->gflops;
  return result;
}

Expected<ReorderProfile> TuneLevelReorder(const Csr& lower,
                                          const sim::DeviceConfig& config,
                                          const ReorderOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("reorder tuning needs a lower-triangular system");
  }
  if (options.amortize_solves < 1) {
    return InvalidArgument("amortize_solves must be >= 1");
  }

  const ReferenceProblem problem =
      MakeReferenceProblem(lower, options.rhs_seed);
  ReorderProfile profile;

  auto direct =
      kernels::SolveOnDevice(options.algorithm, lower, problem.b, config);
  if (!direct.ok()) return direct.status();
  if (MaxRelativeError(direct->x, problem.x_true) > 1e-8) {
    return InternalError("direct solve verification failed");
  }
  profile.direct_solve_ms = direct->exec_ms;

  auto analysis = kernels::AnalyzeOnDevice(lower, config);
  if (!analysis.ok()) return analysis.status();
  profile.analyze_ms = analysis->exec_ms;
  profile.num_levels = analysis->levels.num_levels();

  const PermutedSystem sys = PermuteSystemByLevel(lower, analysis->levels);
  std::vector<Val> b_perm(problem.b.size());
  PermuteVector(sys.order, problem.b, b_perm);
  auto reordered =
      kernels::SolveOnDevice(options.algorithm, sys.matrix, b_perm, config);
  if (!reordered.ok()) return reordered.status();
  std::vector<Val> x(problem.b.size());
  UnpermuteVector(sys.order, reordered->x, x);
  if (MaxRelativeError(x, problem.x_true) > 1e-8) {
    return InternalError("reordered solve verification failed");
  }
  profile.reordered_solve_ms = reordered->exec_ms;
  profile.reordered_total_ms =
      profile.analyze_ms / options.amortize_solves +
      profile.reordered_solve_ms;
  profile.use_reorder = profile.reordered_total_ms < profile.direct_solve_ms;
  return profile;
}

}  // namespace capellini
