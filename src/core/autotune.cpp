#include "core/autotune.h"

#include <algorithm>
#include <future>

#include "matrix/triangular.h"
#include "support/thread_pool.h"

namespace capellini {

Expected<AutotuneResult> TuneHybridThreshold(const Csr& lower,
                                             const sim::DeviceConfig& config,
                                             const AutotuneOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("autotune needs a lower-triangular system");
  }
  std::vector<Idx> candidates = options.candidates;
  if (candidates.empty()) candidates = {2, 4, 8, 16, 24, 32, 64};

  const ReferenceProblem problem =
      MakeReferenceProblem(lower, options.rhs_seed);

  // Candidate solves are independent (each owns a private machine); fan them
  // across the pool and commit profiles in candidate order so the result is
  // the same for any thread count.
  const int threads =
      std::min<int>(options.threads == 0 ? ThreadPool::HardwareConcurrency()
                                         : std::max(1, options.threads),
                    static_cast<int>(candidates.size()));
  auto run_candidate = [&](Idx threshold) {
    kernels::SolveOptions solve_options;
    solve_options.hybrid_row_length_threshold = threshold;
    return kernels::SolveOnDevice(kernels::DeviceAlgorithm::kHybrid, lower,
                                  problem.b, config, solve_options);
  };
  std::vector<Expected<kernels::DeviceSolveResult>> runs;
  runs.reserve(candidates.size());
  if (threads <= 1) {
    for (const Idx threshold : candidates) {
      runs.push_back(run_candidate(threshold));
    }
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<Expected<kernels::DeviceSolveResult>>> futures;
    futures.reserve(candidates.size());
    for (const Idx threshold : candidates) {
      futures.push_back(
          pool.Submit([&run_candidate, threshold] {
            return run_candidate(threshold);
          }));
    }
    for (auto& future : futures) runs.push_back(future.get());
  }

  AutotuneResult result;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Idx threshold = candidates[i];
    Expected<kernels::DeviceSolveResult>& run = runs[i];
    if (!run.ok()) return run.status();
    if (MaxRelativeError(run->x, problem.x_true) > 1e-8) {
      return InternalError("hybrid solve verification failed at threshold " +
                           std::to_string(threshold));
    }
    result.profile.push_back(
        ThresholdProfile{threshold, run->exec_ms, run->gflops});
    if (run->gflops > result.best_gflops) {
      result.best_gflops = run->gflops;
      result.best_threshold = threshold;
    }
  }

  auto capellini = kernels::SolveOnDevice(
      kernels::DeviceAlgorithm::kCapelliniWritingFirst, lower, problem.b,
      config);
  auto syncfree = kernels::SolveOnDevice(kernels::DeviceAlgorithm::kSyncFreeCsc,
                                         lower, problem.b, config);
  if (capellini.ok()) result.capellini_gflops = capellini->gflops;
  if (syncfree.ok()) result.syncfree_gflops = syncfree->gflops;
  return result;
}

}  // namespace capellini
