#include "core/autotune.h"

#include "matrix/triangular.h"

namespace capellini {

Expected<AutotuneResult> TuneHybridThreshold(const Csr& lower,
                                             const sim::DeviceConfig& config,
                                             const AutotuneOptions& options) {
  if (!lower.IsLowerTriangularWithDiagonal()) {
    return InvalidArgument("autotune needs a lower-triangular system");
  }
  std::vector<Idx> candidates = options.candidates;
  if (candidates.empty()) candidates = {2, 4, 8, 16, 24, 32, 64};

  const ReferenceProblem problem =
      MakeReferenceProblem(lower, options.rhs_seed);

  AutotuneResult result;
  for (const Idx threshold : candidates) {
    kernels::SolveOptions solve_options;
    solve_options.hybrid_row_length_threshold = threshold;
    auto run = kernels::SolveOnDevice(kernels::DeviceAlgorithm::kHybrid,
                                      lower, problem.b, config, solve_options);
    if (!run.ok()) return run.status();
    if (MaxRelativeError(run->x, problem.x_true) > 1e-8) {
      return InternalError("hybrid solve verification failed at threshold " +
                           std::to_string(threshold));
    }
    result.profile.push_back(
        ThresholdProfile{threshold, run->exec_ms, run->gflops});
    if (run->gflops > result.best_gflops) {
      result.best_gflops = run->gflops;
      result.best_threshold = threshold;
    }
  }

  auto capellini = kernels::SolveOnDevice(
      kernels::DeviceAlgorithm::kCapelliniWritingFirst, lower, problem.b,
      config);
  auto syncfree = kernels::SolveOnDevice(kernels::DeviceAlgorithm::kSyncFreeCsc,
                                         lower, problem.b, config);
  if (capellini.ok()) result.capellini_gflops = capellini->gflops;
  if (syncfree.ok()) result.syncfree_gflops = syncfree->gflops;
  return result;
}

}  // namespace capellini
