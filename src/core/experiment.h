// Shared experiment driver used by the benchmark binaries: run a set of
// algorithms over a corpus on a device config, verify every solution against
// the host serial reference, and aggregate the paper's metrics.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gen/proxies.h"
#include "kernels/launch.h"
#include "sim/config.h"

namespace capellini {

struct RunRecord {
  std::string matrix;
  MatrixStats stats;
  kernels::DeviceAlgorithm algorithm;
  Status status;  // non-OK for deadlocks / invalid inputs
  kernels::DeviceSolveResult result;
  double max_rel_error = 0.0;
  bool correct = false;
};

struct ExperimentOptions {
  bool verify = true;
  double tolerance = 1e-8;
  kernels::SolveOptions kernel_options;
  /// Print one progress line per run to stderr.
  bool progress = false;
  /// Worker threads for RunMany. 0 = hardware concurrency, 1 = run inline on
  /// the calling thread (the historical behavior). Output is byte-identical
  /// for every value: records are committed — and progress lines printed —
  /// in input order regardless of which worker finished first. A run with an
  /// attached trace sink falls back to 1 thread (sinks are not shareable
  /// across concurrent machines).
  int threads = 1;
};

/// Runs one (matrix, algorithm, device) combination with a reference problem
/// derived from the matrix (b = L * x_true).
RunRecord RunOne(const NamedMatrix& named, kernels::DeviceAlgorithm algorithm,
                 const sim::DeviceConfig& config,
                 const ExperimentOptions& options = {});

/// Cross product corpus x algorithms on one device. With options.threads != 1
/// the independent runs are fanned across a thread pool (each run owns a
/// private Machine + DeviceMemory); the returned records and any progress
/// output are byte-identical to the serial run.
std::vector<RunRecord> RunMany(std::span<const NamedMatrix> corpus,
                               std::span<const kernels::DeviceAlgorithm> algorithms,
                               const sim::DeviceConfig& config,
                               const ExperimentOptions& options = {});

/// Mean GFLOPS over the OK records of one algorithm (0 if none).
double MeanGflops(std::span<const RunRecord> records,
                  kernels::DeviceAlgorithm algorithm);

/// Per-matrix speedup of `numerator` over `denominator` (matched by matrix
/// name); returns {mean, max, argmax matrix name}.
struct SpeedupSummary {
  double mean = 0.0;
  double max = 0.0;
  std::string argmax;
  int count = 0;
};
SpeedupSummary Speedup(std::span<const RunRecord> records,
                       kernels::DeviceAlgorithm numerator,
                       kernels::DeviceAlgorithm denominator);

/// Fraction (in %) of matrices on which `algorithm` achieves the highest
/// GFLOPS among all algorithms present in `records`.
double BestPercentage(std::span<const RunRecord> records,
                      kernels::DeviceAlgorithm algorithm);

}  // namespace capellini
