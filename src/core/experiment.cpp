#include "core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <map>
#include <utility>

#include "matrix/triangular.h"
#include "support/thread_pool.h"

namespace capellini {
namespace {

// The one progress line per run. Emitted by RunOne when running inline, and
// by RunMany's commit loop when running parallel — same bytes either way.
void PrintProgress(const RunRecord& record) {
  if (!record.status.ok()) {
    std::fprintf(stderr, "  [%s] %-18s %s\n", record.matrix.c_str(),
                 kernels::DeviceAlgorithmName(record.algorithm),
                 record.status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "  [%s] %-18s %8.2f GFLOPS  err %.2e\n",
               record.matrix.c_str(),
               kernels::DeviceAlgorithmName(record.algorithm),
               record.result.gflops, record.max_rel_error);
}

}  // namespace

RunRecord RunOne(const NamedMatrix& named, kernels::DeviceAlgorithm algorithm,
                 const sim::DeviceConfig& config,
                 const ExperimentOptions& options) {
  RunRecord record;
  record.matrix = named.name;
  record.stats = named.stats;
  record.algorithm = algorithm;

  const ReferenceProblem problem =
      MakeReferenceProblem(named.matrix, /*seed=*/0xB0B + named.matrix.rows());
  auto solved = kernels::SolveOnDevice(algorithm, named.matrix, problem.b,
                                       config, options.kernel_options);
  if (!solved.ok()) {
    record.status = solved.status();
    if (options.progress) PrintProgress(record);
    return record;
  }
  record.result = std::move(*solved);
  if (options.verify) {
    record.max_rel_error =
        MaxRelativeError(record.result.x, problem.x_true);
    record.correct = record.max_rel_error <= options.tolerance;
  } else {
    record.correct = true;
  }
  if (options.progress) PrintProgress(record);
  return record;
}

std::vector<RunRecord> RunMany(
    std::span<const NamedMatrix> corpus,
    std::span<const kernels::DeviceAlgorithm> algorithms,
    const sim::DeviceConfig& config, const ExperimentOptions& options) {
  const std::size_t total = corpus.size() * algorithms.size();
  std::vector<RunRecord> records;
  records.reserve(total);

  int threads = options.threads == 0 ? ThreadPool::HardwareConcurrency()
                                     : options.threads;
  // A shared trace sink cannot observe two machines at once; the contract
  // (bench_common rejects --trace with --threads>1) keeps this path serial.
  if (options.kernel_options.trace_sink != nullptr) threads = 1;
  if (threads <= 1 || total <= 1) {
    for (const NamedMatrix& named : corpus) {
      for (const kernels::DeviceAlgorithm algorithm : algorithms) {
        records.push_back(RunOne(named, algorithm, config, options));
      }
    }
    return records;
  }

  // Fan the independent runs across the pool; each solve owns a private
  // Machine + DeviceMemory (inside SolveOnDevice), so workers share nothing.
  // Progress printing is deferred to the in-order commit loop below so stderr
  // is byte-identical to the serial run.
  ExperimentOptions worker_options = options;
  worker_options.progress = false;
  ThreadPool pool(std::min<std::size_t>(
      static_cast<std::size_t>(threads), total));
  std::vector<std::future<RunRecord>> futures;
  futures.reserve(total);
  for (const NamedMatrix& named : corpus) {
    for (const kernels::DeviceAlgorithm algorithm : algorithms) {
      futures.push_back(pool.Submit([&named, algorithm, &config,
                                     &worker_options] {
        return RunOne(named, algorithm, config, worker_options);
      }));
    }
  }
  for (std::future<RunRecord>& future : futures) {
    records.push_back(future.get());
    if (options.progress) PrintProgress(records.back());
  }
  return records;
}

double MeanGflops(std::span<const RunRecord> records,
                  kernels::DeviceAlgorithm algorithm) {
  double sum = 0.0;
  int count = 0;
  for (const RunRecord& record : records) {
    if (record.algorithm != algorithm || !record.status.ok()) continue;
    sum += record.result.gflops;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

SpeedupSummary Speedup(std::span<const RunRecord> records,
                       kernels::DeviceAlgorithm numerator,
                       kernels::DeviceAlgorithm denominator) {
  std::map<std::string, double> num_gflops;
  std::map<std::string, double> den_gflops;
  for (const RunRecord& record : records) {
    if (!record.status.ok()) continue;
    if (record.algorithm == numerator) {
      num_gflops[record.matrix] = record.result.gflops;
    } else if (record.algorithm == denominator) {
      den_gflops[record.matrix] = record.result.gflops;
    }
  }
  SpeedupSummary summary;
  double sum = 0.0;
  for (const auto& [matrix, gflops] : num_gflops) {
    const auto it = den_gflops.find(matrix);
    if (it == den_gflops.end() || it->second <= 0.0) continue;
    const double speedup = gflops / it->second;
    sum += speedup;
    ++summary.count;
    if (speedup > summary.max) {
      summary.max = speedup;
      summary.argmax = matrix;
    }
  }
  if (summary.count > 0) summary.mean = sum / summary.count;
  return summary;
}

double BestPercentage(std::span<const RunRecord> records,
                      kernels::DeviceAlgorithm algorithm) {
  std::map<std::string, std::pair<double, bool>> best;  // gflops, is_target
  for (const RunRecord& record : records) {
    if (!record.status.ok()) continue;
    auto& entry = best[record.matrix];
    if (record.result.gflops > entry.first) {
      entry.first = record.result.gflops;
      entry.second = record.algorithm == algorithm;
    }
  }
  if (best.empty()) return 0.0;
  int wins = 0;
  for (const auto& [matrix, entry] : best) {
    if (entry.second) ++wins;
  }
  return 100.0 * wins / static_cast<double>(best.size());
}

}  // namespace capellini
