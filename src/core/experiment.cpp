#include "core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "matrix/triangular.h"

namespace capellini {

RunRecord RunOne(const NamedMatrix& named, kernels::DeviceAlgorithm algorithm,
                 const sim::DeviceConfig& config,
                 const ExperimentOptions& options) {
  RunRecord record;
  record.matrix = named.name;
  record.stats = named.stats;
  record.algorithm = algorithm;

  const ReferenceProblem problem =
      MakeReferenceProblem(named.matrix, /*seed=*/0xB0B + named.matrix.rows());
  auto solved = kernels::SolveOnDevice(algorithm, named.matrix, problem.b,
                                       config, options.kernel_options);
  if (!solved.ok()) {
    record.status = solved.status();
    if (options.progress) {
      std::fprintf(stderr, "  [%s] %-18s %s\n", named.name.c_str(),
                   kernels::DeviceAlgorithmName(algorithm),
                   record.status.ToString().c_str());
    }
    return record;
  }
  record.result = std::move(*solved);
  if (options.verify) {
    record.max_rel_error =
        MaxRelativeError(record.result.x, problem.x_true);
    record.correct = record.max_rel_error <= options.tolerance;
  } else {
    record.correct = true;
  }
  if (options.progress) {
    std::fprintf(stderr, "  [%s] %-18s %8.2f GFLOPS  err %.2e\n",
                 named.name.c_str(), kernels::DeviceAlgorithmName(algorithm),
                 record.result.gflops, record.max_rel_error);
  }
  return record;
}

std::vector<RunRecord> RunMany(
    std::span<const NamedMatrix> corpus,
    std::span<const kernels::DeviceAlgorithm> algorithms,
    const sim::DeviceConfig& config, const ExperimentOptions& options) {
  std::vector<RunRecord> records;
  records.reserve(corpus.size() * algorithms.size());
  for (const NamedMatrix& named : corpus) {
    for (const kernels::DeviceAlgorithm algorithm : algorithms) {
      records.push_back(RunOne(named, algorithm, config, options));
    }
  }
  return records;
}

double MeanGflops(std::span<const RunRecord> records,
                  kernels::DeviceAlgorithm algorithm) {
  double sum = 0.0;
  int count = 0;
  for (const RunRecord& record : records) {
    if (record.algorithm != algorithm || !record.status.ok()) continue;
    sum += record.result.gflops;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

SpeedupSummary Speedup(std::span<const RunRecord> records,
                       kernels::DeviceAlgorithm numerator,
                       kernels::DeviceAlgorithm denominator) {
  std::map<std::string, double> num_gflops;
  std::map<std::string, double> den_gflops;
  for (const RunRecord& record : records) {
    if (!record.status.ok()) continue;
    if (record.algorithm == numerator) {
      num_gflops[record.matrix] = record.result.gflops;
    } else if (record.algorithm == denominator) {
      den_gflops[record.matrix] = record.result.gflops;
    }
  }
  SpeedupSummary summary;
  double sum = 0.0;
  for (const auto& [matrix, gflops] : num_gflops) {
    const auto it = den_gflops.find(matrix);
    if (it == den_gflops.end() || it->second <= 0.0) continue;
    const double speedup = gflops / it->second;
    sum += speedup;
    ++summary.count;
    if (speedup > summary.max) {
      summary.max = speedup;
      summary.argmax = matrix;
    }
  }
  if (summary.count > 0) summary.mean = sum / summary.count;
  return summary;
}

double BestPercentage(std::span<const RunRecord> records,
                      kernels::DeviceAlgorithm algorithm) {
  std::map<std::string, std::pair<double, bool>> best;  // gflops, is_target
  for (const RunRecord& record : records) {
    if (!record.status.ok()) continue;
    auto& entry = best[record.matrix];
    if (record.result.gflops > entry.first) {
      entry.first = record.result.gflops;
      entry.second = record.algorithm == algorithm;
    }
  }
  if (best.empty()) return 0.0;
  int wins = 0;
  for (const auto& [matrix, entry] : best) {
    if (entry.second) ++wins;
  }
  return 100.0 * wins / static_cast<double>(best.size());
}

}  // namespace capellini
