#include "core/solver.h"

#include <algorithm>

#include "core/analysis.h"
#include "core/select.h"
#include "host/levelset_cpu.h"
#include "host/serial.h"
#include "host/syncfree_cpu.h"
#include "matrix/triangular.h"
#include "support/timer.h"

namespace capellini {
namespace {

kernels::DeviceAlgorithm ToDeviceAlgorithm(Algorithm algorithm) {
  using kernels::DeviceAlgorithm;
  switch (algorithm) {
    case Algorithm::kLevelSet:
      return DeviceAlgorithm::kLevelSet;
    case Algorithm::kSyncFree:
      return DeviceAlgorithm::kSyncFreeCsc;
    case Algorithm::kSyncFreeCsr:
      return DeviceAlgorithm::kSyncFreeWarpCsr;
    case Algorithm::kCusparse:
      return DeviceAlgorithm::kCusparseProxy;
    case Algorithm::kCapelliniTwoPhase:
      return DeviceAlgorithm::kCapelliniTwoPhase;
    case Algorithm::kCapellini:
      return DeviceAlgorithm::kCapelliniWritingFirst;
    case Algorithm::kHybrid:
      return DeviceAlgorithm::kHybrid;
    case Algorithm::kCapelliniNaive:
      return DeviceAlgorithm::kCapelliniNaive;
    default:
      CAPELLINI_CHECK_MSG(false, "not a device algorithm");
      return DeviceAlgorithm::kCapelliniWritingFirst;
  }
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSerialCpu:
      return "Serial-CPU";
    case Algorithm::kLevelSetCpu:
      return "Level-Set-CPU";
    case Algorithm::kSyncFreeCpu:
      return "SyncFree-CPU";
    case Algorithm::kLevelSet:
      return "Level-Set";
    case Algorithm::kSyncFree:
      return "SyncFree";
    case Algorithm::kSyncFreeCsr:
      return "SyncFree-CSR";
    case Algorithm::kCusparse:
      return "cuSPARSE";
    case Algorithm::kCapelliniTwoPhase:
      return "Capellini-TwoPhase";
    case Algorithm::kCapellini:
      return "Capellini";
    case Algorithm::kHybrid:
      return "Hybrid";
    case Algorithm::kCapelliniNaive:
      return "Capellini-Naive";
  }
  return "unknown";
}

bool IsDeviceAlgorithm(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSerialCpu:
    case Algorithm::kLevelSetCpu:
    case Algorithm::kSyncFreeCpu:
      return false;
    default:
      return true;
  }
}

Solver::Solver(Csr lower, SolverOptions options)
    : lower_(std::move(lower)), options_(std::move(options)) {
  CAPELLINI_CHECK_MSG(lower_.IsLowerTriangularWithDiagonal(),
                      "Solver needs a lower-triangular matrix with diagonal "
                      "(see ExtractLowerTriangular)");
}

Solver::~Solver() = default;

const Analysis& Solver::analysis() const {
  std::call_once(analysis_once_, [this] {
    analysis_ = std::make_unique<const Analysis>(
        Analyze(lower_, "solver-matrix"));
    analyzed_.store(true, std::memory_order_release);
  });
  return *analysis_;
}

void Solver::SeedAnalysis(Analysis analysis) const {
  std::call_once(analysis_once_, [this, &analysis] {
    analysis_ = std::make_unique<const Analysis>(std::move(analysis));
    analyzed_.store(true, std::memory_order_release);
  });
}

const LevelSets& Solver::Levels() const { return analysis().levels; }

const MatrixStats& Solver::Stats() const { return analysis().stats; }

Expected<SolveResult> Solver::Solve(Algorithm algorithm,
                                    std::span<const Val> b) const {
  SolveResult result;
  if (IsDeviceAlgorithm(algorithm)) {
    auto device = kernels::SolveOnDevice(ToDeviceAlgorithm(algorithm), lower_,
                                         b, options_.device,
                                         options_.kernel_options);
    if (!device.ok()) return device.status();
    result.x = std::move(device->x);
    result.solve_ms = device->exec_ms;
    result.preprocessing_ms = device->preprocessing_ms;
    result.gflops = device->gflops;
    result.bandwidth_gbs = device->bandwidth_gbs;
    result.device_stats = device->stats;
    return result;
  }

  result.x.assign(static_cast<std::size_t>(lower_.rows()), 0.0);
  Timer timer;
  Status status;
  switch (algorithm) {
    case Algorithm::kSerialCpu:
      status = host::SolveSerial(lower_, b, result.x);
      break;
    case Algorithm::kLevelSetCpu: {
      const LevelSets& levels = Levels();  // cached => not timed as solve
      host::LevelSetCpuOptions cpu;
      cpu.num_threads = options_.host_threads;
      timer.Reset();
      status = host::SolveLevelSetCpu(lower_, b, result.x, &levels, cpu);
      break;
    }
    case Algorithm::kSyncFreeCpu: {
      host::SyncFreeCpuOptions cpu;
      cpu.num_threads = options_.host_threads;
      timer.Reset();
      status = host::SolveSyncFreeCpu(lower_, b, result.x, cpu);
      break;
    }
    default:
      return InternalError("unhandled host algorithm");
  }
  if (!status.ok()) return status;
  result.solve_ms = timer.ElapsedMs();
  const double seconds = result.solve_ms / 1e3;
  if (seconds > 0.0) {
    result.gflops = 2.0 * static_cast<double>(lower_.nnz()) / seconds / 1e9;
  }
  return result;
}

Algorithm Solver::Recommend() const { return analysis().recommended; }

double Solver::CostHintMs() const {
  const MatrixStats& s = analysis().stats;
  const double rows = static_cast<double>(s.rows);
  const double nnz = static_cast<double>(s.nnz);
  const double levels = static_cast<double>(std::max<Idx>(Idx{1}, s.num_levels));
  // Interpreter cost scales with value traffic (nnz dominates the per-row
  // loop, rows the spin/publish overhead); deep level structures add a
  // serialization term that high Eq.-1 granularity lets the device hide.
  const double serialization =
      levels / (1.0 + std::max(0.0, s.parallel_granularity));
  return 1e-4 * (rows + 4.0 * nnz) * (1.0 + 0.05 * serialization);
}

Expected<SolveResult> SolveUpperSystem(const Csr& upper,
                                       std::span<const Val> b,
                                       Algorithm algorithm,
                                       const SolverOptions& options) {
  if (!IsUpperTriangularWithDiagonal(upper)) {
    return InvalidArgument(
        "SolveUpperSystem needs an upper-triangular matrix with diagonal");
  }
  const Solver solver(ReverseSystem(upper), options);
  std::vector<Val> b_reversed(b.size());
  ReverseVector(b, b_reversed);
  auto result = solver.Solve(algorithm, b_reversed);
  if (!result.ok()) return result.status();
  std::vector<Val> x(result->x.size());
  ReverseVector(result->x, x);
  result->x = std::move(x);
  return result;
}

}  // namespace capellini
