#include "core/analysis.h"

#include <atomic>
#include <sstream>
#include <utility>

#include "core/select.h"

namespace capellini {

namespace {
std::atomic<std::int64_t> g_analyze_calls{0};
}  // namespace

Analysis Analyze(const Csr& lower, const std::string& name) {
  g_analyze_calls.fetch_add(1, std::memory_order_relaxed);
  return AssembleAnalysis(lower, name, ComputeLevelSets(lower));
}

Analysis AssembleAnalysis(const Csr& lower, const std::string& name,
                          LevelSets levels) {
  Analysis analysis;
  analysis.levels = std::move(levels);
  analysis.stats = ComputeStats(lower, name, &analysis.levels);
  analysis.row_lengths = RowLengthHistogram(lower);
  analysis.recommended = SelectAlgorithm(analysis.stats);
  return analysis;
}

std::int64_t AnalyzeCallCountForTest() {
  return g_analyze_calls.load(std::memory_order_relaxed);
}

std::string FormatAnalysis(const Analysis& analysis) {
  const MatrixStats& s = analysis.stats;
  std::ostringstream out;
  out << "matrix " << s.name << ":\n"
      << "  rows                  " << s.rows << "\n"
      << "  nnz                   " << s.nnz << "\n"
      << "  alpha (nnz/row)       " << s.avg_nnz_per_row << "\n"
      << "  levels                " << s.num_levels << "\n"
      << "  beta (rows/level)     " << s.avg_components_per_level << "\n"
      << "  max level size        " << s.max_level_size << "\n"
      << "  delta (granularity)   " << s.parallel_granularity << "\n"
      << "  recommended algorithm " << AlgorithmName(analysis.recommended)
      << "\n";
  out << "row-length distribution (log2 buckets):\n"
      << analysis.row_lengths.ToString()
      << "level-size distribution (log2 buckets):\n"
      << LevelSizeHistogram(analysis.levels).ToString();
  return out.str();
}

}  // namespace capellini
