#include "core/verify.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/timer.h"

namespace capellini {

Verification VerifyRange(const Csr& lower, std::span<const Val> b,
                         std::span<const Val> x, Idx row_begin, Idx row_end,
                         const VerifyOptions& options) {
  CAPELLINI_CHECK_MSG(
      b.size() == static_cast<std::size_t>(lower.rows()) && b.size() == x.size(),
      "VerifyRange: b/x must match the matrix dimension");
  CAPELLINI_CHECK_MSG(row_begin >= 0 && row_begin <= row_end &&
                          row_end <= lower.rows(),
                      "VerifyRange: row range out of bounds");
  Verification v;
  v.finite = true;
  for (Idx i = row_begin; i < row_end; ++i) {
    if (!std::isfinite(x[static_cast<std::size_t>(i)])) {
      v.finite = false;
      v.residual = std::numeric_limits<double>::infinity();
      return v;
    }
  }

  // The scaling norms stay whole-vector (the block's rows consume values
  // from below row_begin), so VerifyRange(0, rows) == VerifySolution. A
  // non-finite value OUTSIDE the range poisons the residual through the
  // row sums and fails `passed` — the range itself is still reported finite.
  double x_inf = 0.0;
  for (const Val value : x) x_inf = std::max(x_inf, std::abs(value));
  double b_inf = 0.0;
  for (const Val value : b) b_inf = std::max(b_inf, std::abs(value));

  // One CSR pass over the block computes ||(Lx - b)|_block||_inf and the
  // block's share of ||L||_inf together.
  double residual_inf = 0.0;
  double matrix_inf = 0.0;
  const std::span<const Idx> row_ptr = lower.row_ptr();
  const std::span<const Idx> col_idx = lower.col_idx();
  const std::span<const Val> vals = lower.val();
  for (Idx i = row_begin; i < row_end; ++i) {
    double row_sum = 0.0;
    double row_abs = 0.0;
    for (Idx k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const double a = vals[static_cast<std::size_t>(k)];
      row_sum += a * x[static_cast<std::size_t>(
                     col_idx[static_cast<std::size_t>(k)])];
      row_abs += std::abs(a);
    }
    residual_inf =
        std::max(residual_inf,
                 std::abs(row_sum - b[static_cast<std::size_t>(i)]));
    matrix_inf = std::max(matrix_inf, row_abs);
  }

  const double denom = matrix_inf * x_inf + b_inf;
  // A zero denominator means L, x and b are all zero: the residual is exact.
  v.residual = denom > 0.0 ? residual_inf / denom : residual_inf;
  v.passed = v.finite && v.residual <= options.residual_bound;
  return v;
}

Verification VerifySolution(const Csr& lower, std::span<const Val> b,
                            std::span<const Val> x,
                            const VerifyOptions& options) {
  return VerifyRange(lower, b, x, 0, lower.rows(), options);
}

std::vector<Algorithm> DefaultRetryLadder() {
  return {Algorithm::kCapelliniTwoPhase, Algorithm::kLevelSet,
          Algorithm::kSerialCpu};
}

Expected<ReliableResult> Solver::SolveReliable(Algorithm algorithm,
                                               std::span<const Val> b) const {
  return SolveReliable(algorithm, b, ReliableOptions{});
}

Expected<ReliableResult> Solver::SolveReliable(
    Algorithm algorithm, std::span<const Val> b,
    const ReliableOptions& options) const {
  std::vector<Algorithm> ladder;
  ladder.push_back(algorithm);
  const std::vector<Algorithm> escalation =
      options.ladder.empty() ? DefaultRetryLadder() : options.ladder;
  for (const Algorithm rung : escalation) {
    if (std::find(ladder.begin(), ladder.end(), rung) == ladder.end()) {
      ladder.push_back(rung);
    }
  }

  ReliableResult result;
  bool have_solution = false;
  Status last_error;
  for (const Algorithm rung : ladder) {
    AttemptRecord attempt;
    attempt.algorithm = rung;
    auto solved = Solve(rung, b);
    if (!solved.ok()) {
      attempt.status = solved.status().code();
      attempt.residual = std::numeric_limits<double>::infinity();
      last_error = solved.status();
      result.attempts.push_back(attempt);
      continue;
    }
    Timer verify_timer;
    const Verification verification =
        VerifySolution(lower_, b, solved->x, options.verify);
    result.verify_ms += verify_timer.ElapsedMs();
    attempt.residual = verification.residual;
    attempt.verified = verification.passed;
    attempt.status =
        verification.passed ? StatusCode::kOk : StatusCode::kDataLoss;
    result.attempts.push_back(attempt);
    // Keep the newest solution either way: if no rung ever verifies, the
    // caller still gets the last (least-escalated-from) answer, flagged.
    result.solve = std::move(*solved);
    result.final_algorithm = rung;
    result.verified = verification.passed;
    have_solution = true;
    if (verification.passed) return result;
  }
  if (have_solution) return result;  // verified == false: caller's call
  return last_error;
}

}  // namespace capellini
