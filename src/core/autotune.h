// Autotuning for the §4.4 hybrid kernel: the paper leaves the warp/thread
// row-length threshold as an open parameter ("we can define a threshold...").
// This tuner picks it empirically — it runs candidate thresholds on the
// simulated device against a manufactured right-hand side and returns the
// fastest, along with the full profile for inspection.
#pragma once

#include <vector>

#include "kernels/launch.h"
#include "matrix/csr.h"
#include "sim/config.h"
#include "support/status.h"

namespace capellini {

struct ThresholdProfile {
  Idx threshold = 0;
  double exec_ms = 0.0;
  double gflops = 0.0;
};

struct AutotuneResult {
  Idx best_threshold = 0;
  double best_gflops = 0.0;
  /// One entry per candidate, in the order tried.
  std::vector<ThresholdProfile> profile;
  /// GFLOPS of the pure thread-level and warp-level solvers, for reference:
  /// a good hybrid threshold should match or beat both.
  double capellini_gflops = 0.0;
  double syncfree_gflops = 0.0;
};

struct AutotuneOptions {
  /// Candidate thresholds. Empty = the default ladder {2,4,8,16,24,32,64}.
  std::vector<Idx> candidates;
  std::uint64_t rhs_seed = 0x7E57;
  /// Worker threads for the candidate sweep (each candidate solve owns a
  /// private simulated machine). 0 = hardware concurrency, 1 = serial. The
  /// result is identical for every value: profiles are committed in
  /// candidate order.
  int threads = 1;
};

/// Profiles the hybrid kernel across thresholds on `config`.
Expected<AutotuneResult> TuneHybridThreshold(
    const Csr& lower, const sim::DeviceConfig& config,
    const AutotuneOptions& options = {});

// --- Scheduled level reordering (Böhnlein et al. direction) ----------------

struct ReorderOptions {
  /// Algorithm profiled on both numberings.
  kernels::DeviceAlgorithm algorithm =
      kernels::DeviceAlgorithm::kCapelliniWritingFirst;
  std::uint64_t rhs_seed = 0x7E57;
  /// Number of solves the one-time analysis+permutation cost is amortized
  /// over (a served factor pays it once per registration, not per solve).
  /// Must be >= 1.
  int amortize_solves = 1;
};

/// The autotuner's verdict on the symmetric level permutation for one
/// matrix+device: reorder only when END-TO-END simulated time — on-device
/// analysis (the cost of discovering the permutation) amortized over
/// `amortize_solves`, plus the solve on the permuted numbering — beats the
/// plain solve, which needs no analysis at all for the Capellini kernels.
struct ReorderProfile {
  bool use_reorder = false;
  /// Simulated ms of `algorithm` on the original numbering (no analysis).
  double direct_solve_ms = 0.0;
  /// Simulated ms of the on-device analysis (in-degree + propagation).
  double analyze_ms = 0.0;
  /// Simulated ms of `algorithm` on the level-permuted numbering.
  double reordered_solve_ms = 0.0;
  /// analyze_ms / amortize_solves + reordered_solve_ms.
  double reordered_total_ms = 0.0;
  Idx num_levels = 0;
};

/// Runs both paths, verifies each solution against a manufactured reference
/// (the reordered path through the full PermuteVector/UnpermuteVector round
/// trip), and returns the end-to-end comparison. Errors if either solve
/// fails or verifies worse than 1e-8 relative error.
Expected<ReorderProfile> TuneLevelReorder(const Csr& lower,
                                          const sim::DeviceConfig& config,
                                          const ReorderOptions& options = {});

}  // namespace capellini
