// Autotuning for the §4.4 hybrid kernel: the paper leaves the warp/thread
// row-length threshold as an open parameter ("we can define a threshold...").
// This tuner picks it empirically — it runs candidate thresholds on the
// simulated device against a manufactured right-hand side and returns the
// fastest, along with the full profile for inspection.
#pragma once

#include <vector>

#include "kernels/launch.h"
#include "matrix/csr.h"
#include "sim/config.h"
#include "support/status.h"

namespace capellini {

struct ThresholdProfile {
  Idx threshold = 0;
  double exec_ms = 0.0;
  double gflops = 0.0;
};

struct AutotuneResult {
  Idx best_threshold = 0;
  double best_gflops = 0.0;
  /// One entry per candidate, in the order tried.
  std::vector<ThresholdProfile> profile;
  /// GFLOPS of the pure thread-level and warp-level solvers, for reference:
  /// a good hybrid threshold should match or beat both.
  double capellini_gflops = 0.0;
  double syncfree_gflops = 0.0;
};

struct AutotuneOptions {
  /// Candidate thresholds. Empty = the default ladder {2,4,8,16,24,32,64}.
  std::vector<Idx> candidates;
  std::uint64_t rhs_seed = 0x7E57;
  /// Worker threads for the candidate sweep (each candidate solve owns a
  /// private simulated machine). 0 = hardware concurrency, 1 = serial. The
  /// result is identical for every value: profiles are committed in
  /// candidate order.
  int threads = 1;
};

/// Profiles the hybrid kernel across thresholds on `config`.
Expected<AutotuneResult> TuneHybridThreshold(
    const Csr& lower, const sim::DeviceConfig& config,
    const AutotuneOptions& options = {});

}  // namespace capellini
