// One-call structural analysis of a triangular system: the paper's
// indicators plus the recommended algorithm, with a human-readable report.
#pragma once

#include <string>

#include "core/solver.h"
#include "graph/levels.h"
#include "graph/stats.h"
#include "matrix/csr.h"

namespace capellini {

struct Analysis {
  MatrixStats stats;
  LevelSets levels;
  /// Row-length distribution (informs the §4.4 hybrid threshold).
  Log2Histogram row_lengths;
  Algorithm recommended;
};

/// Computes levels, alpha/beta/delta and the Figure-6 recommendation.
Analysis Analyze(const Csr& lower, const std::string& name);

/// Multi-line summary ("rows", "nnz", "alpha", "beta", "delta", ...).
std::string FormatAnalysis(const Analysis& analysis);

}  // namespace capellini
