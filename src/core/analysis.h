// One-call structural analysis of a triangular system: the paper's
// indicators plus the recommended algorithm, with a human-readable report.
#pragma once

#include <cstdint>
#include <string>

#include "core/solver.h"
#include "graph/levels.h"
#include "graph/stats.h"
#include "matrix/csr.h"

namespace capellini {

struct Analysis {
  MatrixStats stats;
  LevelSets levels;
  /// Row-length distribution (informs the §4.4 hybrid threshold).
  Log2Histogram row_lengths;
  Algorithm recommended;
};

/// Computes levels, alpha/beta/delta and the Figure-6 recommendation.
Analysis Analyze(const Csr& lower, const std::string& name);

/// Assembles a full Analysis from precomputed level sets (an on-device
/// analyser run, a persisted cache entry rebuilt from level_of, ...). The
/// stats/histogram/recommendation derivation is the cheap O(nnz) tail of
/// Analyze; only the level sweep itself is skipped. Produces bit-identical
/// output to Analyze whenever `levels` matches ComputeLevelSets(lower).
Analysis AssembleAnalysis(const Csr& lower, const std::string& name,
                          LevelSets levels);

/// Number of host Analyze() level sweeps since process start. Lets tests
/// assert that warm (cache-rehydrated) or on-device registration paths run
/// zero host analyses. AssembleAnalysis does not count.
std::int64_t AnalyzeCallCountForTest();

/// Multi-line summary ("rows", "nnz", "alpha", "beta", "delta", ...).
std::string FormatAnalysis(const Analysis& analysis);

}  // namespace capellini
