// Post-solve verification and the self-healing solve pipeline.
//
// The simulated device can now fail the way real GPUs fail (sim/fault.h):
// a solve may deadlock, or — worse — complete with a silently corrupted
// solution. VerifySolution is the cheap detector: an O(nnz) NaN/Inf guard
// plus the relative infinity-norm residual
//
//     ||L x - b||_inf / (||L||_inf ||x||_inf + ||b||_inf)
//
// against a configurable bound. It is one matrix-vector pass — small next to
// any solve that walked the same nonzeros with spin-waits in the loop
// (bench_faults reports the measured overhead).
//
// Solver::SolveReliable builds the recovery policy on top: verify after
// every solve, and on failure (bad residual, non-finite values, or a
// solve-time error such as kDeadlock) escalate through a bounded retry
// ladder — by default  first algorithm -> kCapelliniTwoPhase -> kLevelSet ->
// kSerialCpu. The host serial rung is immune to device faults, so the
// ladder structurally guarantees a solution; every attempt is recorded so
// callers (the serve layer, bench_faults) can see the recovery path.
// Determinism: with a seeded FaultInjector, same seed => same faults =>
// same attempt sequence.
#pragma once

#include <span>
#include <vector>

#include "core/solver.h"

namespace capellini {

struct VerifyOptions {
  /// Accept when the relative residual is at or below this bound. The
  /// interpreter does exact IEEE double arithmetic, so clean solves land
  /// many orders of magnitude under the default; an injected exponent-bit
  /// flip lands many orders above it.
  double residual_bound = 1e-8;
};

struct Verification {
  /// Every component of x is finite (no NaN/Inf).
  bool finite = false;
  /// Relative infinity-norm residual; +inf when x is non-finite.
  double residual = 0.0;
  /// finite && residual <= bound.
  bool passed = false;
};

/// Verifies x against lower * x = b. `lower` must be the solver's matrix;
/// sizes are the caller's contract (checked).
Verification VerifySolution(const Csr& lower, std::span<const Val> b,
                            std::span<const Val> x,
                            const VerifyOptions& options = {});

/// Verifies only the rows [row_begin, row_end) of lower * x = b: the
/// residual and norms are taken over that row block, but x is the FULL
/// vector — block rows reference columns below row_begin, so the check is
/// "is this partition consistent with the solution it consumed". The fleet's
/// failover path uses it to accept or reject one recovered partition at a
/// time without paying a whole-matrix pass per ladder rung. With
/// row_begin = 0 and row_end = rows it is exactly VerifySolution.
Verification VerifyRange(const Csr& lower, std::span<const Val> b,
                         std::span<const Val> x, Idx row_begin, Idx row_end,
                         const VerifyOptions& options = {});

struct ReliableOptions {
  VerifyOptions verify;
  /// Retry rungs tried after the requested algorithm fails verification.
  /// Empty = the default escalation {kCapelliniTwoPhase, kLevelSet,
  /// kSerialCpu}. The requested algorithm is always rung 0 and duplicates
  /// are skipped.
  std::vector<Algorithm> ladder;
};

/// One rung of the ladder, as it played out.
struct AttemptRecord {
  Algorithm algorithm = Algorithm::kCapellini;
  /// kOk = solved and verified; kDataLoss = solved but failed verification;
  /// otherwise the solve's own error (kDeadlock, ...).
  StatusCode status = StatusCode::kOk;
  /// Relative residual when a solution existed to verify; +inf otherwise.
  double residual = 0.0;
  bool verified = false;
};

struct ReliableResult {
  /// The accepted solution: the first verified rung, or — when no rung
  /// verified — the last rung that produced a solution at all (then
  /// `verified` is false and callers should treat the result as kDataLoss).
  SolveResult solve;
  Algorithm final_algorithm = Algorithm::kCapellini;
  bool verified = false;
  /// Wall-clock milliseconds spent inside VerifySolution, summed over
  /// attempts — the detection overhead bench_faults reports.
  double verify_ms = 0.0;
  std::vector<AttemptRecord> attempts;
};

/// The default escalation appended after `first`: kCapelliniTwoPhase,
/// kLevelSet, kSerialCpu (exposed for tests and docs).
std::vector<Algorithm> DefaultRetryLadder();

}  // namespace capellini
