// Chrome trace-event exporter: turns the machine's event stream into the
// JSON array format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing.
//
// Track layout: one process per SM ("SM <n>"), one thread per resident warp
// slot. Each warp's residency is a complete slice; memory/atomic/poll stalls
// nest inside it; publishes and block dispatches are instant events. Kernel
// launches appear as slices on a synthetic "device" process so multi-launch
// (level-set) solves show their per-level structure.
//
// Timestamps are simulated cycles written as integer "microseconds" (the
// viewer's native unit): 1 us on screen == 1 simulated cycle. The simulator
// is deterministic and so is this exporter — the same solve produces a
// byte-identical file, which tests assert.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/status.h"
#include "trace/sink.h"

namespace capellini::trace {

class ChromeTraceSink : public TraceSink {
 public:
  struct Options {
    /// Hard cap on retained events; a full-size solve emits one stall slice
    /// per load, which adds up. Past the cap new events are dropped (and
    /// counted in the emitted metadata) rather than growing without bound.
    std::size_t max_events = 4'000'000;
    /// Per-issue instruction slices are enormous and rarely needed; off by
    /// default. Stall/warp/publish granularity is usually what you want.
    bool include_issues = false;
  };

  ChromeTraceSink() = default;
  explicit ChromeTraceSink(Options options) : options_(options) {}

  void OnLaunchBegin(const LaunchInfo& info) override;
  void OnLaunchEnd(std::uint64_t cycles) override;
  void OnBlockDispatch(std::uint64_t cycle, std::int64_t block,
                       int sm) override;
  void OnWarpStart(std::uint64_t cycle, int sm, int warp_slot,
                   std::int64_t block, std::int64_t base_tid) override;
  void OnWarpFinish(std::uint64_t cycle, int sm, int warp_slot,
                    std::int64_t base_tid) override;
  void OnIssue(const IssueInfo& info) override;
  void OnMemStall(const MemStallInfo& info) override;
  void OnPublish(const PublishInfo& info) override;
  void OnDeadlock(std::uint64_t cycle, const std::string& dump) override;

  std::size_t event_count() const { return events_.size(); }
  std::size_t dropped_events() const { return dropped_; }

  /// The complete JSON document (object form with "traceEvents").
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  void Emit(std::string event);

  Options options_;
  std::vector<std::string> events_;
  std::set<int> sms_seen_;
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::int64_t>>
      open_warps_;  // (sm, slot) -> (global start, base_tid)
  LaunchClock clock_;
  std::string launch_name_;
  std::uint64_t launch_start_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace capellini::trace
