// Stall-attribution aggregator: splits every warp's resident lifetime into
// the buckets the paper's §5.3 analysis argues about.
//
//   issue (useful)   — issued instructions outside spin regions, undiverged
//   reconvergence    — issued while the reconvergence stack is non-empty:
//                      the serialized side of a divergent branch is running
//                      and the other lanes are parked (Challenge 1's cost)
//   busy-wait spin   — instructions issued inside author-annotated spin
//                      regions plus the memory stalls of their poll loads
//   memory latency   — load/atomic stalls outside spin regions, minus the
//                      share spent queueing behind other traffic
//   memory bandwidth — the queueing share of those stalls (backlog found on
//                      the L2/DRAM queues — the §3.1 throttling mechanism)
//   scheduler wait   — the remainder: cycles resident but waiting for an
//                      issue slot (warp oversubscription)
//
// Aggregation is streaming — per-warp counters, no event storage — so it can
// ride along a full-size solve.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.h"
#include "trace/sink.h"

namespace capellini::trace {

/// Cycle buckets; all fields are simulated cycles except the two counters.
struct StallBuckets {
  std::uint64_t useful_issue = 0;
  std::uint64_t reconv_issue = 0;
  std::uint64_t spin_issue = 0;
  std::uint64_t spin_stall = 0;
  std::uint64_t mem_latency = 0;
  std::uint64_t mem_bandwidth = 0;
  std::uint64_t scheduler_wait = 0;
  std::uint64_t spin_iterations = 0;  // passes through annotated spin heads
  std::uint64_t atomics = 0;          // atomic transactions issued

  std::uint64_t BusyWait() const { return spin_issue + spin_stall; }
  std::uint64_t Total() const {
    return useful_issue + reconv_issue + spin_issue + spin_stall +
           mem_latency + mem_bandwidth + scheduler_wait;
  }
  StallBuckets& operator+=(const StallBuckets& other);
};

/// One retired warp's attribution.
struct WarpRecord {
  int launch_index = 0;
  int sm = 0;
  int warp_slot = 0;
  std::int64_t base_tid = 0;
  std::uint64_t start_cycle = 0;   // global clock (across launches)
  std::uint64_t finish_cycle = 0;
  StallBuckets buckets;
};

class StallAttribution : public TraceSink {
 public:
  void OnLaunchBegin(const LaunchInfo& info) override;
  void OnLaunchEnd(std::uint64_t cycles) override;
  void OnWarpStart(std::uint64_t cycle, int sm, int warp_slot,
                   std::int64_t block, std::int64_t base_tid) override;
  void OnWarpFinish(std::uint64_t cycle, int sm, int warp_slot,
                    std::int64_t base_tid) override;
  void OnIssue(const IssueInfo& info) override;
  void OnMemStall(const MemStallInfo& info) override;
  void OnAtomic(std::uint64_t cycle, int sm, int warp_slot,
                std::uint32_t transactions) override;

  /// Retired warps, in retirement order.
  const std::vector<WarpRecord>& records() const { return records_; }

  /// Sum over all retired warps.
  StallBuckets Totals() const;

  /// Human-readable attribution table (cycles and % of the total).
  std::string SummaryTable() const;

  /// Per-warp CSV: one row per retired warp plus a header line.
  std::string ToCsv() const;
  Status WriteCsv(const std::string& path) const;

 private:
  struct ActiveWarp {
    std::int64_t base_tid = 0;
    std::uint64_t start_cycle = 0;  // global
    StallBuckets buckets;
  };

  std::map<std::pair<int, int>, ActiveWarp> active_;  // (sm, slot) -> warp
  std::vector<WarpRecord> records_;
  LaunchClock clock_;
  int launch_index_ = -1;
};

}  // namespace capellini::trace
