// Solve-progress timeline: the simulator-truth version of the paper's level
// ramp. Every kernel marks the store that makes a row's component visible
// (KernelBuilder::MarkPublish); this sink resolves each publish address back
// to a row number and records WHEN, on the global cycle clock, that row was
// done. Plotting rows-published-over-cycles shows the dependency ramp that
// distinguishes a level-limited solve from a bandwidth-limited one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"
#include "trace/sink.h"

namespace capellini::trace {

struct PublishRecord {
  std::int64_t row = 0;
  std::uint64_t cycle = 0;  // global clock (across launches)
  int sm = 0;
};

class SolveTimeline : public TraceSink {
 public:
  /// Publish addresses are resolved as row = (addr - params[param_index]) /
  /// elem_size. The defaults match the CSR kernels' get_value flag array
  /// (kernels/common.h param slot 6, i32 flags); level-set/CSC kernels
  /// publish through the x vector instead — use (5, 8) for those.
  explicit SolveTimeline(int param_index = 6, int elem_size = 4)
      : param_index_(param_index), elem_size_(elem_size) {}

  void OnLaunchBegin(const LaunchInfo& info) override;
  void OnLaunchEnd(std::uint64_t cycles) override;
  void OnPublish(const PublishInfo& info) override;

  /// Publishes in execution order. Rows publish exactly once on correct
  /// kernels; duplicates would indicate a kernel bug.
  const std::vector<PublishRecord>& records() const { return records_; }

  /// Publishes whose address did not fall inside the configured array (e.g.
  /// a mismatched resolver); nonzero counts mean the timeline is incomplete.
  std::uint64_t unresolved() const { return unresolved_; }

  /// "row,cycle,sm" CSV with a header line, in publish order.
  std::string ToCsv() const;
  Status WriteCsv(const std::string& path) const;

  /// Cycle by which `fraction` (0..1] of `total_rows` rows were published,
  /// or 0 if the timeline never got that far. The 0.5/0.9/1.0 points
  /// summarize the ramp without plotting it.
  std::uint64_t CycleAtFraction(double fraction, std::int64_t total_rows) const;

 private:
  int param_index_;
  int elem_size_;
  std::uint64_t base_addr_ = 0;
  std::int64_t rows_ = 0;
  std::uint64_t unresolved_ = 0;
  std::vector<PublishRecord> records_;
  LaunchClock clock_;
};

}  // namespace capellini::trace
