#include "trace/chrome_trace.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace capellini::trace {
namespace {

// The synthetic process hosting launch-level slices.
constexpr int kDevicePid = 1000000;

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

void ChromeTraceSink::Emit(std::string event) {
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void ChromeTraceSink::OnLaunchBegin(const LaunchInfo& info) {
  launch_name_ = info.kernel_name;
  launch_start_ = clock_.offset;
}

void ChromeTraceSink::OnLaunchEnd(std::uint64_t cycles) {
  Emit(Format("{\"name\":\"%s\",\"cat\":\"launch\",\"ph\":\"X\",\"ts\":%" PRIu64
              ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":0}",
              JsonEscape(launch_name_).c_str(), launch_start_, cycles,
              kDevicePid));
  clock_.EndLaunch(cycles);
}

void ChromeTraceSink::OnBlockDispatch(std::uint64_t cycle, std::int64_t block,
                                      int sm) {
  sms_seen_.insert(sm);
  Emit(Format("{\"name\":\"dispatch block %" PRId64
              "\",\"cat\":\"dispatch\",\"ph\":\"i\",\"s\":\"p\",\"ts\":%" PRIu64
              ",\"pid\":%d,\"tid\":0}",
              static_cast<std::int64_t>(block), clock_.At(cycle), sm));
}

void ChromeTraceSink::OnWarpStart(std::uint64_t cycle, int sm, int warp_slot,
                                  std::int64_t /*block*/,
                                  std::int64_t base_tid) {
  sms_seen_.insert(sm);
  open_warps_[{sm, warp_slot}] = {clock_.At(cycle), base_tid};
}

void ChromeTraceSink::OnWarpFinish(std::uint64_t cycle, int sm, int warp_slot,
                                   std::int64_t base_tid) {
  const auto it = open_warps_.find({sm, warp_slot});
  if (it == open_warps_.end()) return;
  const std::uint64_t start = it->second.first;
  const std::uint64_t end = clock_.At(cycle);
  open_warps_.erase(it);
  Emit(Format("{\"name\":\"warp t%" PRId64
              "\",\"cat\":\"warp\",\"ph\":\"X\",\"ts\":%" PRIu64
              ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%d}",
              base_tid, start, end > start ? end - start : 0, sm, warp_slot));
}

void ChromeTraceSink::OnIssue(const IssueInfo& info) {
  if (!options_.include_issues) return;
  Emit(Format("{\"name\":\"pc %d\",\"cat\":\"issue\",\"ph\":\"X\",\"ts\":%" PRIu64
              ",\"dur\":1,\"pid\":%d,\"tid\":%d}",
              info.pc, clock_.At(info.cycle), info.sm, info.warp_slot));
}

void ChromeTraceSink::OnMemStall(const MemStallInfo& info) {
  const char* name =
      info.in_spin ? "poll" : (info.is_atomic ? "atomic" : "mem");
  Emit(Format("{\"name\":\"%s\",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":%" PRIu64
              ",\"dur\":%" PRIu64
              ",\"pid\":%d,\"tid\":%d,\"args\":{\"tx\":%u,\"miss\":%u,"
              "\"queue\":%" PRIu64 "}}",
              name, clock_.At(info.cycle),
              info.ready_at > info.cycle ? info.ready_at - info.cycle : 0,
              info.sm, info.warp_slot, info.transactions, info.dram_misses,
              info.queue_cycles));
}

void ChromeTraceSink::OnPublish(const PublishInfo& info) {
  Emit(Format("{\"name\":\"publish\",\"cat\":\"publish\",\"ph\":\"i\",\"s\":"
              "\"t\",\"ts\":%" PRIu64 ",\"pid\":%d,\"tid\":%d}",
              clock_.At(info.cycle), info.sm, info.warp_slot));
}

void ChromeTraceSink::OnDeadlock(std::uint64_t cycle, const std::string& dump) {
  Emit(Format("{\"name\":\"DEADLOCK\",\"cat\":\"watchdog\",\"ph\":\"i\",\"s\":"
              "\"g\",\"ts\":%" PRIu64
              ",\"pid\":%d,\"tid\":0,\"args\":{\"dump\":\"%s\"}}",
              clock_.At(cycle), kDevicePid, JsonEscape(dump).c_str()));
}

std::string ChromeTraceSink::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":"
                    "\"1us==1cycle\",\"dropped_events\":" +
                    std::to_string(dropped_) + "},\"traceEvents\":[\n";
  // Metadata first: stable, sorted track names.
  out += Format("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":"
                "{\"name\":\"device\"}}",
                kDevicePid);
  for (const int sm : sms_seen_) {
    out += Format(",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"SM %d\"}}",
                  sm, sm);
  }
  for (const std::string& event : events_) {
    out += ",\n";
    out += event;
  }
  out += "\n]}\n";
  return out;
}

Status ChromeTraceSink::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return IoError("cannot open '" + path + "' for writing");
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) return IoError("short write to '" + path + "'");
  return Status::Ok();
}

}  // namespace capellini::trace
