// Execution-tracing sink interface for the simulated GPU.
//
// sim::Machine emits fine-grained events (block dispatch, warp start/retire,
// per-issue, memory stalls with cause detail, publishes, deadlock dumps)
// through a TraceSink pointer. A null pointer is the zero-overhead "null
// sink": every hook site is guarded by a single pointer test and the
// simulator's timing is identical with or without a sink attached — sinks
// OBSERVE the machine, they never perturb it.
//
// This header is the bottom of the trace layer: it is included by sim/machine
// and therefore depends only on the standard library. Aggregators and
// exporters (attribution.h, timeline.h, chrome_trace.h) build on top of it
// and may use the support layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace capellini::trace {

/// Launch geometry handed to sinks before the first cycle of a launch.
/// `params` points at the launch's parameter block (valid for the duration of
/// the OnLaunchBegin call only — copy what you need).
struct LaunchInfo {
  int launch_index = 0;  // per-Machine counter, 0-based
  const char* kernel_name = "";
  std::int64_t num_threads = 0;
  int threads_per_block = 0;
  const std::int64_t* params = nullptr;
  int num_params = 0;
};

/// One issued warp-instruction. `divergent` means the warp's reconvergence
/// stack is non-empty (some lanes are parked — the serialized side of a
/// branch is executing). `in_spin`/`spin_head` come from the kernel author's
/// BeginSpin/EndSpin annotations; the head PC identifies one poll iteration.
struct IssueInfo {
  std::uint64_t cycle = 0;
  int sm = 0;
  int warp_slot = 0;
  std::int64_t base_tid = 0;
  std::int32_t pc = 0;
  std::uint32_t active = 0;
  bool divergent = false;
  bool in_spin = false;
  bool spin_head = false;
};

/// A load/atomic that parked its warp until `ready_at`. `queue_cycles` is the
/// backlog the request found in front of it on the L2/DRAM queues — the
/// bandwidth-bound share of the stall; the rest is intrinsic latency.
struct MemStallInfo {
  std::uint64_t cycle = 0;
  std::uint64_t ready_at = 0;
  int sm = 0;
  int warp_slot = 0;
  std::int64_t base_tid = 0;
  std::uint64_t queue_cycles = 0;
  std::uint32_t transactions = 0;
  std::uint32_t dram_misses = 0;
  bool is_atomic = false;
  bool in_spin = false;  // the stalled access is a busy-wait poll
};

/// A store marked with KernelBuilder::MarkPublish executed: one lane made a
/// solution component visible. `addr` is the device byte address written;
/// resolve it to a row with the launch params (see SolveTimeline).
struct PublishInfo {
  std::uint64_t cycle = 0;
  int sm = 0;
  int warp_slot = 0;
  std::uint64_t addr = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void OnLaunchBegin(const LaunchInfo& /*info*/) {}
  /// End of a launch; `cycles` includes the configured launch overhead so
  /// that multi-launch timelines (level-set) keep a consistent global clock.
  virtual void OnLaunchEnd(std::uint64_t /*cycles*/) {}

  virtual void OnBlockDispatch(std::uint64_t /*cycle*/, std::int64_t /*block*/,
                               int /*sm*/) {}
  virtual void OnWarpStart(std::uint64_t /*cycle*/, int /*sm*/,
                           int /*warp_slot*/, std::int64_t /*block*/,
                           std::int64_t /*base_tid*/) {}
  virtual void OnWarpFinish(std::uint64_t /*cycle*/, int /*sm*/,
                            int /*warp_slot*/, std::int64_t /*base_tid*/) {}

  virtual void OnIssue(const IssueInfo& /*info*/) {}
  virtual void OnMemStall(const MemStallInfo& /*info*/) {}
  virtual void OnAtomic(std::uint64_t /*cycle*/, int /*sm*/, int /*warp_slot*/,
                        std::uint32_t /*transactions*/) {}
  virtual void OnPublish(const PublishInfo& /*info*/) {}

  /// The no-progress watchdog tripped; `dump` is the same context message the
  /// launch returns as its deadlock status.
  virtual void OnDeadlock(std::uint64_t /*cycle*/,
                          const std::string& /*dump*/) {}
};

/// Tracks the global cycle across launches: events carry within-launch
/// cycles, OnLaunchEnd advances the epoch. Embed in sinks that need one
/// monotone clock over a multi-launch solve.
struct LaunchClock {
  std::uint64_t offset = 0;
  std::uint64_t At(std::uint64_t cycle) const { return offset + cycle; }
  void EndLaunch(std::uint64_t cycles) { offset += cycles; }
};

/// Fans every event out to a list of sinks (not owned).
class MultiSink : public TraceSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void Add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void OnLaunchBegin(const LaunchInfo& info) override {
    for (TraceSink* s : sinks_) s->OnLaunchBegin(info);
  }
  void OnLaunchEnd(std::uint64_t cycles) override {
    for (TraceSink* s : sinks_) s->OnLaunchEnd(cycles);
  }
  void OnBlockDispatch(std::uint64_t cycle, std::int64_t block,
                       int sm) override {
    for (TraceSink* s : sinks_) s->OnBlockDispatch(cycle, block, sm);
  }
  void OnWarpStart(std::uint64_t cycle, int sm, int warp_slot,
                   std::int64_t block, std::int64_t base_tid) override {
    for (TraceSink* s : sinks_) {
      s->OnWarpStart(cycle, sm, warp_slot, block, base_tid);
    }
  }
  void OnWarpFinish(std::uint64_t cycle, int sm, int warp_slot,
                    std::int64_t base_tid) override {
    for (TraceSink* s : sinks_) {
      s->OnWarpFinish(cycle, sm, warp_slot, base_tid);
    }
  }
  void OnIssue(const IssueInfo& info) override {
    for (TraceSink* s : sinks_) s->OnIssue(info);
  }
  void OnMemStall(const MemStallInfo& info) override {
    for (TraceSink* s : sinks_) s->OnMemStall(info);
  }
  void OnAtomic(std::uint64_t cycle, int sm, int warp_slot,
                std::uint32_t transactions) override {
    for (TraceSink* s : sinks_) s->OnAtomic(cycle, sm, warp_slot, transactions);
  }
  void OnPublish(const PublishInfo& info) override {
    for (TraceSink* s : sinks_) s->OnPublish(info);
  }
  void OnDeadlock(std::uint64_t cycle, const std::string& dump) override {
    for (TraceSink* s : sinks_) s->OnDeadlock(cycle, dump);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace capellini::trace
