#include "trace/timeline.h"

#include <cstdio>

namespace capellini::trace {

void SolveTimeline::OnLaunchBegin(const LaunchInfo& info) {
  if (param_index_ >= 0 && param_index_ < info.num_params) {
    base_addr_ = static_cast<std::uint64_t>(info.params[param_index_]);
  } else {
    base_addr_ = 0;
  }
  if (info.num_params > 0) rows_ = info.params[0];  // kParamM convention
}

void SolveTimeline::OnLaunchEnd(std::uint64_t cycles) {
  clock_.EndLaunch(cycles);
}

void SolveTimeline::OnPublish(const PublishInfo& info) {
  if (base_addr_ == 0 || info.addr < base_addr_) {
    ++unresolved_;
    return;
  }
  const std::uint64_t offset = info.addr - base_addr_;
  if (offset % static_cast<std::uint64_t>(elem_size_) != 0) {
    ++unresolved_;
    return;
  }
  const std::int64_t row =
      static_cast<std::int64_t>(offset / static_cast<std::uint64_t>(elem_size_));
  if (rows_ > 0 && row >= rows_) {
    ++unresolved_;
    return;
  }
  records_.push_back(PublishRecord{row, clock_.At(info.cycle), info.sm});
}

std::string SolveTimeline::ToCsv() const {
  std::string out = "row,cycle,sm\n";
  char line[64];
  for (const PublishRecord& r : records_) {
    std::snprintf(line, sizeof(line), "%lld,%llu,%d\n",
                  static_cast<long long>(r.row),
                  static_cast<unsigned long long>(r.cycle), r.sm);
    out += line;
  }
  return out;
}

Status SolveTimeline::WriteCsv(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return IoError("cannot open '" + path + "' for writing");
  const std::string csv = ToCsv();
  const std::size_t written = std::fwrite(csv.data(), 1, csv.size(), file);
  std::fclose(file);
  if (written != csv.size()) return IoError("short write to '" + path + "'");
  return Status::Ok();
}

std::uint64_t SolveTimeline::CycleAtFraction(double fraction,
                                             std::int64_t total_rows) const {
  if (total_rows <= 0 || fraction <= 0.0) return 0;
  const auto needed = static_cast<std::size_t>(
      fraction * static_cast<double>(total_rows) + 0.5);
  if (needed == 0 || records_.size() < needed) return 0;
  // Publish events are emitted in cycle order (the machine advances time
  // monotonically), so the k-th record is the k-th completed row.
  return records_[needed - 1].cycle;
}

}  // namespace capellini::trace
