#include "trace/attribution.h"

#include <cstdio>
#include <utility>

#include "support/table.h"

namespace capellini::trace {

StallBuckets& StallBuckets::operator+=(const StallBuckets& other) {
  useful_issue += other.useful_issue;
  reconv_issue += other.reconv_issue;
  spin_issue += other.spin_issue;
  spin_stall += other.spin_stall;
  mem_latency += other.mem_latency;
  mem_bandwidth += other.mem_bandwidth;
  scheduler_wait += other.scheduler_wait;
  spin_iterations += other.spin_iterations;
  atomics += other.atomics;
  return *this;
}

void StallAttribution::OnLaunchBegin(const LaunchInfo& info) {
  launch_index_ = info.launch_index;
}

void StallAttribution::OnLaunchEnd(std::uint64_t cycles) {
  clock_.EndLaunch(cycles);
}

void StallAttribution::OnWarpStart(std::uint64_t cycle, int sm, int warp_slot,
                                   std::int64_t /*block*/,
                                   std::int64_t base_tid) {
  ActiveWarp& warp = active_[{sm, warp_slot}];
  warp = ActiveWarp{};
  warp.base_tid = base_tid;
  warp.start_cycle = clock_.At(cycle);
}

void StallAttribution::OnWarpFinish(std::uint64_t cycle, int sm, int warp_slot,
                                    std::int64_t base_tid) {
  const auto it = active_.find({sm, warp_slot});
  if (it == active_.end()) return;
  WarpRecord record;
  record.launch_index = launch_index_;
  record.sm = sm;
  record.warp_slot = warp_slot;
  record.base_tid = base_tid;
  record.start_cycle = it->second.start_cycle;
  // The warp issues its final instruction on the finish cycle itself, so the
  // recorded end is exclusive: residency is [start_cycle, finish_cycle).
  record.finish_cycle = clock_.At(cycle) + 1;
  record.buckets = it->second.buckets;
  // Whatever the lifetime does not account for was spent resident but not
  // issuing and not memory-stalled: waiting for an issue slot.
  const std::uint64_t lifetime = record.finish_cycle - record.start_cycle;
  const std::uint64_t accounted = record.buckets.Total();
  record.buckets.scheduler_wait = lifetime > accounted ? lifetime - accounted : 0;
  records_.push_back(record);
  active_.erase(it);
}

void StallAttribution::OnIssue(const IssueInfo& info) {
  const auto it = active_.find({info.sm, info.warp_slot});
  if (it == active_.end()) return;
  StallBuckets& buckets = it->second.buckets;
  if (info.in_spin) {
    ++buckets.spin_issue;
    if (info.spin_head) ++buckets.spin_iterations;
  } else if (info.divergent) {
    ++buckets.reconv_issue;
  } else {
    ++buckets.useful_issue;
  }
}

void StallAttribution::OnMemStall(const MemStallInfo& info) {
  const auto it = active_.find({info.sm, info.warp_slot});
  if (it == active_.end()) return;
  StallBuckets& buckets = it->second.buckets;
  // The issue cycle itself was already counted by OnIssue; the stall spans
  // the cycles until the warp becomes ready again.
  const std::uint64_t stall =
      info.ready_at > info.cycle + 1 ? info.ready_at - info.cycle - 1 : 0;
  if (info.in_spin) {
    // Poll loads ARE the busy-wait cost, whatever their memory-level cause.
    buckets.spin_stall += stall;
    return;
  }
  const std::uint64_t bandwidth =
      info.queue_cycles < stall ? info.queue_cycles : stall;
  buckets.mem_bandwidth += bandwidth;
  buckets.mem_latency += stall - bandwidth;
}

void StallAttribution::OnAtomic(std::uint64_t /*cycle*/, int sm, int warp_slot,
                                std::uint32_t transactions) {
  const auto it = active_.find({sm, warp_slot});
  if (it == active_.end()) return;
  it->second.buckets.atomics += transactions;
}

StallBuckets StallAttribution::Totals() const {
  StallBuckets total;
  for (const WarpRecord& record : records_) total += record.buckets;
  return total;
}

std::string StallAttribution::SummaryTable() const {
  const StallBuckets total = Totals();
  const double denom =
      total.Total() > 0 ? static_cast<double>(total.Total()) : 1.0;
  TextTable table({"bucket", "warp-cycles", "share"});
  table.SetTitle("stall attribution (" + TextTable::Int(static_cast<long long>(
                     records_.size())) + " warps)");
  const auto row = [&](const char* name, std::uint64_t cycles) {
    table.AddRow({name, TextTable::Int(static_cast<long long>(cycles)),
                  TextTable::Num(100.0 * static_cast<double>(cycles) / denom,
                                 1) + "%"});
  };
  row("useful issue", total.useful_issue);
  row("reconvergence serialization", total.reconv_issue);
  row("busy-wait spin (issue)", total.spin_issue);
  row("busy-wait spin (poll stall)", total.spin_stall);
  row("memory latency", total.mem_latency);
  row("memory bandwidth", total.mem_bandwidth);
  row("scheduler wait", total.scheduler_wait);
  std::string out = table.ToString();
  out += "spin iterations: " +
         TextTable::Int(static_cast<long long>(total.spin_iterations)) +
         ", atomic transactions: " +
         TextTable::Int(static_cast<long long>(total.atomics)) + "\n";
  return out;
}

std::string StallAttribution::ToCsv() const {
  std::string out =
      "launch,sm,warp_slot,base_tid,start_cycle,finish_cycle,useful_issue,"
      "reconv_issue,spin_issue,spin_stall,mem_latency,mem_bandwidth,"
      "scheduler_wait,spin_iterations,atomics\n";
  char line[512];
  for (const WarpRecord& r : records_) {
    std::snprintf(
        line, sizeof(line),
        "%d,%d,%d,%lld,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu\n",
        r.launch_index, r.sm, r.warp_slot, static_cast<long long>(r.base_tid),
        static_cast<unsigned long long>(r.start_cycle),
        static_cast<unsigned long long>(r.finish_cycle),
        static_cast<unsigned long long>(r.buckets.useful_issue),
        static_cast<unsigned long long>(r.buckets.reconv_issue),
        static_cast<unsigned long long>(r.buckets.spin_issue),
        static_cast<unsigned long long>(r.buckets.spin_stall),
        static_cast<unsigned long long>(r.buckets.mem_latency),
        static_cast<unsigned long long>(r.buckets.mem_bandwidth),
        static_cast<unsigned long long>(r.buckets.scheduler_wait),
        static_cast<unsigned long long>(r.buckets.spin_iterations),
        static_cast<unsigned long long>(r.buckets.atomics));
    out += line;
  }
  return out;
}

Status StallAttribution::WriteCsv(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return IoError("cannot open '" + path + "' for writing");
  const std::string csv = ToCsv();
  const std::size_t written = std::fwrite(csv.data(), 1, csv.size(), file);
  std::fclose(file);
  if (written != csv.size()) return IoError("short write to '" + path + "'");
  return Status::Ok();
}

}  // namespace capellini::trace
