// Convenience bundle for the common tracing setup: stall attribution +
// solve timeline + Chrome trace, fanned out from one sink. This is what
// examples/sptrsv_tool wires into kernels::SolveOptions::trace_sink.
#pragma once

#include <string>

#include "support/status.h"
#include "trace/attribution.h"
#include "trace/chrome_trace.h"
#include "trace/sink.h"
#include "trace/timeline.h"

namespace capellini::trace {

class TraceSession {
 public:
  struct Options {
    /// Publish-address resolver for the timeline (see SolveTimeline): the
    /// CSR kernels publish through the i32 get_value array in param slot 6;
    /// level-set and the CSC SyncFree baseline publish through the f64 x
    /// vector in slot 5 — pass (5, 8) for those.
    int publish_param_index = 6;
    int publish_elem_size = 4;
    ChromeTraceSink::Options chrome;
  };

  TraceSession() : TraceSession(Options()) {}
  explicit TraceSession(Options options)
      : timeline_(options.publish_param_index, options.publish_elem_size),
        chrome_(options.chrome) {
    sink_.Add(&attribution_);
    sink_.Add(&timeline_);
    sink_.Add(&chrome_);
  }

  /// The sink to attach to kernels::SolveOptions::trace_sink.
  TraceSink* sink() { return &sink_; }

  const StallAttribution& attribution() const { return attribution_; }
  const SolveTimeline& timeline() const { return timeline_; }
  const ChromeTraceSink& chrome() const { return chrome_; }

  Status WriteChromeTrace(const std::string& path) const {
    return chrome_.WriteFile(path);
  }

 private:
  StallAttribution attribution_;
  SolveTimeline timeline_;
  ChromeTraceSink chrome_;
  MultiSink sink_;
};

}  // namespace capellini::trace
