#include "matrix/convert.h"

namespace capellini {

Csr CooToCsr(Coo coo) {
  coo.Normalize();
  const Idx rows = coo.rows();
  const auto& entries = coo.entries();

  std::vector<Idx> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (const Triplet& t : entries) {
    ++row_ptr[static_cast<std::size_t>(t.row) + 1];
  }
  for (Idx r = 0; r < rows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  }

  std::vector<Idx> col_idx(entries.size());
  std::vector<Val> val(entries.size());
  // Entries are already row-major sorted after Normalize, so a single copy
  // preserves per-row column order.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    col_idx[i] = entries[i].col;
    val[i] = entries[i].val;
  }
  return Csr(rows, coo.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(val));
}

Coo CsrToCoo(const Csr& csr) {
  Coo coo(csr.rows(), csr.cols());
  coo.Reserve(static_cast<std::size_t>(csr.nnz()));
  for (Idx r = 0; r < csr.rows(); ++r) {
    const auto cols = csr.RowCols(r);
    const auto vals = csr.RowVals(r);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      coo.Add(r, cols[j], vals[j]);
    }
  }
  return coo;
}

Csc CsrToCsc(const Csr& csr) {
  const Idx rows = csr.rows();
  const Idx cols = csr.cols();
  const auto col_idx = csr.col_idx();
  const auto val = csr.val();
  const std::int64_t nnz = csr.nnz();

  std::vector<Idx> col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  for (std::int64_t i = 0; i < nnz; ++i) {
    ++col_ptr[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(i)]) +
              1];
  }
  for (Idx c = 0; c < cols; ++c) {
    col_ptr[static_cast<std::size_t>(c) + 1] +=
        col_ptr[static_cast<std::size_t>(c)];
  }

  std::vector<Idx> row_idx(static_cast<std::size_t>(nnz));
  std::vector<Val> out_val(static_cast<std::size_t>(nnz));
  std::vector<Idx> cursor(col_ptr.begin(), col_ptr.end() - 1);
  // Scanning rows in ascending order yields ascending row indices per column.
  for (Idx r = 0; r < rows; ++r) {
    for (Idx j = csr.RowBegin(r); j < csr.RowEnd(r); ++j) {
      const Idx c = col_idx[static_cast<std::size_t>(j)];
      const Idx dst = cursor[static_cast<std::size_t>(c)]++;
      row_idx[static_cast<std::size_t>(dst)] = r;
      out_val[static_cast<std::size_t>(dst)] = val[static_cast<std::size_t>(j)];
    }
  }
  return Csc(rows, cols, std::move(col_ptr), std::move(row_idx),
             std::move(out_val));
}

Csr CscToCsr(const Csc& csc) {
  const Idx rows = csc.rows();
  const Idx cols = csc.cols();
  const auto row_idx = csc.row_idx();
  const auto val = csc.val();
  const std::int64_t nnz = csc.nnz();

  std::vector<Idx> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (std::int64_t i = 0; i < nnz; ++i) {
    ++row_ptr[static_cast<std::size_t>(row_idx[static_cast<std::size_t>(i)]) +
              1];
  }
  for (Idx r = 0; r < rows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  }

  std::vector<Idx> col_out(static_cast<std::size_t>(nnz));
  std::vector<Val> val_out(static_cast<std::size_t>(nnz));
  std::vector<Idx> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (Idx c = 0; c < cols; ++c) {
    for (Idx j = csc.ColBegin(c); j < csc.ColEnd(c); ++j) {
      const Idx r = row_idx[static_cast<std::size_t>(j)];
      const Idx dst = cursor[static_cast<std::size_t>(r)]++;
      col_out[static_cast<std::size_t>(dst)] = c;
      val_out[static_cast<std::size_t>(dst)] = val[static_cast<std::size_t>(j)];
    }
  }
  return Csr(rows, cols, std::move(row_ptr), std::move(col_out),
             std::move(val_out));
}

Csr TransposeCsr(const Csr& csr) {
  // A^T in CSR is exactly A in CSC with the roles of the arrays swapped.
  Csc csc = CsrToCsc(csr);
  std::vector<Idx> col_ptr(csc.col_ptr().begin(), csc.col_ptr().end());
  std::vector<Idx> row_idx(csc.row_idx().begin(), csc.row_idx().end());
  std::vector<Val> val(csc.val().begin(), csc.val().end());
  return Csr(csr.cols(), csr.rows(), std::move(col_ptr), std::move(row_idx),
             std::move(val));
}

}  // namespace capellini
