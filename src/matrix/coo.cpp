#include "matrix/coo.h"

#include <algorithm>
#include <string>

namespace capellini {

void Coo::Normalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  // Merge duplicates in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].val += entries_[i].val;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

Status Coo::Validate() const {
  for (const Triplet& t : entries_) {
    if (t.row < 0 || t.row >= rows_ || t.col < 0 || t.col >= cols_) {
      return InvalidArgument("COO entry (" + std::to_string(t.row) + "," +
                             std::to_string(t.col) + ") out of bounds for " +
                             std::to_string(rows_) + "x" +
                             std::to_string(cols_));
    }
  }
  return Status::Ok();
}

}  // namespace capellini
