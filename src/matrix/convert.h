// Conversions between sparse formats.
#pragma once

#include "matrix/coo.h"
#include "matrix/csc.h"
#include "matrix/csr.h"

namespace capellini {

/// COO -> CSR. The input is normalized (sorted, duplicates merged) first.
Csr CooToCsr(Coo coo);

/// CSR -> COO triplets (row-major order).
Coo CsrToCoo(const Csr& csr);

/// CSR -> CSC (a transpose-like counting pass; this is exactly the format
/// conversion the SyncFree baseline needs and Capellini avoids).
Csc CsrToCsc(const Csr& csr);

/// CSC -> CSR.
Csr CscToCsr(const Csc& csc);

/// Structural transpose: returns A^T in CSR.
Csr TransposeCsr(const Csr& csr);

}  // namespace capellini
