// Triangular-system utilities.
//
// The paper's dataset rule (§5.1): take an arbitrary sparse matrix, keep only
// the lower-left elements, and assign values to the diagonal ("we use
// unit-lower triangular here"). These helpers implement that rule plus
// well-conditioned value assignment so double-precision solves stay accurate
// regardless of structure.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"
#include "support/rng.h"

namespace capellini {

/// Options for ExtractLowerTriangular.
struct LowerTriangularOptions {
  /// Value placed on the diagonal (paper uses unit-lower triangular).
  Val diagonal = 1.0;
  /// If true, off-diagonal values are replaced by random values scaled by
  /// 1 / (2 * row_nnz) so the solve is numerically benign; if false the
  /// original values are kept.
  bool rescale_off_diagonal = true;
  /// Seed for the rescaling values.
  std::uint64_t seed = 0x5eed;
};

/// Keeps the strictly-lower-left entries of `a`, forces a full diagonal, and
/// (optionally) assigns well-conditioned values. The result satisfies
/// Csr::IsLowerTriangularWithDiagonal().
Csr ExtractLowerTriangular(const Csr& a, const LowerTriangularOptions& options);

/// Draws a reference solution x_true (uniform in [0.5, 1.5]) and computes
/// b = L * x_true. Returns {x_true, b}.
struct ReferenceProblem {
  std::vector<Val> x_true;
  std::vector<Val> b;
};
ReferenceProblem MakeReferenceProblem(const Csr& lower, std::uint64_t seed);

/// Max relative error between a computed solution and the reference,
/// max_i |x_i - ref_i| / max(1, |ref_i|).
double MaxRelativeError(std::span<const Val> x, std::span<const Val> reference);

/// True if every row's FIRST entry is the diagonal and all other entries are
/// strictly right of it — an upper-triangular matrix with full diagonal
/// (e.g. the transpose of a lower factor, or an LU / Cholesky U factor).
bool IsUpperTriangularWithDiagonal(const Csr& a);

/// Index reversal i -> n-1-i on both rows and columns. Maps an upper
/// triangular system onto an equivalent lower triangular one (and back — the
/// transform is an involution), so every lower solver in this library also
/// solves U x = b:
///
///   Csr lower = ReverseSystem(upper);
///   reversed_b = ReverseVector(b);
///   solve lower * y = reversed_b;            (any Algorithm)
///   x = ReverseVector(y);
Csr ReverseSystem(const Csr& a);

/// out[i] = in[n-1-i]. in and out must not alias.
void ReverseVector(std::span<const Val> in, std::span<Val> out);

}  // namespace capellini
