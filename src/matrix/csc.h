// Compressed sparse column matrix — consumed by the warp-level
// synchronization-free SpTRSV of Liu et al. (the paper's main baseline).
#pragma once

#include <span>
#include <vector>

#include "matrix/types.h"
#include "support/status.h"

namespace capellini {

/// CSC sparse matrix: col_ptr (cols+1), row_idx (nnz), val (nnz).
/// Row indices within a column are kept sorted ascending — for a lower
/// triangular matrix the diagonal is the FIRST element of each column.
class Csc {
 public:
  Csc() = default;
  Csc(Idx rows, Idx cols, std::vector<Idx> col_ptr, std::vector<Idx> row_idx,
      std::vector<Val> val);

  Idx rows() const { return rows_; }
  Idx cols() const { return cols_; }
  std::int64_t nnz() const {
    return col_ptr_.empty() ? 0 : static_cast<std::int64_t>(col_ptr_.back());
  }

  std::span<const Idx> col_ptr() const { return col_ptr_; }
  std::span<const Idx> row_idx() const { return row_idx_; }
  std::span<const Val> val() const { return val_; }

  Idx ColBegin(Idx col) const { return col_ptr_[static_cast<std::size_t>(col)]; }
  Idx ColEnd(Idx col) const {
    return col_ptr_[static_cast<std::size_t>(col) + 1];
  }
  Idx ColLen(Idx col) const { return ColEnd(col) - ColBegin(col); }

  /// Structural invariants: monotone col_ptr, in-range sorted rows.
  Status Validate() const;

  friend bool operator==(const Csc&, const Csc&) = default;

 private:
  Idx rows_ = 0;
  Idx cols_ = 0;
  std::vector<Idx> col_ptr_{0};
  std::vector<Idx> row_idx_;
  std::vector<Val> val_;
};

}  // namespace capellini
