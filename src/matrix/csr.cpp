#include "matrix/csr.h"

#include <string>

namespace capellini {

Csr::Csr(Idx rows, Idx cols, std::vector<Idx> row_ptr,
         std::vector<Idx> col_idx, std::vector<Val> val)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      val_(std::move(val)) {
  CAPELLINI_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1);
  CAPELLINI_CHECK(col_idx_.size() == val_.size());
  CAPELLINI_CHECK(row_ptr_.back() == static_cast<Idx>(col_idx_.size()));
}

Status Csr::Validate() const {
  if (rows_ < 0 || cols_ < 0) return InvalidArgument("negative dimensions");
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1) {
    return InvalidArgument("row_ptr size mismatch");
  }
  if (row_ptr_.front() != 0) return InvalidArgument("row_ptr[0] != 0");
  for (Idx r = 0; r < rows_; ++r) {
    const Idx begin = RowBegin(r);
    const Idx end = RowEnd(r);
    if (begin > end) {
      return InvalidArgument("row_ptr not monotone at row " +
                             std::to_string(r));
    }
    for (Idx j = begin; j < end; ++j) {
      const Idx col = col_idx_[static_cast<std::size_t>(j)];
      if (col < 0 || col >= cols_) {
        return InvalidArgument("column out of range at row " +
                               std::to_string(r));
      }
      if (j > begin && col_idx_[static_cast<std::size_t>(j - 1)] >= col) {
        return InvalidArgument("columns not strictly ascending in row " +
                               std::to_string(r));
      }
    }
  }
  if (row_ptr_.back() != static_cast<Idx>(col_idx_.size())) {
    return InvalidArgument("row_ptr.back() != nnz");
  }
  return Status::Ok();
}

bool Csr::IsLowerTriangularWithDiagonal() const {
  if (rows_ != cols_) return false;
  for (Idx r = 0; r < rows_; ++r) {
    const Idx begin = RowBegin(r);
    const Idx end = RowEnd(r);
    if (begin == end) return false;  // missing diagonal
    if (col_idx_[static_cast<std::size_t>(end - 1)] != r) return false;
    for (Idx j = begin; j < end - 1; ++j) {
      if (col_idx_[static_cast<std::size_t>(j)] >= r) return false;
    }
  }
  return true;
}

void Csr::SpMv(std::span<const Val> x, std::span<Val> y) const {
  CAPELLINI_CHECK(x.size() == static_cast<std::size_t>(cols_));
  CAPELLINI_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (Idx r = 0; r < rows_; ++r) {
    Val sum = 0.0;
    const Idx begin = RowBegin(r);
    const Idx end = RowEnd(r);
    for (Idx j = begin; j < end; ++j) {
      sum += val_[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

}  // namespace capellini
