#include "matrix/csc.h"

#include <string>

namespace capellini {

Csc::Csc(Idx rows, Idx cols, std::vector<Idx> col_ptr,
         std::vector<Idx> row_idx, std::vector<Val> val)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      val_(std::move(val)) {
  CAPELLINI_CHECK(col_ptr_.size() == static_cast<std::size_t>(cols_) + 1);
  CAPELLINI_CHECK(row_idx_.size() == val_.size());
  CAPELLINI_CHECK(col_ptr_.back() == static_cast<Idx>(row_idx_.size()));
}

Status Csc::Validate() const {
  if (rows_ < 0 || cols_ < 0) return InvalidArgument("negative dimensions");
  if (col_ptr_.size() != static_cast<std::size_t>(cols_) + 1) {
    return InvalidArgument("col_ptr size mismatch");
  }
  if (col_ptr_.front() != 0) return InvalidArgument("col_ptr[0] != 0");
  for (Idx c = 0; c < cols_; ++c) {
    const Idx begin = ColBegin(c);
    const Idx end = ColEnd(c);
    if (begin > end) {
      return InvalidArgument("col_ptr not monotone at col " +
                             std::to_string(c));
    }
    for (Idx j = begin; j < end; ++j) {
      const Idx row = row_idx_[static_cast<std::size_t>(j)];
      if (row < 0 || row >= rows_) {
        return InvalidArgument("row out of range at col " + std::to_string(c));
      }
      if (j > begin && row_idx_[static_cast<std::size_t>(j - 1)] >= row) {
        return InvalidArgument("rows not strictly ascending in col " +
                               std::to_string(c));
      }
    }
  }
  if (col_ptr_.back() != static_cast<Idx>(row_idx_.size())) {
    return InvalidArgument("col_ptr.back() != nnz");
  }
  return Status::Ok();
}

}  // namespace capellini
