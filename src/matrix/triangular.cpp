#include "matrix/triangular.h"

#include <algorithm>
#include <cmath>

namespace capellini {

Csr ExtractLowerTriangular(const Csr& a,
                           const LowerTriangularOptions& options) {
  CAPELLINI_CHECK_MSG(a.rows() == a.cols(),
                      "lower-triangular extraction needs a square matrix");
  const Idx n = a.rows();

  std::vector<Idx> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  // Count strictly-lower entries per row; every row gains a diagonal slot.
  for (Idx r = 0; r < n; ++r) {
    Idx count = 0;
    for (const Idx c : a.RowCols(r)) {
      if (c < r) ++count;
    }
    row_ptr[static_cast<std::size_t>(r) + 1] =
        row_ptr[static_cast<std::size_t>(r)] + count + 1;
  }

  const std::size_t nnz = static_cast<std::size_t>(row_ptr.back());
  std::vector<Idx> col_idx(nnz);
  std::vector<Val> val(nnz);

  Rng rng(options.seed);
  for (Idx r = 0; r < n; ++r) {
    std::size_t dst = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
    const auto cols = a.RowCols(r);
    const auto vals = a.RowVals(r);
    std::size_t kept = 0;
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (cols[j] < r) {
        col_idx[dst] = cols[j];
        val[dst] = vals[j];
        ++dst;
        ++kept;
      }
    }
    if (options.rescale_off_diagonal && kept > 0) {
      // Scale so |sum of off-diagonal contributions| < diagonal: keeps the
      // solve well conditioned for any structure.
      const Val scale = std::abs(options.diagonal) /
                        (2.0 * static_cast<Val>(kept));
      std::size_t begin = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
      for (std::size_t j = begin; j < begin + kept; ++j) {
        val[j] = rng.NextDouble(-1.0, 1.0) * scale;
      }
    }
    col_idx[dst] = r;
    val[dst] = options.diagonal;
  }

  return Csr(n, n, std::move(row_ptr), std::move(col_idx), std::move(val));
}

ReferenceProblem MakeReferenceProblem(const Csr& lower, std::uint64_t seed) {
  const Idx n = lower.rows();
  ReferenceProblem problem;
  problem.x_true.resize(static_cast<std::size_t>(n));
  problem.b.resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& x : problem.x_true) x = rng.NextDouble(0.5, 1.5);
  lower.SpMv(problem.x_true, problem.b);
  return problem;
}

bool IsUpperTriangularWithDiagonal(const Csr& a) {
  if (a.rows() != a.cols()) return false;
  for (Idx r = 0; r < a.rows(); ++r) {
    const auto cols = a.RowCols(r);
    if (cols.empty()) return false;  // missing diagonal
    if (cols.front() != r) return false;
    for (std::size_t j = 1; j < cols.size(); ++j) {
      if (cols[j] <= r) return false;
    }
  }
  return true;
}

Csr ReverseSystem(const Csr& a) {
  CAPELLINI_CHECK_MSG(a.rows() == a.cols(),
                      "index reversal needs a square matrix");
  const Idx n = a.rows();

  // Row k of the result is row n-1-k of the input with columns mapped
  // through c -> n-1-c. Reversing an ascending column list yields an
  // ascending list again, so no per-row sort is needed.
  std::vector<Idx> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (Idx k = 0; k < n; ++k) {
    row_ptr[static_cast<std::size_t>(k) + 1] =
        row_ptr[static_cast<std::size_t>(k)] + a.RowLen(n - 1 - k);
  }
  std::vector<Idx> col_idx(static_cast<std::size_t>(a.nnz()));
  std::vector<Val> val(static_cast<std::size_t>(a.nnz()));
  for (Idx k = 0; k < n; ++k) {
    const Idx src = n - 1 - k;
    const auto cols = a.RowCols(src);
    const auto vals = a.RowVals(src);
    std::size_t dst = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(k)]);
    for (std::size_t j = cols.size(); j-- > 0; ++dst) {
      col_idx[dst] = n - 1 - cols[j];
      val[dst] = vals[j];
    }
  }
  return Csr(n, n, std::move(row_ptr), std::move(col_idx), std::move(val));
}

void ReverseVector(std::span<const Val> in, std::span<Val> out) {
  CAPELLINI_CHECK(in.size() == out.size());
  CAPELLINI_CHECK(in.data() != out.data());
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = in[n - 1 - i];
}

double MaxRelativeError(std::span<const Val> x,
                        std::span<const Val> reference) {
  CAPELLINI_CHECK(x.size() == reference.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double denom = std::max(1.0, std::abs(reference[i]));
    worst = std::max(worst, std::abs(x[i] - reference[i]) / denom);
  }
  return worst;
}

}  // namespace capellini
