#include "matrix/mm_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace capellini {
namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Expected<Coo> ReadMatrixMarket(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return IoError("empty Matrix Market stream");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    return IoError("missing %%MatrixMarket banner");
  }
  object = ToLower(object);
  format = ToLower(format);
  field = ToLower(field);
  symmetry = ToLower(symmetry);
  if (object != "matrix" || format != "coordinate") {
    return IoError("only 'matrix coordinate' inputs are supported");
  }
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    return IoError("unsupported field '" + field + "'");
  }
  const bool symmetric = symmetry == "symmetric";
  if (symmetry != "general" && !symmetric) {
    return IoError("unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = 0, cols = 0, declared_nnz = 0;
  if (!(size_line >> rows >> cols >> declared_nnz)) {
    return IoError("malformed size line");
  }
  if (rows <= 0 || cols <= 0 || declared_nnz < 0) {
    return IoError("non-positive dimensions");
  }

  Coo coo(static_cast<Idx>(rows), static_cast<Idx>(cols));
  coo.Reserve(static_cast<std::size_t>(declared_nnz) * (symmetric ? 2 : 1));
  for (long long i = 0; i < declared_nnz; ++i) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) return IoError("truncated entry list");
    if (!pattern && !(in >> v)) return IoError("truncated entry value");
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return IoError("entry index out of bounds");
    }
    coo.Add(static_cast<Idx>(r - 1), static_cast<Idx>(c - 1), v);
    if (symmetric && r != c) {
      coo.Add(static_cast<Idx>(c - 1), static_cast<Idx>(r - 1), v);
    }
  }
  return coo;
}

Expected<Coo> ReadMatrixMarketFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return IoError("cannot open '" + path + "'");
  return ReadMatrixMarket(file);
}

Status WriteMatrixMarket(const Coo& coo, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by capellini-sptrsv\n";
  out << coo.rows() << ' ' << coo.cols() << ' ' << coo.nnz() << '\n';
  out.precision(17);
  for (const Triplet& t : coo.entries()) {
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.val << '\n';
  }
  if (!out) return IoError("write failure");
  return Status::Ok();
}

Status WriteMatrixMarketFile(const Coo& coo, const std::string& path) {
  std::ofstream file(path);
  if (!file) return IoError("cannot open '" + path + "' for writing");
  return WriteMatrixMarket(coo, file);
}

}  // namespace capellini
