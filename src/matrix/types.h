// Shared scalar/index types for the sparse-matrix substrate.
#pragma once

#include <cstdint>

namespace capellini {

/// Index type used in sparse structures. 32-bit signed, matching the CUDA
/// kernels in the original paper artifact (csrRowPtr/csrColIdx are ints).
using Idx = std::int32_t;

/// Value type. The paper evaluates double precision (see §5.1).
using Val = double;

/// Nvidia warp width; the algorithms in the paper hard-code 32.
inline constexpr int kWarpSize = 32;

}  // namespace capellini
