// Coordinate-format sparse matrix (triplets). Construction staging format:
// generators and Matrix Market I/O produce COO, which converts to CSR/CSC.
#pragma once

#include <vector>

#include "matrix/types.h"
#include "support/status.h"

namespace capellini {

/// One nonzero entry.
struct Triplet {
  Idx row = 0;
  Idx col = 0;
  Val val = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format sparse matrix. Entries may be unsorted and may contain
/// duplicates until Normalize() is called.
class Coo {
 public:
  Coo() = default;
  Coo(Idx rows, Idx cols) : rows_(rows), cols_(cols) {}

  Idx rows() const { return rows_; }
  Idx cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(entries_.size()); }

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  /// Appends one entry (no bounds check in release; validate separately).
  void Add(Idx row, Idx col, Val val) { entries_.push_back({row, col, val}); }

  void Reserve(std::size_t n) { entries_.reserve(n); }

  /// Sorts entries row-major and merges duplicates by summing their values.
  void Normalize();

  /// Checks indices are within [0, rows) x [0, cols).
  Status Validate() const;

 private:
  Idx rows_ = 0;
  Idx cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace capellini
