// Compressed sparse row matrix — the format the paper's kernels consume.
#pragma once

#include <span>
#include <vector>

#include "matrix/types.h"
#include "support/status.h"

namespace capellini {

/// CSR sparse matrix: row_ptr (rows+1), col_idx (nnz), val (nnz).
/// Column indices within a row are kept sorted ascending — the Capellini
/// kernels rely on the diagonal being the last element of each row.
class Csr {
 public:
  Csr() = default;
  Csr(Idx rows, Idx cols, std::vector<Idx> row_ptr, std::vector<Idx> col_idx,
      std::vector<Val> val);

  Idx rows() const { return rows_; }
  Idx cols() const { return cols_; }
  std::int64_t nnz() const {
    return row_ptr_.empty() ? 0 : static_cast<std::int64_t>(row_ptr_.back());
  }

  std::span<const Idx> row_ptr() const { return row_ptr_; }
  std::span<const Idx> col_idx() const { return col_idx_; }
  std::span<const Val> val() const { return val_; }
  std::span<Val> mutable_val() { return val_; }

  Idx RowBegin(Idx row) const { return row_ptr_[static_cast<std::size_t>(row)]; }
  Idx RowEnd(Idx row) const {
    return row_ptr_[static_cast<std::size_t>(row) + 1];
  }
  Idx RowLen(Idx row) const { return RowEnd(row) - RowBegin(row); }

  /// Column indices of one row.
  std::span<const Idx> RowCols(Idx row) const {
    return std::span<const Idx>(col_idx_).subspan(
        static_cast<std::size_t>(RowBegin(row)),
        static_cast<std::size_t>(RowLen(row)));
  }
  /// Values of one row.
  std::span<const Val> RowVals(Idx row) const {
    return std::span<const Val>(val_).subspan(
        static_cast<std::size_t>(RowBegin(row)),
        static_cast<std::size_t>(RowLen(row)));
  }

  /// Structural invariants: monotone row_ptr, in-range sorted columns.
  Status Validate() const;

  /// True if every row's last entry is the diagonal and all other entries are
  /// strictly left of it (i.e. a lower-triangular matrix with full diagonal —
  /// the shape required by SpTRSV).
  bool IsLowerTriangularWithDiagonal() const;

  /// y = A * x (dense x). Used to manufacture right-hand sides with a known
  /// solution. x.size() must equal cols(), y.size() rows().
  void SpMv(std::span<const Val> x, std::span<Val> y) const;

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  Idx rows_ = 0;
  Idx cols_ = 0;
  std::vector<Idx> row_ptr_{0};
  std::vector<Idx> col_idx_;
  std::vector<Val> val_;
};

}  // namespace capellini
