// Matrix Market (.mtx) I/O — the interchange format of the SuiteSparse /
// University of Florida collection the paper evaluates on.
//
// Supports `matrix coordinate <real|integer|pattern> <general|symmetric>`.
// Pattern entries get value 1.0; symmetric inputs are expanded.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.h"
#include "support/status.h"

namespace capellini {

/// Parses a Matrix Market stream into COO (1-based indices converted to 0).
Expected<Coo> ReadMatrixMarket(std::istream& in);

/// Reads a .mtx file from disk.
Expected<Coo> ReadMatrixMarketFile(const std::string& path);

/// Writes COO as `matrix coordinate real general`.
Status WriteMatrixMarket(const Coo& coo, std::ostream& out);

/// Writes a .mtx file to disk.
Status WriteMatrixMarketFile(const Coo& coo, const std::string& path);

}  // namespace capellini
