// Dependency DAG of a lower-triangular system (Section 1 of the paper):
// node per component x_i, edge j -> i for every strictly-lower nonzero
// L(i, j). Used for structural analysis and for property tests.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"

namespace capellini {

/// Forward dependency graph: successors[j] = rows that consume x_j.
class DependencyDag {
 public:
  /// Builds the DAG from a lower-triangular CSR matrix with diagonal.
  explicit DependencyDag(const Csr& lower);

  Idx num_nodes() const { return num_nodes_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(succ_.size());
  }

  /// Rows that directly depend on x_node.
  std::span<const Idx> Successors(Idx node) const {
    return std::span<const Idx>(succ_).subspan(
        static_cast<std::size_t>(succ_ptr_[static_cast<std::size_t>(node)]),
        static_cast<std::size_t>(succ_ptr_[static_cast<std::size_t>(node) + 1] -
                                 succ_ptr_[static_cast<std::size_t>(node)]));
  }

  /// Number of direct dependencies of a row (its in-degree).
  Idx InDegree(Idx node) const {
    return in_degree_[static_cast<std::size_t>(node)];
  }

  /// Length of the longest dependency chain (== number of levels).
  Idx CriticalPathLength() const;

  /// True if `order` is a valid topological order of the DAG (every row
  /// appears after all rows it depends on). Used by property tests against
  /// LevelSets::order.
  bool IsTopologicalOrder(std::span<const Idx> order) const;

 private:
  Idx num_nodes_ = 0;
  std::vector<Idx> succ_ptr_;
  std::vector<Idx> succ_;
  std::vector<Idx> in_degree_;
};

}  // namespace capellini
