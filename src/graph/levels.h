// Level-set analysis of the dependency DAG of a lower-triangular system.
//
// This is the preprocessing step of the classic level-set SpTRSV
// (Anderson & Saad; Saltz — Algorithm 2 in the paper): rows are grouped into
// levels such that all rows in a level depend only on rows in earlier levels
// and can be solved in parallel.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"

namespace capellini {

/// Result of level-set preprocessing. Mirrors the arrays in the paper:
/// `layer` (number of levels), `layer_num` (level_ptr here) and `order`.
struct LevelSets {
  /// level_of[row] = level index of that row (0-based).
  std::vector<Idx> level_of;
  /// level_ptr[k]..level_ptr[k+1] delimit level k's rows inside `order`.
  std::vector<Idx> level_ptr;
  /// Row numbers sorted by level (ties keep ascending row order).
  std::vector<Idx> order;

  Idx num_levels() const {
    return static_cast<Idx>(level_ptr.empty() ? 0 : level_ptr.size() - 1);
  }
  Idx LevelSize(Idx level) const {
    return level_ptr[static_cast<std::size_t>(level) + 1] -
           level_ptr[static_cast<std::size_t>(level)];
  }
  std::span<const Idx> LevelRows(Idx level) const {
    return std::span<const Idx>(order).subspan(
        static_cast<std::size_t>(level_ptr[static_cast<std::size_t>(level)]),
        static_cast<std::size_t>(LevelSize(level)));
  }
};

/// Computes level sets of a lower-triangular CSR matrix with full diagonal.
/// level(i) = 1 + max(level(j)) over strictly-lower entries j of row i.
/// Cost: O(nnz) — this is the "long preprocessing" the paper attributes to
/// level-set SpTRSV (it walks the whole structure and builds three arrays).
LevelSets ComputeLevelSets(const Csr& lower);

/// Assembles the level_ptr/order arrays from a per-row level assignment via
/// the counting sort ComputeLevelSets uses (rows of one level in ascending
/// row order). Shared by the host sweep, the incremental re-analyzer and the
/// on-device analyser, so every producer of a `level_of` array yields
/// bit-identical LevelSets by construction.
LevelSets BuildLevelSetsFromLevelOf(std::vector<Idx> level_of);

/// Builds the level-GATHERED copy of the matrix used by level-set solvers:
/// row k of the result is row order[k] of `lower` (rows of one level become
/// contiguous, so threads of one level launch read neighbouring rows).
///
/// CONTRACT — schedule order only: column indices are NOT remapped, they
/// keep indexing the ORIGINAL x. The result is therefore generally NOT a
/// lower-triangular system and must not be handed to a solver as one; it is
/// launch metadata for kernels that gather x through the original numbering
/// (the per-level launches in kernels/launch.cpp). For a solvable reordered
/// system use PermuteSystemByLevel, which applies the full symmetric
/// permutation. graph_permute_test pins both contracts.
Csr GatherRowsByLevel(const Csr& lower, const LevelSets& levels);

/// A level-scheduled SYMMETRIC permutation of a triangular system
/// (Böhnlein et al.-style scheduled reordering): row and column k of
/// `matrix` are row and column order[k] of the original, so the permuted
/// matrix is again lower-triangular with full diagonal (dependencies only
/// point to earlier levels, which sort earlier) and rows of one level occupy
/// a contiguous, warp-aligned index range — the reordering that raises
/// effective warp-level granularity when Eq.-1 predicts collapse.
///
/// Solving: (P L P^T) y = P b, then x = P^T y — use PermuteVector on b and
/// UnpermuteVector on y. NOTE: column re-sorting changes each row's
/// accumulation order, so solutions agree with the unpermuted solve to
/// rounding, not bit-for-bit.
struct PermutedSystem {
  Csr matrix;
  /// permuted index k <- original index order[k] (the level-set order).
  std::vector<Idx> order;
  /// inverse[original] = permuted.
  std::vector<Idx> inverse;
};
PermutedSystem PermuteSystemByLevel(const Csr& lower, const LevelSets& levels);

/// out[k] = in[order[k]] (b of the permuted system).
void PermuteVector(std::span<const Idx> order, std::span<const Val> in,
                   std::span<Val> out);
/// out[order[k]] = in[k] (maps the permuted solution back).
void UnpermuteVector(std::span<const Idx> order, std::span<const Val> in,
                     std::span<Val> out);

}  // namespace capellini
