// Level-set analysis of the dependency DAG of a lower-triangular system.
//
// This is the preprocessing step of the classic level-set SpTRSV
// (Anderson & Saad; Saltz — Algorithm 2 in the paper): rows are grouped into
// levels such that all rows in a level depend only on rows in earlier levels
// and can be solved in parallel.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"

namespace capellini {

/// Result of level-set preprocessing. Mirrors the arrays in the paper:
/// `layer` (number of levels), `layer_num` (level_ptr here) and `order`.
struct LevelSets {
  /// level_of[row] = level index of that row (0-based).
  std::vector<Idx> level_of;
  /// level_ptr[k]..level_ptr[k+1] delimit level k's rows inside `order`.
  std::vector<Idx> level_ptr;
  /// Row numbers sorted by level (ties keep ascending row order).
  std::vector<Idx> order;

  Idx num_levels() const {
    return static_cast<Idx>(level_ptr.empty() ? 0 : level_ptr.size() - 1);
  }
  Idx LevelSize(Idx level) const {
    return level_ptr[static_cast<std::size_t>(level) + 1] -
           level_ptr[static_cast<std::size_t>(level)];
  }
  std::span<const Idx> LevelRows(Idx level) const {
    return std::span<const Idx>(order).subspan(
        static_cast<std::size_t>(level_ptr[static_cast<std::size_t>(level)]),
        static_cast<std::size_t>(LevelSize(level)));
  }
};

/// Computes level sets of a lower-triangular CSR matrix with full diagonal.
/// level(i) = 1 + max(level(j)) over strictly-lower entries j of row i.
/// Cost: O(nnz) — this is the "long preprocessing" the paper attributes to
/// level-set SpTRSV (it walks the whole structure and builds three arrays).
LevelSets ComputeLevelSets(const Csr& lower);

/// Builds the level-permuted copy of the matrix used by level-set solvers:
/// row k of the result is row order[k] of `lower` (rows of one level become
/// contiguous, so threads of one level launch read neighbouring rows).
/// Column indices are NOT remapped — they keep indexing the original x.
/// This gather is the expensive half of level-set preprocessing.
Csr PermuteRowsByLevel(const Csr& lower, const LevelSets& levels);

}  // namespace capellini
