#include "graph/dag.h"

#include <algorithm>

#include "support/status.h"

namespace capellini {

DependencyDag::DependencyDag(const Csr& lower) {
  CAPELLINI_CHECK_MSG(lower.IsLowerTriangularWithDiagonal(),
                      "DAG needs a lower-triangular matrix with diagonal");
  num_nodes_ = lower.rows();

  succ_ptr_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  in_degree_.assign(static_cast<std::size_t>(num_nodes_), 0);
  for (Idx i = 0; i < num_nodes_; ++i) {
    const auto cols = lower.RowCols(i);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      ++succ_ptr_[static_cast<std::size_t>(cols[j]) + 1];
      ++in_degree_[static_cast<std::size_t>(i)];
    }
  }
  for (Idx v = 0; v < num_nodes_; ++v) {
    succ_ptr_[static_cast<std::size_t>(v) + 1] +=
        succ_ptr_[static_cast<std::size_t>(v)];
  }

  succ_.resize(static_cast<std::size_t>(succ_ptr_.back()));
  std::vector<Idx> cursor(succ_ptr_.begin(), succ_ptr_.end() - 1);
  for (Idx i = 0; i < num_nodes_; ++i) {
    const auto cols = lower.RowCols(i);
    for (std::size_t j = 0; j + 1 < cols.size(); ++j) {
      succ_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[j])]++)] = i;
    }
  }
}

Idx DependencyDag::CriticalPathLength() const {
  // Nodes are already topologically ordered by index (edges go low -> high).
  std::vector<Idx> depth(static_cast<std::size_t>(num_nodes_), 1);
  Idx longest = num_nodes_ > 0 ? 1 : 0;
  for (Idx v = 0; v < num_nodes_; ++v) {
    const Idx d = depth[static_cast<std::size_t>(v)];
    longest = std::max(longest, d);
    for (const Idx succ : Successors(v)) {
      depth[static_cast<std::size_t>(succ)] =
          std::max(depth[static_cast<std::size_t>(succ)], d + 1);
    }
  }
  return longest;
}

bool DependencyDag::IsTopologicalOrder(std::span<const Idx> order) const {
  if (order.size() != static_cast<std::size_t>(num_nodes_)) return false;
  std::vector<Idx> position(static_cast<std::size_t>(num_nodes_), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Idx node = order[i];
    if (node < 0 || node >= num_nodes_) return false;
    if (position[static_cast<std::size_t>(node)] != -1) return false;  // dup
    position[static_cast<std::size_t>(node)] = static_cast<Idx>(i);
  }
  for (Idx v = 0; v < num_nodes_; ++v) {
    for (const Idx succ : Successors(v)) {
      if (position[static_cast<std::size_t>(v)] >=
          position[static_cast<std::size_t>(succ)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace capellini
