// Per-matrix structural indicators, including the paper's central
// "parallel granularity" metric (Equation 1).
#pragma once

#include <string>

#include "graph/levels.h"
#include "matrix/csr.h"

namespace capellini {

/// Parameters of Equation 1. The paper's defaults: common logarithm for all
/// three bases, biases b1 = b2 = 0.01.
struct GranularityParams {
  double base1 = 10.0;
  double base2 = 10.0;
  double base3 = 10.0;
  double b1 = 0.01;
  double b2 = 0.01;
};

/// parallel_granularity = log_c1( log_c2(n_level) / log_c3(nnz_row + b1) + b2 )
/// where n_level = average components per level, nnz_row = average nonzeros
/// per row. Matches the paper's Table 6 indicators (e.g. rajat29: alpha 4.89,
/// beta 14636.23 -> delta 0.78).
double ParallelGranularity(double avg_components_per_level,
                           double avg_nnz_per_row,
                           const GranularityParams& params = {});

/// Structural summary of a lower-triangular system.
struct MatrixStats {
  std::string name;
  Idx rows = 0;
  std::int64_t nnz = 0;
  /// alpha: average nonzeros per row (diagonal included, as in the paper).
  double avg_nnz_per_row = 0.0;
  Idx num_levels = 0;
  /// beta: average number of components per level = rows / num_levels.
  double avg_components_per_level = 0.0;
  /// Size of the largest level (peak available parallelism).
  Idx max_level_size = 0;
  /// delta: Equation 1.
  double parallel_granularity = 0.0;
};

/// Computes all indicators for `lower` (must be lower-triangular with
/// diagonal). Reuses precomputed level sets if supplied.
MatrixStats ComputeStats(const Csr& lower, const std::string& name,
                         const LevelSets* precomputed_levels = nullptr,
                         const GranularityParams& params = {});

/// A log2-bucketed histogram: bucket k counts values in [2^k, 2^(k+1)).
/// Used for row-length and level-size distributions — the structural detail
/// behind the hybrid kernel's threshold choice (§4.4).
struct Log2Histogram {
  /// counts[k] = number of values v with floor(log2(v)) == k (v >= 1).
  std::vector<std::int64_t> counts;
  std::int64_t total = 0;
  Idx min_value = 0;
  Idx max_value = 0;

  /// Smallest v such that at least `percentile` (0..100) of values are <= v,
  /// at bucket resolution (returns the bucket's upper bound).
  Idx Percentile(double percentile) const;

  /// Multi-line "2^k..: count (percent)" rendering.
  std::string ToString() const;
};

/// Distribution of row lengths (nnz per row, diagonal included).
Log2Histogram RowLengthHistogram(const Csr& lower);

/// Distribution of level sizes (components per level).
Log2Histogram LevelSizeHistogram(const LevelSets& levels);

}  // namespace capellini
