#include "graph/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/status.h"

namespace capellini {
namespace {

double LogBase(double x, double base) { return std::log(x) / std::log(base); }

}  // namespace

double ParallelGranularity(double avg_components_per_level,
                           double avg_nnz_per_row,
                           const GranularityParams& params) {
  CAPELLINI_CHECK(avg_components_per_level >= 1.0);
  CAPELLINI_CHECK(avg_nnz_per_row > 0.0);
  const double numerator = LogBase(avg_components_per_level, params.base2);
  const double denominator = LogBase(avg_nnz_per_row + params.b1, params.base3);
  // Guard: a matrix whose rows average ~1 nonzero has denominator ~0; the
  // ratio diverges which correctly signals extreme granularity. Clamp to a
  // large finite value so downstream binning stays well-defined.
  double ratio;
  if (denominator <= 1e-12) {
    ratio = 1e9;
  } else {
    ratio = numerator / denominator;
  }
  return LogBase(ratio + params.b2, params.base1);
}

MatrixStats ComputeStats(const Csr& lower, const std::string& name,
                         const LevelSets* precomputed_levels,
                         const GranularityParams& params) {
  CAPELLINI_CHECK(lower.IsLowerTriangularWithDiagonal());
  MatrixStats stats;
  stats.name = name;
  stats.rows = lower.rows();
  stats.nnz = lower.nnz();
  stats.avg_nnz_per_row =
      stats.rows == 0 ? 0.0
                      : static_cast<double>(stats.nnz) /
                            static_cast<double>(stats.rows);

  LevelSets local;
  const LevelSets* levels = precomputed_levels;
  if (levels == nullptr) {
    local = ComputeLevelSets(lower);
    levels = &local;
  }
  stats.num_levels = levels->num_levels();
  stats.avg_components_per_level =
      stats.num_levels == 0
          ? 0.0
          : static_cast<double>(stats.rows) /
                static_cast<double>(stats.num_levels);
  stats.max_level_size = 0;
  for (Idx k = 0; k < stats.num_levels; ++k) {
    stats.max_level_size = std::max(stats.max_level_size, levels->LevelSize(k));
  }
  if (stats.rows > 0) {
    stats.parallel_granularity = ParallelGranularity(
        std::max(1.0, stats.avg_components_per_level),
        std::max(1.0, stats.avg_nnz_per_row), params);
  }
  return stats;
}

namespace {

void AddValue(Log2Histogram& histogram, Idx value) {
  CAPELLINI_CHECK(value >= 1);
  const int bucket =
      std::bit_width(static_cast<std::uint32_t>(value)) - 1;  // floor(log2)
  if (histogram.counts.size() <= static_cast<std::size_t>(bucket)) {
    histogram.counts.resize(static_cast<std::size_t>(bucket) + 1, 0);
  }
  ++histogram.counts[static_cast<std::size_t>(bucket)];
  ++histogram.total;
  if (histogram.total == 1) {
    histogram.min_value = value;
    histogram.max_value = value;
  } else {
    histogram.min_value = std::min(histogram.min_value, value);
    histogram.max_value = std::max(histogram.max_value, value);
  }
}

}  // namespace

Idx Log2Histogram::Percentile(double percentile) const {
  if (total == 0) return 0;
  const double target = static_cast<double>(total) * percentile / 100.0;
  std::int64_t seen = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    seen += counts[k];
    if (static_cast<double>(seen) >= target) {
      return static_cast<Idx>((Idx{1} << (k + 1)) - 1);  // bucket upper bound
    }
  }
  return max_value;
}

std::string Log2Histogram::ToString() const {
  std::ostringstream out;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    char line[96];
    std::snprintf(line, sizeof line, "  [%6lld, %6lld]: %8lld (%5.1f%%)\n",
                  static_cast<long long>(Idx{1} << k),
                  static_cast<long long>((Idx{1} << (k + 1)) - 1),
                  static_cast<long long>(counts[k]),
                  100.0 * static_cast<double>(counts[k]) /
                      static_cast<double>(std::max<std::int64_t>(1, total)));
    out << line;
  }
  return out.str();
}

Log2Histogram RowLengthHistogram(const Csr& lower) {
  Log2Histogram histogram;
  for (Idx r = 0; r < lower.rows(); ++r) AddValue(histogram, lower.RowLen(r));
  return histogram;
}

Log2Histogram LevelSizeHistogram(const LevelSets& levels) {
  Log2Histogram histogram;
  for (Idx k = 0; k < levels.num_levels(); ++k) {
    AddValue(histogram, levels.LevelSize(k));
  }
  return histogram;
}

}  // namespace capellini
